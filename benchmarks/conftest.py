"""Shared benchmark fixtures and helpers.

Every benchmark solves its instance exactly once (``pedantic`` with one
round): solver runs are seconds-long and deterministic, so statistical
repetition would only burn wall-clock.  Paper-scale bounds are far too
deep for a pure-Python engine (see EXPERIMENTS.md for the scaling
discussion), so the benches run the same instance *families* at scaled
bounds where every configuration's relative behaviour is still visible.
"""

import pytest

#: Per-run solver timeout (seconds).  Timeouts are recorded, not errors
#: — the paper's tables have -to- entries too.
BENCH_TIMEOUT = 30.0


def run_once(benchmark, fn):
    """Run a solver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_timeout():
    return BENCH_TIMEOUT
