"""Benchmarks for the application layer built on HDPLL.

Not paper tables — these track the engines the library layers on top of
the solver: k-induction, equivalence checking and predicate abstraction.
"""

import pytest

from repro.bmc import InductionStatus, prove_by_induction
from repro.core import HDPLL_SP
from repro.core.abstraction import predicate_abstraction_check
from repro.equivalence import (
    EquivalenceStatus,
    check_combinational_equivalence,
    check_sequential_equivalence,
)
from repro.itc99 import circuit
from repro.itc99.b02 import PROPERTIES as B02_PROPERTIES
from repro.itc99.b13 import PROPERTIES as B13_PROPERTIES
from repro.rtl.optimize import optimize

from benchmarks.conftest import BENCH_TIMEOUT, run_once


def test_bench_induction_b13_counter(benchmark):
    result = run_once(
        benchmark,
        lambda: prove_by_induction(
            circuit("b13"),
            B13_PROPERTIES["1"],
            max_k=4,
            config=HDPLL_SP,
            timeout=BENCH_TIMEOUT,
        ),
    )
    benchmark.extra_info["status"] = result.status.value
    assert result.status is InductionStatus.PROVED


def test_bench_induction_b02(benchmark):
    result = run_once(
        benchmark,
        lambda: prove_by_induction(
            circuit("b02"),
            B02_PROPERTIES["1"],
            max_k=6,
            config=HDPLL_SP,
            timeout=BENCH_TIMEOUT,
        ),
    )
    benchmark.extra_info["status"] = result.status.value
    assert result.status is InductionStatus.PROVED


def test_bench_equivalence_optimized_b02_bounded(benchmark):
    original = circuit("b02")
    optimised = optimize(original)
    result = run_once(
        benchmark,
        lambda: check_sequential_equivalence(
            original,
            optimised,
            outputs=["state_out", "ok_p1"],
            config=HDPLL_SP,
            bound=4,
        ),
    )
    benchmark.extra_info["status"] = result.status.value
    assert result.status is not EquivalenceStatus.DIFFERENT


def test_bench_abstraction_b02(benchmark):
    result = run_once(
        benchmark,
        lambda: predicate_abstraction_check(
            circuit("b02"), B02_PROPERTIES["1"]
        ),
    )
    benchmark.extra_info["proved"] = result.proved
    benchmark.extra_info["solver_calls"] = result.solver_calls
    benchmark.extra_info["pruned"] = result.pruned_by_relations
    assert result.proved


@pytest.mark.parametrize("use_relations", [True, False])
def test_bench_abstraction_relation_pruning(benchmark, use_relations):
    """The Section 6 effect as a benchmark pair."""
    result = run_once(
        benchmark,
        lambda: predicate_abstraction_check(
            circuit("b02"),
            B02_PROPERTIES["1"],
            use_learned_relations=use_relations,
        ),
    )
    benchmark.extra_info["solver_calls"] = result.solver_calls
    assert result.proved


def test_bench_optimize_b13(benchmark):
    original = circuit("b13")
    optimised = benchmark(lambda: optimize(original))
    benchmark.extra_info["nodes_before"] = len(original.nodes)
    benchmark.extra_info["nodes_after"] = len(optimised.nodes)
