"""Microbenchmarks for the propagation hot path.

Each benchmark isolates one layer the solver spends its time in —
interval interning, flat-store narrowing + backtracking, watched-literal
clause propagation, and the full engine fixpoint — so a perf regression
can be localised without profiling a whole BMC run.  Wall-clock numbers
live in ``BENCH_1.json`` (see docs/performance.md); these tests track
the relative cost of the layers.
"""

import random

import pytest

from repro.constraints import (
    Clause,
    ClauseDatabase,
    DomainStore,
    PropagationEngine,
    Variable,
    compile_circuit,
    make_bool_lit,
)
from repro.constraints.variable import VarOrigin
from repro.intervals import Interval
from repro.itc99 import instance


def _word_vars(count, width=8):
    return [
        Variable(index=i, name=f"v{i}", width=width, origin=VarOrigin.NET)
        for i in range(count)
    ]


def _bool_vars(count):
    return [
        Variable(index=i, name=f"b{i}", width=1, origin=VarOrigin.NET)
        for i in range(count)
    ]


def test_interval_interning(benchmark):
    """Interval.make on a small recurring working set (cache hits)."""

    def work():
        total = 0
        for _ in range(200):
            for lo in range(16):
                total += Interval.make(lo, lo + 3).hi
        return total

    benchmark(work)


def test_store_narrow_backtrack(benchmark):
    """Layered narrowing and O(1)-per-event backtracking."""
    variables = _word_vars(64)

    def work():
        store = DomainStore(variables)
        for round_index in range(8):
            store.push_level()
            for var in variables:
                store.narrow_bounds(
                    var, round_index + 1, 250 - round_index, "decision"
                )
        store.backtrack_to(0)
        return len(store.trail)

    benchmark(work)


def test_clause_watch_propagation(benchmark):
    """2WL visits across a randomly connected Boolean clause set."""
    variables = _bool_vars(48)
    rng = random.Random(7)
    clause_specs = [
        [(rng.randrange(len(variables)), rng.randint(0, 1)) for _ in range(3)]
        for _ in range(400)
    ]

    def work():
        store = DomainStore(variables)
        db = ClauseDatabase(store)
        for spec in clause_specs:
            db.add_clause(
                Clause(
                    tuple(
                        make_bool_lit(variables[i], value)
                        for i, value in spec
                    )
                )
            )
        for var in variables[:24]:
            if store.is_assigned(var):
                continue
            store.push_level()
            if store.assign_bool(var, 1, "decision") is None:
                break
            while True:
                mark = len(store.trail)
                conflict = None
                for event in store.trail[mark - 1 :]:
                    conflict = db.on_var_event(event.var)
                    if conflict is not None:
                        break
                if conflict is not None or len(store.trail) == mark:
                    break
        return db.clause_visits

    benchmark(work)


def test_engine_fixpoint(benchmark):
    """Full Ddeduce fixpoint on a compiled ITC99 BMC instance."""
    inst = instance("b04_1", 8)
    system = compile_circuit(inst.circuit)

    def work():
        store = DomainStore(system.variables)
        engine = PropagationEngine(store, system.propagators)
        engine.enqueue_all()
        conflict = engine.propagate()
        assert conflict is None
        return engine.propagation_count

    benchmark(work)
