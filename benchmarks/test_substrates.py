"""Micro-benchmarks of the substrates beneath HDPLL.

These do not regenerate a paper table; they track the cost of the
building blocks (useful when optimising and as regression guards).
"""

import pytest

from repro.constraints import DomainStore, PropagationEngine, compile_circuit
from repro.core.decide import ActivityOrder
from repro.core.predlearn import run_predicate_learning
from repro.fme import LinearConstraint, OmegaSolver
from repro.intervals import Interval
from repro.itc99 import circuit, instance
from repro.baselines import bitblast, solve_by_bitblasting
from repro.bmc import unroll

from benchmarks.conftest import run_once


def test_bench_unroll_b13_50(benchmark):
    sequential = circuit("b13")
    result = benchmark(lambda: unroll(sequential, 50))
    assert result.is_combinational


def test_bench_compile_b13_30(benchmark):
    unrolled = instance("b13_1", 30).circuit
    system = benchmark(lambda: compile_circuit(unrolled))
    assert len(system.propagators) > 0


def test_bench_initial_propagation_b13_30(benchmark):
    unrolled = instance("b13_1", 30).circuit
    system = compile_circuit(unrolled)

    def propagate_once():
        store = DomainStore(system.variables)
        engine = PropagationEngine(store, system.propagators)
        engine.enqueue_all()
        return engine.propagate()

    assert benchmark(propagate_once) is None


def test_bench_predicate_learning_pass_b13_10(benchmark):
    unrolled = instance("b13_1", 10).circuit
    system = compile_circuit(unrolled)

    def learn():
        store = DomainStore(system.variables)
        engine = PropagationEngine(store, system.propagators)
        engine.enqueue_all()
        engine.propagate()
        order = ActivityOrder(system, store)
        return run_predicate_learning(system, store, engine, order)

    report = run_once(benchmark, learn)
    benchmark.extra_info["relations"] = report.relations_learned
    assert report.relations_learned > 0


def test_bench_omega_carry_chain(benchmark):
    """A 16-stage carry-chain equality system (typical leaf shape)."""
    constraints = []
    bounds = {}
    for stage in range(16):
        a, b, s, c = 4 * stage, 4 * stage + 1, 4 * stage + 2, 4 * stage + 3
        bounds[a] = (0, 255)
        bounds[b] = (0, 255)
        bounds[s] = (0, 255)
        bounds[c] = (0, 1)
        constraints.append(
            LinearConstraint.eq({a: 1, b: 1, s: -1, c: -256}, 0)
        )
        if stage:
            previous_s = 4 * (stage - 1) + 2
            constraints.append(
                LinearConstraint.eq({previous_s: 1, a: -1}, 0)
            )
    constraints.append(LinearConstraint.eq({4 * 15 + 2: 1}, 123))

    def solve():
        return OmegaSolver().solve(constraints, bounds)

    witness = benchmark(solve)
    assert witness is not None
    assert witness[4 * 15 + 2] == 123


def test_bench_bitblast_translation_b13_20(benchmark):
    unrolled = instance("b13_1", 20).circuit
    blasted = benchmark(lambda: bitblast(unrolled))
    benchmark.extra_info["cnf_vars"] = blasted.cnf.num_vars
    benchmark.extra_info["cnf_clauses"] = len(blasted.cnf.clauses)


def test_bench_bitblast_solve_b13_10(benchmark):
    inst = instance("b13_1", 10)

    def solve():
        return solve_by_bitblasting(
            inst.circuit, inst.assumptions, timeout=30.0
        )

    satisfiable, _, _ = run_once(benchmark, solve)
    assert satisfiable is False


def test_bench_interval_narrowing_fixpoint(benchmark):
    """Raw ICP throughput on a long adder chain."""
    from repro.rtl import CircuitBuilder

    b = CircuitBuilder("chain")
    value = b.input("x", 8)
    for _ in range(200):
        value = b.add(value, 3)
    b.output("out", value)
    chain = b.build()
    system = compile_circuit(chain)

    def propagate():
        store = DomainStore(system.variables)
        engine = PropagationEngine(store, system.propagators)
        store.assume(system.var_by_name("x"), Interval(5, 5))
        engine.enqueue_all()
        return engine.propagate()

    assert benchmark(propagate) is None
