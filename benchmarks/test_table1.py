"""Table 1 regeneration: predicate learning run-time analysis.

One benchmark per (instance, engine) cell of the paper's Table 1, at
bounds scaled to pure-Python speed.  The paper's qualitative claims to
check in the results:

* on the small b01/b02 cases the learning overhead dominates any gain;
* on the larger b02/b13 cases learning wins by 2x-80x (here the effect
  is even starker: b02_1 and b13_5 collapse to propagation-only).

``repro-hdpll table1`` prints the full paper-style table including the
relation counts and learning times.
"""

import pytest

from repro.harness.runner import run_engine
from repro.itc99 import instance

from benchmarks.conftest import BENCH_TIMEOUT, run_once

#: The paper's Table 1 families at scaled bounds.
TABLE1_SCALED = [
    ("b01_1", 10),
    ("b01_1", 20),
    ("b02_1", 10),
    ("b02_1", 20),
    ("b04_1", 20),
    ("b13_5", 10),
    ("b13_1", 10),
    ("b13_5", 20),
    ("b13_1", 20),
    ("b13_5", 30),
    ("b13_1", 30),
]


@pytest.mark.parametrize("case,bound", TABLE1_SCALED)
@pytest.mark.parametrize("engine", ["hdpll", "hdpll+p"])
def test_table1_cell(benchmark, case, bound, engine):
    inst = instance(case, bound)
    record = run_once(benchmark, lambda: run_engine(inst, engine, BENCH_TIMEOUT))
    benchmark.extra_info["status"] = record.status
    benchmark.extra_info["learned_relations"] = record.learned_relations
    benchmark.extra_info["learn_seconds"] = round(record.learn_seconds, 3)
    benchmark.extra_info["conflicts"] = record.conflicts
    assert record.status in ("S", "U", "-to-")
