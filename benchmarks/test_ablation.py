"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **hybrid learned clauses** (Section 2.4): Boolean-only learning cannot
  express "state@t stays below 7", so b02-style UNSAT proofs blow up.
* **mux select implication**: strengthening Ddeduce with the backward
  select rule the paper leaves to the structural Decide.
* **Section 4.4 phase hints**: value choice by learned-relation count;
  biased towards typical behaviour, it hurts counterexample search.
* **learning threshold**: the Section 3.1 cost/benefit trade-off.
"""

import pytest

from repro.core import SolverConfig, solve_circuit
from repro.itc99 import instance

from benchmarks.conftest import BENCH_TIMEOUT, run_once


def _solve(case, bound, **overrides):
    inst = instance(case, bound)
    settings = {
        "structural_decisions": True,
        "predicate_learning": True,
        "timeout": BENCH_TIMEOUT,
    }
    settings.update(overrides)
    config = SolverConfig(**settings)
    return solve_circuit(inst.circuit, inst.assumptions, config)


@pytest.mark.parametrize("hybrid", [True, False])
def test_ablation_hybrid_clauses(benchmark, hybrid):
    """b02_1: hybrid clauses carry the per-frame interval refutations."""
    result = run_once(
        benchmark,
        lambda: _solve("b02_1", 15, hybrid_learned_clauses=hybrid,
                       predicate_learning=False),
    )
    benchmark.extra_info["status"] = result.status.value
    benchmark.extra_info["conflicts"] = result.stats.conflicts


@pytest.mark.parametrize("imply", [True, False])
def test_ablation_mux_select_implication(benchmark, imply):
    """b04_1: how much of +S's win is propagation vs decision order."""
    result = run_once(
        benchmark, lambda: _solve("b04_1", 20, mux_select_implication=imply)
    )
    benchmark.extra_info["status"] = result.status.value
    benchmark.extra_info["conflicts"] = result.stats.conflicts


@pytest.mark.parametrize("hints", [True, False])
def test_ablation_phase_hints(benchmark, hints):
    """b04_1 SAT search with and without Section 4.4 value hints."""
    result = run_once(
        benchmark, lambda: _solve("b04_1", 20, learned_phase_hints=hints)
    )
    benchmark.extra_info["status"] = result.status.value
    benchmark.extra_info["conflicts"] = result.stats.conflicts


@pytest.mark.parametrize("threshold", [0, 50, 500, None])
def test_ablation_learning_threshold(benchmark, threshold):
    """b13_1: the Section 3.1 threshold trade-off (None = paper rule)."""
    result = run_once(
        benchmark, lambda: _solve("b13_1", 20, learning_threshold=threshold)
    )
    benchmark.extra_info["status"] = result.status.value
    benchmark.extra_info["relations"] = result.stats.learned_relations
    benchmark.extra_info["conflicts"] = result.stats.conflicts


@pytest.mark.parametrize("structural", [True, False])
def test_ablation_structural_on_control_only_property(benchmark, structural):
    """b13_3: the paper's anomaly family — justification can lose to the
    plain heuristic when the property is provable in control logic."""
    inst = instance("b13_3", 15)
    config = SolverConfig(
        structural_decisions=structural, timeout=BENCH_TIMEOUT
    )
    result = run_once(
        benchmark,
        lambda: solve_circuit(inst.circuit, inst.assumptions, config),
    )
    benchmark.extra_info["status"] = result.status.value
    benchmark.extra_info["conflicts"] = result.stats.conflicts
