"""Table 2 regeneration: the structural decision strategy comparison.

One benchmark per (instance, engine) cell of the paper's Table 2 at
scaled bounds.  Qualitative claims to check in the results:

* HDPLL+S beats HDPLL by an order of magnitude on the mux/datapath
  cases (b04 is the extreme: base times out, +S finishes instantly);
* +S+P adds a further order of magnitude on the learning-friendly
  UNSAT families (b02, b13_1/_5);
* on the control-only b13_3 family the basic strategy is competitive
  (the paper's predicate-abstraction caveat);
* the UCLID- and ICS-like comparators never beat HDPLL and start timing
  out first as the bound grows.
"""

import pytest

from repro.harness.runner import run_engine
from repro.itc99 import instance

from benchmarks.conftest import BENCH_TIMEOUT, run_once

TABLE2_SCALED = [
    ("b01_1", 26),
    ("b01_1", 20),
    ("b02_1", 20),
    ("b04_1", 20),
    ("b13_40", 13),
    ("b13_1", 15),
    ("b13_2", 15),
    ("b13_3", 15),
    ("b13_5", 15),
    ("b13_8", 15),
]

HDPLL_ENGINES = ["hdpll", "hdpll+s", "hdpll+sp"]

#: The comparator substitutes run on the subset they can attempt within
#: the bench budget (the paper's own table is full of -to- for them).
CDP_CASES = [
    ("b01_1", 26),
    ("b02_1", 20),
    ("b04_1", 20),
    ("b13_40", 13),
    ("b13_1", 15),
    ("b13_5", 15),
]


@pytest.mark.parametrize("case,bound", TABLE2_SCALED)
@pytest.mark.parametrize("engine", HDPLL_ENGINES)
def test_table2_hdpll_cell(benchmark, case, bound, engine):
    inst = instance(case, bound)
    record = run_once(benchmark, lambda: run_engine(inst, engine, BENCH_TIMEOUT))
    benchmark.extra_info["status"] = record.status
    benchmark.extra_info["arith_ops"] = record.arith_ops
    benchmark.extra_info["bool_ops"] = record.bool_ops
    benchmark.extra_info["conflicts"] = record.conflicts
    assert record.status in ("S", "U", "-to-")


@pytest.mark.parametrize("case,bound", CDP_CASES)
@pytest.mark.parametrize("engine", ["uclid", "ics"])
def test_table2_cdp_cell(benchmark, case, bound, engine):
    inst = instance(case, bound)
    record = run_once(benchmark, lambda: run_engine(inst, engine, BENCH_TIMEOUT))
    benchmark.extra_info["status"] = record.status
    assert record.status in ("S", "U", "-to-", "-A-")


@pytest.mark.parametrize("case,bound", [("b01_1", 26), ("b02_1", 20), ("b13_8", 15)])
def test_table2_bitblast_cell(benchmark, case, bound):
    """The introduction's Boolean-translation baseline on the same rows."""
    inst = instance(case, bound)
    record = run_once(
        benchmark, lambda: run_engine(inst, "bitblast", BENCH_TIMEOUT)
    )
    benchmark.extra_info["status"] = record.status
    assert record.status in ("S", "U", "-to-")
