#!/usr/bin/env python
"""Quickstart: build an RTL circuit, check satisfiability, read a model.

The scenario: a saturating accumulator datapath with an overflow flag.
We ask the solver two questions a verification engineer would ask:

1. Can the overflow flag rise while the input stays below the limit?
   (Expected: no — the property is UNSAT.)
2. Can the accumulator land exactly on the saturation boundary?
   (Expected: yes — and the solver hands back a witness.)

Run:  python examples/quickstart.py
"""

from repro import CircuitBuilder, HDPLL_SP, Interval, solve_circuit


def build_saturating_adder():
    """An 8-bit saturating adder: out = min(a + b, 200)."""
    b = CircuitBuilder("saturating_adder")
    a = b.input("a", 8)
    c = b.input("b", 8)

    # Full-width sum in 9 bits so the comparison sees real magnitudes.
    wide_a = b.zext(a, 9)
    wide_b = b.zext(c, 9)
    total = b.add(wide_a, wide_b, name="total")

    limit = b.const(200, 9, name="limit")
    over = b.gt(total, limit, name="over")
    clipped = b.mux(over, limit, total, name="clipped")

    b.output("sum", clipped)
    b.output("overflow", over)
    return b.build()


def main():
    circuit = build_saturating_adder()

    print("Question 1: overflow with both inputs under 64?")
    result = solve_circuit(
        circuit,
        {
            "overflow": 1,
            "a": Interval(0, 63),
            "b": Interval(0, 63),
        },
        HDPLL_SP,
    )
    print(f"  -> {result.status.value}   (64 + 64 - 2 = 126 <= 200: safe)")
    assert result.is_unsat

    print("Question 2: can the sum land exactly on the 200 boundary?")
    result = solve_circuit(circuit, {"sum": 200, "overflow": 0}, HDPLL_SP)
    print(f"  -> {result.status.value}")
    assert result.is_sat
    model = result.model
    print(
        f"  witness: a = {model['a']}, b = {model['b']}, "
        f"sum = {model['sum']}, overflow = {model['overflow']}"
    )
    assert model["a"] + model["b"] == 200

    stats = result.stats
    print(
        f"  solver work: {stats.decisions} decisions, "
        f"{stats.conflicts} conflicts, {stats.fme_checks} integer checks"
    )


if __name__ == "__main__":
    main()
