#!/usr/bin/env python
"""Race every engine on one BMC instance — a miniature Table 2 row.

Compares the four HDPLL configurations against the UCLID-like and
ICS-like comparator substitutes and the bit-blasting baseline.

Run:  python examples/compare_solvers.py [case] [bound]
      python examples/compare_solvers.py b13_1 15
"""

import sys

from repro.harness import ENGINE_NAMES, run_engine
from repro.itc99 import instance


def main():
    case = sys.argv[1] if len(sys.argv) > 1 else "b13_1"
    bound = int(sys.argv[2]) if len(sys.argv) > 2 else 15
    timeout = 60.0

    inst = instance(case, bound)
    stats = inst.circuit.stats()
    print(
        f"instance {inst.name}: {stats.arith_ops} arith ops, "
        f"{stats.bool_ops} bool ops, timeout {timeout:.0f}s\n"
    )
    print(f"{'engine':10s} {'result':7s} {'seconds':>8s} "
          f"{'decisions':>10s} {'conflicts':>10s}")
    for engine in ENGINE_NAMES:
        record = run_engine(inst, engine, timeout)
        print(
            f"{engine:10s} {record.status:7s} {record.seconds:>8.2f} "
            f"{record.decisions:>10d} {record.conflicts:>10d}"
        )


if __name__ == "__main__":
    main()
