#!/usr/bin/env python
"""Reproduce Figure 1: classic recursive learning.

Circuit: e = OR(c, d) with c = AND(a, b), d = AND(a, b).  Probing
``e = 1`` to recursion level 1 tries both justifications (c = 1 and
d = 1) in isolation; each one implies a = 1 and b = 1, so those two
facts are learned: ``e=1 -> a=1`` and ``e=1 -> b=1``.

Run:  python examples/figure1_recursive_learning.py
"""

from repro.constraints import DomainStore, PropagationEngine, compile_circuit
from repro.core.recursive import RecursiveLearner, justification_options
from repro.figures import figure1_circuit


def main():
    circuit = figure1_circuit()
    system = compile_circuit(circuit)
    store = DomainStore(system.variables)
    engine = PropagationEngine(store, system.propagators)
    engine.enqueue_all()
    assert engine.propagate() is None

    e_var = system.var_by_name("e")
    options = justification_options(system, circuit.net("e").driver, 1)
    print("probe            : e = 1")
    print(
        "justifications   : "
        + "  or  ".join(
            " & ".join(f"{var.name}={value}" for var, value in option)
            for option in options
        )
    )

    learner = RecursiveLearner(system, store, engine)
    implications = learner.probe(e_var, 1, depth=1)
    assert implications is not None

    print("common implied   : ", end="")
    names = {
        system.variables[index].name: interval
        for index, interval in implications.items()
        if system.variables[index].name in ("a", "b")
    }
    print(", ".join(f"{name} = {interval}" for name, interval in sorted(names.items())))

    assert str(names["a"]) == "<1>"
    assert str(names["b"]) == "<1>"
    print("\nFigure 1 reproduced: e = 1 implies a = 1 and b = 1.")


if __name__ == "__main__":
    main()
