#!/usr/bin/env python
"""BMC counterexample hunting on the b04 min/max tracker.

The domain scenario from the paper's evaluation: bounded model checking
of a safety property on an ITC'99 RTL design.  Property b04_1 claims
the tracked extremes never spread more than 200 apart; the structural
solver finds an input sequence violating it and this script replays the
counterexample cycle by cycle on the sequential simulator.

Run:  python examples/bmc_counterexample.py
"""

from repro.bmc import input_trace_from_model
from repro.core import HDPLL_S, solve_circuit
from repro.itc99 import circuit, instance
from repro.rtl import SequentialSimulator


def main():
    bound = 12
    inst = instance("b04_1", bound)
    stats = inst.circuit.stats()
    print(
        f"instance {inst.name}: {stats.arith_ops} arith ops, "
        f"{stats.bool_ops} bool ops after unrolling"
    )

    result = solve_circuit(inst.circuit, inst.assumptions, HDPLL_S)
    print(
        f"solver: {result.status.value.upper()} "
        f"({result.stats.structural_decisions} structural decisions, "
        f"{result.stats.conflicts} conflicts)"
    )
    assert result.is_sat, "property b04_1 must be violable"

    sequential = circuit("b04")
    trace = input_trace_from_model(sequential, result.model, bound)

    print("\ncounterexample replay:")
    print(f"{'cycle':>5s} {'enable':>6s} {'data':>5s} "
          f"{'rmax':>5s} {'rmin':>5s} {'ok':>3s}")
    sim = SequentialSimulator(sequential)
    values = None
    for cycle, frame in enumerate(trace):
        values = sim.step(frame)
        print(
            f"{cycle:>5d} {frame['enable']:>6d} {frame['data']:>5d} "
            f"{values['rmax_out']:>5d} {values['rmin_out']:>5d} "
            f"{values['ok_p1']:>3d}"
        )
    assert values["ok_p1"] == 0
    spread = values["rmax_out"] - values["rmin_out"]
    print(f"\nviolation confirmed: rmax - rmin = {spread} > 200")


if __name__ == "__main__":
    main()
