#!/usr/bin/env python
"""Reproduce Figure 4: structural decision making on an RTL circuit.

The paper's Figure 4(b) trace for checking ``b7 = 1`` (with the setup
``w2 in <6, 7>``):

    Imply proposition : b7=1 -> {b4=0, b5=0, b6=1, w4=<5>}
    J-frontier        : {w4 = <5>}
    Decide()          : w4 ∩ w2 = ∅; w3 ∈ w4  -> decision b1 = 0
    Imply decision    : b1=0 -> w3 = <5>
    Decide()          : <6> ∩ w3 = ∅; w1 ∈ w3 -> decision b2 = 0
    Imply decision    : b2=0 -> w1 = <5>
    J-frontier        : ∅  -> arithmetic solver certifies SATISFIABLE

This script replays that trace step by step on the reconstructed
circuit, then confirms the end-to-end solver gets the same answer with
exactly those two structural decisions.

Run:  python examples/figure4_structural_search.py
"""

from repro.constraints import DomainStore, PropagationEngine, compile_circuit
from repro.core import HDPLL_S, HdpllSolver
from repro.core.decide import ActivityOrder
from repro.core.justify import StructuralDecide
from repro.figures import figure4_circuit
from repro.intervals import Interval


def show(store, system, names):
    parts = []
    for name in names:
        domain = store.domain(system.var_by_name(name))
        parts.append(f"{name}={domain}")
    return ", ".join(parts)


def main():
    circuit = figure4_circuit()
    system = compile_circuit(circuit)
    store = DomainStore(system.variables)
    engine = PropagationEngine(store, system.propagators)
    order = ActivityOrder(system, store)
    decide = StructuralDecide(system, store, order)

    print("HDPLL setup  : w2 = <6,7>, w3 = <0,7>, w1 = <0,7>")
    store.assume(system.var_by_name("w2"), Interval(6, 7))
    store.assume(system.var_by_name("b7"), Interval.point(1))
    engine.enqueue_all()
    assert engine.propagate() is None
    print(
        "Imply prop   : b7=1 -> "
        + show(store, system, ["b4", "b5", "b6", "w4"])
    )

    step = 0
    while True:
        outcome = decide.next_decision()
        if outcome is None:
            print("J-frontier   : empty")
            break
        var, value = outcome
        step += 1
        print(f"Decide()     : step {step} -> {var.name} = {value}")
        store.decide_bool(var, value)
        assert engine.propagate() is None
        print(
            "Imply dec.   : "
            + show(store, system, ["w4", "w3", "w1"])
        )

    from repro.core.fme_leaf import check_solution_box

    leaf = check_solution_box(store, system)
    print(f"Arithmetic   : solution box feasible = {leaf.feasible}")
    assert leaf.feasible

    print()
    print("End-to-end check with the +S solver:")
    solver = HdpllSolver(circuit, HDPLL_S)
    result = solver.solve({"w2": Interval(6, 7), "b7": 1})
    print(
        f"  {result.status.value.upper()} with "
        f"{result.stats.structural_decisions} structural decisions; "
        f"model: w4={result.model['w4']}, w3={result.model['w3']}, "
        f"w1={result.model['w1']}"
    )
    assert result.is_sat
    assert result.stats.structural_decisions == 2


if __name__ == "__main__":
    main()
