#!/usr/bin/env python
"""Reproduce Figure 2: predicate-based learning on the b04 fragment.

The paper's Figure 2(b) derives four relations from the circuit of
Figure 2(a), in this order and *using the earlier ones for the later
probes*:

    1) b5 = 0  ->  b6 = 0     learned as (b5 | ~b6)
    2) b6 = 0  ->  b5 = 0     learned as (b6 | ~b5)
    3) b8 = 1  ->  b9 = 1     learned as (~b8 | b9)
    4) b9 = 1  ->  b8 = 1     learned as (~b9 | b8)

This script runs the Section 3 pre-processing pass on the reconstructed
circuit and prints every learned relation, flagging the four from the
paper.

Run:  python examples/figure2_predicate_learning.py
"""

from repro.constraints import (
    BoolLit,
    DomainStore,
    PropagationEngine,
    compile_circuit,
)
from repro.core.decide import ActivityOrder
from repro.core.predlearn import run_predicate_learning
from repro.figures import figure2_circuit


def literal_text(literal):
    if isinstance(literal, BoolLit):
        return ("" if literal.positive else "~") + literal.var.name
    relation = "in" if literal.positive else "notin"
    return f"({literal.var.name} {relation} {literal.interval})"


def main():
    circuit = figure2_circuit()
    system = compile_circuit(circuit)
    store = DomainStore(system.variables)
    engine = PropagationEngine(store, system.propagators)
    engine.enqueue_all()
    assert engine.propagate() is None
    order = ActivityOrder(system, store)

    report = run_predicate_learning(system, store, engine, order)

    paper_relations = {
        frozenset({("b5", True), ("b6", False)}): "1) b5=0 -> b6=0",
        frozenset({("b6", True), ("b5", False)}): "2) b6=0 -> b5=0",
        frozenset({("b8", False), ("b9", True)}): "3) b8=1 -> b9=1",
        frozenset({("b9", False), ("b8", True)}): "4) b9=1 -> b8=1",
    }

    print(f"candidates probed : {report.candidates}")
    print(f"relations learned : {report.relations_learned}")
    print()
    found = set()
    for position, clause in enumerate(report.clauses, start=1):
        text = " | ".join(literal_text(lit) for lit in clause.literals)
        signature = frozenset(
            (lit.var.name, lit.positive)
            for lit in clause.literals
            if isinstance(lit, BoolLit)
        )
        marker = paper_relations.get(signature, "")
        if marker:
            found.add(marker)
            marker = f"   <-- Figure 2(b) step {marker}"
        print(f"  {position:2d}. ({text}){marker}")

    print()
    assert len(found) == 4, "all four Figure 2(b) relations must appear"
    print("all four relations of Figure 2(b) reproduced.")


if __name__ == "__main__":
    main()
