#!/usr/bin/env python
"""Unbounded proofs: k-induction and predicate abstraction.

The paper's Table 1/2 instances prove UNSAT at one bound at a time; the
two engines layered on top of HDPLL in this library close properties
*for every bound*:

* **k-induction** on b13's transmit-counter invariant (property 1),
* **predicate abstraction** (the paper's Section 6 proposal) on b02's
  unreachable-state invariant, with learned predicate relations pruning
  the candidate valuations before any solver call.

Run:  python examples/unbounded_proof.py
"""

from repro.bmc import InductionStatus, prove_by_induction
from repro.core import HDPLL_SP
from repro.core.abstraction import predicate_abstraction_check
from repro.itc99 import circuit
from repro.itc99.b02 import PROPERTIES as B02_PROPERTIES
from repro.itc99.b13 import PROPERTIES as B13_PROPERTIES


def main():
    print("== k-induction: b13 property 1 (cnt <= 8) ==")
    result = prove_by_induction(
        circuit("b13"), B13_PROPERTIES["1"], max_k=6, config=HDPLL_SP
    )
    assert result.status is InductionStatus.PROVED
    print(
        f"PROVED for every bound at induction depth k = {result.k} "
        f"(the paper's Table 1 re-proves this per bound, up to 300 frames)"
    )

    print()
    print("== k-induction: b13 property 40 (idle_cnt != 12) ==")
    result = prove_by_induction(
        circuit("b13"), B13_PROPERTIES["40"], max_k=15, config=HDPLL_SP
    )
    assert result.status is InductionStatus.VIOLATED
    print(f"VIOLATED at depth {result.k} — matches Table 2's b13_40(13) S")

    print()
    print("== predicate abstraction: b02 property 1 (state != 7) ==")
    for use_relations in (False, True):
        outcome = predicate_abstraction_check(
            circuit("b02"),
            B02_PROPERTIES["1"],
            use_learned_relations=use_relations,
        )
        assert outcome.proved
        label = "with" if use_relations else "without"
        print(
            f"PROVED {label} learned relations: "
            f"{len(outcome.reachable_states)} abstract states, "
            f"{outcome.solver_calls} solver calls, "
            f"{outcome.pruned_by_relations} candidates pruned"
        )
    print(
        "\nThe pruning column is Section 6's claim made measurable: "
        "learned predicate relations discharge abstract transitions "
        "without touching the solver."
    )


if __name__ == "__main__":
    main()
