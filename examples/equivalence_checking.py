#!/usr/bin/env python
"""RTL-RTL equivalence checking — the paper's Section 6 scenario.

Workflow:

1. describe a design in the HDL frontend,
2. run the netlist optimiser over it,
3. prove original == optimised with the HDPLL-based equivalence checker
   (a miter duplicates the whole datapath — the duplicated-predicate
   situation Section 6 points predicate learning at),
4. inject a bug into a third version and watch the checker produce a
   distinguishing input.

Run:  python examples/equivalence_checking.py
"""

from repro.core import HDPLL_SP
from repro.equivalence import (
    EquivalenceStatus,
    check_combinational_equivalence,
)
from repro.rtl import parse_module
from repro.rtl.optimize import optimize

DESIGN = """
module alu(input [7:0] a, input [7:0] b, input [1:0] op,
           output [7:0] y, output zero);
  wire [7:0] sum  = a + b;
  wire [7:0] diff = a - b;
  wire [7:0] maxv = (a > b) ? a : b;
  wire [7:0] minv = (a > b) ? b : a;
  wire [7:0] lo = (op == 2'd0) ? sum  : diff;
  wire [7:0] hi = (op == 2'd2) ? maxv : minv;
  assign y = (op < 2'd2) ? lo : hi;
  assign zero = y == 8'd0;
endmodule
"""

BUGGY = """
module alu(input [7:0] a, input [7:0] b, input [1:0] op,
           output [7:0] y, output zero);
  wire [7:0] sum  = a + b;
  wire [7:0] diff = a - b;
  wire [7:0] maxv = (a >= b) ? a : b;   // bug: >= instead of >
  wire [7:0] minv = (a > b)  ? b : a;
  wire [7:0] lo = (op == 2'd0) ? sum  : diff;
  wire [7:0] hi = (op == 2'd2) ? maxv : minv;
  assign y = (op < 2'd2) ? lo : hi;
  assign zero = y == 8'd1;              // bug: compares against 1
endmodule
"""


def main():
    original = parse_module(DESIGN)
    optimised = optimize(original)
    print(
        f"original: {len(original.nodes)} nodes; "
        f"optimised: {len(optimised.nodes)} nodes"
    )

    result = check_combinational_equivalence(
        original, optimised, config=HDPLL_SP
    )
    assert result.status is EquivalenceStatus.EQUIVALENT
    print("original == optimised: EQUIVALENT (proved by HDPLL+S+P)")

    buggy = parse_module(BUGGY)
    result = check_combinational_equivalence(original, buggy, config=HDPLL_SP)
    assert result.status is EquivalenceStatus.DIFFERENT
    model = result.counterexample
    print(
        "original vs buggy: DIFFERENT — distinguishing input "
        f"a={model['a']}, b={model['b']}, op={model['op']}"
    )
    def outputs_of(circuit, prefix):
        return {
            alias: model[f"{prefix}{circuit.outputs[alias].name}"]
            for alias in circuit.outputs
        }

    left = outputs_of(original, "l::")
    right = outputs_of(buggy, "r::")
    print(f"  original output: y={left['y']}, zero={left['zero']}")
    print(f"  buggy output   : y={right['y']}, zero={right['zero']}")


if __name__ == "__main__":
    main()
