#!/usr/bin/env python
"""End-to-end HDL workflow: parse, check, prove, export.

A watchdog timer is written in the Verilog-subset frontend, then driven
through the full verification stack:

1. parse the module into the netlist IR,
2. BMC: can the watchdog ever fire while petting is continuous?
3. BMC: find the minimal firing scenario when petting stops,
4. k-induction: prove the counter invariant for every bound,
5. export one query as SMT-LIB2 for external cross-checking.

Run:  python examples/hdl_workflow.py
"""

from repro.bmc import (
    InductionStatus,
    SafetyProperty,
    make_bmc_instance,
    prove_by_induction,
)
from repro.core import HDPLL_SP, solve_circuit
from repro.export import to_smtlib2
from repro.rtl import parse_module

WATCHDOG = """
module watchdog(input clk, input pet, output fired, output ok);
  reg [3:0] count = 0;
  wire expired = count >= 4'd10;
  wire [3:0] bumped = count + 4'd1;
  always @(posedge clk)
    count <= pet ? 4'd0 : (expired ? count : bumped);
  assign fired = expired;
  assign ok = count <= 4'd10;
endmodule
"""


def main():
    circuit = parse_module(WATCHDOG)
    stats = circuit.stats()
    print(
        f"parsed watchdog: {stats.arith_ops} arith ops, "
        f"{stats.bool_ops} bool ops, {stats.registers} register(s)"
    )

    # 1. With continuous petting the watchdog can never fire.
    bound = 15
    instance = make_bmc_instance(
        circuit, SafetyProperty("fire", "fired", ""), bound
    )
    # 'fired' is a bad-state flag: SafetyProperty asks it to stay 1, so
    # query directly: fired at the last frame AND pet high every cycle.
    assumptions = {f"fired@{bound - 1}": 1}
    assumptions.update({f"pet@{t}": 1 for t in range(bound)})
    result = solve_circuit(instance.circuit, assumptions, HDPLL_SP)
    print(f"fires under continuous petting? {result.status.value}  (expected unsat)")
    assert result.is_unsat

    # 2. Without that constraint, the earliest firing is at frame 10.
    for frames in (10, 11):
        instance = make_bmc_instance(
            circuit, SafetyProperty("fire", "fired", ""), frames
        )
        result = solve_circuit(
            instance.circuit, {f"fired@{frames - 1}": 1}, HDPLL_SP
        )
        print(f"can fire at frame {frames - 1}? {result.status.value}")
    assert result.is_sat  # frame 10 (bound 11)

    # 3. The counter invariant holds at every depth.
    outcome = prove_by_induction(
        circuit,
        SafetyProperty("inv", "ok", "count <= 10"),
        max_k=4,
        config=HDPLL_SP,
    )
    assert outcome.status is InductionStatus.PROVED
    print(f"count <= 10 proved for every bound (k = {outcome.k})")

    # 4. Export the firing query for an external bit-vector solver.
    instance = make_bmc_instance(
        circuit, SafetyProperty("fire", "fired", ""), 11
    )
    script = to_smtlib2(instance.circuit, {"fired@10": 1})
    print(
        f"SMT-LIB2 export: {script.count(chr(10))} lines, "
        f"{script.count('declare-const')} constants "
        f"(run through z3/cvc5 to cross-check)"
    )


if __name__ == "__main__":
    main()
