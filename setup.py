"""Legacy setup shim: metadata lives in pyproject.toml.

Extras are declared there too — ``pip install .[fast]`` pulls NumPy
for the vectorized propagation engine.
"""

from setuptools import setup

setup()
