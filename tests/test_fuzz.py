"""Hypothesis fuzzing across module boundaries.

These tests chain several subsystems per example: generator -> netlist
IO round trip -> optimiser -> simulator/solver cross-checks.  They are
the suite's broad-spectrum regression net.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HDPLL_SP, Status, solve_circuit
from repro.bmc import make_bmc_instance
from repro.itc99 import (
    random_combinational_circuit,
    random_safety_property,
    random_sequential_circuit,
)
from repro.rtl import (
    SequentialSimulator,
    load,
    optimize,
    save,
    simulate_combinational,
)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_netlist_roundtrip_preserves_behaviour(seed):
    circuit = random_combinational_circuit(seed, operations=10)
    restored = load(save(circuit))
    rng = random.Random(seed)
    for _ in range(5):
        stimulus = {
            net.name: rng.randint(0, net.max_value)
            for net in circuit.inputs
        }
        original_values = simulate_combinational(circuit, stimulus)
        restored_values = simulate_combinational(restored, stimulus)
        for alias in circuit.outputs:
            assert original_values[alias] == restored_values[alias]


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_optimize_then_roundtrip(seed):
    circuit = random_combinational_circuit(seed, operations=10)
    rebuilt = load(save(optimize(circuit)))
    rng = random.Random(seed ^ 0xBEEF)
    for _ in range(5):
        stimulus = {
            net.name: rng.randint(0, net.max_value)
            for net in circuit.inputs
        }
        assert (
            simulate_combinational(circuit, stimulus)["word"]
            == simulate_combinational(rebuilt, stimulus)["word"]
        )


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10_000), st.integers(2, 4))
def test_sequential_roundtrip_and_unroll(seed, bound):
    circuit = random_sequential_circuit(seed, width=3, operations=6)
    restored = load(save(circuit))
    rng = random.Random(seed)
    sim_a = SequentialSimulator(circuit)
    sim_b = SequentialSimulator(restored)
    for _ in range(bound * 2):
        stimulus = {"ctl": rng.randint(0, 1), "data": rng.randint(0, 7)}
        va = sim_a.step(stimulus)
        vb = sim_b.step(stimulus)
        assert va["ok"] == vb["ok"]
        assert va["probe"] == vb["probe"]


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_solver_answers_survive_optimisation(seed):
    """solve(C) and solve(optimize(C)) must agree on BMC instances."""
    circuit = random_sequential_circuit(seed, width=3, operations=6)
    prop = random_safety_property()
    original = make_bmc_instance(circuit, prop, 3)
    optimised = make_bmc_instance(optimize(circuit), prop, 3)
    first = solve_circuit(
        original.circuit, original.assumptions, HDPLL_SP.with_overrides(timeout=60)
    )
    second = solve_circuit(
        optimised.circuit,
        optimised.assumptions,
        HDPLL_SP.with_overrides(timeout=60),
    )
    assert first.status is not Status.UNKNOWN
    assert first.status == second.status
