"""Tests for RTL-RTL equivalence checking (the paper's Section 6 scenario)."""

import pytest

from repro.errors import CircuitError
from repro.core import HDPLL_SP, SolverConfig
from repro.equivalence import (
    EquivalenceStatus,
    build_miter,
    check_combinational_equivalence,
    check_sequential_equivalence,
)
from repro.itc99 import circuit as itc_circuit
from repro.itc99 import random_combinational_circuit
from repro.rtl import CircuitBuilder, simulate_combinational
from repro.rtl.optimize import optimize


def _adder_v1():
    b = CircuitBuilder("v1")
    a = b.input("a", 4)
    c = b.input("c", 4)
    b.output("sum", b.add(a, c))
    return b.build()


def _adder_v2():
    # Same function, different structure: a + c == c + a + 0.
    b = CircuitBuilder("v2")
    a = b.input("a", 4)
    c = b.input("c", 4)
    b.output("sum", b.add(b.add(c, a), 0))
    return b.build()


def _adder_broken():
    b = CircuitBuilder("broken")
    a = b.input("a", 4)
    c = b.input("c", 4)
    # Off-by-one for a specific corner: a + c except when a == 15.
    is_corner = b.eq(a, 15)
    correct = b.add(a, c)
    wrong = b.add(correct, 1)
    b.output("sum", b.mux(is_corner, wrong, correct))
    return b.build()


class TestMiter:
    def test_structure(self):
        miter = build_miter(_adder_v1(), _adder_v2())
        assert "mismatch" in miter.outputs
        assert "equal" in miter.outputs
        assert len(miter.inputs) == 2  # shared

    def test_miter_behaviour(self):
        miter = build_miter(_adder_v1(), _adder_broken())
        same = simulate_combinational(miter, {"a": 3, "c": 4})
        assert same["mismatch"] == 0
        differ = simulate_combinational(miter, {"a": 15, "c": 0})
        assert differ["mismatch"] == 1

    def test_interface_mismatch_rejected(self):
        b = CircuitBuilder("other")
        b.output("sum", b.input("x", 4))
        with pytest.raises(CircuitError):
            build_miter(_adder_v1(), b.build())

    def test_missing_output_rejected(self):
        b = CircuitBuilder("other")
        a = b.input("a", 4)
        c = b.input("c", 4)
        b.output("different_name", b.add(a, c))
        with pytest.raises(CircuitError):
            build_miter(_adder_v1(), b.build())


class TestCombinational:
    def test_equivalent_versions(self):
        result = check_combinational_equivalence(_adder_v1(), _adder_v2())
        assert result.status is EquivalenceStatus.EQUIVALENT

    def test_broken_version_found(self):
        result = check_combinational_equivalence(_adder_v1(), _adder_broken())
        assert result.status is EquivalenceStatus.DIFFERENT
        model = result.counterexample
        assert model is not None
        assert model["a"] == 15  # the injected corner

    def test_sequential_circuit_rejected(self):
        with pytest.raises(CircuitError):
            check_combinational_equivalence(
                itc_circuit("b01"), itc_circuit("b01")
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_optimizer_verified_on_random_circuits(self, seed):
        original = random_combinational_circuit(seed, operations=10)
        result = check_combinational_equivalence(
            original, optimize(original), config=HDPLL_SP
        )
        assert result.status is EquivalenceStatus.EQUIVALENT

    def test_predicate_learning_on_duplicated_datapath(self):
        """Section 6's scenario: the miter duplicates every predicate;
        static learning still runs and the answer is unchanged."""
        original = random_combinational_circuit(11, operations=10)
        rewritten = optimize(original)
        plain = check_combinational_equivalence(
            original, rewritten, config=SolverConfig()
        )
        learned = check_combinational_equivalence(
            original, rewritten, config=HDPLL_SP
        )
        assert plain.status is EquivalenceStatus.EQUIVALENT
        assert learned.status is EquivalenceStatus.EQUIVALENT


class TestSequential:
    def test_optimised_b02_equivalent_unbounded(self):
        original = itc_circuit("b02")
        result = check_sequential_equivalence(
            original,
            optimize(original),
            outputs=["state_out", "ok_p1"],
            config=HDPLL_SP,
            max_k=4,
        )
        assert result.status is EquivalenceStatus.EQUIVALENT

    def test_bounded_check_on_b13(self):
        original = itc_circuit("b13")
        result = check_sequential_equivalence(
            original,
            optimize(original),
            outputs=["state_out", "cnt_out", "shreg_out"],
            config=HDPLL_SP,
            bound=5,
        )
        # Bounded agreement is reported as UNDECIDED (no proof), never
        # DIFFERENT.
        assert result.status is EquivalenceStatus.UNDECIDED
        assert "no mismatch" in result.note

    def test_divergent_machines_caught(self):
        def counter(step):
            b = CircuitBuilder(f"ctr{step}")
            enable = b.input("enable", 1)
            count = b.register("count", 4, init=0)
            b.next_state(
                count, b.mux(enable, b.add(count, step), count)
            )
            b.output("count_out", count)
            return b.build()

        result = check_sequential_equivalence(
            counter(1), counter(2), outputs=["count_out"], bound=4
        )
        assert result.status is EquivalenceStatus.DIFFERENT
        assert result.k == 2  # differ one cycle after an enabled step
