"""Behavioural tests of the ITC'99-style circuit models."""

import pytest

from repro.errors import CircuitError
from repro.itc99 import available_cases, circuit, instance
from repro.rtl import SequentialSimulator


class TestRegistry:
    def test_available_cases(self):
        cases = available_cases()
        assert "b01_1" in cases
        assert "b13_5" in cases
        assert "b13_40" in cases

    def test_unknown_circuit(self):
        with pytest.raises(CircuitError):
            instance("b99_1", 10)

    def test_unknown_property(self):
        with pytest.raises(CircuitError):
            instance("b01_9", 10)

    def test_bad_name(self):
        with pytest.raises(CircuitError):
            instance("b01", 10)

    def test_circuit_cached(self):
        assert circuit("b01") is circuit("b01")

    def test_instance_names(self):
        assert instance("b13_5", 20).name == "b13_5(20)"


class TestB01Behaviour:
    def test_counter_wraps_mod8(self):
        sim = SequentialSimulator(circuit("b01"))
        for t in range(20):
            values = sim.step({"a": 0, "flow": 1})
            assert values["cnt_out"] == t % 8

    def test_violation_trace(self):
        # Drive matching flows; at a frame with cnt == 1 and t >= 8 the
        # accumulator is far past 9, so ok_p1 must drop.
        sim = SequentialSimulator(circuit("b01"))
        for t in range(10):
            values = sim.step({"a": 1, "flow": 1})
        assert values["cnt_out"] == 1
        assert values["ok_p1"] == 0

    def test_no_violation_when_flows_differ(self):
        sim = SequentialSimulator(circuit("b01"))
        for t in range(32):
            values = sim.step({"a": t % 2, "flow": (t + 1) % 2})
            assert values["ok_p1"] == 1


class TestB02Behaviour:
    def test_state_never_reaches_seven(self):
        sim = SequentialSimulator(circuit("b02"))
        import random

        rng = random.Random(0)
        for _ in range(200):
            values = sim.step({"char": rng.randint(0, 1)})
            assert values["state_out"] != 7
            assert values["ok_p1"] == 1

    def test_advance_and_wrap(self):
        sim = SequentialSimulator(circuit("b02"))
        states = [sim.step({"char": 1})["state_out"] for _ in range(9)]
        assert states == [0, 1, 2, 3, 4, 5, 6, 0, 1]


class TestB04Behaviour:
    def test_min_max_tracking(self):
        sim = SequentialSimulator(circuit("b04"))
        sim.step({"data": 100, "enable": 1})
        values = sim.step({"data": 20, "enable": 1})
        assert values["rmax_out"] == 100
        assert values["rmin_out"] == 100
        values = sim.step({"data": 0, "enable": 0})
        assert values["rmax_out"] == 100
        assert values["rmin_out"] == 20

    def test_violation_with_wide_spread(self):
        sim = SequentialSimulator(circuit("b04"))
        sim.step({"data": 255, "enable": 1})
        sim.step({"data": 0, "enable": 1})
        values = sim.step({"data": 5, "enable": 0})
        assert values["ok_p1"] == 0

    def test_no_violation_with_narrow_stream(self):
        sim = SequentialSimulator(circuit("b04"))
        for value in (100, 120, 90, 110) * 5:
            values = sim.step({"data": value, "enable": 1})
            assert values["ok_p1"] == 1


class TestB13Behaviour:
    def test_transmit_sequence(self):
        sim = SequentialSimulator(circuit("b13"))
        values = sim.step({"start": 1, "din": 0b10110001})  # idle -> load
        assert values["state_out"] == 0
        values = sim.step({"start": 0, "din": 0b10110001})  # load -> tx
        assert values["state_out"] == 1
        # Transmit: 8 counted shifts, then done and back to idle.
        for _ in range(20):
            values = sim.step({"start": 0, "din": 0})
            assert values["cnt_out"] <= 8
            assert values["ok_p1"] == 1
            assert values["ok_p2"] == 1
            assert values["ok_p3"] == 1
            assert values["ok_p5"] == 1
            assert values["ok_p8"] == 1

    def test_shift_register_loads_and_shifts(self):
        sim = SequentialSimulator(circuit("b13"))
        sim.step({"start": 1, "din": 0})
        sim.step({"start": 0, "din": 128})  # load happens this cycle
        values = sim.step({"start": 0, "din": 0})
        assert values["shreg_out"] == 128
        values = sim.step({"start": 0, "din": 0})
        assert values["shreg_out"] == 64  # shifted right once in tx

    def test_idle_counter_reaches_twelve(self):
        sim = SequentialSimulator(circuit("b13"))
        values = None
        for _ in range(13):
            values = sim.step({"start": 0, "din": 0})
        assert values["ok_p40"] == 0  # idle_cnt == 12 at frame 12

    def test_invariants_hold_under_random_stimulus(self):
        import random

        rng = random.Random(7)
        sim = SequentialSimulator(circuit("b13"))
        for _ in range(300):
            values = sim.step(
                {"start": rng.randint(0, 1), "din": rng.randint(0, 255)}
            )
            for prop in ("ok_p1", "ok_p2", "ok_p3", "ok_p5", "ok_p8"):
                assert values[prop] == 1, prop


class TestStats:
    def test_operator_census_grows_linearly_with_bound(self):
        small = instance("b13_1", 5).circuit.stats()
        large = instance("b13_1", 10).circuit.stats()
        assert large.arith_ops == pytest.approx(2 * small.arith_ops, rel=0.2)
        assert large.bool_ops == pytest.approx(2 * small.bool_ops, rel=0.2)

    def test_bitwidths_in_paper_range(self):
        for name in ("b01", "b02", "b04", "b13"):
            widths = {net.width for net in circuit(name).nets}
            assert max(widths) <= 10
            assert min(widths) == 1
