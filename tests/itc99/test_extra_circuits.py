"""Tests for the extension benchmark circuits b03 and b06."""

import random

import pytest

from repro.core import HDPLL_SP, Status, solve_circuit
from repro.itc99 import circuit, instance
from repro.rtl import SequentialSimulator


class TestB03Behaviour:
    def test_grant_acquire_and_release(self):
        sim = SequentialSimulator(circuit("b03"))
        values = sim.step({"request": 0b0100})
        assert values["granted_out"] == 0
        values = sim.step({"request": 0})
        assert values["granted_out"] == 1
        assert values["owner_out"] == 2  # line 2 was the lowest requester
        # The grant is held for the timer window, then released.
        held = 0
        for _ in range(12):
            values = sim.step({"request": 0})
            if values["granted_out"]:
                held += 1
            assert values["timer_out"] <= 6
        assert 5 <= held <= 7

    def test_priority_encoder(self):
        sim = SequentialSimulator(circuit("b03"))
        sim.step({"request": 0b1010})
        values = sim.step({"request": 0})
        assert values["owner_out"] == 1  # bit 1 beats bit 3

    def test_invariants_random(self):
        rng = random.Random(5)
        sim = SequentialSimulator(circuit("b03"))
        for _ in range(300):
            values = sim.step({"request": rng.randint(0, 15)})
            assert values["ok_p1"] == 1
            assert values["ok_p2"] == 1


class TestB06Behaviour:
    def test_interrupt_sequence(self):
        sim = SequentialSimulator(circuit("b06"))
        values = sim.step({"irq": 1})           # idle -> ack
        assert values["state_out"] == 0
        values = sim.step({"irq": 0})           # ack -> service
        assert values["state_out"] == 1
        values = sim.step({"irq": 0})           # service, nesting 0 -> drain
        assert values["state_out"] == 2
        values = sim.step({"irq": 0})           # drain -> idle
        assert values["state_out"] == 3
        values = sim.step({"irq": 0})
        assert values["state_out"] == 0

    def test_nesting_bounded_random(self):
        rng = random.Random(11)
        sim = SequentialSimulator(circuit("b06"))
        for _ in range(400):
            values = sim.step({"irq": rng.randint(0, 1)})
            assert values["nesting_out"] <= 5
            assert values["ok_p1"] == 1
            assert values["ok_p2"] == 1

    def test_urgent_reachable_by_flooding(self):
        sim = SequentialSimulator(circuit("b06"))
        values = None
        for _ in range(12):
            values = sim.step({"irq": 1})
        assert values["ok_p40"] == 0


class TestSolving:
    @pytest.mark.parametrize(
        "case, bound, expected_sat",
        [
            ("b03_1", 12, False),
            ("b03_2", 12, False),
            ("b03_40", 8, True),
            ("b03_40", 7, False),
            ("b06_1", 10, False),
            ("b06_2", 10, False),
            ("b06_40", 10, False),
            ("b06_40", 11, True),
        ],
    )
    def test_expected_results(self, case, bound, expected_sat):
        inst = instance(case, bound)
        result = solve_circuit(
            inst.circuit, inst.assumptions, HDPLL_SP.with_overrides(timeout=120)
        )
        assert result.status is not Status.UNKNOWN
        assert result.is_sat == expected_sat, (case, bound)

    def test_counterexample_replays(self):
        from repro.bmc import input_trace_from_model

        inst = instance("b03_40", 8)
        result = solve_circuit(inst.circuit, inst.assumptions, HDPLL_SP)
        assert result.is_sat
        trace = input_trace_from_model(circuit("b03"), result.model, 8)
        sim = SequentialSimulator(circuit("b03"))
        values = [sim.step(frame) for frame in trace]
        assert values[-1]["ok_p40"] == 0
