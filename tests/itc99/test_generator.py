"""Tests for the parametric workload generators (the solver oracle mill)."""

import pytest

from repro.bmc import make_bmc_instance
from repro.core import HDPLL_SP, Status, solve_circuit
from repro.itc99 import (
    random_combinational_circuit,
    random_safety_property,
    random_sequential_circuit,
)
from repro.rtl import SequentialSimulator, simulate_combinational


def test_combinational_generator_is_deterministic():
    from repro.rtl import save

    a = random_combinational_circuit(42)
    b = random_combinational_circuit(42)
    assert save(a) == save(b)


def test_combinational_generator_validates():
    for seed in range(5):
        circuit = random_combinational_circuit(seed)
        circuit.validate()
        assert "flag" in circuit.outputs
        assert "word" in circuit.outputs


def test_sequential_generator_validates_and_simulates():
    import random

    for seed in range(5):
        circuit = random_sequential_circuit(seed)
        circuit.validate()
        sim = SequentialSimulator(circuit)
        rng = random.Random(seed)
        for _ in range(10):
            values = sim.step(
                {
                    "ctl": rng.randint(0, 1),
                    "data": rng.randint(0, 2 ** circuit.inputs[1].width - 1),
                }
            )
            assert values["ok"] in (0, 1)


@pytest.mark.parametrize("seed", range(6))
def test_generated_bmc_instances_solve_and_verify(seed):
    """BMC over generated circuits: solver answers replay on the
    simulator (SAT) or agree with bounded exhaustive search (small)."""
    circuit = random_sequential_circuit(seed, width=3, operations=6)
    prop = random_safety_property()
    bound = 4
    inst = make_bmc_instance(circuit, prop, bound)
    result = solve_circuit(
        inst.circuit, inst.assumptions, HDPLL_SP.with_overrides(timeout=60)
    )
    assert result.status is not Status.UNKNOWN

    # Exhaustive bounded check over all input traces (2 inputs, tiny).
    import itertools

    ctl_width = 1
    data_width = 3
    expected = False
    for trace_bits in itertools.product(
        range(2 ** (ctl_width + data_width)), repeat=bound
    ):
        sim = SequentialSimulator(circuit)
        values = None
        for packed in trace_bits:
            values = sim.step(
                {"ctl": packed & 1, "data": (packed >> 1) & 7}
            )
        if values["ok"] == 0:
            expected = True
            break
    assert result.is_sat == expected
