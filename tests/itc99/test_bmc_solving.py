"""End-to-end BMC solving: the paper's S/U pattern at tractable bounds.

These are the integration tests behind Tables 1 and 2: every instance
family's satisfiability must match the paper's Rslt column (with the
bound-dependence of b01_1 checked explicitly), every configuration must
agree, and every SAT answer must replay on the sequential simulator.
"""

import pytest

from repro.bmc import input_trace_from_model
from repro.core import (
    HDPLL_BASE,
    HDPLL_P,
    HDPLL_S,
    HDPLL_SP,
    SolverConfig,
    Status,
    solve_circuit,
)
from repro.itc99 import circuit, instance
from repro.rtl import SequentialSimulator

CONFIGS = {
    "base": HDPLL_BASE,
    "+P": HDPLL_P,
    "+S": HDPLL_S,
    "+S+P": HDPLL_SP,
}

# (case, bound) -> expected satisfiability, at bounds every config
# handles comfortably.  The pattern mirrors the paper's tables:
# b01_1 flips with the bound, b02/b13 invariants are UNSAT, b04_1 is
# SAT, b13_40(13) is SAT.
EXPECTED = {
    ("b01_1", 10): True,
    ("b01_1", 20): False,
    ("b02_1", 10): False,
    ("b02_1", 20): False,
    ("b04_1", 10): True,
    ("b04_1", 20): True,
    ("b13_1", 15): False,
    ("b13_2", 15): False,
    ("b13_3", 15): False,
    ("b13_5", 15): False,
    ("b13_8", 15): False,
    ("b13_40", 13): True,
}

#: Configurations fast enough for each instance in CI; base/P time out
#: on b04 (the paper's own Table 2 pattern), so only the structural
#: configurations get the SAT b04 rows.
FAST_CONFIGS = {
    ("b04_1", 10): ["+S", "+S+P"],
    ("b04_1", 20): ["+S", "+S+P"],
}


@pytest.mark.parametrize("case_bound", sorted(EXPECTED))
def test_su_pattern_all_configs(case_bound):
    case, bound = case_bound
    expected_sat = EXPECTED[case_bound]
    inst = instance(case, bound)
    config_names = FAST_CONFIGS.get(case_bound, list(CONFIGS))
    for name in config_names:
        config = CONFIGS[name].with_overrides(timeout=120)
        result = solve_circuit(inst.circuit, inst.assumptions, config)
        assert result.status is not Status.UNKNOWN, (case, bound, name)
        assert result.is_sat == expected_sat, (case, bound, name)


@pytest.mark.parametrize(
    "case, bound",
    [("b01_1", 10), ("b04_1", 10), ("b13_40", 13)],
)
def test_sat_counterexamples_replay(case, bound):
    inst = instance(case, bound)
    result = solve_circuit(inst.circuit, inst.assumptions, HDPLL_SP)
    assert result.is_sat
    sequential = circuit(case.split("_")[0])
    trace = input_trace_from_model(sequential, result.model, bound)
    sim = SequentialSimulator(sequential)
    values = [sim.step(frame) for frame in trace]
    assert values[-1][inst.prop.ok_signal] == 0


def test_b01_bound_dependence():
    """The paper's bound-flip: SAT exactly when the counter arms.

    The accumulator needs ~9 frames to pass its threshold, so bound 2 is
    UNSAT even though the counter is at the armed value.
    """
    for bound in (2, 10, 18, 20, 26):
        inst = instance("b01_1", bound)
        result = solve_circuit(inst.circuit, inst.assumptions, HDPLL_SP)
        expected = (bound - 1) % 8 == 1 and bound >= 10
        assert result.is_sat == expected, bound


def test_predicate_learning_proves_b02_without_search():
    inst = instance("b02_1", 30)
    result = solve_circuit(
        inst.circuit, inst.assumptions, HDPLL_P.with_overrides(timeout=60)
    )
    assert result.is_unsat
    assert result.stats.conflicts == 0  # learning + propagation suffice
    assert result.stats.learned_relations > 0


def test_structural_solves_b04_without_search():
    inst = instance("b04_1", 20)
    result = solve_circuit(
        inst.circuit, inst.assumptions, HDPLL_S.with_overrides(timeout=60)
    )
    assert result.is_sat
    assert result.stats.structural_decisions > 0
    assert result.stats.conflicts <= 5


def test_unsat_instances_agree_with_bitblasting():
    from repro.baselines import solve_by_bitblasting

    inst = instance("b13_8", 8)
    blast_sat, _, _ = solve_by_bitblasting(inst.circuit, inst.assumptions)
    hdpll = solve_circuit(inst.circuit, inst.assumptions, HDPLL_SP)
    assert blast_sat is False
    assert hdpll.is_unsat


def test_sat_instance_agrees_with_bitblasting():
    from repro.baselines import solve_by_bitblasting

    inst = instance("b01_1", 10)
    blast_sat, _, _ = solve_by_bitblasting(inst.circuit, inst.assumptions)
    hdpll = solve_circuit(inst.circuit, inst.assumptions, HDPLL_BASE)
    assert blast_sat is True
    assert hdpll.is_sat
