"""Tests for linear constraint normalisation and substitution."""

from repro.fme import LinearConstraint, bounds_to_constraints


class TestConstruction:
    def test_zero_coeffs_dropped(self):
        c = LinearConstraint.le({1: 0, 2: 3}, 5)
        assert c.variables() == (2,)

    def test_coeff_of(self):
        c = LinearConstraint.le({1: 2, 3: -4}, 5)
        assert c.coeff_of(1) == 2
        assert c.coeff_of(3) == -4
        assert c.coeff_of(9) == 0

    def test_trivial(self):
        assert LinearConstraint.le({}, 0).trivially_true
        assert LinearConstraint.le({}, -1).trivially_false
        assert LinearConstraint.eq({}, 0).trivially_true
        assert LinearConstraint.eq({}, 1).trivially_false
        assert not LinearConstraint.le({1: 1}, 0).is_trivial

    def test_evaluate(self):
        le = LinearConstraint.le({1: 2, 2: -1}, 3)
        assert le.evaluate({1: 1, 2: 0})
        assert le.evaluate({1: 2, 2: 1})
        assert not le.evaluate({1: 3, 2: 0})
        eq = LinearConstraint.eq({1: 1}, 4)
        assert eq.evaluate({1: 4})
        assert not eq.evaluate({1: 5})


class TestNormalisation:
    def test_le_floors_constant(self):
        c = LinearConstraint.le({1: 2, 2: 4}, 7).normalized()
        assert c.coeffs == ((1, 1), (2, 2))
        assert c.constant == 3  # floor(7/2)

    def test_eq_divisibility(self):
        ok = LinearConstraint.eq({1: 2, 2: 4}, 6).normalized()
        assert ok.constant == 3
        bad = LinearConstraint.eq({1: 2, 2: 4}, 7).normalized()
        assert bad is None

    def test_gcd_one_unchanged(self):
        c = LinearConstraint.le({1: 2, 2: 3}, 7)
        assert c.normalized() is c

    def test_negative_coefficients(self):
        c = LinearConstraint.le({1: -2, 2: -4}, -7).normalized()
        assert c.constant == -4  # floor(-7/2)


class TestSubstitution:
    def test_value_substitution(self):
        c = LinearConstraint.le({1: 2, 2: 3}, 10)
        s = c.substitute(1, 2)
        assert s.variables() == (2,)
        assert s.constant == 6

    def test_value_substitution_absent_var(self):
        c = LinearConstraint.le({2: 3}, 10)
        assert c.substitute(1, 99) is c

    def test_expr_substitution(self):
        # x1 := x3 - 2 in (2*x1 + x2 <= 10) => 2*x3 + x2 <= 14
        c = LinearConstraint.le({1: 2, 2: 1}, 10)
        s = c.substitute_expr(1, {3: 1}, -2)
        assert dict(s.coeffs) == {2: 1, 3: 2}
        assert s.constant == 14

    def test_expr_substitution_merges_coefficients(self):
        # x1 := x2 + 1 in (x1 - x2 <= 0) => 0 <= -1 (trivially false).
        c = LinearConstraint.le({1: 1, 2: -1}, 0)
        s = c.substitute_expr(1, {2: 1}, 1)
        assert s.is_trivial
        assert s.trivially_false


def test_bounds_to_constraints():
    constraints = list(bounds_to_constraints({1: (2, 5)}))
    assert len(constraints) == 2
    assert all(c.evaluate({1: v}) for c in constraints for v in (2, 3, 5))
    assert not all(c.evaluate({1: 6}) for c in constraints)
    assert not all(c.evaluate({1: 1}) for c in constraints)
