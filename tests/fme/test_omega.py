"""Tests for FME and the Omega-style integer feasibility solver.

The load-bearing test is the brute-force cross-check: on random small
systems the solver must agree exactly with exhaustive enumeration.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fme import (
    LinearConstraint,
    OmegaSolver,
    dark_shadow_feasible,
    eliminate_variable,
    rational_feasible,
    variable_bounds_after_projection,
)


def brute_force(constraints, bounds):
    names = sorted(bounds)
    for point in itertools.product(
        *(range(bounds[v][0], bounds[v][1] + 1) for v in names)
    ):
        assignment = dict(zip(names, point))
        if all(c.evaluate(assignment) for c in constraints):
            return assignment
    return None


class TestEliminateVariable:
    def test_simple_projection(self):
        # x0 <= x1, x1 <= 5  project x1  =>  x0 <= 5
        constraints = [
            LinearConstraint.le({0: 1, 1: -1}, 0),
            LinearConstraint.le({1: 1}, 5),
        ]
        projected = eliminate_variable(constraints, 1)
        assert projected == [LinearConstraint.le({0: 1}, 5)]

    def test_contradiction_detected(self):
        # 3 <= x0 and x0 <= 2.
        constraints = [
            LinearConstraint.le({0: -1}, -3),
            LinearConstraint.le({0: 1}, 2),
        ]
        assert eliminate_variable(constraints, 0) is None

    def test_untouched_constraints_kept(self):
        constraints = [
            LinearConstraint.le({0: 1}, 5),
            LinearConstraint.le({1: 1}, 3),
        ]
        projected = eliminate_variable(constraints, 1)
        assert LinearConstraint.le({0: 1}, 5) in projected


class TestRationalFeasible:
    def test_feasible(self):
        assert rational_feasible(
            [
                LinearConstraint.le({0: 1, 1: 1}, 10),
                LinearConstraint.le({0: -1}, 0),
                LinearConstraint.le({1: -1}, 0),
            ]
        )

    def test_infeasible(self):
        assert not rational_feasible(
            [
                LinearConstraint.le({0: 1}, 2),
                LinearConstraint.le({0: -1}, -3),
            ]
        )

    def test_rationally_feasible_integrally_infeasible(self):
        # 2x == 1 as two inequalities: rational point x = 0.5 exists.
        assert rational_feasible(
            [
                LinearConstraint.le({0: 2}, 1),
                LinearConstraint.le({0: -2}, -1),
            ]
        )


class TestProjectionBounds:
    def test_bounds(self):
        # x0 + x1 <= 6, x1 >= 2  =>  x0 <= 4.
        constraints = [
            LinearConstraint.le({0: 1, 1: 1}, 6),
            LinearConstraint.le({1: -1}, -2),
        ]
        lo, hi = variable_bounds_after_projection(constraints, 0)
        assert hi == 4
        assert lo is None

    def test_infeasible_returns_none(self):
        constraints = [
            LinearConstraint.le({0: 1}, 1),
            LinearConstraint.le({0: -1}, -2),
        ]
        assert variable_bounds_after_projection(constraints, 0) is None


class TestOmegaSolver:
    def test_simple_witness(self):
        solver = OmegaSolver()
        witness = solver.solve(
            [LinearConstraint.eq({0: 1, 1: 1}, 7)],
            {0: (0, 15), 1: (0, 15)},
        )
        assert witness is not None
        assert witness[0] + witness[1] == 7

    def test_infeasible_equality(self):
        solver = OmegaSolver()
        assert (
            solver.solve(
                [LinearConstraint.eq({0: 2}, 5)],
                {0: (0, 15)},
            )
            is None
        )

    def test_bounds_make_it_infeasible(self):
        solver = OmegaSolver()
        assert (
            solver.solve(
                [LinearConstraint.eq({0: 1, 1: 1}, 20)],
                {0: (0, 7), 1: (0, 7)},
            )
            is None
        )

    def test_integrality_gap_detected(self):
        # 3x - 3y == 1 has rational solutions but no integer ones.
        solver = OmegaSolver()
        assert (
            solver.solve(
                [LinearConstraint.eq({0: 3, 1: -3}, 1)],
                {0: (0, 100), 1: (0, 100)},
            )
            is None
        )

    def test_non_unit_equality_solved(self):
        # 2x + 4y == 10 with tight bounds.
        solver = OmegaSolver()
        witness = solver.solve(
            [LinearConstraint.eq({0: 2, 1: 4}, 10)],
            {0: (0, 7), 1: (0, 7)},
        )
        assert witness is not None
        assert 2 * witness[0] + 4 * witness[1] == 10

    def test_chained_substitution(self):
        # Carry-style system: a + b == s + 8c, s == 3, c in {0,1}.
        solver = OmegaSolver()
        constraints = [
            LinearConstraint.eq({0: 1, 1: 1, 2: -1, 3: -8}, 0),
            LinearConstraint.eq({2: 1}, 3),
        ]
        witness = solver.solve(
            constraints, {0: (0, 7), 1: (0, 7), 2: (0, 7), 3: (0, 1)}
        )
        assert witness is not None
        assert witness[0] + witness[1] == witness[2] + 8 * witness[3]
        assert witness[2] == 3

    def test_unconstrained_vars_get_values(self):
        solver = OmegaSolver()
        witness = solver.solve([], {0: (3, 9)})
        assert witness == {0: 3}

    def test_feasible_shortcut(self):
        solver = OmegaSolver()
        assert solver.feasible(
            [LinearConstraint.le({0: 1}, 5)], {0: (0, 7)}
        )

    @pytest.mark.parametrize("seed", range(25))
    def test_against_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 4)
        bounds = {v: (0, rng.choice([3, 7, 15])) for v in range(num_vars)}
        constraints = []
        for _ in range(rng.randint(1, 5)):
            coeffs = {
                v: rng.randint(-3, 3)
                for v in range(num_vars)
                if rng.random() < 0.7
            }
            coeffs = {v: c for v, c in coeffs.items() if c != 0}
            if not coeffs:
                continue
            constant = rng.randint(-10, 20)
            equality = rng.random() < 0.4
            constraints.append(
                LinearConstraint.make(coeffs, constant, equality)
            )
        expected = brute_force(constraints, bounds)
        witness = OmegaSolver().solve(constraints, bounds)
        if expected is None:
            assert witness is None, (constraints, witness)
        else:
            assert witness is not None, (constraints, expected)
            for constraint in constraints:
                assert constraint.evaluate(witness)
            for var, (lo, hi) in bounds.items():
                assert lo <= witness[var] <= hi

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_against_brute_force_hypothesis(self, data):
        num_vars = data.draw(st.integers(2, 3))
        bounds = {v: (0, 7) for v in range(num_vars)}
        constraints = []
        for _ in range(data.draw(st.integers(1, 4))):
            coeffs = {}
            for v in range(num_vars):
                c = data.draw(st.integers(-2, 2))
                if c:
                    coeffs[v] = c
            if not coeffs:
                continue
            constraints.append(
                LinearConstraint.make(
                    coeffs,
                    data.draw(st.integers(-8, 15)),
                    data.draw(st.booleans()),
                )
            )
        expected = brute_force(constraints, bounds)
        witness = OmegaSolver().solve(constraints, bounds)
        assert (witness is not None) == (expected is not None)
        if witness is not None:
            assert all(c.evaluate(witness) for c in constraints)


class TestDarkShadow:
    def test_exact_system_true(self):
        result = dark_shadow_feasible(
            [
                LinearConstraint.le({0: 1}, 5),
                LinearConstraint.le({0: -1}, 0),
            ]
        )
        assert result is True

    def test_empty_real_shadow_false(self):
        result = dark_shadow_feasible(
            [
                LinearConstraint.le({0: 1}, 1),
                LinearConstraint.le({0: -1}, -2),
            ]
        )
        assert result is False

    def test_no_constraints(self):
        assert dark_shadow_feasible([]) is True


class TestDisequalities:
    def test_diseq_blocks_unique_point(self):
        solver = OmegaSolver()
        constraints = [LinearConstraint.eq({0: 1}, 4)]
        diseq = [LinearConstraint.eq({0: 1}, 4)]
        assert solver.solve(constraints, {0: (0, 7)}, diseq) is None

    def test_diseq_forces_other_point(self):
        solver = OmegaSolver()
        # x in <3, 4>, x != 3  =>  x == 4.
        constraints = [
            LinearConstraint.le({0: 1}, 4),
            LinearConstraint.le({0: -1}, -3),
        ]
        diseq = [LinearConstraint.eq({0: 1}, 3)]
        witness = solver.solve(constraints, {0: (0, 7)}, diseq)
        assert witness == {0: 4}

    def test_diseq_between_variables(self):
        solver = OmegaSolver()
        # x == y and x != y is unsatisfiable.
        constraints = [LinearConstraint.eq({0: 1, 1: -1}, 0)]
        diseq = [LinearConstraint.eq({0: 1, 1: -1}, 0)]
        assert solver.solve(constraints, {0: (0, 7), 1: (0, 7)}, diseq) is None

    def test_diseq_satisfiable_between_variables(self):
        solver = OmegaSolver()
        diseq = [LinearConstraint.eq({0: 1, 1: -1}, 0)]
        witness = solver.solve([], {0: (0, 1), 1: (0, 1)}, diseq)
        assert witness is not None
        assert witness[0] != witness[1]

    def test_diseq_with_gcd_always_true(self):
        solver = OmegaSolver()
        # 2x != 5 always holds over integers.
        diseq = [LinearConstraint.eq({0: 2}, 5)]
        witness = solver.solve([], {0: (0, 7)}, diseq)
        assert witness is not None

    def test_many_diseqs_narrow_range(self):
        solver = OmegaSolver()
        diseqs = [LinearConstraint.eq({0: 1}, v) for v in range(7)]
        witness = solver.solve([], {0: (0, 7)}, diseqs)
        assert witness == {0: 7}

    def test_all_values_excluded(self):
        solver = OmegaSolver()
        diseqs = [LinearConstraint.eq({0: 1}, v) for v in range(8)]
        assert solver.solve([], {0: (0, 7)}, diseqs) is None

    def test_diseq_interacts_with_equality_substitution(self):
        solver = OmegaSolver()
        # y == x + 1, y != 4  =>  x != 3.
        constraints = [LinearConstraint.eq({1: 1, 0: -1}, 1)]
        diseqs = [LinearConstraint.eq({1: 1}, 4)]
        witness = solver.solve(
            constraints, {0: (3, 3), 1: (0, 7)}, diseqs
        )
        assert witness is None
