"""Tests for the cross-process telemetry hub.

Covers the PR's acceptance points: deterministic shard merging with a
globally monotonic clock-aligned timeline, the clock-offset handshake,
the per-worker profiler drift gate, clause-flow pairing, metrics
aggregation/export (JSON + Prometheus), the live-status snapshot, and
two real multi-process runs — a portfolio pool with sharing and a
bench-pool worker hard-killed mid-solve whose flight dump must replay.
"""

import json

import pytest

import repro.obs.logging as obs_logging
from repro.harness.parallel import EngineTask, run_engine_tasks
from repro.obs import (
    PROFILE_DRIFT_TOLERANCE,
    TRACE_SCHEMA_VERSION,
    ResourceSampler,
    TelemetryHub,
    WorkerTelemetry,
    effective_level_spec,
    narrate,
    read_trace,
    validate_trace,
)
from repro.obs.telemetry import (
    clause_flows,
    collect_metrics,
    cube_lifecycle,
    format_report,
    format_top,
    merge_directory,
    merge_shards,
    parse_prometheus,
    render_prometheus,
    shard_paths,
    snapshot_status,
)


def _write_shard(directory, worker, offset, events, label=""):
    """A synthetic schema-v2 worker shard with a shard_begin head."""
    path = directory / f"worker-{worker}.trace.jsonl"
    head = {
        "t": 0.0, "ev": "shard_begin", "dl": 0, "seq": 0,
        "schema": TRACE_SCHEMA_VERSION, "worker": worker, "pid": 1,
        "offset": offset, "label": label,
    }
    with path.open("w", encoding="utf-8") as sink:
        for record in [head] + list(events):
            sink.write(json.dumps(record) + "\n")
    return path


def _restart(t, seq, n):
    return {"t": t, "ev": "restart", "dl": 0, "seq": seq,
            "n": n, "conflicts": n, "strategy": "luby"}


class TestMerge:
    def test_merge_aligns_clocks_and_orders_globally(self, tmp_path):
        # Worker a started 0.5s after the hub epoch, worker b 1.0s
        # after; local timestamps interleave only once aligned.
        _write_shard(tmp_path, "a", 0.5, [_restart(0.1, 1, 1),
                                          _restart(0.9, 2, 2)])
        _write_shard(tmp_path, "b", 1.0, [_restart(0.1, 1, 3)])
        timeline, summary = merge_shards(shard_paths(tmp_path))
        assert timeline[0]["ev"] == "timeline_begin"
        body = [e for e in timeline[1:] if e["ev"] == "restart"]
        assert [e["n"] for e in body] == [1, 3, 2]  # 0.6 < 1.1 < 1.4
        assert [e["gt"] for e in body] == [0.6, 1.1, 1.4]
        assert validate_trace(timeline) == []
        assert len(summary["workers"]) == 2

    def test_merge_is_deterministic_across_arrival_orders(self, tmp_path):
        shards = [("b", 0.2), ("a", 0.7), ("c", 0.0)]
        events = [_restart(0.1, 1, 1), _restart(0.2, 2, 2)]
        first = tmp_path / "first"
        second = tmp_path / "second"
        for directory, order in ((first, shards), (second, shards[::-1])):
            directory.mkdir()
            for worker, offset in order:
                _write_shard(directory, worker, offset, events)
        merged_first = merge_directory(first)
        merged_second = merge_directory(second)
        first_text = (first / "timeline.jsonl").read_text()
        second_text = (second / "timeline.jsonl").read_text()
        assert first_text == second_text
        assert merged_first["events"] == merged_second["events"]

    def test_equal_gt_ties_break_by_worker_then_seq(self, tmp_path):
        _write_shard(tmp_path, "z", 0.0, [_restart(0.5, 1, 1)])
        _write_shard(tmp_path, "a", 0.0, [_restart(0.5, 1, 2)])
        timeline, _ = merge_shards(shard_paths(tmp_path))
        body = [e for e in timeline[1:] if e["ev"] == "restart"]
        assert [e["w"] for e in body] == ["a", "z"]
        assert validate_trace(timeline) == []

    def test_v1_shard_without_seq_gets_positional_seq(self, tmp_path):
        path = tmp_path / "worker-old.trace.jsonl"
        with path.open("w") as sink:
            for t, n in ((0.1, 1), (0.2, 2)):
                sink.write(json.dumps(
                    {"t": t, "ev": "restart", "dl": 0,
                     "n": n, "conflicts": n, "strategy": "luby"}
                ) + "\n")
        timeline, summary = merge_shards(shard_paths(tmp_path))
        body = timeline[1:]
        assert [e["seq"] for e in body] == [0, 1]
        assert summary["workers"][0]["worker"] == "old"
        assert validate_trace(timeline) == []

    def test_torn_final_line_is_skipped_and_counted(self, tmp_path):
        path = _write_shard(tmp_path, "a", 0.0, [_restart(0.1, 1, 1)])
        with path.open("a", encoding="utf-8") as sink:
            sink.write('{"t":0.2,"ev":"resta')  # killed mid-write
        with path.open("ab") as sink:
            sink.write(b"\xe8\xff")  # and mid multi-byte sequence
        timeline, summary = merge_shards(shard_paths(tmp_path))
        assert summary["torn_lines"] == 1
        assert summary["workers"][0]["events"] == 2  # head + restart

    def test_per_worker_drift_gate_flags_bad_accounting(self, tmp_path):
        phases = [{"path": "search", "seconds": 2.0,
                   "self_seconds": 2.0, "count": 1}]
        events = [
            {"t": 0.1, "ev": "profile", "dl": 0, "seq": 1,
             "phases": phases},
            {"t": 0.2, "ev": "solve_end", "dl": 0, "seq": 2,
             "status": "unsat", "decisions": 1, "conflicts": 0,
             "solve_time": 1.0, "learn_time": 0.0},
        ]
        _write_shard(tmp_path, "a", 0.0, events)
        _, summary = merge_shards(shard_paths(tmp_path))
        assert len(summary["drift_errors"]) == 1
        assert "worker a" in summary["drift_errors"][0]
        # Within tolerance: no complaint.
        agree = dict(events[1])
        agree["solve_time"] = 2.0 * (1 - PROFILE_DRIFT_TOLERANCE / 2)
        other = tmp_path / "ok"
        other.mkdir()
        _write_shard(other, "b", 0.0, [events[0], agree])
        _, clean = merge_shards(shard_paths(other))
        assert clean["drift_errors"] == []


class TestClauseFlowsAndCubes:
    def test_export_install_pairs_into_flow_with_latency(self):
        merged = [
            {"ev": "share", "w": "p0", "gt": 1.0, "seq": 1,
             "action": "export", "clauses": 1, "keys": ["abcd1234"]},
            {"ev": "share", "w": "p1", "gt": 1.25, "seq": 1,
             "action": "install", "clauses": 1, "keys": ["abcd1234"]},
        ]
        flows = clause_flows(merged)
        assert len(flows) == 1
        flow = flows[0]
        assert flow["key"] == "abcd1234"
        assert flow["from"] == "p0"
        assert flow["imports"][0]["worker"] == "p1"
        assert flow["imports"][0]["latency"] == pytest.approx(0.25)

    def test_cube_lifecycle_spans_begin_to_outcome(self):
        merged = [
            {"ev": "cube", "w": "p0", "gt": 1.0, "seq": 1,
             "n": 3, "size": 2, "outcome": "begin"},
            {"ev": "cube", "w": "p0", "gt": 1.5, "seq": 2,
             "n": 3, "size": 2, "outcome": "unsat"},
        ]
        spans = cube_lifecycle(merged)
        assert len(spans) == 1
        assert spans[0]["outcome"] == "unsat"
        assert spans[0]["seconds"] == pytest.approx(0.5)


class TestMetricsExport:
    def _write_worker_metrics(self, directory, worker, metrics):
        path = directory / f"worker-{worker}.metrics.json"
        path.write_text(json.dumps(
            {"worker": worker, "label": "", "metrics": metrics}
        ))

    def test_aggregate_sums_counters_and_maxes_gauges(self, tmp_path):
        self._write_worker_metrics(tmp_path, "a",
                                   {"decisions": 10, "peak_rss_kb": 100.0})
        self._write_worker_metrics(tmp_path, "b",
                                   {"decisions": 5, "peak_rss_kb": 200.0})
        workers, aggregate = collect_metrics(tmp_path)
        assert set(workers) == {"a", "b"}
        assert aggregate["decisions"] == 15  # int -> counter -> sum
        assert aggregate["peak_rss_kb"] == 200.0  # float -> gauge -> max

    def test_prometheus_text_round_trips(self, tmp_path):
        self._write_worker_metrics(tmp_path, "a", {"decisions": 10})
        self._write_worker_metrics(tmp_path, "b", {"decisions": 5})
        workers, aggregate = collect_metrics(tmp_path)
        text = render_prometheus(workers, aggregate)
        assert text.endswith("# EOF\n")
        samples = parse_prometheus(text)
        assert samples[("repro_decisions", ())] == 15
        assert samples[("repro_decisions", (("worker", "a"),))] == 10

    def test_parse_prometheus_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("repro_decisions{ 10\n")


class TestWorkerTelemetry:
    def test_offset_handshake_and_shard_round_trip(self, tmp_path):
        hub = TelemetryHub(tmp_path, resources=False)
        config = hub.worker_config("t0000", label="unit")
        worker = WorkerTelemetry(config)
        worker.event("restart", n=1, conflicts=1, strategy="luby")
        assert worker.offset >= 0.0  # worker starts after the hub
        worker.close()
        events = read_trace(config.shard_path)
        assert events[0]["ev"] == "shard_begin"
        assert events[0]["offset"] == pytest.approx(worker.offset)
        assert events[-1]["ev"] == "shard_end"
        summary = hub.merge()
        timeline = read_trace(summary["timeline"])
        assert validate_trace(timeline) == []
        # gt reconstructs hub-relative wall order.
        body = [e for e in timeline[1:]]
        assert all(e["gt"] == pytest.approx(e["t"] + worker.offset,
                                            abs=1e-6)
                   for e in body)

    def test_metrics_ints_accumulate_floats_overwrite(self, tmp_path):
        hub = TelemetryHub(tmp_path, trace=False, resources=False)
        worker = WorkerTelemetry(hub.worker_config("t0000"))
        worker.record_metrics({"decisions": 3, "rate": 0.5, "skip": True})
        worker.record_metrics({"decisions": 4, "rate": 0.75})
        worker.close()
        payload = json.loads(
            (tmp_path / "worker-t0000.metrics.json").read_text()
        )
        assert payload["metrics"]["decisions"] == 7
        assert payload["metrics"]["rate"] == 0.75
        assert "skip" not in payload["metrics"]

    def test_resource_sampler_tracks_peaks(self):
        class Sink:
            def __init__(self):
                self.events = []

            def event(self, ev, dl=0, **fields):
                self.events.append((ev, fields))

        sink = Sink()
        sampler = ResourceSampler(sink, interval=10.0)
        sampler.sample_once()
        assert sampler.samples == 1
        assert sampler.peak_rss_kb > 0
        ev, fields = sink.events[0]
        assert ev == "resource"
        assert fields["rss_kb"] == sampler.peak_rss_kb


class TestLogLevelInheritance:
    def test_effective_spec_prefers_configured_over_env(self, monkeypatch):
        monkeypatch.setattr(obs_logging, "_configured_spec", None)
        monkeypatch.delenv(obs_logging.ENV_VAR, raising=False)
        assert effective_level_spec() is None
        monkeypatch.setenv(obs_logging.ENV_VAR, "warning")
        assert effective_level_spec() == "warning"
        monkeypatch.setattr(obs_logging, "_configured_spec", "debug")
        assert effective_level_spec() == "debug"


class TestMultiprocess:
    def test_bench_pool_merged_timeline_validates(self, tmp_path):
        hub = TelemetryHub(tmp_path)
        tasks = [
            EngineTask(case="b01_1", bound=5, engine="hdpll+sp",
                       timeout=60.0),
            EngineTask(case="b01_1", bound=8, engine="hdpll+sp",
                       timeout=60.0),
        ]
        records = run_engine_tasks(tasks, jobs=2, telemetry=hub)
        assert all(r.status in ("S", "U") for r in records)
        summary = hub.merge()
        assert len(summary["workers"]) == 2
        timeline = read_trace(summary["timeline"])
        assert validate_trace(timeline) == []
        # Clock alignment: every worker's offset is non-negative and gt
        # never precedes the hub epoch.
        assert all(lane["offset"] >= 0.0 for lane in summary["workers"])
        assert all(e["gt"] >= 0.0 for e in timeline[1:])
        # Metrics snapshots parse cleanly.
        prom = (tmp_path / "metrics.prom").read_text()
        samples = parse_prometheus(prom)
        assert samples[("repro_decisions", ())] >= 0
        report = format_report(summary)
        assert "b01_1(5)/hdpll+sp" in report
        rows = snapshot_status(tmp_path)
        assert format_top(rows)

    def test_hard_killed_worker_leaves_replayable_flight_dump(
        self, tmp_path
    ):
        hub = TelemetryHub(tmp_path)
        tasks = [
            EngineTask(case="b01_1", bound=5, engine="hdpll+sp",
                       timeout=60.0, inject_crash="hang",
                       hard_timeout=2.0),
        ]
        # jobs must exceed 1: the inline path would hang this process.
        records = run_engine_tasks(tasks, jobs=2, telemetry=hub)
        assert records[0].status == "-to-"
        assert "flight recorder dump" in records[0].note
        summary = hub.merge()
        assert summary["flight_dumps"]
        dump = read_trace(summary["flight_dumps"][0])
        assert dump[0]["ev"] == "flight_dump"
        assert "signal" in dump[0]["reason"]
        assert validate_trace(dump, complete=False) == []
        assert "flight recorder dump" in narrate(dump)

    def test_injected_abort_reports_crash_without_dying_silently(
        self, tmp_path
    ):
        hub = TelemetryHub(tmp_path)
        tasks = [
            EngineTask(case="b01_1", bound=5, engine="hdpll+sp",
                       timeout=60.0, inject_crash="abort"),
        ]
        records = run_engine_tasks(tasks, jobs=2, telemetry=hub)
        assert records[0].status == "-A-"
        summary = hub.merge()
        lane = summary["workers"][0]
        assert lane["status"] == "crash"


class TestPortfolioTelemetry:
    def test_pool_run_produces_monotonic_timeline_with_cubes(
        self, tmp_path
    ):
        from repro.core.config import SolverConfig
        from repro.portfolio.cubes import Cube, generate_cubes
        from repro.portfolio.pool import run_pool
        from repro.portfolio.worker import ProblemSpec, build_problem

        spec = ProblemSpec("instance", "b01_1", 10)
        circuit, assumptions = build_problem(spec)
        report = generate_cubes(circuit, assumptions, depth=1)
        cubes = [Cube(())] + list(report.cubes)
        hub = TelemetryHub(tmp_path)
        result = run_pool(
            spec,
            cubes,
            jobs=4,
            base_config=SolverConfig(),
            timeout=120.0,
            telemetry=hub,
        )
        assert result.status == "sat"
        summary = hub.merge()
        # Workers that were cancelled before writing anything may leave
        # no shard; at least the winner and one peer always do.
        assert len(summary["workers"]) >= 2
        timeline = read_trace(summary["timeline"])
        assert validate_trace(timeline) == []
        assert summary["cubes"]  # cube lifecycle spans present
        statuses = {span["outcome"] for span in summary["cubes"]}
        assert "sat" in statuses
