"""Tests for the flight recorder ring and the tee emitter.

The flight recorder is the always-on crash ring: same ``event`` surface
as the trace emitter, but nothing is serialized until :meth:`dump`.
These tests pin the ring semantics (bounded, seq-reconstructing), the
dump format (a replayable schema-v2 trace fragment) and the PR's
overhead contract (recording identical solver stats, zero I/O).
"""

import json

from repro.core import HDPLL_SP, solve_circuit
from repro.itc99 import instance
from repro.obs import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    Observation,
    TeeEmitter,
    TraceEmitter,
    narrate,
    read_trace,
    validate_trace,
)


class TestRing:
    def test_ring_is_bounded_and_counts_dropped(self):
        flight = FlightRecorder(capacity=4)
        for index in range(10):
            flight.event("restart", n=index, conflicts=index)
        assert len(flight) == 4
        assert flight.recorded == 10
        assert flight.dropped == 6

    def test_snapshot_reconstructs_seq_after_wraparound(self):
        flight = FlightRecorder(capacity=3)
        for index in range(7):
            flight.event("restart", n=index, conflicts=index)
        records = flight.snapshot()
        assert [r["seq"] for r in records] == [4, 5, 6]
        assert [r["n"] for r in records] == [4, 5, 6]

    def test_nothing_serialized_until_dump(self):
        # The overhead contract: event() appends a tuple, no JSON, no
        # strings, no file handle.  The ring holds the raw field dicts.
        flight = FlightRecorder(capacity=8)
        payload = {"var": "x", "value": 1, "kind": "activity"}
        flight.event("decision", dl=1, **payload)
        t, ev, dl, fields = flight._ring[0]
        assert ev == "decision"
        assert fields == payload

    def test_default_capacity_is_modest(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_shared_epoch_with_trace_emitter(self):
        # The telemetry layer hands both sinks one t0 so ring and shard
        # timestamps line up; pin that the parameter is honoured.
        flight = FlightRecorder(t0=0.0)
        flight.event("restart", n=1, conflicts=1)
        t = flight._ring[0][0]
        assert t > 1.0  # perf_counter minus epoch 0 is "uptime", not ~0


class TestDump:
    def test_dump_round_trips_through_trace_tools(self, tmp_path):
        flight = FlightRecorder(capacity=16)
        flight.event("decision", dl=1, var="x", value=1, kind="activity")
        flight.event("conflict", dl=1, n=1, size=2, backtrack=0)
        path = flight.dump(tmp_path / "crash.flight.jsonl", reason="test")
        events = read_trace(path)
        assert events[0]["ev"] == "flight_dump"
        assert events[0]["reason"] == "test"
        assert events[0]["events"] == 2
        assert validate_trace(events, complete=False) == []
        story = narrate(events)
        assert "flight recorder dump (test)" in story
        assert "decide x = 1" in story

    def test_dump_header_reports_dropped(self, tmp_path):
        flight = FlightRecorder(capacity=2)
        for index in range(5):
            flight.event("restart", n=index, conflicts=index)
        path = flight.dump(tmp_path / "d.jsonl", reason="overflow")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["dropped"] == 3
        assert header["events"] == 2

    def test_dump_validates_despite_late_header_timestamp(self, tmp_path):
        # The header is stamped at dump time — after every ring event —
        # and validate_trace must not flag that as non-monotonic.
        flight = FlightRecorder(capacity=4)
        flight.event("restart", n=1, conflicts=1, strategy="luby")
        flight.event("restart", n=2, conflicts=2, strategy="luby")
        path = flight.dump(tmp_path / "late.jsonl", reason="kill")
        assert validate_trace(read_trace(path), complete=False) == []


class TestTee:
    def test_tee_fans_out_to_all_sinks(self):
        tracer = TraceEmitter.in_memory()
        flight = FlightRecorder(capacity=4)
        tee = TeeEmitter(tracer, flight)
        tee.event("restart", n=1, conflicts=3)
        assert tracer.events_emitted == 1
        assert flight.recorded == 1

    def test_tee_skips_none_sinks(self):
        flight = FlightRecorder(capacity=4)
        tee = TeeEmitter(None, flight)
        tee.event("restart", n=1, conflicts=1)
        assert flight.recorded == 1
        assert TeeEmitter(None, None).enabled is False


class TestOverheadGuard:
    def test_flight_recording_preserves_solver_stats(self):
        # PR-2-style disabled-path guard: a solve with the ring in the
        # tracer slot must agree counter-for-counter with a bare solve
        # (recording must never perturb the search).
        inst = instance("b01_1", 10)
        baseline = solve_circuit(inst.circuit, inst.assumptions, HDPLL_SP)
        flight = FlightRecorder()
        observed = solve_circuit(
            inst.circuit,
            inst.assumptions,
            HDPLL_SP,
            observation=Observation(tracer=flight),
        )
        assert observed.status is baseline.status
        for counter in ("decisions", "conflicts", "propagations",
                        "learned_clauses", "restarts"):
            assert getattr(observed.stats, counter) == getattr(
                baseline.stats, counter
            ), counter
        assert flight.recorded > 0
        assert len(flight) <= flight.capacity
