"""Tests for JSONL solver tracing: emit -> parse -> validate -> narrate."""

import json

from repro.core import HDPLL_SP, Status, solve_circuit
from repro.itc99 import instance
from repro.obs import (
    TRACE_SCHEMA_VERSION,
    Observation,
    TraceEmitter,
    narrate,
    parse_trace,
    read_trace,
    validate_trace,
)


def _traced_solve(case="b01_1", bound=10, emitter=None):
    inst = instance(case, bound)
    tracer = emitter if emitter is not None else TraceEmitter.in_memory()
    result = solve_circuit(
        inst.circuit,
        inst.assumptions,
        HDPLL_SP,
        observation=Observation(tracer=tracer),
    )
    return result, tracer


class TestEmitter:
    def test_event_lines_are_json_with_common_fields(self):
        tracer = TraceEmitter.in_memory()
        tracer.event("decision", dl=2, var="x", value=1, kind="activity")
        record = json.loads(tracer.text())
        assert record["ev"] == "decision"
        assert record["dl"] == 2
        assert record["t"] >= 0
        assert tracer.events_emitted == 1

    def test_timestamps_monotone(self):
        tracer = TraceEmitter.in_memory()
        for _ in range(5):
            tracer.event("restart", n=1, conflicts=2)
        times = [event["t"] for event in parse_trace(tracer.text())]
        assert times == sorted(times)

    def test_file_sink_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceEmitter.open(path) as tracer:
            tracer.event("restart", n=1, conflicts=10)
        events = read_trace(path)
        assert len(events) == 1
        assert events[0]["ev"] == "restart"


class TestTracedSolve:
    def test_round_trip_and_schema(self):
        result, tracer = _traced_solve()
        assert result.status is Status.SAT
        events = parse_trace(tracer.text())
        assert validate_trace(events) == []
        assert events[0]["ev"] == "solve_begin"
        assert events[0]["schema"] == TRACE_SCHEMA_VERSION
        assert events[-1]["ev"] == "solve_end"
        assert events[-1]["status"] == "sat"
        kinds = {event["ev"] for event in events}
        assert "propagate" in kinds
        assert "learn_probe" in kinds  # +P engine probes predicates

    def test_solve_end_matches_stats(self):
        result, tracer = _traced_solve()
        end = parse_trace(tracer.text())[-1]
        assert end["decisions"] == result.stats.decisions
        assert end["conflicts"] == result.stats.conflicts
        assert end["solve_time"] == result.stats.solve_time

    def test_narrate_mentions_key_moments(self):
        result, tracer = _traced_solve()
        story = narrate(parse_trace(tracer.text()))
        assert "solve begin" in story
        assert "result: SAT" in story

    def test_narrate_elides_long_traces(self):
        events = [
            {"t": index * 0.001, "ev": "restart", "dl": 0,
             "n": index, "conflicts": index}
            for index in range(1000)
        ]
        story = narrate(events, limit=100)
        assert "events elided" in story
        assert len(story.splitlines()) <= 102


class TestDisabledPath:
    def test_disabled_emitter_writes_nothing_and_stats_match(self):
        inst = instance("b01_1", 10)
        baseline = solve_circuit(inst.circuit, inst.assumptions, HDPLL_SP)

        tracer = TraceEmitter.in_memory()
        tracer.enabled = False
        observed = solve_circuit(
            inst.circuit,
            inst.assumptions,
            HDPLL_SP,
            observation=Observation(tracer=tracer),
        )
        assert tracer.text() == ""
        assert tracer.events_emitted == 0
        for counter in ("decisions", "conflicts", "propagations",
                        "learned_clauses", "restarts"):
            assert getattr(observed.stats, counter) == getattr(
                baseline.stats, counter
            ), counter

    def test_no_observation_means_no_tracer(self):
        from repro.core.hdpll import HdpllSolver
        from repro.itc99 import instance as make_instance

        inst = make_instance("b01_1", 5)
        solver = HdpllSolver(inst.circuit)
        assert solver._trace is None
        assert solver._prof is None


class TestValidation:
    def test_empty_trace(self):
        assert validate_trace([]) == ["trace is empty"]

    def test_missing_common_and_event_fields(self):
        errors = validate_trace(
            [{"ev": "decision", "t": 0.0}], complete=False
        )
        assert any("missing common field 'dl'" in error for error in errors)
        assert any("missing field 'var'" in error for error in errors)

    def test_unknown_kind_and_backwards_time(self):
        events = [
            {"t": 1.0, "ev": "frobnicate", "dl": 0},
            {"t": 0.5, "ev": "restart", "dl": 0, "n": 1, "conflicts": 1},
        ]
        errors = validate_trace(events, complete=False)
        assert any("unknown event kind" in error for error in errors)
        assert any("goes backwards" in error for error in errors)

    def test_completeness_checks(self):
        events = [
            {"t": 0.0, "ev": "restart", "dl": 0, "n": 1, "conflicts": 1,
             "strategy": "geometric"}
        ]
        errors = validate_trace(events, complete=True)
        assert any("start with solve_begin" in error for error in errors)
        assert any("end with solve_end" in error for error in errors)
        assert validate_trace(events, complete=False) == []
