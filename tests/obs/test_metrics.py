"""Tests for the metrics registry and its SolverStats facade."""

import pytest

from repro.core import SolverStats
from repro.harness.runner import RunRecord, apply_stats
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("decisions").inc()
        registry.counter("decisions").inc(4)
        registry.gauge("solve_time").set(1.5)
        histogram = registry.histogram("clause_size")
        for size in (2, 5, 11):
            histogram.observe(size)
        assert registry.value("decisions") == 5
        assert registry.value("solve_time") == 1.5
        assert histogram.count == 3
        assert histogram.min == 2
        assert histogram.max == 11
        assert histogram.mean == pytest.approx(6.0)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("decisions")
        with pytest.raises(TypeError):
            registry.gauge("decisions")

    def test_scalar_assignment_to_histogram_raises(self):
        registry = MetricsRegistry()
        registry.histogram("clause_size")
        with pytest.raises(TypeError):
            registry.set_value("clause_size", 3)

    def test_set_value_auto_registers_by_type(self):
        registry = MetricsRegistry()
        registry.set_value("total", 3)
        registry.set_value("rate", 0.5)
        assert isinstance(registry.get("total"), Counter)
        assert isinstance(registry.get("rate"), Gauge)

    def test_as_dict_histogram_summary(self):
        registry = MetricsRegistry()
        registry.set_value("n", 1)
        registry.histogram("sizes").observe(7)
        full = registry.as_dict()
        assert full["n"] == 1
        assert full["sizes"]["count"] == 1
        assert full["sizes"]["mean"] == pytest.approx(7.0)
        assert "sizes" not in registry.as_dict(include_histograms=False)

    def test_iteration_and_membership(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        assert "a" in registry
        assert "missing" not in registry
        assert {metric.name for metric in registry} == {"a", "b"}
        assert set(registry.names()) == {"a", "b"}


class TestSolverStatsFacade:
    def test_declared_fields_default_to_zero(self):
        stats = SolverStats()
        assert stats.decisions == 0
        assert stats.conflicts == 0
        assert stats.solve_time == 0.0

    def test_attribute_writes_and_augmented_assignment(self):
        stats = SolverStats()
        stats.decisions = 3
        stats.decisions += 2
        stats.solve_time = 0.25
        assert stats.decisions == 5
        assert stats.solve_time == 0.25

    def test_kwargs_construction(self):
        stats = SolverStats(decisions=7, learn_time=1.5)
        assert stats.decisions == 7
        assert stats.learn_time == 1.5

    def test_unknown_attribute_auto_registers(self):
        stats = SolverStats()
        stats.blocking_clauses = 4
        assert stats.blocking_clauses == 4
        assert "blocking_clauses" in stats.as_dict()

    def test_unknown_read_raises_attribute_error(self):
        stats = SolverStats()
        with pytest.raises(AttributeError):
            stats.never_assigned

    def test_histogram_attribute_access(self):
        stats = SolverStats()
        stats.registry.histogram("learned_clause_size").observe(3)
        assert isinstance(stats.learned_clause_size, Histogram)
        assert stats.learned_clause_size.count == 1

    def test_equality_and_as_dict(self):
        a = SolverStats(decisions=2)
        b = SolverStats(decisions=2)
        c = SolverStats(decisions=3)
        assert a == b
        assert a != c
        assert a.as_dict()["decisions"] == 2


class TestApplyStats:
    def test_counters_and_time_aliases_flow_into_record(self):
        stats = SolverStats(
            decisions=9,
            conflicts=4,
            propagations=100,
            learn_time=0.5,
            solve_time=1.25,
        )
        record = RunRecord(
            case="x", bound=1, engine="hdpll", status="S", seconds=2.0
        )
        apply_stats(record, stats)
        assert record.decisions == 9
        assert record.conflicts == 4
        assert record.propagations == 100
        assert record.learn_seconds == 0.5
        assert record.solve_seconds == 1.25

    def test_unmatched_metrics_are_ignored(self):
        stats = SolverStats()
        stats.no_such_record_field = 11
        record = RunRecord(
            case="x", bound=1, engine="hdpll", status="S", seconds=0.0
        )
        apply_stats(record, stats)  # must not raise
        assert not hasattr(record, "no_such_record_field")

    def test_plain_dataclass_stats_supported(self):
        from repro.baselines.dpll_sat import SatStats

        record = RunRecord(
            case="x", bound=1, engine="bitblast", status="U", seconds=0.0
        )
        apply_stats(record, SatStats(decisions=3, conflicts=2))
        assert record.decisions == 3
        assert record.conflicts == 2
