"""Tests for the hierarchical phase profiler."""

import pytest

from repro.core import HDPLL_SP, solve_circuit
from repro.itc99 import instance
from repro.obs import Observation, PhaseProfiler, merge_reports


class TestPhaseProfiler:
    def test_nested_phases_derive_paths(self):
        profiler = PhaseProfiler()
        with profiler.phase("search"):
            with profiler.phase("propagate"):
                pass
        assert "search" in profiler.totals
        assert "search/propagate" in profiler.totals
        assert profiler.counts["search/propagate"] == 1

    def test_add_accrues_pre_measured_deltas(self):
        profiler = PhaseProfiler()
        profiler.add("search/fme", 0.25)
        profiler.add("search/fme", 0.25, count=3)
        assert profiler.totals["search/fme"] == pytest.approx(0.5)
        assert profiler.counts["search/fme"] == 4

    def test_self_seconds_subtracts_direct_children(self):
        profiler = PhaseProfiler()
        profiler.add("search", 1.0)
        profiler.add("search/propagate", 0.3)
        profiler.add("search/propagate/bcp", 0.2)
        assert profiler.self_seconds("search") == pytest.approx(0.7)
        # Grandchildren subtract from their parent, not the root.
        assert profiler.self_seconds("search/propagate") == pytest.approx(0.1)

    def test_top_level_total_sums_roots_only(self):
        profiler = PhaseProfiler()
        profiler.add("learn", 2.0)
        profiler.add("search", 3.0)
        profiler.add("search/decide", 1.0)
        assert profiler.top_level() == {"learn": 2.0, "search": 3.0}
        assert profiler.top_level_total() == pytest.approx(5.0)

    def test_report_shape_and_merge(self):
        profiler = PhaseProfiler()
        profiler.add("learn", 1.0)
        report = profiler.report()
        assert report["top_level_total"] == pytest.approx(1.0)
        assert report["phases"][0]["path"] == "learn"
        merged = merge_reports([report, report])
        assert merged["top_level_total"] == pytest.approx(2.0)


class TestProfiledSolve:
    def _profiled(self, case, bound):
        inst = instance(case, bound)
        profiler = PhaseProfiler()
        result = solve_circuit(
            inst.circuit,
            inst.assumptions,
            HDPLL_SP,
            observation=Observation(profiler=profiler),
        )
        return result, profiler

    def test_expected_phases_present(self):
        _result, profiler = self._profiled("b01_1", 10)
        assert "learn" in profiler.totals
        assert "search" in profiler.totals
        assert "search/propagate" in profiler.totals

    def test_phase_sum_tracks_reported_wall_time(self):
        result, profiler = self._profiled("b13_5", 20)
        reported = result.stats.solve_time + result.stats.learn_time
        assert reported > 0
        drift = abs(profiler.top_level_total() - reported) / reported
        assert drift < 0.10

    def test_children_do_not_exceed_parents(self):
        _result, profiler = self._profiled("b13_5", 20)
        slack = 1e-6  # clock quantisation on near-zero phases
        for path, seconds in profiler.totals.items():
            parent, _, _ = path.rpartition("/")
            if parent:
                assert seconds <= profiler.totals[parent] + slack, path
            assert profiler.self_seconds(path) >= -slack, path
