"""Integration tests: circuit compilation + full propagation engine.

The central oracle: with all primary inputs pinned to concrete values,
propagation must drive every net variable to exactly the value the
concrete simulator computes (hybrid consistency is complete on points).
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnsupportedOperationError
from repro.intervals import Interval
from repro.constraints import (
    Conflict,
    DomainStore,
    PropagationEngine,
    compile_circuit,
)
from repro.rtl import CircuitBuilder, simulate_combinational


def _engine_for(circuit):
    system = compile_circuit(circuit)
    store = DomainStore(system.variables)
    engine = PropagationEngine(store, system.propagators)
    return system, store, engine


def _pin_inputs_and_check(circuit, input_values):
    """Pin inputs, propagate, compare every net against the simulator."""
    system, store, engine = _engine_for(circuit)
    for net in circuit.inputs:
        store.assume(system.var(net), Interval.point(input_values[net.name]))
    engine.enqueue_all()
    conflict = engine.propagate()
    assert conflict is None, f"unexpected conflict for {input_values}"
    expected = simulate_combinational(circuit, input_values)
    for net in circuit.nets:
        var = system.var(net)
        assert store.is_assigned(var), f"{net.name} not pinned"
        assert store.value(var) == expected[net.name], net.name


def _mixed_circuit():
    b = CircuitBuilder("mixed")
    a = b.input("a", 3)
    c = b.input("c", 3)
    sel = b.input("sel", 1)
    s = b.add(a, c, name="s")
    d = b.sub(a, c, name="d")
    m3 = b.mul_const(a, 3, name="m3")
    sh = b.shl(c, 1, name="sh")
    sr = b.shr(s, 1, name="sr")
    cat = b.concat(a, c, name="cat")
    ex = b.extract(cat, 4, 1, name="ex")
    z = b.zext(d, 5, name="z")
    p = b.lt(s, m3, name="p")
    q = b.ge(d, c, name="q")
    g = b.and_(p, sel, name="g")
    h = b.or_(q, g, name="h")
    m = b.mux(h, s, d, name="m")
    b.output("out", m)
    return b.build()


def test_forward_completeness_exhaustive():
    circuit = _mixed_circuit()
    for av, cv, sv in itertools.product(range(8), range(8), (0, 1)):
        _pin_inputs_and_check(circuit, {"a": av, "c": cv, "sel": sv})


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_forward_completeness_random_circuits(data):
    """Random small circuits: propagation on points equals simulation."""
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    b = CircuitBuilder("random")
    width = rng.choice([2, 3, 4])
    word_nets = [b.input(f"in{i}", width) for i in range(3)]
    bool_nets = [b.input("bsel", 1)]
    for step in range(rng.randint(3, 10)):
        choice = rng.random()
        if choice < 0.35:
            x = rng.choice(word_nets)
            y = rng.choice(word_nets)
            kind = rng.choice(["add", "sub"])
            word_nets.append(getattr(b, kind)(x, y))
        elif choice < 0.5:
            x = rng.choice(word_nets)
            word_nets.append(b.mul_const(x, rng.randint(0, 4)))
        elif choice < 0.7:
            x = rng.choice(word_nets)
            y = rng.choice(word_nets)
            kind = rng.choice(["eq", "ne", "lt", "le", "gt", "ge"])
            bool_nets.append(getattr(b, kind)(x, y))
        elif choice < 0.85 and len(bool_nets) >= 2:
            x = rng.choice(bool_nets)
            y = rng.choice(bool_nets)
            kind = rng.choice(["and_", "or_", "xor"])
            bool_nets.append(getattr(b, kind)(x, y))
        else:
            sel = rng.choice(bool_nets)
            x = rng.choice(word_nets)
            y = rng.choice(word_nets)
            word_nets.append(b.mux(sel, x, y))
    b.output("out", word_nets[-1])
    circuit = b.build()
    for _ in range(5):
        inputs = {
            net.name: rng.randint(0, net.max_value) for net in circuit.inputs
        }
        _pin_inputs_and_check(circuit, inputs)


def test_backward_narrowing_sound():
    """Constraining the output never removes a real input solution."""
    b = CircuitBuilder()
    a = b.input("a", 3)
    c = b.input("c", 3)
    s = b.add(a, c, name="s")
    b.output("out", s)
    circuit = b.build()
    system, store, engine = _engine_for(circuit)
    store.assume(system.var_by_name("s"), Interval(6, 6))
    engine.enqueue_all()
    assert engine.propagate() is None
    solutions = [
        (av, cv)
        for av in range(8)
        for cv in range(8)
        if (av + cv) % 8 == 6
    ]
    for av, cv in solutions:
        assert av in store.domain(system.var_by_name("a"))
        assert cv in store.domain(system.var_by_name("c"))


def test_mux_select_implication_through_engine():
    """With the ablation rule on, output disjoint from one branch
    implies the select during deduction."""
    b = CircuitBuilder()
    sel = b.input("sel", 1)
    a = b.input("a", 3)
    k2 = b.const(2, 3)
    k6 = b.const(6, 3)
    m = b.mux(sel, k2, k6, name="m")
    b.output("out", m)
    circuit = b.build()
    system = compile_circuit(circuit, mux_select_implication=True)
    store = DomainStore(system.variables)
    engine = PropagationEngine(store, system.propagators)
    store.assume(system.var_by_name("m"), Interval(6, 6))
    engine.enqueue_all()
    assert engine.propagate() is None
    assert store.bool_value(system.var_by_name("sel")) == 0


def test_conflict_detected():
    b = CircuitBuilder()
    a = b.input("a", 3)
    p = b.lt(a, b.const(3, 3), name="p")
    q = b.ge(a, b.const(5, 3), name="q")
    g = b.and_(p, q, name="g")
    b.output("out", g)
    circuit = b.build()
    system, store, engine = _engine_for(circuit)
    store.assume(system.var_by_name("g"), Interval.point(1))
    engine.enqueue_all()
    conflict = engine.propagate()
    assert isinstance(conflict, Conflict)


def test_sequential_circuit_rejected():
    b = CircuitBuilder()
    r = b.register("r", 3)
    b.next_state(r, b.inc(r))
    circuit = b.build()
    with pytest.raises(UnsupportedOperationError):
        compile_circuit(circuit)


def test_extract_aux_decomposition():
    b = CircuitBuilder()
    a = b.input("a", 6)
    mid = b.extract(a, 4, 2, name="mid")
    b.output("out", mid)
    circuit = b.build()
    for value in range(64):
        system, store, engine = _engine_for(circuit)
        store.assume(system.var_by_name("a"), Interval.point(value))
        engine.enqueue_all()
        assert engine.propagate() is None
        assert store.value(system.var_by_name("mid")) == (value >> 2) & 7


def test_extract_backward():
    b = CircuitBuilder()
    a = b.input("a", 4)
    low = b.extract(a, 1, 0, name="low")
    b.output("out", low)
    circuit = b.build()
    system, store, engine = _engine_for(circuit)
    store.assume(system.var_by_name("low"), Interval(3, 3))
    engine.enqueue_all()
    assert engine.propagate() is None
    # Sound: every a with a & 3 == 3 must remain.
    domain = store.domain(system.var_by_name("a"))
    for value in (3, 7, 11, 15):
        assert value in domain


def test_backtrack_and_repropagate():
    b = CircuitBuilder()
    a = b.input("a", 3)
    sel = b.input("sel", 1)
    m = b.mux(sel, b.const(1, 3), a, name="m")
    b.output("out", m)
    circuit = b.build()
    system, store, engine = _engine_for(circuit)
    engine.enqueue_all()
    assert engine.propagate() is None

    store.decide_bool(system.var_by_name("sel"), 1)
    engine.notify_backtrack()
    engine.enqueue_watchers_of(system.var_by_name("sel"))
    assert engine.propagate() is None
    assert store.value(system.var_by_name("m")) == 1

    store.backtrack_to(0)
    engine.notify_backtrack()
    assert store.value(system.var_by_name("m")) is None

    store.decide_bool(system.var_by_name("sel"), 0)
    engine.enqueue_watchers_of(system.var_by_name("sel"))
    assert engine.propagate() is None
    # m follows a now; a is still free so m stays wide.
    assert store.domain(system.var_by_name("m")) == Interval(0, 7)
