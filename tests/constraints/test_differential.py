"""Differential tests: optimized propagation vs a naive reference.

The optimized fast path — event-kind-filtered wakeups, the two-tier
worklist, two-watched-literal clause visits and the flat lo/hi bound
arrays — must be behaviourally invisible.  Two oracles check that over
hundreds of randomized circuits:

* the level-0 fixpoint (domains and conflict-ness) matches a naive
  reference engine that simply re-runs every propagator and re-examines
  every clause until the trail stops growing, and
* full HDPLL solves agree with brute-force enumeration of the input
  space, with every SAT model verified by simulation.
"""

from __future__ import annotations

import os
import random
from itertools import product
from typing import List, Optional, Sequence

from repro.constraints import (
    Clause,
    ClauseDatabase,
    Conflict,
    DomainStore,
    PropagationEngine,
    compile_circuit,
    make_bool_lit,
)
from repro.core import SolverConfig, Status, solve_circuit
from repro.harness.parallel import Task, run_tasks
from repro.intervals import Interval
from repro.itc99.generator import random_combinational_circuit
from repro.rtl.simulate import simulate_combinational

#: Parameter sets alternated across seeds, for shape diversity.
_PARAM_SETS = (
    dict(num_word_inputs=2, width=3, operations=8),
    dict(num_word_inputs=2, width=4, operations=12),
)

#: Seeds per oracle; REPRO_TEST_JOBS>1 fans the chunks out over the
#: worker pool (defaults to the inline sequential path).
_NUM_SEEDS = 200
_CHUNK = 25


def _test_jobs() -> int:
    return int(os.environ.get("REPRO_TEST_JOBS", "1"))


def _engine_impls() -> List[str]:
    """Propagation-core impls swept by the differential oracles.

    ``REPRO_TEST_ENGINES`` (comma-separated) restricts the sweep;
    the default is every impl available in this interpreter (the
    vectorized engine needs NumPy and is skipped without it).
    """
    from repro.constraints.fastpath import numpy_available

    requested = os.environ.get("REPRO_TEST_ENGINES")
    if requested:
        impls = [name.strip() for name in requested.split(",") if name.strip()]
    else:
        impls = ["reference", "specialized", "vectorized"]
        if not numpy_available():
            impls.remove("vectorized")
    return impls


def _run_chunked(worker, label: str) -> List[str]:
    """Fan seed chunks over the pool; merge per-chunk failure lists."""
    chunks = [
        range(start, min(start + _CHUNK, _NUM_SEEDS))
        for start in range(0, _NUM_SEEDS, _CHUNK)
    ]
    tasks = [
        Task(
            fn=worker,
            args=(tuple(chunk),),
            label=f"{label}[{chunk[0]}:{chunk[-1] + 1}]",
        )
        for chunk in chunks
    ]
    failures: List[str] = []
    for outcome in run_tasks(tasks, jobs=_test_jobs()):
        if outcome.ok:
            failures.extend(outcome.value)
        else:
            failures.append(f"{outcome.label}: worker failed: {outcome.error}")
    return failures


def _reference_fixpoint(store, propagators, clause_db) -> Optional[Conflict]:
    """Naive Ddeduce: run everything until the trail stops growing."""
    while True:
        mark = len(store.trail)
        for propagator in propagators:
            conflict = propagator.propagate(store)
            if conflict is not None:
                return conflict
        conflict = clause_db.recheck_all()
        if conflict is not None:
            return conflict
        if len(store.trail) == mark:
            return None


def _random_bool_clauses(rng: random.Random, variables) -> List[List]:
    """Literal specs (var, value) for a few random Boolean clauses."""
    bools = [v for v in variables if v.is_bool]
    specs = []
    for _ in range(rng.randint(0, 3)):
        if len(bools) < 2:
            break
        chosen = rng.sample(bools, rng.randint(2, min(3, len(bools))))
        specs.append([(var, rng.randint(0, 1)) for var in chosen])
    return specs


def _fixpoint_pair(
    seed: int, impl: str = "reference", with_reference: bool = True
):
    """Level-0 fixpoints of the optimized and reference engines.

    ``with_reference=False`` skips the naive-oracle run (the expensive
    half) and returns ``None`` in its place — the impl sweep only needs
    one oracle fixpoint per seed.
    """
    circuit = random_combinational_circuit(
        seed, **_PARAM_SETS[seed % len(_PARAM_SETS)]
    )
    system = compile_circuit(circuit)
    rng = random.Random(seed * 7919 + 13)
    clause_specs = _random_bool_clauses(rng, system.variables)
    flag_value = rng.randint(0, 1)
    width = _PARAM_SETS[seed % len(_PARAM_SETS)]["width"]
    w0_lo = rng.randint(0, (1 << width) - 1)
    w0_hi = rng.randint(w0_lo, (1 << width) - 1)

    def run_optimized():
        store = DomainStore(system.variables)
        engine = PropagationEngine(store, system.propagators, impl=impl)
        for spec in clause_specs:
            clause = Clause(
                tuple(make_bool_lit(var, value) for var, value in spec)
            )
            conflict = engine.add_clause(clause)
            if conflict is not None:
                return store, conflict
        engine.enqueue_all()
        conflict = engine.propagate()
        if conflict is not None:
            return store, conflict
        for name, interval in (
            ("flag", Interval.point(flag_value)),
            ("w0", Interval.make(w0_lo, w0_hi)),
        ):
            outcome = store.assume(system.var_by_name(name), interval)
            if isinstance(outcome, Conflict):
                return store, outcome
        engine.enqueue_all()
        return store, engine.propagate()

    def run_reference():
        store = DomainStore(system.variables)
        clause_db = ClauseDatabase(store)
        for spec in clause_specs:
            clause = Clause(
                tuple(make_bool_lit(var, value) for var, value in spec)
            )
            conflict = clause_db.add_clause(clause)
            if conflict is not None:
                return store, conflict
        conflict = _reference_fixpoint(store, system.propagators, clause_db)
        if conflict is not None:
            return store, conflict
        for name, interval in (
            ("flag", Interval.point(flag_value)),
            ("w0", Interval.make(w0_lo, w0_hi)),
        ):
            outcome = store.assume(system.var_by_name(name), interval)
            if isinstance(outcome, Conflict):
                return store, outcome
        return store, _reference_fixpoint(
            store, system.propagators, clause_db
        )

    return run_optimized(), (run_reference() if with_reference else None)


def _trail_key(store) -> List[tuple]:
    """Bit-for-bit trail fingerprint: every event's observable fields."""
    return [
        (
            event.var.index,
            event.new.lo,
            event.new.hi,
            event.level,
            event.kinds,
            event.prev_on_var,
            len(event.antecedents),
        )
        for event in store.trail
    ]


def _fixpoint_chunk(seeds: Sequence[int]) -> List[str]:
    """Compare engines over a seed range; return failure messages."""
    impls = _engine_impls()
    failures: List[str] = []
    for seed in seeds:
        runs = {}
        naive = None
        for index, impl in enumerate(impls):
            (opt_store, opt_conflict), oracle = _fixpoint_pair(
                seed, impl, with_reference=index == 0
            )
            runs[impl] = (opt_store, opt_conflict)
            if oracle is not None:
                naive = oracle
        ref_store, ref_conflict = naive
        for impl, (opt_store, opt_conflict) in runs.items():
            if (opt_conflict is None) != (ref_conflict is None):
                failures.append(
                    f"seed {seed} [{impl}]: optimized conflict "
                    f"{opt_conflict!r} vs reference {ref_conflict!r}"
                )
                continue
            if opt_conflict is None:
                if opt_store.lo != ref_store.lo:
                    failures.append(f"seed {seed} [{impl}]: lo differs")
                if opt_store.hi != ref_store.hi:
                    failures.append(f"seed {seed} [{impl}]: hi differs")
                if opt_store.domains != ref_store.domains:
                    failures.append(
                        f"seed {seed} [{impl}]: interned domains differ"
                    )
        # Accelerated impls must match the reference *engine* (not just
        # the naive oracle) bit-for-bit: identical trail events in
        # identical order, and identical conflict shape.
        base_impl = impls[0]
        base_store, base_conflict = runs[base_impl]
        base_trail = _trail_key(base_store)
        for impl in impls[1:]:
            store, conflict = runs[impl]
            if _trail_key(store) != base_trail:
                failures.append(
                    f"seed {seed}: trail of {impl} differs from "
                    f"{base_impl}"
                )
            if (conflict is None) != (base_conflict is None):
                failures.append(
                    f"seed {seed}: conflict-ness of {impl} differs "
                    f"from {base_impl}"
                )
            elif conflict is not None and base_conflict is not None:
                if (
                    conflict.var is not None
                ) != (base_conflict.var is not None) or len(
                    conflict.antecedents
                ) != len(base_conflict.antecedents):
                    failures.append(
                        f"seed {seed}: conflict shape of {impl} differs "
                        f"from {base_impl}"
                    )
    return failures


def test_level0_fixpoint_matches_reference():
    """Every engine impl reaches the naive fixpoint, bit-for-bit alike."""
    failures = _run_chunked(_fixpoint_chunk, "fixpoint")
    assert not failures, "\n".join(failures)


def _brute_force_sat(circuit, width: int) -> bool:
    """Does any input assignment drive the flag output to 1?"""
    word_inputs = [net for net in circuit.inputs if net.width > 1]
    bool_inputs = [net for net in circuit.inputs if net.width == 1]
    word_range = range(1 << width)
    for word_values in product(word_range, repeat=len(word_inputs)):
        for bool_values in product((0, 1), repeat=len(bool_inputs)):
            values = {
                net.name: value
                for net, value in zip(word_inputs, word_values)
            }
            values.update(
                {
                    net.name: value
                    for net, value in zip(bool_inputs, bool_values)
                }
            )
            if simulate_combinational(circuit, values)["flag"] == 1:
                return True
    return False


def _bruteforce_chunk(seeds: Sequence[int]) -> List[str]:
    """Solver-vs-enumeration oracle over a seed range.

    Every engine impl solves every (seed, config) cell; besides the
    enumeration oracle, accelerated impls must reproduce the reference
    impl's search bit-for-bit — same status, same model, same decision/
    conflict/propagation counts.
    """
    impls = _engine_impls()
    configs = {
        "hdpll": dict(),
        "hdpll+sp": dict(
            structural_decisions=True, predicate_learning=True
        ),
    }
    width = 3
    failures: List[str] = []
    for seed in seeds:
        circuit = random_combinational_circuit(
            seed, num_word_inputs=2, width=width, operations=8
        )
        expected = _brute_force_sat(circuit, width)
        for label, options in configs.items():
            results = {}
            for impl in impls:
                config = SolverConfig(engine_impl=impl, **options)
                result = solve_circuit(circuit, {"flag": 1}, config)
                results[impl] = result
                tag = f"{label}/{impl}"
                if result.status is Status.UNKNOWN:
                    failures.append(
                        f"seed {seed} [{tag}]: unexpected UNKNOWN "
                        f"({result.note})"
                    )
                    continue
                if result.is_sat != expected:
                    failures.append(
                        f"seed {seed} [{tag}]: solver says "
                        f"{result.status.value}, brute force says "
                        f"{'sat' if expected else 'unsat'}"
                    )
                    continue
                if result.is_sat:
                    inputs = {
                        net.name: result.model[net.name]
                        for net in circuit.inputs
                    }
                    replay = simulate_combinational(circuit, inputs)
                    if replay["flag"] != 1:
                        failures.append(
                            f"seed {seed} [{tag}]: model fails simulation"
                        )
            base_impl = impls[0]
            base = results[base_impl]
            for impl in impls[1:]:
                result = results[impl]
                if result.status is not base.status:
                    failures.append(
                        f"seed {seed} [{label}]: {impl} status "
                        f"{result.status.value} vs {base_impl} "
                        f"{base.status.value}"
                    )
                    continue
                if result.model != base.model:
                    failures.append(
                        f"seed {seed} [{label}]: {impl} model differs "
                        f"from {base_impl}"
                    )
                for counter in (
                    "decisions",
                    "conflicts",
                    "propagations",
                    "narrowings",
                    "propagator_wakeups",
                ):
                    mine = getattr(result.stats, counter)
                    theirs = getattr(base.stats, counter)
                    if mine != theirs:
                        failures.append(
                            f"seed {seed} [{label}]: {impl} "
                            f"{counter}={mine} vs {base_impl} {theirs}"
                        )
    return failures


def test_solve_matches_bruteforce():
    """HDPLL status and model validity match input-space enumeration."""
    failures = _run_chunked(_bruteforce_chunk, "bruteforce")
    assert not failures, "\n".join(failures)
