"""Differential tests: optimized propagation vs a naive reference.

The optimized fast path — event-kind-filtered wakeups, the two-tier
worklist, two-watched-literal clause visits and the flat lo/hi bound
arrays — must be behaviourally invisible.  Two oracles check that over
hundreds of randomized circuits:

* the level-0 fixpoint (domains and conflict-ness) matches a naive
  reference engine that simply re-runs every propagator and re-examines
  every clause until the trail stops growing, and
* full HDPLL solves agree with brute-force enumeration of the input
  space, with every SAT model verified by simulation.
"""

from __future__ import annotations

import random
from itertools import product
from typing import List, Optional

from repro.constraints import (
    Clause,
    ClauseDatabase,
    Conflict,
    DomainStore,
    PropagationEngine,
    compile_circuit,
    make_bool_lit,
)
from repro.core import SolverConfig, Status, solve_circuit
from repro.intervals import Interval
from repro.itc99.generator import random_combinational_circuit
from repro.rtl.simulate import simulate_combinational

#: Parameter sets alternated across seeds, for shape diversity.
_PARAM_SETS = (
    dict(num_word_inputs=2, width=3, operations=8),
    dict(num_word_inputs=2, width=4, operations=12),
)


def _reference_fixpoint(store, propagators, clause_db) -> Optional[Conflict]:
    """Naive Ddeduce: run everything until the trail stops growing."""
    while True:
        mark = len(store.trail)
        for propagator in propagators:
            conflict = propagator.propagate(store)
            if conflict is not None:
                return conflict
        conflict = clause_db.recheck_all()
        if conflict is not None:
            return conflict
        if len(store.trail) == mark:
            return None


def _random_bool_clauses(rng: random.Random, variables) -> List[List]:
    """Literal specs (var, value) for a few random Boolean clauses."""
    bools = [v for v in variables if v.is_bool]
    specs = []
    for _ in range(rng.randint(0, 3)):
        if len(bools) < 2:
            break
        chosen = rng.sample(bools, rng.randint(2, min(3, len(bools))))
        specs.append([(var, rng.randint(0, 1)) for var in chosen])
    return specs


def _fixpoint_pair(seed: int):
    """Level-0 fixpoints of the optimized and reference engines."""
    circuit = random_combinational_circuit(
        seed, **_PARAM_SETS[seed % len(_PARAM_SETS)]
    )
    system = compile_circuit(circuit)
    rng = random.Random(seed * 7919 + 13)
    clause_specs = _random_bool_clauses(rng, system.variables)
    flag_value = rng.randint(0, 1)
    width = _PARAM_SETS[seed % len(_PARAM_SETS)]["width"]
    w0_lo = rng.randint(0, (1 << width) - 1)
    w0_hi = rng.randint(w0_lo, (1 << width) - 1)

    def run_optimized():
        store = DomainStore(system.variables)
        engine = PropagationEngine(store, system.propagators)
        for spec in clause_specs:
            clause = Clause(
                tuple(make_bool_lit(var, value) for var, value in spec)
            )
            conflict = engine.add_clause(clause)
            if conflict is not None:
                return store, conflict
        engine.enqueue_all()
        conflict = engine.propagate()
        if conflict is not None:
            return store, conflict
        for name, interval in (
            ("flag", Interval.point(flag_value)),
            ("w0", Interval.make(w0_lo, w0_hi)),
        ):
            outcome = store.assume(system.var_by_name(name), interval)
            if isinstance(outcome, Conflict):
                return store, outcome
        engine.enqueue_all()
        return store, engine.propagate()

    def run_reference():
        store = DomainStore(system.variables)
        clause_db = ClauseDatabase(store)
        for spec in clause_specs:
            clause = Clause(
                tuple(make_bool_lit(var, value) for var, value in spec)
            )
            conflict = clause_db.add_clause(clause)
            if conflict is not None:
                return store, conflict
        conflict = _reference_fixpoint(store, system.propagators, clause_db)
        if conflict is not None:
            return store, conflict
        for name, interval in (
            ("flag", Interval.point(flag_value)),
            ("w0", Interval.make(w0_lo, w0_hi)),
        ):
            outcome = store.assume(system.var_by_name(name), interval)
            if isinstance(outcome, Conflict):
                return store, outcome
        return store, _reference_fixpoint(
            store, system.propagators, clause_db
        )

    return run_optimized(), run_reference()


def test_level0_fixpoint_matches_reference():
    """Optimized and naive engines reach identical level-0 fixpoints."""
    for seed in range(200):
        (opt_store, opt_conflict), (ref_store, ref_conflict) = (
            _fixpoint_pair(seed)
        )
        assert (opt_conflict is None) == (ref_conflict is None), (
            f"seed {seed}: optimized conflict {opt_conflict!r} vs "
            f"reference {ref_conflict!r}"
        )
        if opt_conflict is None:
            assert opt_store.lo == ref_store.lo, f"seed {seed}: lo differs"
            assert opt_store.hi == ref_store.hi, f"seed {seed}: hi differs"
            assert opt_store.domains == ref_store.domains, (
                f"seed {seed}: interned domains differ"
            )


def _brute_force_sat(circuit, width: int) -> bool:
    """Does any input assignment drive the flag output to 1?"""
    word_inputs = [net for net in circuit.inputs if net.width > 1]
    bool_inputs = [net for net in circuit.inputs if net.width == 1]
    word_range = range(1 << width)
    for word_values in product(word_range, repeat=len(word_inputs)):
        for bool_values in product((0, 1), repeat=len(bool_inputs)):
            values = {
                net.name: value
                for net, value in zip(word_inputs, word_values)
            }
            values.update(
                {
                    net.name: value
                    for net, value in zip(bool_inputs, bool_values)
                }
            )
            if simulate_combinational(circuit, values)["flag"] == 1:
                return True
    return False


def test_solve_matches_bruteforce():
    """HDPLL status and model validity match input-space enumeration."""
    configs = {
        "hdpll": SolverConfig(),
        "hdpll+sp": SolverConfig(
            structural_decisions=True, predicate_learning=True
        ),
    }
    width = 3
    for seed in range(200):
        circuit = random_combinational_circuit(
            seed, num_word_inputs=2, width=width, operations=8
        )
        expected = _brute_force_sat(circuit, width)
        for label, config in configs.items():
            result = solve_circuit(circuit, {"flag": 1}, config)
            assert result.status is not Status.UNKNOWN, (
                f"seed {seed} [{label}]: unexpected UNKNOWN ({result.note})"
            )
            assert result.is_sat == expected, (
                f"seed {seed} [{label}]: solver says {result.status.value}, "
                f"brute force says {'sat' if expected else 'unsat'}"
            )
            if result.is_sat:
                inputs = {
                    net.name: result.model[net.name]
                    for net in circuit.inputs
                }
                replay = simulate_combinational(circuit, inputs)
                assert replay["flag"] == 1, (
                    f"seed {seed} [{label}]: model fails simulation"
                )
