"""Tests for hybrid clauses and the watched-literal clause database."""

import pytest

from repro.errors import SolverError
from repro.intervals import Interval
from repro.constraints import (
    FALSE,
    TRUE,
    UNASSIGNED,
    BoolLit,
    Clause,
    ClauseDatabase,
    Conflict,
    DomainStore,
    Variable,
    WordLit,
)


def setup_store():
    variables = [
        Variable(index=0, name="b0", width=1),
        Variable(index=1, name="b1", width=1),
        Variable(index=2, name="w0", width=4),
        Variable(index=3, name="w1", width=4),
    ]
    return variables, DomainStore(variables)


class TestLiteralStatus:
    def test_bool_literal(self):
        variables, store = setup_store()
        lit = BoolLit(variables[0], positive=True)
        assert lit.status(store) == UNASSIGNED
        store.assign_bool(variables[0], 1, "t")
        assert lit.status(store) == TRUE
        assert lit.negated().status(store) == FALSE

    def test_word_literal_positive(self):
        variables, store = setup_store()
        lit = WordLit(variables[2], Interval(4, 7), positive=True)
        assert lit.status(store) == UNASSIGNED
        store.narrow(variables[2], Interval(5, 6), "t")
        assert lit.status(store) == TRUE

    def test_word_literal_positive_false(self):
        variables, store = setup_store()
        lit = WordLit(variables[2], Interval(4, 7), positive=True)
        store.narrow(variables[2], Interval(0, 3), "t")
        assert lit.status(store) == FALSE

    def test_word_literal_negative(self):
        variables, store = setup_store()
        lit = WordLit(variables[2], Interval(4, 7), positive=False)
        assert lit.status(store) == UNASSIGNED
        store.narrow(variables[2], Interval(0, 3), "t")
        assert lit.status(store) == TRUE

    def test_word_literal_negative_false(self):
        variables, store = setup_store()
        lit = WordLit(variables[2], Interval(4, 7), positive=False)
        store.narrow(variables[2], Interval(5, 6), "t")
        assert lit.status(store) == FALSE


class TestClause:
    def test_empty_clause_rejected(self):
        with pytest.raises(SolverError):
            Clause(literals=())

    def test_duplicate_literals_removed(self):
        variables, _ = setup_store()
        clause = Clause(
            literals=(
                BoolLit(variables[0]),
                BoolLit(variables[0]),
                BoolLit(variables[1]),
            )
        )
        assert len(clause.literals) == 2

    def test_status(self):
        variables, store = setup_store()
        clause = Clause(
            literals=(BoolLit(variables[0]), BoolLit(variables[1], False))
        )
        assert clause.status(store) == UNASSIGNED
        store.assign_bool(variables[1], 0, "t")
        assert clause.status(store) == TRUE


class TestClausePropagation:
    def test_unit_bool_propagation(self):
        variables, store = setup_store()
        db = ClauseDatabase(store)
        clause = Clause(
            literals=(BoolLit(variables[0]), BoolLit(variables[1]))
        )
        db.add_clause(clause)
        store.assign_bool(variables[0], 0, "t")
        conflict = db.on_var_event(variables[0])
        assert conflict is None
        assert store.bool_value(variables[1]) == 1

    def test_unit_word_propagation_narrows(self):
        variables, store = setup_store()
        db = ClauseDatabase(store)
        clause = Clause(
            literals=(
                BoolLit(variables[0]),
                WordLit(variables[2], Interval(4, 7)),
            )
        )
        db.add_clause(clause)
        store.assign_bool(variables[0], 0, "t")
        db.on_var_event(variables[0])
        assert store.domain(variables[2]) == Interval(4, 7)

    def test_negative_word_literal_trims(self):
        variables, store = setup_store()
        db = ClauseDatabase(store)
        clause = Clause(
            literals=(
                BoolLit(variables[0]),
                WordLit(variables[2], Interval(8, 15), positive=False),
            )
        )
        db.add_clause(clause)
        store.assign_bool(variables[0], 0, "t")
        db.on_var_event(variables[0])
        assert store.domain(variables[2]) == Interval(0, 7)

    def test_conflict_when_all_false(self):
        variables, store = setup_store()
        db = ClauseDatabase(store)
        clause = Clause(
            literals=(BoolLit(variables[0]), BoolLit(variables[1]))
        )
        db.add_clause(clause)
        store.assign_bool(variables[0], 0, "t")
        db.on_var_event(variables[0])
        # b1 was propagated to 1; force the conflict through a fresh clause.
        conflict = db.add_clause(Clause(literals=(BoolLit(variables[1], False),)))
        assert isinstance(conflict, Conflict)

    def test_add_unit_clause_propagates_immediately(self):
        variables, store = setup_store()
        db = ClauseDatabase(store)
        db.add_clause(Clause(literals=(BoolLit(variables[0], False),)))
        assert store.bool_value(variables[0]) == 0

    def test_satisfied_clause_ignored(self):
        variables, store = setup_store()
        db = ClauseDatabase(store)
        store.assign_bool(variables[0], 1, "t")
        clause = Clause(
            literals=(BoolLit(variables[0]), BoolLit(variables[1]))
        )
        db.add_clause(clause)
        assert store.bool_value(variables[1]) is None

    def test_watch_rewatching_chain(self):
        # Three-literal clause: falsify literals one at a time and check
        # the final unit propagation still fires.
        variables, store = setup_store()
        db = ClauseDatabase(store)
        clause = Clause(
            literals=(
                BoolLit(variables[0]),
                BoolLit(variables[1]),
                WordLit(variables[2], Interval(0, 3)),
            )
        )
        db.add_clause(clause)
        store.assign_bool(variables[0], 0, "t")
        assert db.on_var_event(variables[0]) is None
        store.assign_bool(variables[1], 0, "t")
        assert db.on_var_event(variables[1]) is None
        assert store.domain(variables[2]) == Interval(0, 3)

    def test_hybrid_conflict_via_word_domains(self):
        variables, store = setup_store()
        db = ClauseDatabase(store)
        clause = Clause(
            literals=(
                WordLit(variables[2], Interval(0, 3)),
                WordLit(variables[3], Interval(8, 15)),
            )
        )
        db.add_clause(clause)
        store.narrow(variables[2], Interval(5, 9), "t")
        assert db.on_var_event(variables[2]) is None
        # w1 must now be narrowed into <8, 15>.
        assert store.domain(variables[3]) == Interval(8, 15)

    def test_recheck_all(self):
        variables, store = setup_store()
        db = ClauseDatabase(store)
        clause = Clause(
            literals=(BoolLit(variables[0]), BoolLit(variables[1]))
        )
        db.add_clause(clause)
        store.assign_bool(variables[0], 0, "t")
        assert db.recheck_all() is None
        assert store.bool_value(variables[1]) == 1
        assert len(db) == 1


class TestClauseReduction:
    def _db_with_learned(self, count):
        variables, store = setup_store()
        db = ClauseDatabase(store)
        import itertools

        extra = [
            Variable(index=4 + i, name=f"x{i}", width=1) for i in range(count)
        ]
        # Rebuild store with enough variables.
        all_vars = variables + extra
        for i, v in enumerate(all_vars):
            v.index = i
        store = DomainStore(all_vars)
        db = ClauseDatabase(store)
        for i in range(count):
            # Ternary, high-LBD clauses: local tier, eviction-eligible
            # (binary or low-LBD clauses would be core tier and immune).
            clause = Clause(
                literals=(
                    BoolLit(all_vars[0]),
                    BoolLit(all_vars[1]),
                    BoolLit(all_vars[4 + i]),
                ),
                learned=True,
                origin="conflict",
                lbd=8,
            )
            clause.activity = float(i)
            db.add_clause(clause)
        return store, db

    def test_reduce_drops_low_activity_half(self):
        store, db = self._db_with_learned(20)
        removed = db.reduce_learned(keep_fraction=0.5)
        assert removed == 10
        assert len(db) == 10
        # Survivors are the most active ones.
        activities = sorted(c.activity for c in db.clauses)
        assert activities[0] >= 10.0

    def test_reduce_keeps_protected_origins(self):
        variables, store = setup_store()
        db = ClauseDatabase(store)
        for origin, learned in (
            ("problem", False),
            ("predicate-learning", True),
        ):
            db.add_clause(
                Clause(
                    literals=(BoolLit(variables[0]), BoolLit(variables[1])),
                    learned=learned,
                    origin=origin,
                )
            )
        assert db.reduce_learned() == 0
        assert len(db) == 2

    def test_small_databases_untouched(self):
        store, db = self._db_with_learned(4)
        assert db.reduce_learned() == 0

    def test_propagation_still_works_after_reduction(self):
        store, db = self._db_with_learned(20)
        db.reduce_learned()
        # The surviving clauses still unit-propagate.
        survivor = db.clauses[0]
        first_var = survivor.literals[0].var
        second_var = survivor.literals[1].var
        third_var = survivor.literals[2].var
        store.assign_bool(first_var, 0, "t")
        assert db.on_var_event(first_var) is None
        store.assign_bool(second_var, 0, "t")
        assert db.on_var_event(second_var) is None
        assert store.bool_value(third_var) == 1
