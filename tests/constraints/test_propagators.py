"""Tests for the constraint propagators, checked against brute force."""

import itertools

import pytest

from repro.intervals import Interval
from repro.constraints import (
    BoolGateProp,
    ComparatorProp,
    Conflict,
    DomainStore,
    LinearEqProp,
    MuxProp,
    Variable,
)
from repro.rtl.types import OpKind


def make_vars(*widths):
    return [
        Variable(index=i, name=f"v{i}", width=w) for i, w in enumerate(widths)
    ]


class TestLinearEqProp:
    def test_forward_add(self):
        variables = make_vars(4, 4, 5)
        store = DomainStore(variables)
        # v0 + v1 - v2 == 0
        prop = LinearEqProp([1, 1, -1], variables, 0)
        store.narrow(variables[0], Interval(2, 3), "t")
        store.narrow(variables[1], Interval(5, 5), "t")
        assert prop.propagate(store) is None
        assert store.domain(variables[2]) == Interval(7, 8)

    def test_backward_add(self):
        variables = make_vars(4, 4, 5)
        store = DomainStore(variables)
        prop = LinearEqProp([1, 1, -1], variables, 0)
        store.narrow(variables[2], Interval(7, 7), "t")
        store.narrow(variables[0], Interval(3, 3), "t")
        assert prop.propagate(store) is None
        assert store.domain(variables[1]) == Interval(4, 4)

    def test_conflict(self):
        variables = make_vars(2, 2, 2)
        store = DomainStore(variables)
        prop = LinearEqProp([1, 1, -1], variables, 0)
        store.narrow(variables[0], Interval(3, 3), "t")
        store.narrow(variables[1], Interval(3, 3), "t")
        store.narrow(variables[2], Interval(0, 1), "t")
        assert isinstance(prop.propagate(store), Conflict)

    def test_coefficient_rounding(self):
        # 3*v0 == v1, v1 in <5, 7>: only v0 = 2 (v1 = 6) survives.
        variables = make_vars(4, 4)
        store = DomainStore(variables)
        prop = LinearEqProp([3, -1], variables, 0)
        store.narrow(variables[1], Interval(5, 7), "t")
        assert prop.propagate(store) is None
        assert store.domain(variables[0]) == Interval(2, 2)
        assert store.domain(variables[1]) == Interval(6, 6)

    def test_zero_coefficient_rejected(self):
        variables = make_vars(2, 2)
        with pytest.raises(Exception):
            LinearEqProp([1, 0], variables, 0)

    @pytest.mark.parametrize("seed", range(8))
    def test_soundness_random(self, seed):
        import random

        rng = random.Random(seed)
        variables = make_vars(3, 3, 3)
        store = DomainStore(variables)
        coeffs = [rng.choice([-3, -2, -1, 1, 2, 3]) for _ in range(3)]
        constant = rng.randint(-5, 15)
        for var in variables:
            lo = rng.randint(0, 7)
            hi = rng.randint(lo, 7)
            store.narrow(var, Interval(lo, hi), "t")
        before = [store.domain(v) for v in variables]
        solutions = [
            point
            for point in itertools.product(*(list(d) for d in before))
            if sum(c * x for c, x in zip(coeffs, point)) == constant
        ]
        prop = LinearEqProp(coeffs, variables, constant)
        conflict = prop.propagate(store)
        if conflict is not None:
            assert not solutions
            return
        after = [store.domain(v) for v in variables]
        for point in solutions:
            for value, domain in zip(point, after):
                assert value in domain


class TestMuxProp:
    def _setup(self):
        variables = make_vars(4, 1, 4, 4)  # out, sel, then, else
        store = DomainStore(variables)
        prop = MuxProp(variables[0], variables[1], variables[2], variables[3])
        return variables, store, prop

    def test_selected_then(self):
        variables, store, prop = self._setup()
        store.assign_bool(variables[1], 1, "t")
        store.narrow(variables[2], Interval(5, 9), "t")
        assert prop.propagate(store) is None
        assert store.domain(variables[0]) == Interval(5, 9)

    def test_selected_else(self):
        variables, store, prop = self._setup()
        store.assign_bool(variables[1], 0, "t")
        store.narrow(variables[3], Interval(2, 2), "t")
        assert prop.propagate(store) is None
        assert store.domain(variables[0]) == Interval(2, 2)

    def test_output_narrows_back_to_selected_input(self):
        variables, store, prop = self._setup()
        store.assign_bool(variables[1], 1, "t")
        store.narrow(variables[0], Interval(3, 4), "t")
        assert prop.propagate(store) is None
        assert store.domain(variables[2]) == Interval(3, 4)
        # The unselected input is untouched.
        assert store.domain(variables[3]) == Interval(0, 15)

    def test_unselected_forward_hull(self):
        variables, store, prop = self._setup()
        store.narrow(variables[2], Interval(2, 3), "t")
        store.narrow(variables[3], Interval(8, 9), "t")
        assert prop.propagate(store) is None
        assert store.domain(variables[0]) == Interval(2, 9)

    def test_select_implied_when_branch_impossible(self):
        # Fig. 4(b) shape: out incompatible with 'then' forces sel = 0 —
        # only with the strengthened (ablation) backward rule enabled.
        variables = make_vars(4, 1, 4, 4)
        store = DomainStore(variables)
        prop = MuxProp(*variables, imply_select=True)
        store.narrow(variables[0], Interval(5, 5), "t")
        store.narrow(variables[2], Interval(6, 7), "t")
        assert prop.propagate(store) is None
        assert store.bool_value(variables[1]) == 0
        assert store.domain(variables[3]) == Interval(5, 5)

    def test_select_not_implied_by_default(self):
        # Paper-faithful Ddeduce: the select stays free; the structural
        # Decide is responsible for picking it (Figure 4).
        variables, store, prop = self._setup()
        store.narrow(variables[0], Interval(5, 5), "t")
        store.narrow(variables[2], Interval(6, 7), "t")
        assert prop.propagate(store) is None
        assert store.bool_value(variables[1]) is None

    def test_conflict_when_no_branch_possible(self):
        variables, store, prop = self._setup()
        store.narrow(variables[0], Interval(5, 5), "t")
        store.narrow(variables[2], Interval(6, 7), "t")
        store.narrow(variables[3], Interval(0, 2), "t")
        assert isinstance(prop.propagate(store), Conflict)

    def test_conflict_selected_mismatch(self):
        variables, store, prop = self._setup()
        store.assign_bool(variables[1], 1, "t")
        store.narrow(variables[0], Interval(0, 2), "t")
        store.narrow(variables[2], Interval(5, 7), "t")
        assert isinstance(prop.propagate(store), Conflict)

    def test_exhaustive_soundness(self):
        # All (out, sel, then, else) solutions survive propagation for a
        # selection of starting boxes.
        cases = [
            (Interval(0, 7), Interval(0, 1), Interval(2, 5), Interval(4, 7)),
            (Interval(3, 3), Interval(0, 1), Interval(0, 2), Interval(3, 7)),
            (Interval(0, 7), Interval(1, 1), Interval(0, 7), Interval(0, 0)),
        ]
        for boxes in cases:
            variables = make_vars(3, 1, 3, 3)
            store = DomainStore(variables)
            for var, box in zip(variables, boxes):
                store.narrow(var, box, "t")
            prop = MuxProp(*variables)
            solutions = [
                (o, s, t, e)
                for o in boxes[0]
                for s in boxes[1]
                for t in boxes[2]
                for e in boxes[3]
                if o == (t if s else e)
            ]
            conflict = prop.propagate(store)
            if conflict is not None:
                assert not solutions
                continue
            for o, s, t, e in solutions:
                assert o in store.domain(variables[0])
                assert s in store.domain(variables[1])
                assert t in store.domain(variables[2])
                assert e in store.domain(variables[3])


class TestComparatorProp:
    @pytest.mark.parametrize(
        "kind", [OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.LE, OpKind.GT, OpKind.GE]
    )
    def test_exhaustive_3bit(self, kind):
        semantics = {
            OpKind.EQ: lambda a, b: a == b,
            OpKind.NE: lambda a, b: a != b,
            OpKind.LT: lambda a, b: a < b,
            OpKind.LE: lambda a, b: a <= b,
            OpKind.GT: lambda a, b: a > b,
            OpKind.GE: lambda a, b: a >= b,
        }[kind]
        for pred_fix in (None, 0, 1):
            for x_box in (Interval(0, 7), Interval(2, 5), Interval(3, 3)):
                for y_box in (Interval(0, 7), Interval(4, 6), Interval(3, 3)):
                    variables = make_vars(1, 3, 3)
                    store = DomainStore(variables)
                    store.narrow(variables[1], x_box, "t")
                    store.narrow(variables[2], y_box, "t")
                    if pred_fix is not None:
                        store.assign_bool(variables[0], pred_fix, "t")
                    prop = ComparatorProp(
                        variables[0], kind, variables[1], variables[2]
                    )
                    solutions = [
                        (p, a, b)
                        for a in x_box
                        for b in y_box
                        for p in ((pred_fix,) if pred_fix is not None else (0, 1))
                        if int(semantics(a, b)) == p
                    ]
                    conflict = prop.propagate(store)
                    if conflict is not None:
                        assert not solutions
                        continue
                    for p, a, b in solutions:
                        assert p in store.domain(variables[0])
                        assert a in store.domain(variables[1])
                        assert b in store.domain(variables[2])

    def test_forward_decides_predicate(self):
        variables = make_vars(1, 3, 3)
        store = DomainStore(variables)
        store.narrow(variables[1], Interval(0, 2), "t")
        store.narrow(variables[2], Interval(5, 7), "t")
        prop = ComparatorProp(variables[0], OpKind.LT, variables[1], variables[2])
        assert prop.propagate(store) is None
        assert store.bool_value(variables[0]) == 1

    def test_backward_narrows_paper_eq3(self):
        variables = make_vars(1, 4, 4)
        store = DomainStore(variables)
        store.assign_bool(variables[0], 1, "t")
        prop = ComparatorProp(variables[0], OpKind.LT, variables[1], variables[2])
        assert prop.propagate(store) is None
        assert store.domain(variables[1]) == Interval(0, 14)
        assert store.domain(variables[2]) == Interval(1, 15)

    def test_gt_normalised(self):
        variables = make_vars(1, 3, 3)
        store = DomainStore(variables)
        store.assign_bool(variables[0], 1, "t")
        prop = ComparatorProp(variables[0], OpKind.GT, variables[1], variables[2])
        assert prop.propagate(store) is None
        assert store.domain(variables[1]) == Interval(1, 7)
        assert store.domain(variables[2]) == Interval(0, 6)

    def test_eq_false_with_point_trims(self):
        variables = make_vars(1, 3, 3)
        store = DomainStore(variables)
        store.assign_bool(variables[0], 0, "t")
        store.narrow(variables[1], Interval(7, 7), "t")
        prop = ComparatorProp(variables[0], OpKind.EQ, variables[1], variables[2])
        assert prop.propagate(store) is None
        assert store.domain(variables[2]) == Interval(0, 6)

    def test_conflict(self):
        variables = make_vars(1, 3, 3)
        store = DomainStore(variables)
        store.assign_bool(variables[0], 1, "t")
        store.narrow(variables[1], Interval(5, 7), "t")
        store.narrow(variables[2], Interval(0, 3), "t")
        prop = ComparatorProp(variables[0], OpKind.LT, variables[1], variables[2])
        assert isinstance(prop.propagate(store), Conflict)


class TestBoolGateProp:
    @pytest.mark.parametrize(
        "kind",
        [OpKind.AND, OpKind.OR, OpKind.NAND, OpKind.NOR, OpKind.XOR, OpKind.XNOR],
    )
    def test_exhaustive_binary(self, kind):
        semantics = {
            OpKind.AND: lambda a, b: a & b,
            OpKind.OR: lambda a, b: a | b,
            OpKind.NAND: lambda a, b: 1 - (a & b),
            OpKind.NOR: lambda a, b: 1 - (a | b),
            OpKind.XOR: lambda a, b: a ^ b,
            OpKind.XNOR: lambda a, b: 1 - (a ^ b),
        }[kind]
        # Try every partial assignment of (out, a, b).
        for out_v in (None, 0, 1):
            for a_v in (None, 0, 1):
                for b_v in (None, 0, 1):
                    variables = make_vars(1, 1, 1)
                    store = DomainStore(variables)
                    for var, value in zip(variables, (out_v, a_v, b_v)):
                        if value is not None:
                            store.assign_bool(var, value, "t")
                    prop = BoolGateProp(kind, variables[0], variables[1:])
                    solutions = [
                        (o, a, b)
                        for o in ((out_v,) if out_v is not None else (0, 1))
                        for a in ((a_v,) if a_v is not None else (0, 1))
                        for b in ((b_v,) if b_v is not None else (0, 1))
                        if semantics(a, b) == o
                    ]
                    conflict = prop.propagate(store)
                    if conflict is not None:
                        assert not solutions
                        continue
                    for o, a, b in solutions:
                        assert o in store.domain(variables[0])
                        assert a in store.domain(variables[1])
                        assert b in store.domain(variables[2])
                    # Completeness: a forced variable must be assigned.
                    for position, var in enumerate(variables):
                        values = {sol[position] for sol in solutions}
                        if len(values) == 1:
                            assert store.bool_value(var) == values.pop()

    def test_not_both_directions(self):
        variables = make_vars(1, 1)
        store = DomainStore(variables)
        prop = BoolGateProp(OpKind.NOT, variables[0], variables[1:])
        store.assign_bool(variables[1], 1, "t")
        prop.propagate(store)
        assert store.bool_value(variables[0]) == 0

        variables = make_vars(1, 1)
        store = DomainStore(variables)
        prop = BoolGateProp(OpKind.NOT, variables[0], variables[1:])
        store.assign_bool(variables[0], 1, "t")
        prop.propagate(store)
        assert store.bool_value(variables[1]) == 0

    def test_three_input_and_backward(self):
        variables = make_vars(1, 1, 1, 1)
        store = DomainStore(variables)
        prop = BoolGateProp(OpKind.AND, variables[0], variables[1:])
        store.assign_bool(variables[0], 1, "t")
        prop.propagate(store)
        assert all(store.bool_value(v) == 1 for v in variables[1:])

    def test_and_last_open_input_forced(self):
        variables = make_vars(1, 1, 1)
        store = DomainStore(variables)
        prop = BoolGateProp(OpKind.AND, variables[0], variables[1:])
        store.assign_bool(variables[0], 0, "t")
        store.assign_bool(variables[1], 1, "t")
        prop.propagate(store)
        assert store.bool_value(variables[2]) == 0
