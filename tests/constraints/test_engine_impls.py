"""Engine-impl plumbing: selection, fallback, caching, and parity.

The three propagation cores (``reference``, ``specialized``,
``vectorized``) are one engine behaviourally; these tests cover the
plumbing around that contract — config validation, the NumPy fallback,
cache lifecycle under :func:`reset_interval_cache`, the engine-name
suffix convention, and bit-for-bit parity of the raw-propagation drill
and the incremental session sweep across impls.
"""

from __future__ import annotations

import pytest

from repro.bmc import make_bmc_instance
from repro.bmc.session import bmc_sweep_session
from repro.constraints import compile_circuit
from repro.constraints import compile as compile_mod
from repro.constraints import fastpath
from repro.constraints.engine import PropagationEngine
from repro.constraints.store import DomainStore
from repro.core import SolverConfig
from repro.errors import SolverError
from repro.harness.runner import (
    run_engine,
    run_prop_drill,
    split_engine_impl,
)
from repro.intervals import reset_interval_cache
from repro.itc99 import instance as itc99_instance
from repro.itc99 import random_safety_property, random_sequential_circuit
from repro.itc99.generator import random_combinational_circuit
from repro.rtl.levelize import (
    transitive_fanout_count,
    transitive_fanout_counts,
)

ALL_IMPLS = ("reference", "specialized", "vectorized")


def _available_impls():
    if fastpath.numpy_available():
        return ALL_IMPLS
    return ("reference", "specialized")


# ----------------------------------------------------------------------
# Selection and fallback
# ----------------------------------------------------------------------
def test_unknown_engine_impl_rejected():
    with pytest.raises(SolverError, match="unknown engine_impl"):
        fastpath.resolve_engine_impl("turbo")


def test_unknown_engine_impl_rejected_through_engine():
    circuit = random_combinational_circuit(0, num_word_inputs=2, width=3)
    system = compile_circuit(circuit)
    store = DomainStore(system.variables)
    with pytest.raises(SolverError, match="unknown engine_impl"):
        PropagationEngine(store, system.propagators, impl="turbo")


def test_vectorized_fallback_warns_once(monkeypatch, caplog):
    monkeypatch.setattr(fastpath, "_NUMPY_STATE", [None])
    monkeypatch.setattr(fastpath, "_WARNED", [False])
    with caplog.at_level("WARNING", logger="repro"):
        assert fastpath.resolve_engine_impl("vectorized") == "reference"
        assert fastpath.resolve_engine_impl("vectorized") == "reference"
    warnings = [
        r for r in caplog.records if "falling back to 'reference'" in r.message
    ]
    assert len(warnings) == 1
    assert "pip install .[fast]" in warnings[0].message


def test_split_engine_impl():
    assert split_engine_impl("hdpll+sp") == ("hdpll+sp", "reference")
    assert split_engine_impl("hdpll+sp-ref") == ("hdpll+sp", "reference")
    assert split_engine_impl("hdpll+sp-spec") == ("hdpll+sp", "specialized")
    assert split_engine_impl("bmc-session-vec") == ("bmc-session", "vectorized")
    assert split_engine_impl("prop-spec") == ("prop", "specialized")


# ----------------------------------------------------------------------
# Cache lifecycle
# ----------------------------------------------------------------------
def test_reset_interval_cache_clears_kernel_tables():
    circuit = random_combinational_circuit(3, num_word_inputs=2, width=3)
    system = compile_circuit(circuit)
    signature = compile_mod.netlist_signature(circuit.topological_nodes())
    store = DomainStore(system.variables)
    PropagationEngine(
        store, system.propagators, impl="specialized", plan_key=signature
    )
    assert signature in compile_mod._KERNEL_PLAN_CACHE
    assert compile_mod._KERNEL_FACTORIES

    reset_interval_cache()
    assert not compile_mod._KERNEL_PLAN_CACHE
    assert not compile_mod._KERNEL_FACTORIES
    assert compile_mod.kernel_plan_stats() == (0, 0)

    # A rebuild after the reset is a miss again, not a stale hit.
    store = DomainStore(system.variables)
    engine = PropagationEngine(
        store, system.propagators, impl="specialized", plan_key=signature
    )
    assert engine.kernel_plan_misses == 1
    assert engine.kernel_plan_hits == 0


def test_plan_cache_shared_across_engines():
    circuit = random_combinational_circuit(4, num_word_inputs=2, width=3)
    system = compile_circuit(circuit)
    signature = compile_mod.netlist_signature(circuit.topological_nodes())
    reset_interval_cache()
    first = PropagationEngine(
        DomainStore(system.variables),
        system.propagators,
        impl="specialized",
        plan_key=signature,
    )
    second = PropagationEngine(
        DomainStore(system.variables),
        system.propagators,
        impl="specialized",
        plan_key=signature,
    )
    assert first.kernel_plan_misses == 1
    assert second.kernel_plan_hits == 1


# ----------------------------------------------------------------------
# Parity of the raw-propagation drill and the session sweep
# ----------------------------------------------------------------------
def test_prop_drill_parity_across_impls():
    inst = itc99_instance("b01_1", 10)
    records = {
        impl: run_prop_drill(inst, impl, repeats=2)
        for impl in _available_impls()
    }
    base = records["reference"]
    assert base.status in ("S", "U")
    assert base.propagations > 0
    for impl, record in records.items():
        assert record.status == base.status, impl
        assert record.propagations == base.propagations, impl
        assert record.narrowings == base.narrowings, impl
        assert record.propagator_wakeups == base.propagator_wakeups, impl


def test_prop_engine_runs_with_suffix():
    inst = itc99_instance("b01_1", 10)
    record = run_engine(inst, "prop-spec", timeout=60)
    assert record.status in ("S", "U")
    assert record.engine == "prop-spec"
    assert record.props_per_sec > 0


def test_session_sweep_parity_across_impls():
    circuit = random_sequential_circuit(11, width=3, operations=10)
    prop = random_safety_property()
    sweeps = {}
    for impl in _available_impls():
        config = SolverConfig(predicate_learning=True, engine_impl=impl)
        sweeps[impl] = bmc_sweep_session(circuit, prop, 4, config)
    base = sweeps["reference"]
    for impl, results in sweeps.items():
        assert [r.status for r in results] == [r.status for r in base], impl
        assert [r.stats.decisions for r in results] == [
            r.stats.decisions for r in base
        ], impl
        assert [r.stats.conflicts for r in results] == [
            r.stats.conflicts for r in base
        ], impl
        assert [r.stats.propagations for r in results] == [
            r.stats.propagations for r in base
        ], impl


# ----------------------------------------------------------------------
# Batched activity seeding
# ----------------------------------------------------------------------
def test_transitive_fanout_counts_matches_per_net_walk():
    for seed in range(6):
        circuit = random_sequential_circuit(seed, width=3, operations=12)
        instance = make_bmc_instance(circuit, random_safety_property(), 3)
        unrolled = instance.circuit
        nets = [node.output for node in unrolled.nodes] + list(
            unrolled.inputs
        )
        batched = transitive_fanout_counts(unrolled, nets)
        for net in nets:
            assert batched[net.index] == transitive_fanout_count(net), (
                seed,
                net.name,
            )
