"""Tests for the domain store, trail and backtracking."""

import pytest

from repro.errors import SolverError
from repro.intervals import Interval
from repro.constraints import (
    ASSUMPTION,
    DECISION,
    Conflict,
    DomainStore,
    Event,
    Variable,
)


def make_vars(*widths):
    return [
        Variable(index=i, name=f"v{i}", width=w) for i, w in enumerate(widths)
    ]


class TestBasics:
    def test_initial_domains(self):
        variables = make_vars(1, 4)
        store = DomainStore(variables)
        assert store.domain(variables[0]) == Interval(0, 1)
        assert store.domain(variables[1]) == Interval(0, 15)
        assert not store.is_assigned(variables[0])
        assert store.value(variables[0]) is None

    def test_dense_index_check(self):
        bad = [Variable(index=5, name="x", width=1)]
        with pytest.raises(SolverError):
            DomainStore(bad)

    def test_narrow_records_event(self):
        variables = make_vars(4)
        store = DomainStore(variables)
        outcome = store.narrow(variables[0], Interval(2, 9), "tag")
        assert isinstance(outcome, Event)
        assert store.domain(variables[0]) == Interval(2, 9)
        assert store.latest_event[0] == 0

    def test_narrow_no_change_returns_none(self):
        variables = make_vars(4)
        store = DomainStore(variables)
        assert store.narrow(variables[0], Interval(0, 15), "tag") is None
        assert store.trail == []

    def test_narrow_conflict(self):
        variables = make_vars(4)
        store = DomainStore(variables)
        store.narrow(variables[0], Interval(0, 3), "tag")
        outcome = store.narrow(variables[0], Interval(10, 12), "tag")
        assert isinstance(outcome, Conflict)
        # Domain is unchanged after a conflicting narrow.
        assert store.domain(variables[0]) == Interval(0, 3)

    def test_assign_bool(self):
        variables = make_vars(1)
        store = DomainStore(variables)
        store.assign_bool(variables[0], 1, "tag")
        assert store.bool_value(variables[0]) == 1

    def test_assign_bool_range_check(self):
        variables = make_vars(1)
        store = DomainStore(variables)
        with pytest.raises(SolverError):
            store.assign_bool(variables[0], 2, "tag")


class TestLevelsAndBacktracking:
    def test_decide_opens_level(self):
        variables = make_vars(1, 1)
        store = DomainStore(variables)
        event = store.decide_bool(variables[0], 1)
        assert store.decision_level == 1
        assert event.is_decision
        assert event.level == 1

    def test_decide_on_assigned_var_raises(self):
        variables = make_vars(1)
        store = DomainStore(variables)
        store.assign_bool(variables[0], 0, "tag")
        with pytest.raises(SolverError):
            store.decide_bool(variables[0], 0)

    def test_backtrack_restores_domains(self):
        variables = make_vars(1, 4)
        store = DomainStore(variables)
        store.narrow(variables[1], Interval(0, 9), ASSUMPTION)
        store.decide_bool(variables[0], 1)
        store.narrow(variables[1], Interval(3, 5), "prop")
        store.backtrack_to(0)
        assert store.decision_level == 0
        assert store.domain(variables[1]) == Interval(0, 9)
        assert store.domain(variables[0]) == Interval(0, 1)
        # Level-0 assumption survives.
        assert len(store.trail) == 1

    def test_backtrack_restores_latest_event_chain(self):
        variables = make_vars(4)
        store = DomainStore(variables)
        store.narrow(variables[0], Interval(0, 12), "a")
        store.push_level()
        store.narrow(variables[0], Interval(2, 9), "b")
        store.narrow(variables[0], Interval(4, 6), "c")
        store.backtrack_to(0)
        assert store.latest_event[0] == 0
        assert store.domain(variables[0]) == Interval(0, 12)

    def test_backtrack_to_same_level_is_noop(self):
        variables = make_vars(1)
        store = DomainStore(variables)
        store.decide_bool(variables[0], 1)
        store.backtrack_to(1)
        assert store.bool_value(variables[0]) == 1

    def test_backtrack_invalid_level(self):
        store = DomainStore(make_vars(1))
        with pytest.raises(SolverError):
            store.backtrack_to(3)
        with pytest.raises(SolverError):
            store.backtrack_to(-1)

    def test_partial_backtrack(self):
        variables = make_vars(1, 1, 1)
        store = DomainStore(variables)
        store.decide_bool(variables[0], 1)
        store.decide_bool(variables[1], 0)
        store.decide_bool(variables[2], 1)
        store.backtrack_to(1)
        assert store.bool_value(variables[0]) == 1
        assert store.bool_value(variables[1]) is None
        assert store.bool_value(variables[2]) is None

    def test_assume_only_at_level_zero(self):
        variables = make_vars(4)
        store = DomainStore(variables)
        store.push_level()
        with pytest.raises(SolverError):
            store.assume(variables[0], Interval(0, 3))


class TestImplicationGraph:
    def test_antecedents_capture_latest_events(self):
        variables = make_vars(1, 1, 4)
        store = DomainStore(variables)
        store.assign_bool(variables[0], 1, DECISION)
        store.assign_bool(variables[1], 0, DECISION)
        outcome = store.narrow(
            variables[2], Interval(3, 7), "prop", involved=variables
        )
        assert isinstance(outcome, Event)
        antecedent_vars = {store.event(a).var.name for a in outcome.antecedents}
        assert antecedent_vars == {"v0", "v1"}

    def test_own_previous_event_is_antecedent(self):
        variables = make_vars(4)
        store = DomainStore(variables)
        store.narrow(variables[0], Interval(0, 9), "first")
        outcome = store.narrow(
            variables[0], Interval(2, 5), "second", involved=variables
        )
        assert isinstance(outcome, Event)
        assert outcome.antecedents == (0,)

    def test_decision_has_no_antecedents(self):
        variables = make_vars(1)
        store = DomainStore(variables)
        event = store.decide_bool(variables[0], 1)
        assert event.antecedents == ()

    def test_events_at_level(self):
        variables = make_vars(1, 1)
        store = DomainStore(variables)
        store.assign_bool(variables[0], 1, ASSUMPTION)
        store.decide_bool(variables[1], 0)
        level0 = list(store.events_at_level(0))
        level1 = list(store.events_at_level(1))
        assert [e.var.name for e in level0] == ["v0"]
        assert [e.var.name for e in level1] == ["v1"]
