"""Every example script must run clean — examples are part of the API.

Each script is executed in-process (fast, and coverage-visible); the
scripts end with assertions, so a zero-noise run means the documented
behaviour still holds.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script, capsys, monkeypatch):
    # compare_solvers iterates every engine incl. the deliberately slow
    # comparators; pin it to a tiny instance.
    if script.stem == "compare_solvers":
        monkeypatch.setattr(sys, "argv", [str(script), "b01_1", "10"])
    else:
        monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.stem} produced no output"


def test_example_inventory():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "figure1_recursive_learning",
        "figure2_predicate_learning",
        "figure4_structural_search",
        "bmc_counterexample",
        "compare_solvers",
        "equivalence_checking",
        "unbounded_proof",
    } <= names
