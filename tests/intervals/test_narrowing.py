"""Unit tests for the backward narrowing rules."""

import pytest

from repro.intervals import (
    Interval,
    narrow_add,
    narrow_concat,
    narrow_eq,
    narrow_le,
    narrow_lt,
    narrow_mul_const,
    narrow_ne,
    narrow_neg,
    narrow_shift_left,
    narrow_shift_right,
    narrow_sub,
)


def iv(lo, hi):
    return Interval(lo, hi)


class TestNarrowAdd:
    def test_forward_only(self):
        z, x, y = narrow_add(iv(0, 100), iv(1, 3), iv(10, 20))
        assert z == iv(11, 23)
        assert x == iv(1, 3)
        assert y == iv(10, 20)

    def test_backward(self):
        # z pinned to 5, x in <0,3>, y in <0,3>: x >= 2, y >= 2.
        z, x, y = narrow_add(iv(5, 5), iv(0, 3), iv(0, 3))
        assert z == iv(5, 5)
        assert x == iv(2, 3)
        assert y == iv(2, 3)

    def test_conflict(self):
        assert narrow_add(iv(100, 200), iv(0, 3), iv(0, 3)) is None

    def test_point_solve(self):
        z, x, y = narrow_add(iv(7, 7), iv(3, 3), iv(0, 15))
        assert y == iv(4, 4)


class TestNarrowSub:
    def test_backward(self):
        z, x, y = narrow_sub(iv(0, 0), iv(0, 15), iv(5, 5))
        assert x == iv(5, 5)

    def test_conflict(self):
        assert narrow_sub(iv(10, 20), iv(0, 3), iv(0, 3)) is None

    def test_paper_eq3_shape(self):
        # x - z in <-15, -1> encodes x - z < 0 over <0,15> words.
        d, x, z = narrow_sub(iv(-15, -1), iv(0, 15), iv(0, 15))
        assert x == iv(0, 14)
        assert z == iv(1, 15)


class TestNarrowNeg:
    def test_roundtrip(self):
        z, x = narrow_neg(iv(-100, 100), iv(2, 5))
        assert z == iv(-5, -2)
        assert x == iv(2, 5)

    def test_conflict(self):
        assert narrow_neg(iv(1, 5), iv(2, 5)) is None


class TestNarrowMulConst:
    def test_positive_k(self):
        z, x = narrow_mul_const(iv(0, 10), iv(0, 100), 3)
        assert z == iv(0, 10)
        assert x == iv(0, 3)

    def test_exact_divisibility_not_required(self):
        # z in <5, 7>, k = 3: x can only be 2 (6 is the only multiple of 3).
        z, x = narrow_mul_const(iv(5, 7), iv(0, 100), 3)
        assert x == iv(2, 2)

    def test_negative_k(self):
        z, x = narrow_mul_const(iv(-10, -4), iv(-100, 100), -2)
        assert x == iv(2, 5)

    def test_zero_k(self):
        z, x = narrow_mul_const(iv(-3, 8), iv(1, 9), 0)
        assert z == iv(0, 0)
        assert x == iv(1, 9)

    def test_zero_k_conflict(self):
        assert narrow_mul_const(iv(2, 8), iv(1, 9), 0) is None

    def test_no_multiple_in_range(self):
        assert narrow_mul_const(iv(7, 8), iv(0, 1), 3) is None


class TestNarrowShifts:
    def test_shift_left(self):
        z, x = narrow_shift_left(iv(8, 12), iv(0, 100), 2)
        assert x == iv(2, 3)

    def test_shift_right_backward_widens(self):
        # z = x >> 2 pinned to 1 means x in <4, 7>.
        z, x = narrow_shift_right(iv(1, 1), iv(0, 100), 2)
        assert x == iv(4, 7)

    def test_shift_right_conflict(self):
        assert narrow_shift_right(iv(9, 10), iv(0, 7), 2) is None


class TestNarrowConcat:
    def test_forward(self):
        # z = {hi:3bits, lo:2bits}; hi=<1>, lo=<2> => z = 1*4+2 = 6.
        z, hi, lo = narrow_concat(iv(0, 31), iv(1, 1), iv(2, 2), 2)
        assert z == iv(6, 6)

    def test_backward(self):
        # z pinned to 13 = 3*4 + 1 => hi = 3, lo = 1.
        z, hi, lo = narrow_concat(iv(13, 13), iv(0, 7), iv(0, 3), 2)
        assert hi == iv(3, 3)
        assert lo == iv(1, 1)

    def test_conflict(self):
        assert narrow_concat(iv(100, 120), iv(0, 3), iv(0, 3), 2) is None


class TestRelations:
    def test_le(self):
        x, y = narrow_le(iv(0, 15), iv(0, 10))
        assert x == iv(0, 10)
        assert y == iv(0, 10)

    def test_le_conflict(self):
        assert narrow_le(iv(11, 15), iv(0, 10)) is None

    def test_lt_paper_example(self):
        # Section 2.2: x < z with x, z in <0, 15>.
        x, z = narrow_lt(iv(0, 15), iv(0, 15))
        assert x == iv(0, 14)
        assert z == iv(1, 15)

    def test_lt_conflict_on_equal_points(self):
        assert narrow_lt(iv(5, 5), iv(5, 5)) is None

    def test_eq(self):
        x, y = narrow_eq(iv(0, 10), iv(5, 20))
        assert x == iv(5, 10)
        assert y == iv(5, 10)

    def test_eq_conflict(self):
        assert narrow_eq(iv(0, 4), iv(5, 20)) is None

    def test_ne_trims_endpoint(self):
        x, y = narrow_ne(iv(0, 10), iv(10, 10))
        assert x == iv(0, 9)

    def test_ne_conflict_same_point(self):
        assert narrow_ne(iv(3, 3), iv(3, 3)) is None

    def test_ne_interior_hole_ignored(self):
        x, y = narrow_ne(iv(0, 10), iv(5, 5))
        assert x == iv(0, 10)

    def test_ne_both_points_distinct(self):
        x, y = narrow_ne(iv(2, 2), iv(3, 3))
        assert x == iv(2, 2)
        assert y == iv(3, 3)


def _solutions_add(z, x, y):
    return [
        (zz, xx, yy)
        for xx in x
        for yy in y
        for zz in z
        if zz == xx + yy
    ]


@pytest.mark.parametrize(
    "z, x, y",
    [
        (iv(0, 6), iv(0, 5), iv(0, 5)),
        (iv(3, 3), iv(0, 7), iv(2, 6)),
        (iv(-4, 2), iv(-3, 3), iv(-3, 3)),
    ],
)
def test_narrow_add_exhaustive_soundness(z, x, y):
    """No (z, x, y) solution of z = x + y is lost by narrowing."""
    result = narrow_add(z, x, y)
    sols = _solutions_add(z, x, y)
    if result is None:
        assert not sols
        return
    nz, nx, ny = result
    for zz, xx, yy in sols:
        assert zz in nz and xx in nx and yy in ny
