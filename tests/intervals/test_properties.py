"""Property-based tests for interval arithmetic and narrowing.

Every forward operation must be *sound* (image is contained in the result)
and, for the operators where the hull is exact, *tight* (result bounds are
attained).  Every narrowing rule must be sound (never drops a point that
participates in a solution of its constraint) and monotonic (output
intervals are subsets of the inputs).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals import (
    Interval,
    narrow_add,
    narrow_concat,
    narrow_eq,
    narrow_le,
    narrow_lt,
    narrow_mul_const,
    narrow_ne,
    narrow_shift_right,
    narrow_sub,
)


@st.composite
def intervals(draw, lo=-50, hi=50):
    a = draw(st.integers(min_value=lo, max_value=hi))
    b = draw(st.integers(min_value=lo, max_value=hi))
    return Interval(min(a, b), max(a, b))


@st.composite
def small_intervals(draw, lo=0, hi=15):
    a = draw(st.integers(min_value=lo, max_value=hi))
    b = draw(st.integers(min_value=lo, max_value=hi))
    return Interval(min(a, b), max(a, b))


class TestForwardSoundnessAndTightness:
    @given(intervals(), intervals())
    def test_add_exact(self, x, y):
        z = x.add(y)
        values = {a + b for a in (x.lo, x.hi) for b in (y.lo, y.hi)}
        assert z.lo == min(values)
        assert z.hi == max(values)
        assert x.lo + y.lo in z
        assert x.hi + y.hi in z

    @given(small_intervals(), small_intervals())
    def test_sub_sound_and_tight(self, x, y):
        z = x.sub(y)
        all_values = [a - b for a in x for b in y]
        assert min(all_values) == z.lo
        assert max(all_values) == z.hi

    @given(small_intervals(lo=-10, hi=10), small_intervals(lo=-10, hi=10))
    def test_mul_sound_and_tight_hull(self, x, y):
        z = x.mul(y)
        all_values = [a * b for a in x for b in y]
        assert min(all_values) >= z.lo
        assert max(all_values) <= z.hi
        # Endpoint products attain the hull bounds.
        corner = [a * b for a in (x.lo, x.hi) for b in (y.lo, y.hi)]
        assert z.lo == min(corner)
        assert z.hi == max(corner)

    @given(intervals(), st.integers(min_value=-6, max_value=6))
    def test_mul_const_exact(self, x, k):
        z = x.mul_const(k)
        assert x.lo * k in z
        assert x.hi * k in z
        assert z.size <= abs(k) * (x.size - 1) + 1

    @given(small_intervals(lo=-20, hi=20), st.integers(min_value=1, max_value=5))
    def test_floordiv_sound_and_tight(self, x, k):
        z = x.floordiv_const(k)
        all_values = [a // k for a in x]
        assert min(all_values) == z.lo
        assert max(all_values) == z.hi

    @given(intervals(), intervals())
    def test_union_hull_contains_both(self, x, y):
        u = x.union_hull(y)
        assert u.contains_interval(x)
        assert u.contains_interval(y)

    @given(intervals(), intervals())
    def test_intersect_agrees_with_membership(self, x, y):
        meet = x.intersect(y)
        common = [v for v in range(-60, 61) if v in x and v in y]
        if meet is None:
            assert not common
        else:
            assert common == list(meet)

    @given(intervals(), intervals())
    def test_difference_sound(self, x, y):
        diff = x.difference(y)
        exact = {v for v in x if v not in y}
        if diff is None:
            assert not exact
        else:
            # Sound over-approximation: the true difference is contained.
            assert exact <= set(diff)
            # And never includes points outside x.
            assert x.contains_interval(diff)


def _check_narrowing(result, inputs, solutions):
    """Shared oracle: soundness + monotonicity of a narrowing result."""
    if result is None:
        assert not solutions
        return
    for narrowed, original in zip(result, inputs):
        assert original.contains_interval(narrowed)
    for sol in solutions:
        for value, narrowed in zip(sol, result):
            assert value in narrowed


class TestNarrowingProperties:
    @given(small_intervals(), small_intervals(), small_intervals())
    @settings(max_examples=60)
    def test_add(self, z, x, y):
        sols = [
            (c, a, b) for a in x for b in y for c in z if c == a + b
        ]
        _check_narrowing(narrow_add(z, x, y), (z, x, y), sols)

    @given(
        small_intervals(lo=-15, hi=15),
        small_intervals(),
        small_intervals(),
    )
    @settings(max_examples=60)
    def test_sub(self, z, x, y):
        sols = [
            (c, a, b) for a in x for b in y for c in z if c == a - b
        ]
        _check_narrowing(narrow_sub(z, x, y), (z, x, y), sols)

    @given(
        small_intervals(lo=-30, hi=30),
        small_intervals(lo=-10, hi=10),
        st.integers(min_value=-4, max_value=4),
    )
    @settings(max_examples=60)
    def test_mul_const(self, z, x, k):
        sols = [(c, a) for a in x for c in z if c == k * a]
        _check_narrowing(narrow_mul_const(z, x, k), (z, x), sols)

    @given(small_intervals(), small_intervals(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=60)
    def test_shift_right(self, z, x, k):
        sols = [(c, a) for a in x for c in z if c == a >> k]
        _check_narrowing(narrow_shift_right(z, x, k), (z, x), sols)

    @given(
        small_intervals(lo=0, hi=63),
        small_intervals(lo=0, hi=7),
        small_intervals(lo=0, hi=3),
    )
    @settings(max_examples=60)
    def test_concat(self, z, hi_part, lo_part):
        sols = [
            (c, h, l)
            for h in hi_part
            for l in lo_part
            for c in z
            if c == h * 4 + l
        ]
        _check_narrowing(
            narrow_concat(z, hi_part, lo_part, 2), (z, hi_part, lo_part), sols
        )

    @given(small_intervals(), small_intervals())
    @settings(max_examples=60)
    def test_le(self, x, y):
        sols = [(a, b) for a in x for b in y if a <= b]
        _check_narrowing(narrow_le(x, y), (x, y), sols)

    @given(small_intervals(), small_intervals())
    @settings(max_examples=60)
    def test_lt(self, x, y):
        sols = [(a, b) for a in x for b in y if a < b]
        _check_narrowing(narrow_lt(x, y), (x, y), sols)

    @given(small_intervals(), small_intervals())
    @settings(max_examples=60)
    def test_eq(self, x, y):
        sols = [(a, b) for a in x for b in y if a == b]
        _check_narrowing(narrow_eq(x, y), (x, y), sols)

    @given(small_intervals(), small_intervals())
    @settings(max_examples=60)
    def test_ne(self, x, y):
        sols = [(a, b) for a in x for b in y if a != b]
        _check_narrowing(narrow_ne(x, y), (x, y), sols)

    @given(small_intervals(), small_intervals(), small_intervals())
    @settings(max_examples=40)
    def test_add_idempotent_at_fixpoint(self, z, x, y):
        """Applying the rule twice gives the same result as once."""
        first = narrow_add(z, x, y)
        if first is None:
            return
        second = narrow_add(*first)
        assert second == first
