"""Unit tests for the Interval value type and forward arithmetic."""

import pytest

from repro.intervals import BOOL_DOMAIN, Interval, hull, interval_for_width


class TestConstruction:
    def test_point(self):
        p = Interval.point(5)
        assert p.lo == 5
        assert p.hi == 5
        assert p.is_point

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_bool_domain(self):
        assert BOOL_DOMAIN == Interval(0, 1)

    def test_width_domain(self):
        assert interval_for_width(3) == Interval(0, 7)
        assert interval_for_width(1) == Interval(0, 1)
        assert interval_for_width(10) == Interval(0, 1023)

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            interval_for_width(0)

    def test_hull(self):
        assert hull([3, -1, 7]) == Interval(-1, 7)

    def test_hull_empty_rejected(self):
        with pytest.raises(ValueError):
            hull([])

    def test_immutability(self):
        p = Interval(1, 2)
        with pytest.raises(Exception):
            p.lo = 0  # type: ignore[misc]


class TestSetQueries:
    def test_contains(self):
        iv = Interval(2, 5)
        assert 2 in iv
        assert 5 in iv
        assert 3 in iv
        assert 1 not in iv
        assert 6 not in iv

    def test_size(self):
        assert Interval(2, 5).size == 4
        assert Interval.point(0).size == 1

    def test_iter(self):
        assert list(Interval(2, 4)) == [2, 3, 4]

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(3, 7))
        assert Interval(0, 10).contains_interval(Interval(0, 10))
        assert not Interval(3, 7).contains_interval(Interval(0, 10))
        assert not Interval(0, 5).contains_interval(Interval(4, 6))

    def test_intersects(self):
        assert Interval(0, 5).intersects(Interval(5, 9))
        assert not Interval(0, 4).intersects(Interval(5, 9))


class TestSetOps:
    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 4).intersect(Interval(5, 9)) is None
        assert Interval(0, 5).intersect(Interval(5, 9)) == Interval.point(5)

    def test_union_hull(self):
        assert Interval(0, 2).union_hull(Interval(5, 7)) == Interval(0, 7)

    def test_difference_prefix(self):
        assert Interval(0, 9).difference(Interval(-3, 4)) == Interval(5, 9)

    def test_difference_suffix(self):
        assert Interval(0, 9).difference(Interval(6, 12)) == Interval(0, 5)

    def test_difference_covering(self):
        assert Interval(3, 4).difference(Interval(0, 9)) is None

    def test_difference_disjoint(self):
        assert Interval(0, 3).difference(Interval(5, 9)) == Interval(0, 3)

    def test_difference_hole_ignored(self):
        # Removing an interior chunk would punch a hole; kept whole (sound).
        assert Interval(0, 9).difference(Interval(4, 5)) == Interval(0, 9)


class TestForwardArith:
    def test_add(self):
        assert Interval(1, 3).add(Interval(10, 20)) == Interval(11, 23)

    def test_sub(self):
        assert Interval(1, 3).sub(Interval(10, 20)) == Interval(-19, -7)

    def test_neg(self):
        assert Interval(1, 3).neg() == Interval(-3, -1)

    def test_mul_mixed_signs(self):
        assert Interval(-2, 3).mul(Interval(-5, 4)) == Interval(-15, 12)

    def test_mul_const_positive(self):
        assert Interval(1, 3).mul_const(4) == Interval(4, 12)

    def test_mul_const_negative(self):
        assert Interval(1, 3).mul_const(-2) == Interval(-6, -2)

    def test_mul_const_zero(self):
        assert Interval(1, 3).mul_const(0) == Interval.point(0)

    def test_floordiv_const(self):
        assert Interval(0, 7).floordiv_const(2) == Interval(0, 3)
        assert Interval(1, 7).floordiv_const(2) == Interval(0, 3)
        assert Interval(-3, 7).floordiv_const(2) == Interval(-2, 3)

    def test_floordiv_negative_const(self):
        assert Interval(0, 7).floordiv_const(-2) == Interval(-4, 0)

    def test_floordiv_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            Interval(0, 7).floordiv_const(0)

    def test_shift_left(self):
        assert Interval(1, 3).shift_left(2) == Interval(4, 12)

    def test_shift_right(self):
        assert Interval(4, 12).shift_right(2) == Interval(1, 3)

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, 1).shift_left(-1)
        with pytest.raises(ValueError):
            Interval(0, 1).shift_right(-1)

    def test_paper_example_x_minus_z_negative(self):
        # From Section 2.2: x - z < 0 with x, z in <0, 15> narrows to
        # x in <0, 14>, z in <1, 15>.  Forward check of the sub image:
        assert Interval(0, 15).sub(Interval(0, 15)) == Interval(-15, 15)
