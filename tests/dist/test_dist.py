"""End-to-end distributed solves: real worker-host processes, real
solver children, one hub — SAT with model replay, UNSAT verdict
assembly, and crash-host requeue — all over a UNIX socket on localhost.

``b01_1`` at bound 10 violates its property within milliseconds (the
SAT paths); ``b02_1`` at bound 10 is UNSAT but *not* refuted during
cube generation, so its verdict genuinely assembles from per-cube
reports at the hub.  Test cost is process startup, not solving.
"""

from __future__ import annotations

import pytest

from repro.core import SolverConfig, Status
from repro.dist import solve_dist

_TIMEOUT = 120.0
_CONFIG = SolverConfig(predicate_learning=True)


def test_dist_sat_with_model_replay():
    result = solve_dist(
        "b01_1",
        10,
        hosts=2,
        jobs=1,
        timeout=_TIMEOUT,
        base_config=_CONFIG,
    )
    # ``solve_dist`` replays the model on a fresh simulator before
    # returning, so a SAT status here is a *verified* witness.
    assert result.status is Status.SAT
    assert result.model
    assert "dist: cube" in result.note
    assert result.stats.dist_hosts == 2
    assert result.stats.cubes_solved >= 1


def test_dist_unsat_all_cubes():
    result = solve_dist(
        "b02_1",
        10,
        hosts=1,
        jobs=2,
        timeout=_TIMEOUT,
        base_config=_CONFIG,
    )
    assert result.status is Status.UNSAT
    assert result.note.startswith("dist: ")
    assert "UNSAT" in result.note
    assert result.stats.dist_hosts == 1


def test_dist_crash_host_requeues_and_verdict_survives():
    result = solve_dist(
        "b01_1",
        10,
        hosts=2,
        jobs=1,
        timeout=_TIMEOUT,
        base_config=_CONFIG,
        crash_hosts=1,
    )
    assert result.status is Status.SAT
    assert result.stats.dist_requeues >= 1
    assert "requeue" in result.note


def test_dist_rejects_unknown_case():
    with pytest.raises(Exception, match="unknown|no such|instance"):
        solve_dist("no_such_case", 5, hosts=1, jobs=1, timeout=5.0)
