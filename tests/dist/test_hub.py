"""CubeHub protocol unit tests: raw :class:`HubClient` "hosts" with no
solver processes behind them, so every queue/lease/relay path is
exercised deterministically — verdict semantics, requeue on connection
drop and on lease expiry, the structural double-loss failure, the LBD
relay filter with dedup, and decided-cube notification.
"""

from __future__ import annotations

import contextlib
import time

import pytest

from repro.dist import CubeHub, DistError, HubClient
from repro.portfolio.cubes import Cube
from repro.portfolio.worker import ProblemSpec

_PROBLEM = ProblemSpec("instance", "b01_1", 10)

#: Root cube plus two splits on one assumption variable.
_CUBES = (
    Cube(()),
    Cube((("repro_t", 0, 3),)),
    Cube((("repro_t", 4, 7),)),
)


@contextlib.contextmanager
def _hub(tmp_path, **kwargs):
    hub = CubeHub(_PROBLEM, list(kwargs.pop("cubes", _CUBES)), **kwargs)
    hub.start(unix_path=str(tmp_path / "hub.sock"))
    try:
        yield hub
    finally:
        hub.close()


def _host(hub, name, slots=1):
    client = HubClient(hub.address)
    welcome = client.call({"op": "hello", "name": name, "slots": slots})
    return client, welcome


def _report(client, cube, status, model=None, worker=0):
    return client.call(
        {
            "op": "result",
            "cube": cube,
            "status": status,
            "model": model,
            "worker": worker,
            "stats": {},
            "share": None,
        }
    )


def test_hello_required_before_any_other_op(tmp_path):
    with _hub(tmp_path) as hub:
        client = HubClient(hub.address)
        with pytest.raises(DistError, match="hello required"):
            client.call({"op": "pull"})
        client.close()


def test_hello_assigns_disjoint_base_indices_and_ships_problem(tmp_path):
    with _hub(tmp_path) as hub:
        a, welcome_a = _host(hub, "alpha", slots=3)
        b, welcome_b = _host(hub, "beta", slots=2)
        assert welcome_a["host"] != welcome_b["host"]
        assert welcome_a["base_index"] == 0
        # Host indices never collide: beta starts after alpha's slots.
        assert welcome_b["base_index"] == 3
        assert ProblemSpec(**welcome_a["problem"]) == _PROBLEM
        assert "learning_threshold" in welcome_a["config"]
        a.close()
        b.close()


def test_sat_anywhere_settles_and_stops_peers(tmp_path):
    with _hub(tmp_path) as hub:
        a, _ = _host(hub, "alpha")
        b, _ = _host(hub, "beta")
        cube_a = a.call({"op": "pull"})["cube"]
        cube_b = b.call({"op": "pull"})["cube"]
        assert {cube_a["index"], cube_b["index"]} == {0, 1}
        _report(a, cube_a["index"], "sat", model={"x": 1}, worker=0)
        result = hub.wait(timeout=2.0)
        assert result is not None and result.status == "sat"
        assert result.model == {"x": 1}
        assert result.winning_cube == cube_a["index"]
        assert result.winning_host == "h0"
        # The peer learns on its next request: decided + stop.
        response = b.call({"op": "heartbeat"})
        assert response.get("stop") is True
        assert cube_a["index"] in response.get("decided", ())
        a.close()
        b.close()


def test_root_unsat_settles_without_split_results(tmp_path):
    with _hub(tmp_path) as hub:
        a, _ = _host(hub, "alpha")
        cube = a.call({"op": "pull"})["cube"]
        assert cube["index"] == 0  # root is always handed out first
        _report(a, 0, "unsat")
        result = hub.wait(timeout=2.0)
        assert result is not None and result.status == "unsat"
        a.close()


def test_all_splits_unsat_settles_without_root(tmp_path):
    with _hub(tmp_path) as hub:
        a, _ = _host(hub, "alpha", slots=3)
        indices = [a.call({"op": "pull"})["cube"]["index"] for _ in range(3)]
        assert sorted(indices) == [0, 1, 2]
        _report(a, 1, "unsat")
        _report(a, 2, "unsat")
        result = hub.wait(timeout=2.0)
        assert result is not None and result.status == "unsat"
        assert hub.wait(timeout=0.0).requeues == 0
        a.close()


def test_connection_drop_requeues_then_double_loss_fails(tmp_path):
    with _hub(tmp_path) as hub:
        a, _ = _host(hub, "alpha")
        first = a.call({"op": "pull"})["cube"]["index"]
        a.close()  # connection drop releases the lease
        b, _ = _host(hub, "beta")
        deadline = time.monotonic() + 2.0
        again = None
        while time.monotonic() < deadline:
            response = b.call({"op": "pull"})
            cube = response.get("cube")
            if cube is not None and cube["index"] == first:
                again = cube["index"]
                break
            time.sleep(0.05)
        assert again == first, "dropped cube was not requeued"
        b.close()  # same cube lost a second time: structural failure
        result = hub.wait(timeout=2.0)
        assert result is not None and result.status == "unknown"
        assert result.failure is not None
        assert f"cube {first} lost twice" in result.failure
        assert result.requeues == 1


def test_lease_expiry_requeues_silent_host(tmp_path):
    with _hub(tmp_path, lease_s=0.3) as hub:
        a, _ = _host(hub, "alpha")
        first = a.call({"op": "pull"})["cube"]["index"]
        # alpha goes silent; beta stays live and eventually inherits
        # the expired cube (wait() sweeps leases while polling).
        b, _ = _host(hub, "beta")
        deadline = time.monotonic() + 3.0
        inherited = None
        while time.monotonic() < deadline:
            assert hub.wait(timeout=0.05) is None
            response = b.call({"op": "pull"})
            cube = response.get("cube")
            if cube is not None and cube["index"] == first:
                inherited = cube["index"]
                break
        assert inherited == first, "expired lease was not requeued"
        a.close()
        b.close()


def test_clause_relay_filters_lbd_dedups_and_skips_owner(tmp_path):
    with _hub(tmp_path, relay_max_lbd=4) as hub:
        a, _ = _host(hub, "alpha")
        b, _ = _host(hub, "beta")
        binary = [[["b", "x", True], ["b", "y", False]], 9]
        glue = [[["b", "x", True], ["b", "y", True], ["b", "z", True]], 3]
        weak = [[["b", "p", True], ["b", "q", True], ["b", "r", True]], 7]
        response = a.call(
            {"op": "clauses", "batch": [binary, glue, weak, glue]}
        )
        # Binary always passes; LBD 3 <= 4 passes once; LBD 7 and the
        # duplicate are rejected.
        assert response["admitted"] == 2
        # The owner never gets its own clauses back.
        assert "clauses" not in a.call({"op": "heartbeat"})
        relayed = b.call({"op": "heartbeat"})["clauses"]
        payloads = [tuple(map(tuple, p[0])) for batch in relayed for p in batch]
        assert len(payloads) == 2
        # Re-upload from beta is deduplicated hub-wide.
        assert b.call({"op": "clauses", "batch": [glue]})["admitted"] == 0
        a.close()
        b.close()


def test_drained_queue_hands_out_least_covered_duplicates(tmp_path):
    with _hub(tmp_path) as hub:
        a, _ = _host(hub, "alpha", slots=3)
        for _ in range(3):
            assert "cube" in a.call({"op": "pull"})
        b, _ = _host(hub, "beta")
        # Queue drained: beta receives a duplicate of an undecided
        # in-flight cube rather than ``wait``.
        duplicate = b.call({"op": "pull"})["cube"]["index"]
        assert duplicate in (0, 1, 2)
        # alpha already holds every cube, so *it* must wait.
        assert a.call({"op": "pull"}).get("wait") is True
        a.close()
        b.close()


def test_abort_force_settles_unknown(tmp_path):
    with _hub(tmp_path) as hub:
        assert hub.wait(timeout=0.1) is None
        result = hub.abort("driver gave up")
        assert result.status == "unknown"
        assert result.note == "driver gave up"
        assert hub.settled
