"""Tests for the lazy-SMT (UCLID-like) and eager-CDP (ICS-like) baselines.

The contract is agreement with HDPLL on SAT/UNSAT across a spread of
circuits; performance differences are the benchmarks' business.
"""

import random

import pytest

from repro.baselines import solve_eager_cdp, solve_lazy_smt
from repro.core import Status, solve_circuit
from repro.figures import figure2_circuit, figure4_circuit
from repro.intervals import Interval
from repro.rtl import CircuitBuilder


def random_circuit(seed):
    rng = random.Random(seed)
    b = CircuitBuilder(f"cdp{seed}")
    words = [b.input("w0", 3), b.input("w1", 3)]
    bools = [b.input("b0", 1)]
    for _ in range(rng.randint(3, 8)):
        roll = rng.random()
        if roll < 0.3:
            words.append(
                getattr(b, rng.choice(["add", "sub"]))(
                    rng.choice(words), rng.choice(words)
                )
            )
        elif roll < 0.6:
            kind = rng.choice(["eq", "ne", "lt", "le", "gt", "ge"])
            bools.append(getattr(b, kind)(rng.choice(words), rng.choice(words)))
        elif roll < 0.8 and len(bools) >= 2:
            kind = rng.choice(["and_", "or_"])
            bools.append(getattr(b, kind)(rng.choice(bools), rng.choice(bools)))
        else:
            words.append(
                b.mux(rng.choice(bools), rng.choice(words), rng.choice(words))
            )
    b.output("flag", bools[-1])
    b.output("word", words[-1])
    return b.build()


class TestLazySmt:
    def test_sat_simple(self):
        b = CircuitBuilder()
        a = b.input("a", 3)
        p = b.lt(a, 5, name="p")
        b.output("p", p)
        result = solve_lazy_smt(b.build(), {"p": 1})
        assert result.is_sat
        assert result.model["a"] < 5

    def test_unsat_simple(self):
        b = CircuitBuilder()
        a = b.input("a", 3)
        p = b.lt(a, 0, name="p")
        b.output("p", p)
        assert solve_lazy_smt(b.build(), {"p": 1}).is_unsat

    def test_refinement_loop_reaches_unsat(self):
        # Contradictory predicates: the loop must terminate UNSAT, via
        # theory lemmas or a level-0 theory refutation.
        b = CircuitBuilder()
        a = b.input("a", 3)
        p = b.lt(a, 2, name="p")
        q = b.gt(a, 5, name="q")
        g = b.and_(p, q, name="g")
        b.output("g", g)
        from repro.baselines import LazySmtSolver

        solver = LazySmtSolver(b.build())
        result = solver.solve({"g": 1})
        assert result.is_unsat

    def test_lemma_refinement_on_datapath_conflict(self):
        # A free select must be refined away: the abstraction cannot see
        # that both data branches violate the output requirement.
        b = CircuitBuilder()
        sel = b.input("sel", 1)
        a = b.input("a", 3)
        m = b.mux(sel, b.add(a, 1), b.add(a, 2), name="m")
        p = b.eq(m, a, name="p")
        b.output("p", p)
        from repro.baselines import LazySmtSolver

        solver = LazySmtSolver(b.build())
        result = solver.solve({"p": 1})
        assert result.status in (Status.SAT, Status.UNSAT)

    def test_figure4(self):
        result = solve_lazy_smt(
            figure4_circuit(), {"w2": Interval(6, 7), "b7": 1}
        )
        assert result.is_sat
        assert result.model["w4"] == 5

    def test_word_assumption(self):
        result = solve_lazy_smt(figure2_circuit(), {"w5": 5})
        assert result.status in (Status.SAT, Status.UNSAT)

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_hdpll(self, seed):
        circuit = random_circuit(seed)
        assumptions = {"flag": 1, "word": seed % 8}
        reference = solve_circuit(circuit, assumptions)
        lazy = solve_lazy_smt(circuit, assumptions)
        assert lazy.status == reference.status

    def test_zero_timeout_never_hangs(self):
        # With a zero budget the solver must return promptly; a level-0
        # refutation may still legitimately conclude UNSAT.
        circuit = random_circuit(99)
        result = solve_lazy_smt(circuit, {"flag": 1}, timeout=0.0)
        assert result.status in (Status.UNKNOWN, Status.UNSAT)


class TestEagerCdp:
    def test_sat_simple(self):
        b = CircuitBuilder()
        a = b.input("a", 3)
        p = b.ge(a, 6, name="p")
        b.output("p", p)
        result = solve_eager_cdp(b.build(), {"p": 1})
        assert result.is_sat
        assert result.model["a"] >= 6

    def test_unsat_simple(self):
        b = CircuitBuilder()
        a = b.input("a", 3)
        p = b.gt(a, 7, name="p")
        b.output("p", p)
        assert solve_eager_cdp(b.build(), {"p": 1}).is_unsat

    def test_figure4(self):
        result = solve_eager_cdp(
            figure4_circuit(), {"w2": Interval(6, 7), "b7": 1}
        )
        assert result.is_sat
        assert result.model["w4"] == 5

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_hdpll(self, seed):
        circuit = random_circuit(seed + 50)
        assumptions = {"flag": 1, "word": seed % 8}
        reference = solve_circuit(circuit, assumptions)
        eager = solve_eager_cdp(circuit, assumptions)
        assert eager.status == reference.status

    def test_decision_budget(self):
        circuit = random_circuit(7)
        result = solve_eager_cdp(circuit, {"flag": 1}, max_decisions=0)
        assert result.status in (Status.UNKNOWN, Status.UNSAT, Status.SAT)

    def test_leaf_checks_counted(self):
        b = CircuitBuilder()
        a = b.input("a", 3)
        sel = b.input("sel", 1)
        m = b.mux(sel, a, 3, name="m")
        p = b.eq(m, 3, name="p")
        b.output("p", p)
        from repro.baselines import EagerCdpSolver

        solver = EagerCdpSolver(b.build())
        result = solver.solve({"p": 1})
        assert result.is_sat
        assert result.stats.fme_checks >= 1


class TestCooperativeTimeouts:
    """An exhausted budget returns UNKNOWN promptly, never free work."""

    def test_lazy_smt_zero_timeout(self):
        import time

        start = time.monotonic()
        result = solve_lazy_smt(figure2_circuit(), {"w5": 5}, timeout=0.0)
        assert result.status is Status.UNKNOWN
        assert time.monotonic() - start < 5.0

    def test_eager_cdp_zero_timeout(self):
        import time

        start = time.monotonic()
        result = solve_eager_cdp(figure2_circuit(), {"w5": 5}, timeout=0.0)
        assert result.status is Status.UNKNOWN
        assert "timeout" in result.note
        assert time.monotonic() - start < 5.0
