"""Tests for bit-blasting: CNF translation equivalence with simulation."""

import random

import pytest

from repro.baselines import bitblast, solve_by_bitblasting
from repro.baselines.dpll_sat import solve_cnf
from repro.baselines.bitblast import assert_assumptions
from repro.intervals import Interval
from repro.rtl import CircuitBuilder, simulate_combinational


def _mixed_circuit():
    b = CircuitBuilder("mixed")
    a = b.input("a", 3)
    c = b.input("c", 3)
    sel = b.input("sel", 1)
    outs = {
        "add": b.add(a, c, name="o_add"),
        "sub": b.sub(a, c, name="o_sub"),
        "mulc": b.mul_const(a, 5, name="o_mulc"),
        "shl": b.shl(a, 1, name="o_shl"),
        "shr": b.shr(a, 2, name="o_shr"),
        "concat": b.concat(a, c, name="o_concat"),
        "extract": b.extract(a, 2, 1, name="o_ex"),
        "zext": b.zext(a, 5, name="o_zext"),
        "mux": b.mux(sel, a, c, name="o_mux"),
        "eq": b.eq(a, c, name="o_eq"),
        "ne": b.ne(a, c, name="o_ne"),
        "lt": b.lt(a, c, name="o_lt"),
        "le": b.le(a, c, name="o_le"),
        "gt": b.gt(a, c, name="o_gt"),
        "ge": b.ge(a, c, name="o_ge"),
        "xor": b.xor(sel, b.eq(a, c), name="o_xor"),
        "nand": b.nand(sel, b.lt(a, c), name="o_nand"),
        "nor": b.nor(sel, b.lt(a, c), name="o_nor"),
    }
    for name, net in outs.items():
        b.output(name, net)
    return b.build()


def test_blast_matches_simulation_exhaustively():
    """Pin inputs via assumptions; SAT model must equal simulation."""
    circuit = _mixed_circuit()
    for av in range(8):
        for cv in range(8):
            for sv in (0, 1):
                inputs = {"a": av, "c": cv, "sel": sv}
                satisfiable, model, _ = solve_by_bitblasting(circuit, inputs)
                assert satisfiable is True
                expected = simulate_combinational(circuit, inputs)
                for name in circuit.outputs:
                    assert model[name] == expected[name], (name, inputs)


def test_unsat_by_bitblasting():
    b = CircuitBuilder()
    a = b.input("a", 3)
    p = b.lt(a, 0, name="p")
    b.output("p", p)
    satisfiable, model, _ = solve_by_bitblasting(b.build(), {"p": 1})
    assert satisfiable is False


def test_interval_assumption():
    b = CircuitBuilder()
    a = b.input("a", 4)
    s = b.add(a, 3, name="s")
    b.output("s", s)
    satisfiable, model, _ = solve_by_bitblasting(
        b.build(), {"s": Interval(0, 2)}
    )
    assert satisfiable is True
    assert model["s"] in Interval(0, 2)
    assert (model["a"] + 3) % 16 == model["s"]


def test_interval_assumption_unsat():
    b = CircuitBuilder()
    a = b.input("a", 2)
    z = b.zext(a, 4, name="z")
    b.output("z", z)
    satisfiable, _, _ = solve_by_bitblasting(b.build(), {"z": Interval(8, 12)})
    assert satisfiable is False


@pytest.mark.parametrize("seed", range(10))
def test_bitblast_agrees_with_hdpll(seed):
    from repro.core import solve_circuit

    rng = random.Random(seed + 400)
    b = CircuitBuilder(f"bb{seed}")
    words = [b.input("w0", 3), b.input("w1", 3)]
    bools = [b.input("b0", 1)]
    for _ in range(rng.randint(4, 10)):
        roll = rng.random()
        if roll < 0.35:
            words.append(
                getattr(b, rng.choice(["add", "sub"]))(
                    rng.choice(words), rng.choice(words)
                )
            )
        elif roll < 0.65:
            kind = rng.choice(["eq", "ne", "lt", "le", "gt", "ge"])
            bools.append(getattr(b, kind)(rng.choice(words), rng.choice(words)))
        elif roll < 0.8 and len(bools) >= 2:
            bools.append(b.or_(rng.choice(bools), rng.choice(bools)))
        else:
            words.append(
                b.mux(rng.choice(bools), rng.choice(words), rng.choice(words))
            )
    b.output("flag", bools[-1])
    circuit = b.build()
    assumptions = {"flag": 1}
    blast_sat, _, _ = solve_by_bitblasting(circuit, assumptions)
    hdpll = solve_circuit(circuit, assumptions)
    assert blast_sat == hdpll.is_sat


def test_mulc_zero_factor():
    b = CircuitBuilder()
    a = b.input("a", 3)
    z = b.mul_const(a, 0, name="z")
    b.output("z", z)
    satisfiable, model, _ = solve_by_bitblasting(b.build(), {"z": 0})
    assert satisfiable is True
    satisfiable, _, _ = solve_by_bitblasting(b.build(), {"z": 1})
    assert satisfiable is False


def test_shift_beyond_width():
    b = CircuitBuilder()
    a = b.input("a", 3)
    s = b.shl(a, 5, name="s")
    b.output("s", s)
    satisfiable, model, _ = solve_by_bitblasting(b.build(), {"s": 0})
    assert satisfiable is True
    satisfiable, _, _ = solve_by_bitblasting(b.build(), {"s": 4})
    assert satisfiable is False


class TestCooperativeTimeout:
    def test_zero_timeout_returns_unknown(self):
        # The whole-call budget covers blasting too: nothing left for
        # the SAT core means UNKNOWN, not a free solve.
        b = CircuitBuilder()
        a = b.input("a", 3)
        p = b.lt(a, 5, name="p")
        b.output("p", p)
        satisfiable, model, _ = solve_by_bitblasting(
            b.build(), {"p": 1}, timeout=0.0
        )
        assert satisfiable is None
        assert model is None

    def test_zero_conflict_budget_cnf(self):
        from repro.baselines.cnf import Cnf

        cnf = Cnf()
        x, y = cnf.new_var(), cnf.new_var()
        cnf.add_clause([x, y])
        cnf.add_clause([-x, y])
        result = solve_cnf(cnf, timeout=0.0)
        assert result.satisfiable is None
