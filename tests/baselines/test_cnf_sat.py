"""Tests for the CNF container and the CDCL SAT solver."""

import itertools
import random

import pytest

from repro.baselines import Cnf, from_dimacs, solve_cnf


def brute_force_sat(cnf):
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        assignment = {v + 1: bits[v] for v in range(cnf.num_vars)}
        if cnf.evaluate(assignment):
            return assignment
    return None


class TestCnf:
    def test_new_vars(self):
        cnf = Cnf()
        assert cnf.new_vars(3) == [1, 2, 3]
        assert cnf.num_vars == 3

    def test_tautology_dropped(self):
        cnf = Cnf()
        x = cnf.new_var()
        cnf.add_clause([x, -x])
        assert cnf.clauses == []

    def test_duplicate_literals_merged(self):
        cnf = Cnf()
        x = cnf.new_var()
        cnf.add_clause([x, x])
        assert cnf.clauses == [[x]]

    def test_out_of_range_literal(self):
        cnf = Cnf()
        with pytest.raises(Exception):
            cnf.add_clause([5])

    def test_gate_encodings_exhaustive(self):
        cnf = Cnf()
        a, b, out = cnf.new_vars(3)
        cnf.add_and(out, [a, b])
        for va in (False, True):
            for vb in (False, True):
                assignment = {a: va, b: vb, out: va and vb}
                assert cnf.evaluate(assignment)
                assignment[out] = not (va and vb)
                assert not cnf.evaluate(assignment)

    def test_xor_encoding_exhaustive(self):
        cnf = Cnf()
        a, b, out = cnf.new_vars(3)
        cnf.add_xor(out, a, b)
        for va in (False, True):
            for vb in (False, True):
                assert cnf.evaluate({a: va, b: vb, out: va != vb})
                assert not cnf.evaluate({a: va, b: vb, out: va == vb})

    def test_mux_encoding_exhaustive(self):
        cnf = Cnf()
        s, t, e, out = cnf.new_vars(4)
        cnf.add_mux(out, s, t, e)
        for vs in (False, True):
            for vt in (False, True):
                for ve in (False, True):
                    expected = vt if vs else ve
                    assert cnf.evaluate({s: vs, t: vt, e: ve, out: expected})

    def test_dimacs_roundtrip(self):
        cnf = Cnf()
        x, y, z = cnf.new_vars(3)
        cnf.add_clause([x, -y])
        cnf.add_clause([y, z])
        restored = from_dimacs(cnf.to_dimacs())
        assert restored.num_vars == 3
        assert restored.clauses == cnf.clauses

    def test_dimacs_bad_header(self):
        with pytest.raises(Exception):
            from_dimacs("p qbf 3 2\n1 0\n")


class TestCdcl:
    def test_trivial_sat(self):
        cnf = Cnf()
        x = cnf.new_var()
        cnf.add_clause([x])
        result = solve_cnf(cnf)
        assert result.satisfiable is True
        assert result.model[x] is True

    def test_trivial_unsat(self):
        cnf = Cnf()
        x = cnf.new_var()
        cnf.add_clause([x])
        cnf.add_clause([-x])
        assert solve_cnf(cnf).satisfiable is False

    def test_pigeonhole_3_2(self):
        # 3 pigeons, 2 holes: classic small UNSAT.
        cnf = Cnf()
        holes = {
            (p, h): cnf.new_var() for p in range(3) for h in range(2)
        }
        for p in range(3):
            cnf.add_clause([holes[(p, 0)], holes[(p, 1)]])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    cnf.add_clause([-holes[(p1, h)], -holes[(p2, h)]])
        assert solve_cnf(cnf).satisfiable is False

    def test_assumptions(self):
        cnf = Cnf()
        x, y = cnf.new_vars(2)
        cnf.add_clause([x, y])
        assert solve_cnf(cnf, assumptions=[-x]).satisfiable is True
        assert solve_cnf(cnf, assumptions=[-x, -y]).satisfiable is False

    def test_conflict_budget(self):
        cnf = Cnf()
        variables = cnf.new_vars(12)
        # Random 3-SAT near the phase transition.
        rng = random.Random(3)
        for _ in range(52):
            clause = rng.sample(variables, 3)
            cnf.add_clause([v if rng.random() < 0.5 else -v for v in clause])
        result = solve_cnf(cnf, max_conflicts=0)
        assert result.satisfiable in (None, True, False)

    @pytest.mark.parametrize("seed", range(30))
    def test_random_3sat_against_brute_force(self, seed):
        rng = random.Random(seed)
        cnf = Cnf()
        variables = cnf.new_vars(rng.randint(3, 9))
        clause_count = rng.randint(1, 4 * len(variables))
        for _ in range(clause_count):
            size = rng.randint(1, 3)
            chosen = rng.sample(variables, min(size, len(variables)))
            cnf.add_clause(
                [v if rng.random() < 0.5 else -v for v in chosen]
            )
        expected = brute_force_sat(cnf)
        result = solve_cnf(cnf)
        assert result.satisfiable == (expected is not None)
        if result.satisfiable:
            assert cnf.evaluate(result.model)
