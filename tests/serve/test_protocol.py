"""Wire-protocol unit tests: framing, schema, size bounds."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode,
    encode,
    error_response,
    solve_request,
)


def test_encode_decode_roundtrip():
    message = solve_request(
        "b13_5",
        15,
        request_id="r1",
        assumptions={"a": 1, "w": (0, 9)},
        timeout_s=2.5,
        jobs=2,
        want_model=False,
    )
    line = encode(message)
    assert line.endswith(b"\n")
    assert line.count(b"\n") == 1
    decoded = decode(line)
    # Tuples become lists over JSON; everything else survives verbatim.
    assert decoded["assumptions"] == {"a": 1, "w": [0, 9]}
    for key in ("op", "case", "bound", "id", "timeout_s", "jobs"):
        assert decoded[key] == message[key]


def test_encode_is_one_compact_line():
    line = encode({"op": "ping", "note": "with\nnewline"})
    # Embedded newlines must be escaped, never break the framing.
    assert line.count(b"\n") == 1
    assert json.loads(line)["note"] == "with\nnewline"


def test_decode_rejects_garbage_and_non_objects():
    with pytest.raises(ProtocolError, match="undecodable"):
        decode(b"not json\n")
    with pytest.raises(ProtocolError, match="JSON object"):
        decode(b"[1, 2, 3]\n")
    with pytest.raises(ProtocolError, match="undecodable"):
        decode(b"\xff\xfe\n")


def test_size_bounds_enforced_both_directions():
    big = {"op": "solve", "blob": "x" * MAX_LINE_BYTES}
    with pytest.raises(ProtocolError, match="exceeds"):
        encode(big)
    with pytest.raises(ProtocolError, match="exceeds"):
        decode(b"x" * (MAX_LINE_BYTES + 1))


def test_error_response_echoes_id():
    assert error_response({"id": 7, "op": "solve"}, "boom") == {
        "id": 7,
        "ok": False,
        "error": "boom",
    }
    assert error_response({}, "boom")["id"] is None
