"""Solver-daemon end-to-end tests.

Everything runs through real sockets (TCP in-process, or a UNIX socket
for the subprocess drain test) and the real wire protocol — the serve
stack has no test-only seams.  Tests drive their own event loop with
``asyncio.run``; there is deliberately no pytest-asyncio dependency.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.serve.cache import SessionCache, SessionEntry
from repro.serve.client import ServeClient
from repro.serve.loadgen import run_load
from repro.serve.server import ServeConfig, SolverServer

#: (case, bound) pairs with known statuses, small enough that a full
#: cold build stays well under a second.
_SAT = ("b01_1", 10)
_UNSAT = ("b13_1", 8)


async def _start_server(**overrides) -> tuple:
    config = ServeConfig(
        port=0, telemetry_dir=None, max_inflight=2, **overrides
    )
    server = SolverServer(config)
    await server.start()
    ((_, (host, port)),) = server.endpoints()
    return server, host, port


# ----------------------------------------------------------------------
# Concurrent load and protocol-level behaviour
# ----------------------------------------------------------------------


def test_concurrent_mixed_circuit_load():
    """Interleaved requests for two different netlists on one
    connection: statuses are right, each netlist compiles exactly once
    (single-flight), and repeats hit the warm session."""

    async def run():
        server, host, port = await _start_server()
        client = await ServeClient.open(host=host, port=port)
        try:
            responses = await asyncio.gather(
                client.solve(*_SAT, want_model=True),
                client.solve(*_UNSAT, want_model=False),
                client.solve(*_SAT, want_model=False),
                client.solve(*_UNSAT, want_model=False),
                client.solve(*_SAT, want_model=False),
            )
            stats = await client.stats()
        finally:
            await client.close()
            await server.drain_and_stop()
        return responses, stats

    responses, stats = asyncio.run(run())
    assert [r["status"] for r in responses] == [
        "sat", "unsat", "sat", "unsat", "sat",
    ]
    assert all(r["ok"] and r["engine"] == "session" for r in responses)
    assert "model" in responses[0] and responses[0]["model"]
    cache = stats["cache"]
    # Two distinct netlists -> two compiles, no matter how the five
    # requests raced; everything else was a hit or joined a build.
    assert cache["entries"] == 2
    assert cache["misses"] == 2
    assert cache["hits"] + cache["joined_builds"] == 3
    assert stats["counters"]["requests_ok"] == 5
    # The warm sessions' learned-clause DB shape is reported per tier;
    # these tiny circuits may learn nothing, but the keys must be
    # present and consistent.
    clause_db = stats["clause_db"]
    assert set(clause_db) == {"core", "mid", "local", "mean_lbd"}
    assert all(clause_db[tier] >= 0 for tier in ("core", "mid", "local"))
    assert clause_db["mean_lbd"] >= 0.0


def test_bad_requests_do_not_kill_the_connection():
    async def run():
        server, host, port = await _start_server()
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(b"this is not json\n")
            writer.write(b'{"op": "no-such-op", "id": 1}\n')
            writer.write(b'{"op": "solve", "id": 2}\n')
            writer.write(b'{"op": "ping", "id": 3}\n')
            await writer.drain()
            lines = [await reader.readline() for _ in range(4)]
        finally:
            writer.close()
            await writer.wait_closed()
            await server.drain_and_stop()
        return [json.loads(line) for line in lines]

    replies = asyncio.run(run())
    by_id = {r.get("id"): r for r in replies}
    assert not by_id[None]["ok"]  # undecodable line
    assert not by_id[1]["ok"] and "unknown op" in by_id[1]["error"]
    assert not by_id[2]["ok"] and "case" in by_id[2]["error"]
    assert by_id[3]["ok"] and by_id[3]["pong"]


def test_loadgen_summary():
    async def run():
        server, host, port = await _start_server()
        try:
            summary = await run_load(
                host=host,
                port=port,
                cases=[_SAT, _UNSAT],
                total=8,
                concurrency=3,
                timeout_s=60.0,
            )
        finally:
            await server.drain_and_stop()
        return summary

    summary = asyncio.run(run())
    assert summary["errors"] == 0
    assert summary["statuses"] == {"sat": 4, "unsat": 4}
    assert summary["cache_hits"] >= 4  # everything after the 2 builds
    assert summary["latency"]["p50_s"] > 0.0
    assert summary["server"]["counters"]["requests_ok"] == 8


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------


def test_deadline_expiry_returns_unknown_without_killing_session():
    """A request whose deadline is already gone at dispatch — and one
    that expires inside the solver — both come back ``unknown``, and
    the warm session keeps answering correctly afterwards."""

    async def run():
        server, host, port = await _start_server()
        client = await ServeClient.open(host=host, port=port)
        try:
            # Warm the session first so the expiry hits a live entry.
            first = await client.solve(*_SAT, want_model=False)
            expired = await client.solve(
                *_SAT, timeout_s=1e-9, want_model=False
            )
            after = await client.solve(*_SAT, want_model=False)
            stats = await client.stats()
        finally:
            await client.close()
            await server.drain_and_stop()
        return first, expired, after, stats

    first, expired, after, stats = asyncio.run(run())
    assert first["status"] == "sat"
    assert expired["ok"] and expired["status"] == "unknown"
    assert after["status"] == "sat" and after["cache"] == "hit"
    assert stats["counters"]["deadline_expired"] == 1
    assert stats["cache"]["entries"] == 1  # session survived


def test_solver_side_timeout_is_not_sticky_across_requests():
    """A deadline small enough to reach the solver (not just the queue
    check) must not shorten the session's budget for later requests —
    the regression the per-call timeout fix guards (see
    tests/core/test_session.py for the unit-level version)."""

    async def run():
        server, host, port = await _start_server()
        client = await ServeClient.open(host=host, port=port)
        try:
            # Warm the session with a full budget first, so the tight
            # request reaches the solver (not just the queue check).
            warm = await client.solve(
                "b04_1", 15, timeout_s=60.0, want_model=False
            )
            # 2ms passes the dispatch checks on a warm entry but is far
            # below b04_1's ~14ms repeat search (one search-loop
            # iteration runs ~2ms, so the cooperative check trips on
            # the second iteration at the latest).
            tight = await client.solve(
                "b04_1", 15, timeout_s=0.002, want_model=False
            )
            relaxed = await client.solve(
                "b04_1", 15, timeout_s=60.0, want_model=False
            )
        finally:
            await client.close()
            await server.drain_and_stop()
        return warm, tight, relaxed

    warm, tight, relaxed = asyncio.run(run())
    assert warm["status"] == "sat"
    assert tight["ok"] and tight["status"] == "unknown"
    # Same session, fresh budget: the query completes again.  (With the
    # sticky-timeout bug the 5ms override would survive into this call
    # and it would come back unknown.)
    assert relaxed["status"] == "sat"
    assert relaxed["cache"] == "hit"


# ----------------------------------------------------------------------
# Session cache: eviction, single-flight, shielding
# ----------------------------------------------------------------------


def _tiny_session():
    from repro.core import SolverConfig
    from repro.core.session import SolverSession
    from repro.rtl import CircuitBuilder

    builder = CircuitBuilder("serve-cache-test")
    a = builder.input("a", 1)
    b = builder.input("b", 1)
    builder.output("o", builder.and_(a, b))
    return SolverSession(builder.build(), SolverConfig())


def _entry(key: str, session) -> SessionEntry:
    return SessionEntry(
        key=key,
        case=key,
        bound=1,
        session=session,
        base_assumptions={},
        build_seconds=0.0,
    )


def test_cache_lru_eviction_and_byte_budget():
    session = _tiny_session()

    async def run():
        cache = SessionCache(max_entries=2, max_bytes=1 << 30)
        for key in ("k1", "k2", "k3"):

            async def build(key=key):
                return _entry(key, session)

            await cache.get_or_create(key, build)
        assert cache.evictions == 1
        assert [e.key for e in cache._entries.values()] == ["k2", "k3"]
        # Touch k2 so k3 becomes the LRU victim for the next insert.
        await cache.get_or_create("k2", None)  # hit: build unused

        async def build_k4():
            return _entry("k4", session)

        await cache.get_or_create("k4", build_k4)
        assert [e.key for e in cache._entries.values()] == ["k2", "k4"]

        # Byte budget: a cap below one session's cost still keeps the
        # newest entry (never evict what was just built).
        tight = SessionCache(max_entries=8, max_bytes=1)

        async def build_t1():
            return _entry("t1", session)

        async def build_t2():
            return _entry("t2", session)

        await tight.get_or_create("t1", build_t1)
        await tight.get_or_create("t2", build_t2)
        assert [e.key for e in tight._entries.values()] == ["t2"]
        assert tight.evictions == 1

    asyncio.run(run())


def test_cache_single_flight_and_cancelled_waiter():
    session = _tiny_session()

    async def run():
        cache = SessionCache(max_entries=4)
        builds = 0
        release = asyncio.Event()

        async def slow_build():
            nonlocal builds
            builds += 1
            await release.wait()
            return _entry("k", session)

        first = asyncio.ensure_future(
            cache.get_or_create("k", slow_build)
        )
        second = asyncio.ensure_future(
            cache.get_or_create("k", slow_build)
        )
        await asyncio.sleep(0)  # let both reach the build
        # Cancelling one waiter must not cancel the shared build.
        second.cancel()
        await asyncio.sleep(0)
        release.set()
        entry = await first
        assert entry.key == "k"
        assert builds == 1
        assert cache.joined_builds == 1
        with pytest.raises(asyncio.CancelledError):
            await second
        # The built entry is present and serves the next caller as a hit.
        assert (await cache.get_or_create("k", None)) is entry
        assert cache.hits == 1

    asyncio.run(run())


def test_cache_failed_build_leaves_no_entry():
    session = _tiny_session()

    async def run():
        cache = SessionCache(max_entries=4)

        async def failing_build():
            raise RuntimeError("compile exploded")

        with pytest.raises(RuntimeError, match="compile exploded"):
            await cache.get_or_create("k", failing_build)
        assert len(cache) == 0

        async def good_build():
            return _entry("k", session)

        entry = await cache.get_or_create("k", good_build)
        assert entry.key == "k"

    asyncio.run(run())


# ----------------------------------------------------------------------
# Portfolio escalation
# ----------------------------------------------------------------------


def test_jobs_escalates_to_portfolio():
    async def run():
        server, host, port = await _start_server(
            portfolio_deterministic=True
        )
        client = await ServeClient.open(host=host, port=port)
        try:
            escalated = await client.solve(
                *_SAT, jobs=2, timeout_s=120.0, want_model=True
            )
            stats = await client.stats()
        finally:
            await client.close()
            await server.drain_and_stop()
        return escalated, stats

    escalated, stats = asyncio.run(run())
    assert escalated["status"] == "sat"
    assert escalated["engine"] == "portfolio"
    assert escalated["model"]
    assert stats["counters"]["escalated"] == 1
    assert stats["cache"]["entries"] == 0  # never touched the cache


# ----------------------------------------------------------------------
# Bench cells
# ----------------------------------------------------------------------


def test_serve_bench_cell_modes():
    from repro.serve.bench import run_serve_cell

    cold = run_serve_cell(*_SAT, "serve-cold", timeout=60.0, repeats=2)
    warm = run_serve_cell(*_SAT, "serve-warm", timeout=60.0, repeats=2)
    assert cold["status"] == warm["status"] == "S"
    assert cold["cache_hits"] == 0
    assert warm["cache_hits"] == 2
    assert cold["seconds"] > 0.0 and warm["seconds"] > 0.0


# ----------------------------------------------------------------------
# Graceful drain (real daemon, real SIGTERM)
# ----------------------------------------------------------------------


def test_sigterm_drain_flushes_telemetry(tmp_path):
    """SIGTERM on the CLI daemon: inflight work finishes, the process
    exits 0, and the telemetry directory holds a parseable
    ``metrics.prom`` whose serve counters match the requests served."""
    from repro.obs.telemetry import parse_prometheus

    socket_path = str(tmp_path / "daemon.sock")
    telemetry_dir = tmp_path / "telemetry"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.harness",
            "--telemetry-dir",
            str(telemetry_dir),
            "serve",
            "--no-tcp",
            "--unix-socket",
            socket_path,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        announce = json.loads(process.stdout.readline())
        assert announce["event"] == "listening"
        assert announce["endpoints"] == [["unix", socket_path]]

        async def drive():
            client = await ServeClient.open(path=socket_path)
            try:
                first = await client.solve(*_SAT, want_model=False)
                second = await client.solve(*_SAT, want_model=False)
            finally:
                await client.close()
            return first, second

        first, second = asyncio.run(drive())
        assert first["status"] == second["status"] == "sat"
        assert second["cache"] == "hit"
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    prom_path = telemetry_dir / "metrics.prom"
    assert prom_path.exists(), list(telemetry_dir.iterdir())
    metrics = parse_prometheus(prom_path.read_text())
    by_family = {
        family: value
        for (family, labels), value in metrics.items()
        if ("worker", "server") in labels
    }
    assert by_family["repro_serve_requests_total"] == 2.0
    assert by_family["repro_serve_requests_ok"] == 2.0
    assert by_family["repro_serve_cache_hits"] == 1.0
    assert by_family["repro_serve_cache_misses"] == 1.0
    assert by_family["repro_serve_latency_p50_s"] > 0.0
