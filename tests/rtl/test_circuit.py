"""Unit tests for the netlist IR: construction, validation, queries."""

import pytest

from repro.errors import CircuitError
from repro.rtl import Circuit, CircuitBuilder, OpKind


class TestNetManagement:
    def test_new_net_auto_name(self):
        c = Circuit()
        n1 = c.new_net(4)
        n2 = c.new_net(4)
        assert n1.name != n2.name

    def test_duplicate_name_rejected(self):
        c = Circuit()
        c.new_net(4, "x")
        with pytest.raises(CircuitError):
            c.new_net(4, "x")

    def test_zero_width_rejected(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.new_net(0)

    def test_lookup(self):
        c = Circuit()
        net = c.new_net(8, "bus")
        assert c.net("bus") is net
        assert c.has_net("bus")
        assert not c.has_net("nope")
        with pytest.raises(CircuitError):
            c.net("nope")

    def test_max_value(self):
        c = Circuit()
        assert c.new_net(3).max_value == 7
        assert c.new_net(1).is_bool


class TestNodeConstruction:
    def test_const_range_check(self):
        c = Circuit()
        c.add_const(7, 3)
        with pytest.raises(CircuitError):
            c.add_const(8, 3)
        with pytest.raises(CircuitError):
            c.add_const(-1, 3)

    def test_boolean_gate_width_check(self):
        b = CircuitBuilder()
        w = b.input("w", 4)
        x = b.input("x", 1)
        with pytest.raises(CircuitError):
            b.and_(w, x)

    def test_and_variadic(self):
        b = CircuitBuilder()
        x = b.input("x")
        y = b.input("y")
        z = b.input("z")
        out = b.and_(x, y, z)
        assert out.driver.kind is OpKind.AND
        assert len(out.driver.operands) == 3

    def test_and_needs_two_operands(self):
        b = CircuitBuilder()
        x = b.input("x")
        with pytest.raises(CircuitError):
            b.and_(x)

    def test_add_width_mismatch(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        c = b.input("c", 5)
        with pytest.raises(CircuitError):
            b.add(a, c)

    def test_mux_checks(self):
        b = CircuitBuilder()
        sel = b.input("sel", 1)
        wide_sel = b.input("ws", 2)
        a = b.input("a", 4)
        c = b.input("c", 4)
        d = b.input("d", 5)
        out = b.mux(sel, a, c)
        assert out.width == 4
        with pytest.raises(CircuitError):
            b.mux(wide_sel, a, c)
        with pytest.raises(CircuitError):
            b.mux(sel, a, d)

    def test_concat_width(self):
        b = CircuitBuilder()
        hi = b.input("hi", 3)
        lo = b.input("lo", 2)
        assert b.concat(hi, lo).width == 5

    def test_extract_widths_and_bounds(self):
        b = CircuitBuilder()
        a = b.input("a", 8)
        assert b.extract(a, 5, 2).width == 4
        with pytest.raises(CircuitError):
            b.extract(a, 8, 0)
        with pytest.raises(CircuitError):
            b.extract(a, 1, 3)

    def test_zext(self):
        b = CircuitBuilder()
        a = b.input("a", 3)
        assert b.zext(a, 8).width == 8
        with pytest.raises(CircuitError):
            b.zext(a, 3)

    def test_mulc_requires_factor(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        with pytest.raises(CircuitError):
            b.circuit.add_node(OpKind.MULC, (a,))
        assert b.mul_const(a, 3).width == 4

    def test_shift_requires_amount(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        with pytest.raises(CircuitError):
            b.circuit.add_node(OpKind.SHL, (a,))

    def test_predicate_output_is_bool(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        c = b.input("c", 4)
        assert b.lt(a, c).is_bool

    def test_coerce_int_operand(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        out = b.eq(a, 3)
        const_net = out.driver.operands[1]
        assert const_net.driver.kind is OpKind.CONST
        assert const_net.driver.const_value == 3
        assert const_net.width == 4

    def test_coerce_needs_one_net(self):
        b = CircuitBuilder()
        with pytest.raises(CircuitError):
            b.eq(3, 4)


class TestRegisters:
    def test_register_lifecycle(self):
        b = CircuitBuilder()
        r = b.register("r", 4, init=5)
        nxt = b.inc(r)
        b.next_state(r, nxt)
        c = b.build()
        assert not c.is_combinational
        assert c.registers[0].init_value == 5

    def test_unconnected_register_rejected_by_validate(self):
        b = CircuitBuilder()
        b.register("r", 4)
        with pytest.raises(CircuitError):
            b.build()

    def test_double_connect_rejected(self):
        b = CircuitBuilder()
        r = b.register("r", 4)
        b.next_state(r, b.const(1, 4))
        with pytest.raises(CircuitError):
            b.next_state(r, b.const(2, 4))

    def test_width_mismatch_rejected(self):
        b = CircuitBuilder()
        r = b.register("r", 4)
        with pytest.raises(CircuitError):
            b.next_state(r, b.const(0, 5))

    def test_init_range_check(self):
        b = CircuitBuilder()
        with pytest.raises(CircuitError):
            b.register("r", 3, init=8)


class TestTopologyAndStats:
    def test_topological_order(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        c = b.input("c", 4)
        s = b.add(a, c)
        p = b.lt(s, c)
        out = b.mux(p, a, s)
        b.output("out", out)
        circuit = b.build()
        order = circuit.topological_nodes()
        positions = {node.output.name: i for i, node in enumerate(order)}
        assert positions["a"] < positions[s.name]
        assert positions[s.name] < positions[p.name]
        assert positions[p.name] < positions[out.name]

    def test_register_feedback_is_not_a_cycle(self):
        b = CircuitBuilder()
        r = b.register("r", 4)
        b.next_state(r, b.inc(r))
        b.build()  # should not raise

    def test_stats_census(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        c = b.input("c", 4)
        s = b.add(a, c)          # arith
        p = b.lt(s, c)           # arith + predicate
        q = b.eq(a, c)           # arith + predicate
        g = b.and_(p, q)         # bool
        m = b.mux(g, a, s)       # arith
        b.output("out", m)
        stats = b.build().stats()
        assert stats.arith_ops == 4
        assert stats.bool_ops == 1
        assert stats.predicates == 2
        assert stats.inputs == 2
        assert stats.total_ops == 5

    def test_duplicate_output_rejected(self):
        b = CircuitBuilder()
        a = b.input("a", 1)
        b.output("o", a)
        with pytest.raises(CircuitError):
            b.output("o", a)


class TestSelectHelper:
    def test_select_builds_mux_chain(self):
        b = CircuitBuilder()
        state = b.input("state", 2)
        out = b.select(state, [(0, 5), (1, 6)], default=7, width=4)
        assert out.driver.kind is OpKind.MUX
        b.output("o", out)
        b.build()

    def test_select_needs_width_for_all_int_branches(self):
        b = CircuitBuilder()
        state = b.input("state", 2)
        with pytest.raises(CircuitError):
            b.select(state, [(0, 5)], default=7)

    def test_select_infers_width_from_net_branch(self):
        b = CircuitBuilder()
        state = b.input("state", 2)
        data = b.input("data", 4)
        out = b.select(state, [(0, data)], default=9)
        assert out.width == 4
