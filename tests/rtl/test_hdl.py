"""Tests for the HDL frontend."""

import pytest

from repro.errors import NetlistFormatError
from repro.core import HDPLL_SP, solve_circuit
from repro.equivalence import EquivalenceStatus, check_combinational_equivalence
from repro.rtl import CircuitBuilder, SequentialSimulator, simulate_combinational
from repro.rtl.hdl import parse_module


class TestCombinational:
    def test_clipper_module(self):
        circuit = parse_module(
            """
            module clipper(input [8:0] a, input [8:0] b,
                           output [8:0] y, output over);
              wire [8:0] total = a + b;
              wire over_w = total > 9'd200;
              assign y = over_w ? 9'd200 : total;
              assign over = over_w;
            endmodule
            """
        )
        assert circuit.name == "clipper"
        values = simulate_combinational(circuit, {"a": 150, "b": 100})
        assert values["y"] == 200
        assert values["over"] == 1
        values = simulate_combinational(circuit, {"a": 3, "b": 4})
        assert values["y"] == 7
        assert values["over"] == 0

    def test_operators(self):
        circuit = parse_module(
            """
            module ops(input [3:0] a, input [3:0] b, output [3:0] s,
                       output [3:0] d, output eqo, output lto, output geo,
                       output mix);
              assign s = a + b;
              assign d = a - b;
              assign eqo = a == b;
              assign lto = a < b;
              assign geo = a >= b;
              assign mix = (a == b) || ((a < b) && !(b == 4'd0));
            endmodule
            """
        )
        for av in range(16):
            for bv in range(0, 16, 3):
                values = simulate_combinational(circuit, {"a": av, "b": bv})
                assert values["s"] == (av + bv) % 16
                assert values["d"] == (av - bv) % 16
                assert values["eqo"] == int(av == bv)
                assert values["lto"] == int(av < bv)
                assert values["geo"] == int(av >= bv)
                assert values["mix"] == int(
                    av == bv or (av < bv and bv != 0)
                )

    def test_shifts_selects_concat(self):
        circuit = parse_module(
            """
            module bits(input [7:0] x, output [7:0] l, output [7:0] r,
                        output [3:0] hi, output b0, output [9:0] cat);
              assign l = x << 2;
              assign r = x >> 3;
              assign hi = x[7:4];
              assign b0 = x[0];
              assign cat = {x, 2'b10};
            endmodule
            """
        )
        values = simulate_combinational(circuit, {"x": 0b10110101})
        assert values["l"] == (0b10110101 << 2) & 0xFF
        assert values["r"] == 0b10110101 >> 3
        assert values["hi"] == 0b1011
        assert values["b0"] == 1
        assert values["cat"] == (0b10110101 << 2) | 0b10

    def test_width_balancing_zero_extends(self):
        circuit = parse_module(
            """
            module widen(input [3:0] small, input [7:0] big,
                         output [7:0] total);
              assign total = small + big;
            endmodule
            """
        )
        values = simulate_combinational(circuit, {"small": 15, "big": 250})
        assert values["total"] == (15 + 250) % 256

    def test_literal_bases(self):
        circuit = parse_module(
            """
            module lits(input [7:0] x, output a, output b, output c);
              assign a = x == 8'd200;
              assign b = x == 8'hC8;
              assign c = x == 8'b11001000;
            endmodule
            """
        )
        values = simulate_combinational(circuit, {"x": 200})
        assert values["a"] == values["b"] == values["c"] == 1

    def test_unary_minus_and_negation(self):
        circuit = parse_module(
            """
            module neg(input [3:0] x, input p, output [3:0] m, output np);
              assign m = -x;
              assign np = !p;
            endmodule
            """
        )
        values = simulate_combinational(circuit, {"x": 3, "p": 1})
        assert values["m"] == (16 - 3) % 16
        assert values["np"] == 0


class TestSequential:
    SOURCE = """
    module counter(input clk, input enable, input [7:0] step,
                   output [7:0] value, output saturated);
      reg [7:0] count = 5;
      wire can = count < 8'd200;
      wire go = enable && can;
      wire [7:0] bumped = count + step;
      always @(posedge clk) count <= go ? bumped : count;
      assign value = count;
      assign saturated = !can;
    endmodule
    """

    def test_counter_behaviour(self):
        circuit = parse_module(self.SOURCE)
        sim = SequentialSimulator(circuit)
        values = sim.step({"clk": 0, "enable": 1, "step": 10})
        assert values["value"] == 5
        values = sim.step({"clk": 0, "enable": 1, "step": 10})
        assert values["value"] == 15
        values = sim.step({"clk": 0, "enable": 0, "step": 10})
        assert values["value"] == 25
        values = sim.step({"clk": 0, "enable": 1, "step": 10})
        assert values["value"] == 25

    def test_bmc_on_parsed_module(self):
        from repro.bmc import SafetyProperty, make_bmc_instance

        circuit = parse_module(self.SOURCE)
        prop = SafetyProperty("sat", "saturated", "never saturates")
        # Needs ceil(195/255)... with step up to 255 per cycle: count can
        # pass 200 after one big enabled step -> violation at frame 2.
        instance = make_bmc_instance(circuit, prop, 3)
        # saturated must be 0 always; ask for saturated==1... the ok
        # convention: property signal should be 1; here 'saturated' is a
        # bad-state flag, so check its negation via assumptions directly.
        result = solve_circuit(
            instance.circuit,
            {f"saturated@2": 1},
            HDPLL_SP,
        )
        assert result.is_sat


class TestAgainstBuilder:
    def test_equivalence_with_builder_version(self):
        parsed = parse_module(
            """
            module minmax(input [7:0] data, input [7:0] ref,
                          output [7:0] maxv, output [7:0] minv);
              wire g = data > ref;
              assign maxv = g ? data : ref;
              assign minv = g ? ref : data;
            endmodule
            """
        )
        b = CircuitBuilder("built")
        data = b.input("data", 8)
        ref = b.input("ref", 8)
        g = b.gt(data, ref)
        b.output("maxv", b.mux(g, data, ref))
        b.output("minv", b.mux(g, ref, data))
        built = b.build()
        result = check_combinational_equivalence(parsed, built, config=HDPLL_SP)
        assert result.status is EquivalenceStatus.EQUIVALENT


class TestErrors:
    def test_undeclared_signal(self):
        with pytest.raises(NetlistFormatError):
            parse_module(
                "module m(output o); assign o = ghost; endmodule"
            )

    def test_unassigned_output(self):
        with pytest.raises(NetlistFormatError):
            parse_module("module m(input a, output o); endmodule")

    def test_double_assignment(self):
        with pytest.raises(NetlistFormatError):
            parse_module(
                """
                module m(input a, output o);
                  assign o = a;
                  assign o = a;
                endmodule
                """
            )

    def test_literal_overflow(self):
        with pytest.raises(NetlistFormatError):
            parse_module(
                "module m(output [2:0] o); assign o = 3'd9; endmodule"
            )

    def test_width_overflow_rejected(self):
        with pytest.raises(NetlistFormatError):
            parse_module(
                """
                module m(input [7:0] a, output [3:0] o);
                  assign o = a;
                endmodule
                """
            )

    def test_two_bare_literals(self):
        with pytest.raises(NetlistFormatError):
            parse_module(
                "module m(output o); assign o = 1 + 2; endmodule"
            )

    def test_bad_token(self):
        with pytest.raises(NetlistFormatError):
            parse_module("module m(output o); assign o = `macro; endmodule")

    def test_multiple_clocks_rejected(self):
        with pytest.raises(NetlistFormatError):
            parse_module(
                """
                module m(input clk1, input clk2, input d, output o);
                  reg r1 = 0;
                  reg r2 = 0;
                  always @(posedge clk1) r1 <= d;
                  always @(posedge clk2) r2 <= d;
                  assign o = r1 && r2;
                endmodule
                """
            )
