"""Tests for predicate-logic extraction (Section 3, step 1)."""

from repro.rtl import CircuitBuilder, count_predicate_gates, extract_predicates


def test_comparators_are_predicate_outputs():
    b = CircuitBuilder()
    a = b.input("a", 4)
    c = b.input("c", 4)
    p = b.lt(a, c, name="p")
    b.output("o", p)
    report = extract_predicates(b.build())
    assert [n.name for n in report.predicate_outputs] == ["p"]


def test_mux_selects_are_control_points():
    b = CircuitBuilder()
    sel = b.input("sel", 1)
    a = b.input("a", 4)
    c = b.input("c", 4)
    m = b.mux(sel, a, c)
    b.output("o", m)
    report = extract_predicates(b.build())
    assert [n.name for n in report.control_points] == ["sel"]


def test_candidates_cover_control_cone_in_level_order():
    # comparator -> NOT -> AND -> mux select: all Boolean gates in the
    # chain are learning candidates, lowest level first.
    b = CircuitBuilder()
    a = b.input("a", 4)
    c = b.input("c", 4)
    en = b.input("en", 1)
    p = b.lt(a, c, name="p")
    q = b.not_(p, name="q")
    g = b.and_(q, en, name="g")
    m = b.mux(g, a, c)
    b.output("o", m)
    report = extract_predicates(b.build())
    names = [n.name for n in report.learning_candidates]
    assert names == ["p", "q", "g"]


def test_pure_boolean_logic_outside_cone_excluded():
    # A Boolean gate that neither feeds a datapath control point nor
    # consumes a predicate output is not a candidate.
    b = CircuitBuilder()
    x = b.input("x", 1)
    y = b.input("y", 1)
    isolated = b.and_(x, y, name="isolated")
    a = b.input("a", 4)
    c = b.input("c", 4)
    p = b.lt(a, c, name="p")
    b.output("o1", isolated)
    b.output("o2", p)
    report = extract_predicates(b.build())
    names = [n.name for n in report.learning_candidates]
    assert "isolated" not in names
    assert "p" in names


def test_forward_cone_from_predicates_included():
    # Boolean logic consuming comparator outputs is predicate logic even
    # if it does not steer a mux.
    b = CircuitBuilder()
    a = b.input("a", 4)
    c = b.input("c", 4)
    p1 = b.lt(a, c, name="p1")
    p2 = b.eq(a, c, name="p2")
    both = b.or_(p1, p2, name="both")
    b.output("o", both)
    report = extract_predicates(b.build())
    names = {n.name for n in report.learning_candidates}
    assert {"p1", "p2", "both"} <= names


def test_count_predicate_gates():
    b = CircuitBuilder()
    a = b.input("a", 4)
    c = b.input("c", 4)
    p = b.lt(a, c)
    m = b.mux(p, a, c)
    b.output("o", m)
    assert count_predicate_gates(b.build()) == 1
