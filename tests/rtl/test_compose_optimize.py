"""Tests for circuit composition and the optimisation pass."""

import itertools
import random

import pytest

from repro.errors import CircuitError
from repro.rtl import CircuitBuilder, SequentialSimulator, simulate_combinational
from repro.rtl.compose import copy_into
from repro.rtl.optimize import optimize
from repro.itc99 import circuit as itc_circuit
from repro.itc99 import random_combinational_circuit, random_sequential_circuit


class TestCopyInto:
    def test_shared_inputs(self):
        from repro.rtl.circuit import Circuit

        b = CircuitBuilder("src")
        a = b.input("a", 4)
        s = b.add(a, 1, name="s")
        b.output("s", s)
        source = b.build()

        target = Circuit("t")
        first = copy_into(target, source, prefix="x::")
        second = copy_into(target, source, prefix="y::")
        # One shared input, two adder copies.
        assert len(target.inputs) == 1
        assert first["a"] is second["a"]
        assert first["s"] is not second["s"]

    def test_width_mismatch_rejected(self):
        from repro.rtl.circuit import Circuit

        b = CircuitBuilder("one")
        b.output("o", b.input("a", 4))
        source_a = b.build()
        b2 = CircuitBuilder("two")
        b2.output("o", b2.input("a", 5))
        source_b = b2.build()
        target = Circuit("t")
        copy_into(target, source_a)
        with pytest.raises(CircuitError):
            copy_into(target, source_b)

    def test_sequential_copy_preserves_behaviour(self):
        from repro.rtl.circuit import Circuit

        source = itc_circuit("b13")
        target = Circuit("copy_host")
        mapping = copy_into(target, source, prefix="c::")
        for alias, net in source.outputs.items():
            target.mark_output(alias, mapping[net.name])
        target.validate()

        rng = random.Random(3)
        sim_a = SequentialSimulator(source)
        sim_b = SequentialSimulator(target)
        for _ in range(30):
            stimulus = {"start": rng.randint(0, 1), "din": rng.randint(0, 255)}
            va = sim_a.step(stimulus)
            vb = sim_b.step(stimulus)
            for alias in source.outputs:
                assert va[alias] == vb[alias]


class TestOptimize:
    def _assert_equivalent_comb(self, original, optimised, samples=None):
        inputs = original.inputs
        if samples is None:
            space = itertools.product(
                *(range(min(net.max_value + 1, 8)) for net in inputs)
            )
        else:
            space = samples
        for point in space:
            stimulus = dict(zip((n.name for n in inputs), point))
            va = simulate_combinational(original, stimulus)
            vb = simulate_combinational(optimised, stimulus)
            for alias in original.outputs:
                assert va[alias] == vb[alias], (alias, stimulus)

    def test_constant_folding(self):
        b = CircuitBuilder()
        k1 = b.const(3, 4)
        k2 = b.const(4, 4)
        s = b.add(k1, k2, name="s")
        a = b.input("a", 4)
        out = b.add(a, s, name="out")
        b.output("out", out)
        original = b.build()
        optimised = optimize(original)
        # The constant adder folded away.
        assert optimised.stats().arith_ops == 1
        self._assert_equivalent_comb(original, optimised)

    def test_identity_removal(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        s1 = b.add(a, 0)          # x + 0
        s2 = b.mul_const(s1, 1)   # x * 1
        s3 = b.shl(s2, 0)         # x << 0
        b.output("out", s3)
        original = b.build()
        optimised = optimize(original)
        assert optimised.stats().arith_ops == 0
        self._assert_equivalent_comb(original, optimised)

    def test_mux_same_branches(self):
        b = CircuitBuilder()
        sel = b.input("sel", 1)
        a = b.input("a", 4)
        m = b.mux(sel, a, a, name="m")
        b.output("m", m)
        optimised = optimize(b.build())
        assert optimised.stats().arith_ops == 0

    def test_cse_merges_duplicates(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        c = b.input("c", 4)
        s1 = b.add(a, c)
        s2 = b.add(c, a)  # commutative duplicate
        p = b.eq(s1, s2, name="p")
        b.output("p", p)
        original = b.build()
        optimised = optimize(original)
        # Both adders merge, and eq(x, x) folds to 1.
        assert optimised.stats().arith_ops == 0
        self._assert_equivalent_comb(original, optimised)

    def test_comparator_identical_operands(self):
        b = CircuitBuilder()
        a = b.input("a", 3)
        for name, fn, expected in (
            ("eq", b.eq, 1),
            ("ne", b.ne, 0),
            ("lt", b.lt, 0),
            ("le", b.le, 1),
        ):
            b.output(name, fn(a, a))
        original = b.build()
        optimised = optimize(original)
        assert optimised.stats().predicates == 0
        values = simulate_combinational(optimised, {"a": 5})
        assert values["eq"] == 1
        assert values["ne"] == 0
        assert values["lt"] == 0
        assert values["le"] == 1

    def test_double_negation(self):
        b = CircuitBuilder()
        x = b.input("x", 1)
        b.output("o", b.not_(b.not_(x)))
        optimised = optimize(b.build())
        assert optimised.stats().bool_ops == 0

    def test_and_or_constant_absorption(self):
        b = CircuitBuilder()
        x = b.input("x", 1)
        t = b.const(1, 1)
        f = b.const(0, 1)
        b.output("and_f", b.and_(x, f))   # -> 0
        b.output("or_t", b.or_(x, t))     # -> 1
        b.output("and_t", b.and_(x, t))   # -> x
        b.output("or_f", b.or_(x, f))     # -> x
        optimised = optimize(b.build())
        assert optimised.stats().bool_ops == 0
        for value in (0, 1):
            out = simulate_combinational(optimised, {"x": value})
            assert out["and_f"] == 0
            assert out["or_t"] == 1
            assert out["and_t"] == value
            assert out["or_f"] == value

    def test_dead_logic_removed(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        dead = b.add(a, 7)
        dead2 = b.mul_const(dead, 3)
        live = b.sub(a, 1, name="live")
        b.output("live", live)
        optimised = optimize(b.build())
        assert optimised.stats().arith_ops == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_random_combinational_equivalence(self, seed):
        original = random_combinational_circuit(seed, operations=12)
        optimised = optimize(original)
        rng = random.Random(seed)
        samples = [
            tuple(rng.randint(0, net.max_value) for net in original.inputs)
            for _ in range(25)
        ]
        self._assert_equivalent_comb(original, optimised, samples)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_sequential_equivalence_by_simulation(self, seed):
        original = random_sequential_circuit(seed)
        optimised = optimize(original)
        rng = random.Random(seed + 1)
        sim_a = SequentialSimulator(original)
        sim_b = SequentialSimulator(optimised)
        width = original.inputs[1].width
        for _ in range(25):
            stimulus = {
                "ctl": rng.randint(0, 1),
                "data": rng.randint(0, 2**width - 1),
            }
            va = sim_a.step(stimulus)
            vb = sim_b.step(stimulus)
            for alias in original.outputs:
                assert va[alias] == vb[alias]

    def test_itc99_circuits_shrink(self):
        for name in ("b01", "b02", "b04", "b13"):
            original = itc_circuit(name)
            optimised = optimize(original)
            assert len(optimised.nodes) <= len(original.nodes)
            assert set(optimised.outputs) == set(original.outputs)
