"""Tests for the concrete simulator, including exhaustive operator checks."""

import pytest

from repro.errors import CircuitError
from repro.rtl import CircuitBuilder, SequentialSimulator, simulate_combinational


def test_boolean_gates_exhaustive():
    b = CircuitBuilder()
    x = b.input("x")
    y = b.input("y")
    gates = {
        "and": b.and_(x, y),
        "or": b.or_(x, y),
        "nand": b.nand(x, y),
        "nor": b.nor(x, y),
        "xor": b.xor(x, y),
        "xnor": b.xnor(x, y),
        "not": b.not_(x),
        "buf": b.buf(x),
    }
    for name, net in gates.items():
        b.output(name, net)
    circuit = b.build()
    expected = {
        "and": lambda a, c: a & c,
        "or": lambda a, c: a | c,
        "nand": lambda a, c: 1 - (a & c),
        "nor": lambda a, c: 1 - (a | c),
        "xor": lambda a, c: a ^ c,
        "xnor": lambda a, c: 1 - (a ^ c),
        "not": lambda a, c: 1 - a,
        "buf": lambda a, c: a,
    }
    for xv in (0, 1):
        for yv in (0, 1):
            values = simulate_combinational(circuit, {"x": xv, "y": yv})
            for name, net in gates.items():
                assert values[net.name] == expected[name](xv, yv), name


def test_word_ops_exhaustive_3bit():
    b = CircuitBuilder()
    a = b.input("a", 3)
    c = b.input("c", 3)
    sel = b.input("sel", 1)
    outs = {
        "add": b.add(a, c),
        "sub": b.sub(a, c),
        "mulc": b.mul_const(a, 3),
        "shl": b.shl(a, 1),
        "shr": b.shr(a, 1),
        "concat": b.concat(a, c),
        "extract": b.extract(a, 2, 1),
        "zext": b.zext(a, 5),
        "mux": b.mux(sel, a, c),
        "eq": b.eq(a, c),
        "ne": b.ne(a, c),
        "lt": b.lt(a, c),
        "le": b.le(a, c),
        "gt": b.gt(a, c),
        "ge": b.ge(a, c),
    }
    circuit = b.circuit
    expected = {
        "add": lambda a, c, s: (a + c) % 8,
        "sub": lambda a, c, s: (a - c) % 8,
        "mulc": lambda a, c, s: (a * 3) % 8,
        "shl": lambda a, c, s: (a << 1) % 8,
        "shr": lambda a, c, s: a >> 1,
        "concat": lambda a, c, s: (a << 3) | c,
        "extract": lambda a, c, s: (a >> 1) & 3,
        "zext": lambda a, c, s: a,
        "mux": lambda a, c, s: a if s else c,
        "eq": lambda a, c, s: int(a == c),
        "ne": lambda a, c, s: int(a != c),
        "lt": lambda a, c, s: int(a < c),
        "le": lambda a, c, s: int(a <= c),
        "gt": lambda a, c, s: int(a > c),
        "ge": lambda a, c, s: int(a >= c),
    }
    for av in range(8):
        for cv in range(8):
            for sv in (0, 1):
                values = simulate_combinational(
                    circuit, {"a": av, "c": cv, "sel": sv}
                )
                for name, net in outs.items():
                    assert values[net.name] == expected[name](av, cv, sv), name


def test_missing_input_rejected():
    b = CircuitBuilder()
    b.input("a", 3)
    circuit = b.circuit
    with pytest.raises(CircuitError):
        simulate_combinational(circuit, {})


def test_out_of_range_input_rejected():
    b = CircuitBuilder()
    b.input("a", 3)
    with pytest.raises(CircuitError):
        simulate_combinational(b.circuit, {"a": 8})


class TestSequential:
    def _counter(self, width=4, init=0):
        b = CircuitBuilder("counter")
        enable = b.input("enable", 1)
        count = b.register("count", width, init=init)
        incremented = b.inc(count)
        nxt = b.mux(enable, incremented, count)
        b.next_state(count, nxt)
        b.output("count_out", count)
        return b.build()

    def test_counter_counts(self):
        sim = SequentialSimulator(self._counter())
        for cycle in range(10):
            values = sim.step({"enable": 1})
            assert values["count_out"] == cycle

    def test_counter_holds_when_disabled(self):
        sim = SequentialSimulator(self._counter(init=7))
        for _ in range(3):
            values = sim.step({"enable": 0})
            assert values["count_out"] == 7

    def test_counter_wraps(self):
        sim = SequentialSimulator(self._counter(width=2, init=3))
        assert sim.step({"enable": 1})["count_out"] == 3
        assert sim.step({"enable": 1})["count_out"] == 0

    def test_run_trace(self):
        sim = SequentialSimulator(self._counter())
        trace = sim.run([{"enable": 1}] * 3)
        assert [v["count_out"] for v in trace] == [0, 1, 2]

    def test_register_state_override(self):
        circuit = self._counter()
        values = simulate_combinational(
            circuit, {"enable": 1}, register_values={"count": 9}
        )
        assert values["count_out"] == 9
