"""Tests for level ordering and cone analyses."""

from repro.rtl import (
    CircuitBuilder,
    fanin_cone_nodes,
    fanout_cone_nodes,
    levelize,
    max_level,
    nets_by_level,
    transitive_fanout_count,
)


def _example():
    b = CircuitBuilder()
    a = b.input("a", 4)
    c = b.input("c", 4)
    s = b.add(a, c, name="s")
    p = b.lt(s, c, name="p")
    q = b.not_(p, name="q")
    m = b.mux(q, a, s, name="m")
    b.output("out", m)
    return b.build(), {"a": a, "c": c, "s": s, "p": p, "q": q, "m": m}


def test_levels():
    circuit, nets = _example()
    levels = levelize(circuit)
    assert levels[nets["a"].index] == 0
    assert levels[nets["c"].index] == 0
    assert levels[nets["s"].index] == 1
    assert levels[nets["p"].index] == 2
    assert levels[nets["q"].index] == 3
    assert levels[nets["m"].index] == 4
    assert max_level(circuit) == 4


def test_levels_treat_registers_as_sources():
    b = CircuitBuilder()
    r = b.register("r", 4)
    nxt = b.inc(r)
    b.next_state(r, nxt)
    circuit = b.build()
    levels = levelize(circuit)
    assert levels[r.index] == 0


def test_fanin_cone():
    circuit, nets = _example()
    cone = fanin_cone_nodes([nets["p"]])
    cone_names = {node.output.name for node in cone}
    assert cone_names == {"a", "c", "s", "p"}


def test_fanout_cone():
    circuit, nets = _example()
    cone = fanout_cone_nodes([nets["s"]])
    cone_names = {node.output.name for node in cone}
    assert cone_names == {"p", "q", "m"}


def test_transitive_fanout_count():
    circuit, nets = _example()
    assert transitive_fanout_count(nets["s"]) == 3
    assert transitive_fanout_count(nets["m"]) == 0
    # 'a' feeds the adder and the mux, hence everything downstream.
    assert transitive_fanout_count(nets["a"]) == 4


def test_nets_by_level_sorted():
    circuit, _ = _example()
    ordered = nets_by_level(circuit)
    levels = levelize(circuit)
    values = [levels[n.index] for n in ordered]
    assert values == sorted(values)
