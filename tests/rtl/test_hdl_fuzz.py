"""Generative fuzzing of the HDL frontend.

Random expression trees are rendered twice — as module source for the
parser and as a Python evaluator — and the parsed circuit must agree
with the evaluator on random stimulus.  This pins the parser's
precedence, width-balancing and operator semantics in one sweep.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtl import simulate_combinational
from repro.rtl.hdl import parse_module

WIDTH = 6
MASK = (1 << WIDTH) - 1


class _Gen:
    """Random expression AST over inputs a, b, c (all WIDTH bits)."""

    def __init__(self, rng):
        self.rng = rng

    def expression(self, depth, want_bool=False):
        if want_bool:
            return self.bool_expr(depth)
        return self.word_expr(depth)

    def word_expr(self, depth):
        if depth <= 0 or self.rng.random() < 0.25:
            name = self.rng.choice(["a", "b", "c"])
            return (name, lambda env, n=name: env[n])
        op = self.rng.choice(["add", "sub", "shl", "shr", "mux"])
        if op == "add":
            lt, lf = self.word_expr(depth - 1)
            rt, rf = self.word_expr(depth - 1)
            return (
                f"({lt} + {rt})",
                lambda env: (lf(env) + rf(env)) & MASK,
            )
        if op == "sub":
            lt, lf = self.word_expr(depth - 1)
            rt, rf = self.word_expr(depth - 1)
            return (
                f"({lt} - {rt})",
                lambda env: (lf(env) - rf(env)) & MASK,
            )
        if op == "shl":
            lt, lf = self.word_expr(depth - 1)
            amount = self.rng.randint(0, 3)
            return (
                f"({lt} << {amount})",
                lambda env: (lf(env) << amount) & MASK,
            )
        if op == "shr":
            lt, lf = self.word_expr(depth - 1)
            amount = self.rng.randint(0, 3)
            return (f"({lt} >> {amount})", lambda env: lf(env) >> amount)
        # mux
        ct, cf = self.bool_expr(depth - 1)
        tt, tf = self.word_expr(depth - 1)
        et, ef = self.word_expr(depth - 1)
        return (
            f"({ct} ? {tt} : {et})",
            lambda env: tf(env) if cf(env) else ef(env),
        )

    def bool_expr(self, depth):
        if depth <= 0 or self.rng.random() < 0.3:
            lt, lf = self.word_expr(0)
            value = self.rng.randint(0, MASK)
            op = self.rng.choice(["==", "!=", "<", "<=", ">", ">="])
            python_op = {
                "==": lambda x, y: x == y,
                "!=": lambda x, y: x != y,
                "<": lambda x, y: x < y,
                "<=": lambda x, y: x <= y,
                ">": lambda x, y: x > y,
                ">=": lambda x, y: x >= y,
            }[op]
            return (
                f"({lt} {op} {WIDTH}'d{value})",
                lambda env, f=lf, v=value, p=python_op: int(p(f(env), v)),
            )
        op = self.rng.choice(["&&", "||", "!"])
        if op == "!":
            it, ifn = self.bool_expr(depth - 1)
            return (f"(!{it})", lambda env: 1 - ifn(env))
        lt, lf = self.bool_expr(depth - 1)
        rt, rf = self.bool_expr(depth - 1)
        if op == "&&":
            return (f"({lt} && {rt})", lambda env: lf(env) & rf(env))
        return (f"({lt} || {rt})", lambda env: lf(env) | rf(env))


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 1_000_000))
def test_random_expressions_parse_and_evaluate(seed):
    rng = random.Random(seed)
    generator = _Gen(rng)
    word_text, word_fn = generator.word_expr(3)
    bool_text, bool_fn = generator.bool_expr(3)
    source = f"""
    module fuzz(input [{WIDTH - 1}:0] a, input [{WIDTH - 1}:0] b,
                input [{WIDTH - 1}:0] c,
                output [{WIDTH - 1}:0] w, output p);
      assign w = {word_text};
      assign p = {bool_text};
    endmodule
    """
    circuit = parse_module(source)
    for _ in range(6):
        env = {name: rng.randint(0, MASK) for name in ("a", "b", "c")}
        values = simulate_combinational(circuit, env)
        assert values["w"] == word_fn(env), (word_text, env)
        assert values["p"] == bool_fn(env), (bool_text, env)
