"""Tests for the textual netlist format, including round-trip properties."""

import pytest

from repro.errors import NetlistFormatError
from repro.rtl import CircuitBuilder, load, save, simulate_combinational
from repro.rtl.netlist_io import load_from_path, save_to_path


def _rich_circuit():
    b = CircuitBuilder("rich")
    a = b.input("a", 4)
    c = b.input("c", 4)
    sel = b.input("sel", 1)
    k = b.const(9, 4, name="k9")
    r = b.register("r", 4, init=3)
    s = b.add(a, c, name="s")
    d = b.sub(s, k, name="d")
    m3 = b.mul_const(a, 3, name="m3")
    sh = b.shl(a, 1, name="sh")
    sr = b.shr(a, 2, name="sr")
    cat = b.concat(a, c, name="cat")
    ex = b.extract(cat, 5, 2, name="ex")
    z = b.zext(a, 6, name="z")
    p = b.lt(d, k, name="p")
    g = b.and_(p, sel, name="g")
    m = b.mux(g, s, d, name="m")
    b.next_state(r, m)
    b.output("out", m)
    b.output("flag", g)
    b.output("wide", z)
    b.output("slice", ex)
    b.output("m3o", m3)
    b.output("sho", sh)
    b.output("sro", sr)
    return b.build()


def test_roundtrip_structure():
    original = _rich_circuit()
    text = save(original)
    restored = load(text)
    assert restored.name == original.name
    assert len(restored.nodes) == len(original.nodes)
    assert len(restored.nets) == len(original.nets)
    assert set(restored.outputs) == set(original.outputs)
    assert len(restored.registers) == len(original.registers)
    assert restored.registers[0].init_value == 3


def test_roundtrip_behaviour():
    original = _rich_circuit()
    restored = load(save(original))
    for av in (0, 5, 15):
        for cv in (0, 7):
            for sv in (0, 1):
                inputs = {"a": av, "c": cv, "sel": sv}
                vo = simulate_combinational(original, inputs)
                vr = simulate_combinational(restored, inputs)
                for name in original.outputs:
                    assert vo[original.outputs[name].name] == \
                        vr[restored.outputs[name].name]


def test_double_roundtrip_is_stable():
    text1 = save(_rich_circuit())
    text2 = save(load(text1))
    assert text1 == text2


def test_file_roundtrip(tmp_path):
    path = str(tmp_path / "circuit.net")
    save_to_path(_rich_circuit(), path)
    restored = load_from_path(path)
    assert restored.name == "rich"


def test_comments_and_blank_lines():
    text = (
        "# a comment\n"
        "circuit demo\n"
        "\n"
        "input a 2  # trailing comment\n"
        "output o a\n"
    )
    circuit = load(text)
    assert circuit.name == "demo"
    assert "o" in circuit.outputs


class TestMalformedInputs:
    def test_missing_header(self):
        with pytest.raises(NetlistFormatError):
            load("input a 2\noutput o a\n")

    def test_unknown_keyword(self):
        with pytest.raises(NetlistFormatError):
            load("circuit x\nfrobnicate a 2\n")

    def test_unknown_operator(self):
        with pytest.raises(NetlistFormatError):
            load("circuit x\ninput a 1\nnode n bogus 1 a\n")

    def test_unknown_attribute(self):
        with pytest.raises(NetlistFormatError):
            load("circuit x\ninput a 4\nnode n shl 4 a speed=3\n")

    def test_undefined_net_reference(self):
        with pytest.raises(NetlistFormatError):
            load("circuit x\ninput a 1\nnode n and 1 a ghost\n")

    def test_width_mismatch_reported(self):
        with pytest.raises(NetlistFormatError):
            load("circuit x\ninput a 4\ninput b 5\nnode n add 4 a b\n")

    def test_bad_reg_line(self):
        with pytest.raises(NetlistFormatError):
            load("circuit x\nreg r 4\n")
