"""The shipped circuit netlists must stay in sync with the builders."""

import pathlib
import random

import pytest

from repro.itc99 import circuit
from repro.rtl import SequentialSimulator, load_from_path

CIRCUITS_DIR = pathlib.Path(__file__).parent.parent / "circuits"


@pytest.mark.parametrize("name", ["b01", "b02", "b03", "b04", "b06", "b13"])
def test_artifact_matches_builder(name):
    from_file = load_from_path(str(CIRCUITS_DIR / f"{name}.net"))
    from_builder = circuit(name)
    assert set(from_file.outputs) == set(from_builder.outputs)
    assert len(from_file.nodes) == len(from_builder.nodes)

    rng = random.Random(99)
    sim_a = SequentialSimulator(from_builder)
    sim_b = SequentialSimulator(from_file)
    inputs = [net.name for net in from_builder.inputs]
    widths = {net.name: net.max_value for net in from_builder.inputs}
    for _ in range(40):
        stimulus = {
            input_name: rng.randint(0, widths[input_name])
            for input_name in inputs
        }
        va = sim_a.step(stimulus)
        vb = sim_b.step(stimulus)
        for alias in from_builder.outputs:
            assert va[alias] == vb[alias], (name, alias)


def test_artifacts_exist():
    names = {path.stem for path in CIRCUITS_DIR.glob("*.net")}
    assert {"b01", "b02", "b03", "b04", "b06", "b13"} <= names
