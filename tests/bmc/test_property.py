"""Tests for BMC instance construction and end-to-end solving."""

import pytest

from repro.errors import CircuitError
from repro.bmc import (
    SafetyProperty,
    input_trace_from_model,
    make_bmc_instance,
)
from repro.core import solve_circuit
from repro.rtl import CircuitBuilder, SequentialSimulator


def _overflow_circuit():
    """A counter that can exceed 5 only if enabled every cycle."""
    b = CircuitBuilder("overflow")
    enable = b.input("enable", 1)
    count = b.register("count", 4, init=0)
    b.next_state(count, b.mux(enable, b.inc(count), count))
    ok = b.le(count, 5, name="ok")
    b.output("ok", ok)
    b.output("count_out", count)
    return b.build()


PROP = SafetyProperty("ovf", "ok", "count stays <= 5")


def test_instance_construction():
    instance = make_bmc_instance(_overflow_circuit(), PROP, 4)
    assert instance.name == "overflow_ovf(4)"
    assert instance.assumptions == {"ok@3": 0}
    assert instance.circuit.is_combinational


def test_property_must_be_output():
    circuit = _overflow_circuit()
    with pytest.raises(CircuitError):
        make_bmc_instance(circuit, SafetyProperty("x", "nope", ""), 3)


def test_property_must_be_boolean():
    circuit = _overflow_circuit()
    with pytest.raises(CircuitError):
        make_bmc_instance(circuit, SafetyProperty("x", "count_out", ""), 3)


@pytest.mark.parametrize(
    "bound, expect_sat",
    [
        (1, False),   # count = 0 at frame 0
        (5, False),   # max count at frame 4 is 4
        (6, False),   # count can be 5 at frame 5: still ok
        (7, True),    # count can reach 6 at frame 6
        (10, True),
    ],
)
def test_bounded_violation_threshold(bound, expect_sat):
    instance = make_bmc_instance(_overflow_circuit(), PROP, bound)
    result = solve_circuit(instance.circuit, instance.assumptions)
    assert result.is_sat == expect_sat, bound


def test_counterexample_replays_on_sequential_simulator():
    circuit = _overflow_circuit()
    instance = make_bmc_instance(circuit, PROP, 8)
    result = solve_circuit(instance.circuit, instance.assumptions)
    assert result.is_sat
    trace = input_trace_from_model(circuit, result.model, 8)
    sim = SequentialSimulator(circuit)
    values = [sim.step(frame) for frame in trace]
    assert values[-1]["ok"] == 0  # the violation really happens
