"""Tests for k-induction."""

import pytest

from repro.bmc import (
    InductionStatus,
    SafetyProperty,
    prove_by_induction,
    unroll_free_initial,
)
from repro.core import HDPLL_SP, SolverConfig
from repro.itc99 import circuit
from repro.rtl import CircuitBuilder, simulate_combinational


def _guarded_counter(limit=5, width=4):
    """Counter that only increments below `limit`; invariant count<=limit."""
    b = CircuitBuilder("guarded")
    enable = b.input("enable", 1)
    count = b.register("count", width, init=0)
    can = b.lt(count, limit, name="can")
    bumped = b.mux(b.and_(enable, can), b.inc(count), count)
    b.next_state(count, bumped)
    ok = b.le(count, limit, name="ok")
    b.output("ok", ok)
    b.output("count_out", count)
    return b.build()


def _unguarded_counter(limit=5, width=4):
    """Counter with no guard: the invariant count<=limit is violable."""
    b = CircuitBuilder("unguarded")
    enable = b.input("enable", 1)
    count = b.register("count", width, init=0)
    b.next_state(count, b.mux(enable, b.inc(count), count))
    ok = b.le(count, limit, name="ok")
    b.output("ok", ok)
    return b.build()


PROP = SafetyProperty("inv", "ok", "")


class TestUnrollFreeInitial:
    def test_registers_become_inputs(self):
        step = unroll_free_initial(_guarded_counter(), 2)
        input_names = {net.name for net in step.inputs}
        assert "count@0" in input_names
        assert "enable@0" in input_names
        assert "enable@1" in input_names
        # Frame 1 registers are still driven by frame 0 logic.
        assert "count@1" not in input_names

    def test_semantics_match_from_arbitrary_state(self):
        sequential = _guarded_counter()
        step = unroll_free_initial(sequential, 2)
        values = simulate_combinational(
            step, {"count@0": 3, "enable@0": 1, "enable@1": 1}
        )
        assert values["ok@0"] == 1
        # From count 3 with enable, frame 1 sees count 4.
        assert values["count_out@1"] == 4

    def test_bound_check(self):
        with pytest.raises(Exception):
            unroll_free_initial(_guarded_counter(), 0)


class TestInduction:
    def test_proves_guarded_invariant(self):
        result = prove_by_induction(_guarded_counter(), PROP, max_k=4)
        assert result.status is InductionStatus.PROVED
        assert result.k >= 1

    def test_refutes_unguarded_invariant(self):
        result = prove_by_induction(_unguarded_counter(), PROP, max_k=10)
        assert result.status is InductionStatus.VIOLATED
        # Violation needs limit+2 = 7 frames (count==6 at frame 6).
        assert result.k == 7
        assert result.counterexample is not None

    def test_undecided_when_not_inductive_in_k(self):
        # A property true but needing deeper induction than allowed:
        # count wraps at 16; ok = count != 9 with guard at 5 is proved
        # at k=1 actually...  use a two-phase counter instead.
        b = CircuitBuilder("twophase")
        count = b.register("count", 4, init=0)
        # Deterministic: 0 -> 1 -> ... -> 6 -> 0 (wrap at 6).
        at_end = b.eq(count, 6, name="at_end")
        b.next_state(count, b.mux(at_end, b.const(0, 4), b.inc(count)))
        ok = b.ne(count, 9, name="ok")
        b.output("ok", ok)
        circuit_ = b.build()
        # Non-inductive at k <= 2: free starts 8 (k=1) and 7 (k=2) reach
        # 9 while satisfying the hypothesis frames.
        result = prove_by_induction(circuit_, PROP, max_k=2)
        assert result.status is InductionStatus.UNDECIDED
        # k = 3 closes it: 9's predecessor chain 8 <- 7 <- 6 is broken
        # because 6 wraps to 0.
        result = prove_by_induction(circuit_, PROP, max_k=3)
        assert result.status is InductionStatus.PROVED
        assert result.k == 3

    def test_b02_invariant_proved_unboundedly(self):
        result = prove_by_induction(
            circuit("b02"),
            __import__("repro.itc99.b02", fromlist=["PROPERTIES"]).PROPERTIES["1"],
            max_k=6,
            config=HDPLL_SP,
        )
        assert result.status is InductionStatus.PROVED

    def test_b13_counter_invariant_proved(self):
        from repro.itc99.b13 import PROPERTIES

        result = prove_by_induction(
            circuit("b13"), PROPERTIES["1"], max_k=6, config=HDPLL_SP
        )
        assert result.status is InductionStatus.PROVED

    def test_b13_40_violated(self):
        from repro.itc99.b13 import PROPERTIES

        result = prove_by_induction(
            circuit("b13"), PROPERTIES["40"], max_k=15, config=HDPLL_SP
        )
        assert result.status is InductionStatus.VIOLATED
        assert result.k == 13

    def test_timeout_returns_undecided(self):
        result = prove_by_induction(
            _guarded_counter(), PROP, max_k=4, timeout=0.0
        )
        assert result.status is InductionStatus.UNDECIDED
