"""Incremental-session tests: unroller parity, probe-cache keying,
clause eviction, first-finisher cancellation, and the randomized
differential sweep (session vs one-shot BMC).

The differential oracle is the load-bearing check: a persistent
:class:`BmcSession` sweeping bounds 1..k must report exactly the same
statuses as a fresh ``solve_circuit`` per bound, and every SAT model
must replay on the sequential simulator with the monitor low at the
violating frame.  Clause shifting, probe-cache reuse and assumption
retraction are all behaviourally invisible or they are bugs.
"""

from __future__ import annotations

import os
from typing import List, Sequence

from repro.bmc import (
    BmcSession,
    IncrementalUnroller,
    cone_signature,
    input_trace_from_model,
    make_bmc_instance,
    unroll,
)
from repro.constraints import ClauseDatabase, DomainStore, Variable
from repro.constraints.clause import Clause, make_bool_lit
from repro.core import SolverConfig, Status, solve_circuit
from repro.harness.parallel import Task, run_tasks
from repro.intervals import Interval
from repro.itc99.generator import (
    random_safety_property,
    random_sequential_circuit,
)
from repro.rtl.simulate import SequentialSimulator

_NUM_SEEDS = 40
_CHUNK = 10
_MAX_BOUND = 4

#: Generator shape for the differential sweep.  Kept small: the Omega
#: leaf certification is exponential in the worst case and the solver
#: timeout cannot interrupt it, so wide random cones can hang a seed
#: (seed 16 at the default width=4/operations=10 does exactly that).
_SWEEP_SHAPE = dict(width=3, num_registers=2, operations=8)

#: Seeds whose unrolling still triggers the exponential Omega blowup at
#: this shape (both engines hang identically, so nothing differential
#: is lost by skipping them).
_PATHOLOGICAL_SEEDS = frozenset({31})


def _test_jobs() -> int:
    return int(os.environ.get("REPRO_TEST_JOBS", "1"))


# ----------------------------------------------------------------------
# Incremental unroller parity
# ----------------------------------------------------------------------


def test_incremental_unroller_matches_batch():
    """Frame-by-frame extension builds the same circuit as batch unroll."""
    circuit = random_sequential_circuit(3)
    batch = unroll(circuit, 5)
    unroller = IncrementalUnroller(circuit, name=batch.name)
    for _ in range(5):
        unroller.extend(1)
    incremental = unroller.unrolled

    def shape(c):
        return sorted(
            (node.output.name, node.kind.value, node.output.width)
            for node in c.nodes
        )

    assert shape(incremental) == shape(batch)
    assert sorted(n.name for n in incremental.inputs) == sorted(
        n.name for n in batch.inputs
    )
    assert set(batch.outputs) <= set(incremental.outputs)


def test_extend_returns_only_new_nodes():
    circuit = random_sequential_circuit(7)
    unroller = IncrementalUnroller(circuit, free_initial=True)
    first = unroller.extend(1)
    second = unroller.extend(1)
    assert unroller.frames == 2
    assert first and second
    assert not {n.output.name for n in first} & {
        n.output.name for n in second
    }


# ----------------------------------------------------------------------
# Probe-cache cone signatures
# ----------------------------------------------------------------------


def test_cone_signature_is_frame_invariant():
    """Frames >= 1 of a free-initial unrolling share cone signatures,
    so a predicate probed at one frame is a cache hit at the next."""
    circuit = random_sequential_circuit(11)
    unroller = IncrementalUnroller(circuit, free_initial=True)
    unroller.extend(3)
    unrolled = unroller.unrolled
    sig1 = cone_signature(unrolled.net("ok@1"), 1, {})
    sig2 = cone_signature(unrolled.net("ok@2"), 2, {})
    assert sig1 == sig2
    # Frame 0 reads the free-initial register inputs directly, so its
    # cone differs from the steady-state frames.
    sig0 = cone_signature(unrolled.net("ok@0"), 0, {})
    assert sig0 != sig1


# ----------------------------------------------------------------------
# Learned-clause eviction cap
# ----------------------------------------------------------------------


def _bool_vars(count: int) -> List[Variable]:
    return [
        Variable(index=i, name=f"b{i}", width=1) for i in range(count)
    ]


def test_enforce_cap_evicts_low_activity_clauses():
    variables = _bool_vars(60)
    store = DomainStore(variables)
    db = ClauseDatabase(store)
    count = 0
    for i in range(0, 57, 3):
        # Ternary, high-LBD clauses: local tier, eviction-eligible.
        clause = Clause(
            literals=(
                make_bool_lit(variables[i], 1),
                make_bool_lit(variables[i + 1], 1),
                make_bool_lit(variables[i + 2], 1),
            ),
            learned=True,
            origin="conflict",
            activity=float(i),
            lbd=8,
        )
        assert db.add_clause(clause) is None
        count += 1
    before = len(db.clauses)
    removed = db.enforce_cap(8)
    assert removed > 0
    assert db.clauses_evicted == removed
    assert len(db.clauses) == before - removed
    # Same tier and LBD throughout, so the survivors are the most
    # active clauses.
    disposable = [c for c in db.clauses if c.learned]
    assert min(c.activity for c in disposable) >= float(
        3 * removed
    ) - 1e-9


def test_enforce_cap_never_evicts_reason_clauses():
    variables = _bool_vars(12)
    store = DomainStore(variables)
    db = ClauseDatabase(store)
    # Falsify b0 and b1 so the next (ternary, local-tier) clause
    # immediately propagates b2 and becomes its reason.
    store.assume(variables[0], Interval.point(0))
    store.assume(variables[1], Interval.point(0))
    reason = Clause(
        literals=(
            make_bool_lit(variables[0], 1),
            make_bool_lit(variables[1], 1),
            make_bool_lit(variables[2], 1),
        ),
        learned=True,
        origin="conflict",
        activity=0.0,  # least active: first eviction candidate
        lbd=8,
    )
    assert db.add_clause(reason) is None
    assert store.lo[2] == 1  # clause propagated, so it is a reason
    fillers = [
        Clause(
            literals=(
                make_bool_lit(variables[3 + (i % 2)], 1),
                make_bool_lit(variables[5 + (i % 2)], i % 2),
                make_bool_lit(variables[7 + (i % 2)], 1),
            ),
            learned=True,
            origin="conflict",
            activity=1.0 + i,
            lbd=8,
        )
        for i in range(6)
    ]
    for clause in fillers:
        db.add_clause(clause)
    db.enforce_cap(2)
    assert reason in db.clauses


def test_problem_clauses_are_never_disposable():
    variables = _bool_vars(4)
    store = DomainStore(variables)
    db = ClauseDatabase(store)
    problem = Clause(
        literals=(
            make_bool_lit(variables[0], 1),
            make_bool_lit(variables[1], 1),
        ),
    )
    predicate = Clause(
        literals=(
            make_bool_lit(variables[2], 1),
            make_bool_lit(variables[3], 1),
        ),
        learned=True,
        origin="predicate-learning",
    )
    db.add_clause(problem)
    db.add_clause(predicate)
    assert db.enforce_cap(1) == 0
    assert db.clauses_evicted == 0


# ----------------------------------------------------------------------
# First-finisher-decides cancellation
# ----------------------------------------------------------------------


def _outcome(tag):
    return tag


def test_stop_when_cancels_remaining_tasks():
    tasks = [
        Task(fn=_outcome, args=("base-sat",), label="base"),
        Task(fn=_outcome, args=("step-unsat",), label="step"),
        Task(fn=_outcome, args=("unused",), label="extra"),
    ]
    outcomes = run_tasks(
        tasks, jobs=1, stop_when=lambda o: o.value == "base-sat"
    )
    assert outcomes[0].ok and outcomes[0].value == "base-sat"
    assert not outcomes[1].ok and "cancelled" in outcomes[1].error
    assert not outcomes[2].ok and "cancelled" in outcomes[2].error


def test_stop_when_none_runs_everything():
    tasks = [
        Task(fn=_outcome, args=(i,), label=str(i)) for i in range(4)
    ]
    outcomes = run_tasks(tasks, jobs=1)
    assert [o.value for o in outcomes] == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# Randomized differential sweep: session vs one-shot
# ----------------------------------------------------------------------


def _sweep_chunk(seeds: Sequence[int]) -> List[str]:
    """Session-vs-one-shot oracle over a seed range."""
    prop = random_safety_property()
    config = SolverConfig(predicate_learning=True)
    failures: List[str] = []
    for seed in seeds:
        if seed in _PATHOLOGICAL_SEEDS:
            continue
        circuit = random_sequential_circuit(seed, **_SWEEP_SHAPE)
        session = BmcSession(circuit, prop, config)
        for bound in range(1, _MAX_BOUND + 1):
            instance = make_bmc_instance(circuit, prop, bound)
            oneshot = solve_circuit(
                instance.circuit, instance.assumptions, config
            )
            incremental = session.solve_bound(bound)
            if oneshot.status is Status.UNKNOWN:
                failures.append(
                    f"seed {seed} bound {bound}: one-shot UNKNOWN"
                )
                continue
            if incremental.status is not oneshot.status:
                failures.append(
                    f"seed {seed} bound {bound}: session says "
                    f"{incremental.status.value}, one-shot says "
                    f"{oneshot.status.value}"
                )
                continue
            if incremental.is_sat:
                trace = input_trace_from_model(
                    circuit, incremental.model, bound
                )
                frames = SequentialSimulator(circuit).run(trace)
                if frames[bound - 1]["ok"] != 0:
                    failures.append(
                        f"seed {seed} bound {bound}: session model "
                        "fails simulation replay"
                    )
        if session.session.session_solves != _MAX_BOUND:
            failures.append(
                f"seed {seed}: expected {_MAX_BOUND} session solves, "
                f"got {session.session.session_solves}"
            )
    return failures


def test_session_sweep_matches_oneshot():
    """Persistent-session statuses and models match per-bound solves."""
    chunks = [
        range(start, min(start + _CHUNK, _NUM_SEEDS))
        for start in range(0, _NUM_SEEDS, _CHUNK)
    ]
    tasks = [
        Task(
            fn=_sweep_chunk,
            args=(tuple(chunk),),
            label=f"sweep[{chunk[0]}:{chunk[-1] + 1}]",
        )
        for chunk in chunks
    ]
    failures: List[str] = []
    for outcome in run_tasks(tasks, jobs=_test_jobs()):
        if outcome.ok:
            failures.extend(outcome.value)
        else:
            failures.append(
                f"{outcome.label}: worker failed: {outcome.error}"
            )
    assert not failures, "\n".join(failures)


def test_session_reuses_probe_cache_across_frames():
    """Steady-state frames hit the probe cache, and hits install the
    cached clauses (learned relations appear without re-probing)."""
    circuit = random_sequential_circuit(5)
    prop = random_safety_property()
    session = BmcSession(
        circuit, prop, SolverConfig(predicate_learning=True)
    )
    session.solve_bound(4)
    assert session.cache.hits > 0
    assert session.cache.misses > 0
