"""Tests for time-frame expansion."""

import pytest

from repro.errors import CircuitError
from repro.bmc import frame_name, input_trace_from_model, unroll
from repro.rtl import (
    CircuitBuilder,
    SequentialSimulator,
    simulate_combinational,
)


def _counter_circuit(width=4, init=0):
    b = CircuitBuilder("counter")
    enable = b.input("enable", 1)
    count = b.register("count", width, init=init)
    b.next_state(count, b.mux(enable, b.inc(count), count))
    b.output("value", count)
    return b.build()


def test_unroll_is_combinational():
    unrolled = unroll(_counter_circuit(), 5)
    assert unrolled.is_combinational
    assert len(unrolled.inputs) == 5  # one 'enable' per frame


def test_bound_must_be_positive():
    with pytest.raises(CircuitError):
        unroll(_counter_circuit(), 0)


def test_frame_zero_uses_init():
    circuit = _counter_circuit(init=7)
    unrolled = unroll(circuit, 1)
    values = simulate_combinational(unrolled, {"enable@0": 1})
    assert values["value@0"] == 7


@pytest.mark.parametrize("bound", [1, 2, 5, 8])
def test_unrolled_matches_sequential_simulation(bound):
    circuit = _counter_circuit()
    unrolled = unroll(circuit, bound)
    inputs = {f"enable@{t}": t % 2 for t in range(bound)}
    values = simulate_combinational(unrolled, inputs)

    sim = SequentialSimulator(circuit)
    for t in range(bound):
        frame_values = sim.step({"enable": t % 2})
        assert values[f"value@{t}"] == frame_values["value"]


def test_unroll_richer_circuit_matches_simulation():
    b = CircuitBuilder("rich")
    d = b.input("d", 4)
    go = b.input("go", 1)
    acc = b.register("acc", 4, init=1)
    limit = b.lt(acc, 9, name="limit")
    bumped = b.add(acc, d)
    b.next_state(acc, b.mux(b.and_(go, limit), bumped, acc))
    flag = b.ge(acc, 5, name="flag")
    b.output("acc_out", acc)
    b.output("flag_out", flag)
    circuit = b.build()

    bound = 6
    unrolled = unroll(circuit, bound)
    stimulus = [(3, 1), (2, 0), (7, 1), (1, 1), (0, 1), (5, 1)]
    inputs = {}
    for t, (dv, gv) in enumerate(stimulus):
        inputs[f"d@{t}"] = dv
        inputs[f"go@{t}"] = gv
    values = simulate_combinational(unrolled, inputs)

    sim = SequentialSimulator(circuit)
    for t, (dv, gv) in enumerate(stimulus):
        frame = sim.step({"d": dv, "go": gv})
        assert values[f"acc_out@{t}"] == frame["acc_out"], t
        assert values[f"flag_out@{t}"] == frame["flag_out"], t


def test_input_trace_from_model():
    circuit = _counter_circuit()
    unrolled = unroll(circuit, 3)
    inputs = {"enable@0": 1, "enable@1": 0, "enable@2": 1}
    model = simulate_combinational(unrolled, inputs)
    trace = input_trace_from_model(circuit, model, 3)
    assert trace == [{"enable": 1}, {"enable": 0}, {"enable": 1}]


def test_frame_name():
    assert frame_name("ok", 7) == "ok@7"
