"""Cross-engine agreement: every solver must give the same answer.

The strongest correctness evidence in the suite: random sequential BMC
instances solved by all four HDPLL configurations, the configuration
ablations, bit-blasting+CDCL, the lazy-SMT and the eager-CDP baselines —
all must agree, and SAT models must replay on the concrete simulator.
"""

import pytest

from repro.baselines import solve_by_bitblasting, solve_eager_cdp, solve_lazy_smt
from repro.bmc import make_bmc_instance
from repro.core import SolverConfig, Status, solve_circuit
from repro.itc99 import random_safety_property, random_sequential_circuit

CONFIG_MATRIX = {
    "base": SolverConfig(),
    "+P": SolverConfig(predicate_learning=True),
    "+S": SolverConfig(structural_decisions=True),
    "+S+P": SolverConfig(structural_decisions=True, predicate_learning=True),
    "bool-clauses": SolverConfig(hybrid_learned_clauses=False),
    "mux-implication": SolverConfig(mux_select_implication=True),
    "phase-hints": SolverConfig(
        structural_decisions=True,
        predicate_learning=True,
        learned_phase_hints=True,
    ),
    "no-restarts": SolverConfig(restart_interval=0),
    "phase-zero": SolverConfig(default_phase=0),
    "spec-core": SolverConfig(
        structural_decisions=True,
        predicate_learning=True,
        engine_impl="specialized",
    ),
    "vec-core": SolverConfig(
        structural_decisions=True,
        predicate_learning=True,
        engine_impl="vectorized",
    ),
}


@pytest.mark.parametrize("seed", range(8))
def test_all_hdpll_configs_agree(seed):
    circuit = random_sequential_circuit(seed, width=3, operations=8)
    instance = make_bmc_instance(circuit, random_safety_property(), 3)
    answers = {}
    for name, config in CONFIG_MATRIX.items():
        result = solve_circuit(
            instance.circuit,
            instance.assumptions,
            config.with_overrides(timeout=120),
        )
        assert result.status is not Status.UNKNOWN, (seed, name)
        answers[name] = result.is_sat
    assert len(set(answers.values())) == 1, (seed, answers)


@pytest.mark.parametrize("seed", range(8))
def test_hdpll_agrees_with_all_baselines(seed):
    circuit = random_sequential_circuit(seed + 100, width=3, operations=7)
    instance = make_bmc_instance(circuit, random_safety_property(), 3)

    reference = solve_circuit(
        instance.circuit,
        instance.assumptions,
        SolverConfig(structural_decisions=True, predicate_learning=True,
                     timeout=120),
    )
    assert reference.status is not Status.UNKNOWN

    blast_sat, _, _ = solve_by_bitblasting(
        instance.circuit, instance.assumptions, timeout=120
    )
    assert blast_sat == reference.is_sat, seed

    lazy = solve_lazy_smt(instance.circuit, instance.assumptions, timeout=120)
    if lazy.status is not Status.UNKNOWN:
        assert lazy.is_sat == reference.is_sat, seed

    eager = solve_eager_cdp(
        instance.circuit, instance.assumptions, timeout=120
    )
    if eager.status is not Status.UNKNOWN:
        assert eager.is_sat == reference.is_sat, seed


@pytest.mark.parametrize("seed", [0, 3, 5])
def test_sat_models_replay(seed):
    from repro.bmc import input_trace_from_model
    from repro.rtl import SequentialSimulator

    # Hunt for a SAT instance among seeds, then replay its model.
    circuit = random_sequential_circuit(seed, width=3, operations=8)
    prop = random_safety_property()
    for bound in (2, 3, 4, 5):
        instance = make_bmc_instance(circuit, prop, bound)
        result = solve_circuit(
            instance.circuit,
            instance.assumptions,
            SolverConfig(structural_decisions=True, timeout=120),
        )
        if result.is_sat:
            trace = input_trace_from_model(circuit, result.model, bound)
            sim = SequentialSimulator(circuit)
            values = [sim.step(frame) for frame in trace]
            assert values[-1]["ok"] == 0
            return
    # All bounds UNSAT for this seed: equally fine (nothing to replay).
