"""Regression tests for the bench harness's gating semantics.

Each test pins one of the bugs this PR fixed: abort records winning
best-of-repeat on wall time, aborts/timeouts flattering the geomean,
and ``compare_to_baseline`` silently skipping missing gated engines or
status drift.
"""

from __future__ import annotations

import pytest

from repro.harness.bench import (
    PROFILES,
    BenchCell,
    compare_to_baseline,
    format_gates,
    format_report,
    geomean_wall_time,
    run_profile,
    select_best,
)
from repro.harness.runner import RunRecord


def _record(status: str, seconds: float, engine: str = "hdpll+sp"):
    return RunRecord(
        case="b01_1", bound=20, engine=engine, status=status, seconds=seconds
    )


def _cell(
    case: str,
    status: str,
    wall: float,
    engine: str = "hdpll+sp",
    bound: int = 20,
):
    return BenchCell(
        case=case, bound=bound, engine=engine, status=status, wall_time=wall
    )


def _report(cells, geomean, gated=("hdpll+sp",), timeout=60.0):
    return {
        "schema": 2,
        "profile": "smoke",
        "timeout": timeout,
        "runs": [
            {
                "case": cell.case,
                "bound": cell.bound,
                "engine": cell.engine,
                "status": cell.status,
                "wall_time": cell.wall_time,
                "counters": {},
            }
            for cell in cells
        ],
        "geomean": geomean,
        "gated_engines": list(gated),
    }


# ----------------------------------------------------------------------
# Bug 1: best-of-repeat must not let a fast abort beat a real solve
# ----------------------------------------------------------------------
def test_select_best_prefers_success_over_fast_abort():
    fast_abort = _record("-A-", 0.01)
    slow_solve = _record("U", 2.0)
    assert select_best([fast_abort, slow_solve]) is slow_solve
    assert select_best([slow_solve, fast_abort]) is slow_solve


def test_select_best_prefers_timeout_over_abort():
    assert select_best([_record("-A-", 0.01), _record("-to-", 60.0)]).status == "-to-"


def test_select_best_fastest_within_rank():
    quick = _record("S", 0.5)
    assert select_best([_record("S", 1.5), quick, _record("U", 2.0)]) is quick


def test_select_best_falls_back_when_nothing_succeeds():
    assert select_best([_record("-A-", 0.1), _record("-A-", 0.2)]).status == "-A-"


# ----------------------------------------------------------------------
# Bug 2: geomean must not reward failing cells
# ----------------------------------------------------------------------
def test_geomean_excludes_aborts():
    cells = [
        _cell("b01_1", "U", 4.0),
        _cell("b02_1", "-A-", 0.001),  # would drag the geomean way down
    ]
    assert geomean_wall_time(cells, "hdpll+sp", timeout=60.0) == pytest.approx(4.0)


def test_geomean_pins_timeouts_to_timeout_value():
    cells = [
        _cell("b01_1", "U", 1.0),
        # Raw wall time lies well under the budget (cooperative check
        # fired late); the geomean must charge the full budget.
        _cell("b02_1", "-to-", 10.0),
    ]
    value = geomean_wall_time(cells, "hdpll+sp", timeout=60.0)
    assert value == pytest.approx((1.0 * 60.0) ** 0.5)


def test_geomean_none_when_all_cells_abort():
    cells = [_cell("b01_1", "-A-", 0.01), _cell("b02_1", "-A-", 0.02)]
    assert geomean_wall_time(cells, "hdpll+sp", timeout=60.0) is None


# ----------------------------------------------------------------------
# Bug 3: baseline comparison must fail loudly, never skip silently
# ----------------------------------------------------------------------
def test_gate_fails_when_engine_missing_from_baseline():
    cells = [_cell("b01_1", "U", 1.0)]
    report = _report(cells, {"hdpll+sp": 1.0})
    baseline = _report([], {"hdpll": 1.0})  # gated engine absent
    gates = compare_to_baseline(report, baseline)
    assert len(gates) == 1
    assert not gates[0].passed
    assert gates[0].ratio is None
    assert "missing from baseline" in gates[0].reason
    assert "FAILED" in format_gates(gates, 0.25)


def test_gate_fails_on_status_drift():
    report = _report([_cell("b01_1", "-to-", 60.0)], {"hdpll+sp": 60.0})
    baseline = _report([_cell("b01_1", "U", 1.0)], {"hdpll+sp": 1.0})
    gates = compare_to_baseline(report, baseline)
    assert not gates[0].passed
    assert "status drift at b01_1(20)" in gates[0].reason
    assert "baseline U vs current -to-" in gates[0].reason


def test_gate_fails_for_always_aborting_engine():
    """A synthetic always-aborting run cannot pass the gate."""
    cells = [_cell("b01_1", "-A-", 0.01), _cell("b02_1", "-A-", 0.01)]
    report = _report(cells, {"hdpll+sp": geomean_wall_time(cells, "hdpll+sp")})
    baseline = _report(
        [_cell("b01_1", "U", 1.0), _cell("b02_1", "U", 1.0)],
        {"hdpll+sp": 1.0},
    )
    gates = compare_to_baseline(report, baseline)
    assert not gates[0].passed
    assert "no scorable cells" in gates[0].reason


def test_gate_passes_within_tolerance():
    cells = [_cell("b01_1", "U", 1.1)]
    report = _report(cells, {"hdpll+sp": 1.1})
    baseline = _report([_cell("b01_1", "U", 1.0)], {"hdpll+sp": 1.0})
    gates = compare_to_baseline(report, baseline, tolerance=0.25)
    assert gates[0].passed
    assert gates[0].ratio == pytest.approx(1.1)


def test_gate_fails_past_tolerance():
    cells = [_cell("b01_1", "U", 2.0)]
    report = _report(cells, {"hdpll+sp": 2.0})
    baseline = _report([_cell("b01_1", "U", 1.0)], {"hdpll+sp": 1.0})
    gates = compare_to_baseline(report, baseline, tolerance=0.25)
    assert not gates[0].passed


# ----------------------------------------------------------------------
# run_profile end to end on a tiny synthetic profile
# ----------------------------------------------------------------------
def test_run_profile_report_shape(monkeypatch):
    monkeypatch.setitem(
        PROFILES,
        "tiny",
        {
            "instances": (("b01_1", 5),),
            "engines": ("hdpll", "hdpll+sp"),
            "gated": ("hdpll+sp",),
        },
    )
    report = run_profile("tiny", timeout=60.0, repeat=1)
    assert report["schema"] == 2
    assert len(report["runs"]) == 2
    assert set(report["geomean"]) == {"hdpll", "hdpll+sp"}
    assert all(v is not None for v in report["geomean"].values())
    assert "jobs" not in report  # parallel runs stay byte-identical
    assert "geomean[hdpll+sp]" in format_report(report)


def test_run_profile_format_handles_unscorable_engine():
    report = _report([_cell("b01_1", "-A-", 0.01)], {"hdpll+sp": None})
    assert "n/a (no scorable cells)" in format_report(report)


def _normalize(report):
    """Strip the fields allowed to differ: timestamps and wall times."""
    out = dict(report)
    out.pop("generated_at", None)
    out.pop("geomean", None)  # derived from wall times
    out["runs"] = [
        {k: v for k, v in run.items() if k != "wall_time"}
        for run in report["runs"]
    ]
    return out


def test_run_profile_parallel_report_matches_sequential(monkeypatch):
    """`-j 4` and `-j 1` reports are identical modulo timestamps/times."""
    monkeypatch.setitem(
        PROFILES,
        "tiny2",
        {
            "instances": (("b01_1", 5), ("b02_1", 5)),
            "engines": ("hdpll", "hdpll+sp"),
            "gated": ("hdpll+sp",),
        },
    )
    sequential = run_profile("tiny2", timeout=60.0, repeat=1, jobs=1)
    parallel = run_profile("tiny2", timeout=60.0, repeat=1, jobs=4)
    assert _normalize(parallel) == _normalize(sequential)
    # Statuses identical means the geomeans differ only by wall noise.
    assert [r["status"] for r in parallel["runs"]] == [
        r["status"] for r in sequential["runs"]
    ]
