"""Worker-pool tests: crash isolation, hard kills, determinism.

The worker functions live at module level because spawn workers
re-import them by reference; anything defined inside a test function
would not pickle.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.harness.parallel import (
    EngineTask,
    Task,
    effective_bench_jobs,
    outcome_to_record,
    run_engine_tasks,
    run_tasks,
)
from repro.obs import read_trace, validate_trace


# ----------------------------------------------------------------------
# Spawn-safe worker functions
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _raise_value_error(message):
    raise ValueError(message)


def _exit_hard(code):
    os._exit(code)


def _sleep_forever():
    import time

    while True:
        time.sleep(0.5)


def _flaky(sentinel_path):
    """Dies the first time, succeeds once the sentinel exists."""
    path = Path(sentinel_path)
    if not path.exists():
        path.write_text("crashed once")
        os._exit(3)
    return "recovered"


# ----------------------------------------------------------------------
# Inline path (jobs=1)
# ----------------------------------------------------------------------
def test_inline_matches_pool_results():
    tasks = [Task(fn=_square, args=(n,), label=f"sq{n}") for n in range(6)]
    inline = run_tasks(tasks, jobs=1)
    pooled = run_tasks(tasks, jobs=3)
    assert [o.value for o in inline] == [n * n for n in range(6)]
    assert [o.value for o in pooled] == [o.value for o in inline]
    assert [o.index for o in pooled] == list(range(6))
    assert all(o.ok for o in pooled)


def test_inline_catches_exceptions():
    outcomes = run_tasks(
        [Task(fn=_raise_value_error, args=("boom",))], jobs=1
    )
    assert not outcomes[0].ok
    assert "ValueError: boom" in outcomes[0].error
    assert not outcomes[0].timed_out


# ----------------------------------------------------------------------
# Crash isolation
# ----------------------------------------------------------------------
def test_worker_exception_is_reported_not_fatal():
    tasks = [
        Task(fn=_square, args=(2,)),
        Task(fn=_raise_value_error, args=("kaput",)),
        Task(fn=_square, args=(3,)),
    ]
    outcomes = run_tasks(tasks, jobs=2)
    assert outcomes[0].value == 4
    assert outcomes[2].value == 9
    assert not outcomes[1].ok
    assert "ValueError: kaput" in outcomes[1].error


def test_dead_worker_yields_abort_with_exit_reason():
    tasks = [Task(fn=_square, args=(5,)), Task(fn=_exit_hard, args=(7,))]
    outcomes = run_tasks(tasks, jobs=2)
    assert outcomes[0].value == 25
    crash = outcomes[1]
    assert not crash.ok
    assert "exitcode 7" in crash.error
    # The single bounded retry was consumed before giving up.
    assert crash.attempts == 2
    assert not crash.timed_out


def test_crash_retry_recovers_transient_failure(tmp_path):
    sentinel = tmp_path / "sentinel"
    outcomes = run_tasks(
        [Task(fn=_flaky, args=(str(sentinel),))], jobs=2
    )
    assert outcomes[0].ok
    assert outcomes[0].value == "recovered"
    assert outcomes[0].attempts == 2


def test_hard_timeout_kills_stuck_worker():
    tasks = [
        Task(fn=_sleep_forever, hard_timeout=1.5, label="stuck"),
        Task(fn=_square, args=(4,)),
    ]
    outcomes = run_tasks(tasks, jobs=2)
    stuck = outcomes[0]
    assert not stuck.ok
    assert stuck.timed_out
    assert "hard timeout" in stuck.error
    # Hard kills are terminal: no retry for a worker that overran.
    assert stuck.attempts == 1
    assert outcomes[1].value == 16


def test_outcome_to_record_maps_statuses():
    timeout = run_tasks(
        [Task(fn=_sleep_forever, hard_timeout=1.0)], jobs=2
    )[0]
    record = outcome_to_record(timeout, "b01_1", 5, "hdpll")
    assert record.status == "-to-"
    crash = run_tasks([Task(fn=_exit_hard, args=(9,))], jobs=2)[0]
    record = outcome_to_record(crash, "b01_1", 5, "hdpll")
    assert record.status == "-A-"
    assert "exitcode 9" in record.note


# ----------------------------------------------------------------------
# Engine-task layer
# ----------------------------------------------------------------------
def _strip_times(record):
    data = dict(record.__dict__)
    # Throughput gauges are wall-clock derived, so they vary between
    # runs just like the raw times do.
    for key in (
        "seconds",
        "solve_seconds",
        "learn_seconds",
        "props_per_sec",
        "narrowings_per_sec",
    ):
        data.pop(key, None)
    return data


def test_engine_tasks_parallel_matches_sequential():
    specs = [
        EngineTask(case="b01_1", bound=5, engine="hdpll", timeout=60.0),
        EngineTask(case="b02_1", bound=5, engine="hdpll+sp", timeout=60.0),
        EngineTask(case="b01_1", bound=8, engine="hdpll+sp", timeout=60.0),
    ]
    sequential = run_engine_tasks(specs, jobs=1)
    pooled = run_engine_tasks(specs, jobs=2)
    assert [_strip_times(r) for r in pooled] == [
        _strip_times(r) for r in sequential
    ]
    assert all(r.status in ("S", "U") for r in sequential)


def test_engine_tasks_worker_dir_traces(tmp_path):
    worker_dir = tmp_path / "workers"
    specs = [
        EngineTask(case="b01_1", bound=5, engine="hdpll+sp", timeout=60.0),
        EngineTask(case="b01_1", bound=5, engine="uclid", timeout=60.0),
    ]
    records = run_engine_tasks(specs, jobs=2, worker_dir=str(worker_dir))
    assert all(r.status in ("S", "U") for r in records)
    traces = sorted(worker_dir.glob("*.trace.jsonl"))
    # Only hdpll engines emit traces; the uclid task gets a log only.
    assert len(traces) == 1
    events = read_trace(str(traces[0]))
    assert not validate_trace(events, complete=True)
    assert sorted(p.name for p in worker_dir.glob("*.log"))


def test_effective_bench_jobs_caps_at_cores():
    cores = os.cpu_count() or 1
    assert effective_bench_jobs(1) == 1
    assert effective_bench_jobs(0) == 1
    assert effective_bench_jobs(cores + 8) == cores
