"""Tests for the benchmark harness: runner, table drivers, CLI."""

import pytest

from repro.harness import (
    ENGINE_NAMES,
    TABLE1_INSTANCES,
    TABLE2_INSTANCES,
    format_records,
    format_table1,
    format_table2,
    run_engine,
    run_table1,
    run_table2,
)
from repro.harness.cli import main
from repro.itc99 import instance


class TestRunner:
    def test_run_hdpll(self):
        inst = instance("b01_1", 10)
        record = run_engine(inst, "hdpll+sp", timeout=60)
        assert record.status == "S"
        assert record.seconds >= 0
        assert record.arith_ops > 0

    def test_run_bitblast(self):
        inst = instance("b01_1", 20)
        record = run_engine(inst, "bitblast", timeout=60)
        assert record.status == "U"

    def test_unknown_engine(self):
        inst = instance("b01_1", 10)
        record = run_engine(inst, "frobnicator", timeout=1)
        assert record.status == "-A-"
        assert "unknown engine" in record.note

    def test_timeout_marker(self):
        inst = instance("b04_1", 20)
        record = run_engine(inst, "hdpll", timeout=0.1)
        assert record.status in ("-to-", "S")  # S if absurdly fast

    def test_engine_names_all_runnable(self):
        inst = instance("b01_1", 10)
        for engine in ENGINE_NAMES:
            record = run_engine(inst, engine, timeout=30)
            assert record.status in ("S", "-to-", "-A-"), engine


class TestTableDrivers:
    def test_instance_lists_match_paper_shape(self):
        assert len(TABLE1_INSTANCES) == 18
        assert len(TABLE2_INSTANCES) == 32
        assert ("b13_1", 300) in TABLE1_INSTANCES
        assert ("b13_8", 400) in TABLE2_INSTANCES

    def test_run_table1_small(self):
        rows = run_table1(
            timeout=60, instances=[("b01_1", 10), ("b01_1", 20)]
        )
        assert [row.result_letter for row in rows] == ["S", "U"]
        text = format_table1(rows)
        assert "b01_1(10)" in text
        assert "HDPLL+P" in text

    def test_run_table2_small(self):
        rows = run_table2(
            timeout=60,
            instances=[("b01_1", 10)],
            engines=("hdpll", "hdpll+s"),
        )
        assert rows[0].result_letter == "S"
        text = format_table2(rows, ("hdpll", "hdpll+s"))
        assert "b01_1(10)" in text
        assert "Arith" in text

    def test_scaling_caps_and_dedupes(self):
        rows = run_table1(
            timeout=60,
            max_bound=10,
            instances=[("b01_1", 10), ("b01_1", 20), ("b02_1", 10)],
        )
        names = [(row.case, row.bound) for row in rows]
        assert names == [("b01_1", 10), ("b02_1", 10)]

    def test_format_records(self):
        inst = instance("b01_1", 10)
        record = run_engine(inst, "hdpll", timeout=60)
        text = format_records([record])
        assert "b01_1(10)" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "b13_5" in out

    def test_solve(self, capsys):
        assert main(["solve", "b01_1", "10", "--engine", "hdpll+s"]) == 0
        out = capsys.readouterr().out
        assert "S in" in out

    def test_table1_cli(self, capsys):
        # Tiny: cap at bound 10 so the CLI path stays fast.
        assert main(["table1", "--max-bound", "10", "--timeout", "60"]) == 0
        out = capsys.readouterr().out
        assert "b01_1(10)" in out

    def test_bad_case_raises(self):
        with pytest.raises(Exception):
            main(["solve", "b99_1", "10"])

    def test_trace_cli(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "trace", "b01_1", "10",
                    "--output", str(trace_path), "--narrate",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "trace events" in out
        assert "solve begin" in out       # the narrative
        assert "phase" in out             # the profile table
        from repro.obs import read_trace, validate_trace

        events = read_trace(trace_path)
        assert validate_trace(events) == []

    def test_trace_cli_replay(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert main(["trace", "b01_1", "10", "--output", str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["trace", "--replay", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "result:" in out

    def test_trace_cli_requires_case_without_replay(self, capsys):
        assert main(["trace"]) == 2
        err = capsys.readouterr().err
        assert "case and bound are required" in err

    def test_profile_cli(self, capsys):
        assert main(["profile", "b01_1", "10"]) == 0
        out = capsys.readouterr().out
        assert "search" in out
        assert "total (top-level phases)" in out


class TestLogging:
    def _cleanup(self):
        import logging

        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            if getattr(handler, "_repro_cli_handler", False):
                logger.removeHandler(handler)

    def test_log_level_flag_wires_stderr_handler(self, capsys):
        try:
            assert main(["--log-level", "debug", "list"]) == 0
            err = capsys.readouterr().err
            assert "predicate learning" not in err  # list solves nothing
            assert main(["--log-level", "debug", "solve", "b01_1", "5"]) == 0
            err = capsys.readouterr().err
            assert "run begin" in err
        finally:
            self._cleanup()

    def test_env_var_default(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "info")
        try:
            assert main(["solve", "b01_1", "5"]) == 0
        finally:
            self._cleanup()

    def test_silent_by_default(self, capsys):
        import logging

        assert main(["solve", "b01_1", "5"]) == 0
        err = capsys.readouterr().err
        assert "run begin" not in err
        logger = logging.getLogger("repro")
        assert not any(
            getattr(h, "_repro_cli_handler", False) for h in logger.handlers
        )


class TestScaling:
    def test_run_scaling_shape(self):
        from repro.harness.experiments import run_scaling

        rows = run_scaling(
            case="b01_1", bounds=(5, 10), engines=("hdpll",), timeout=60
        )
        assert [(r.case, r.bound) for r in rows] == [
            ("b01_1", 5),
            ("b01_1", 10),
        ]
        assert all("hdpll" in r.records for r in rows)

    def test_scaling_cli(self, capsys):
        assert (
            main(
                [
                    "scaling",
                    "b01_1",
                    "--bounds",
                    "5,10",
                    "--engines",
                    "hdpll",
                    "--timeout",
                    "60",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "b01_1(5)" in out


class TestBudgetHandling:
    def test_tiny_omega_budget_is_unknown_not_crash(self):
        from repro.core import SolverConfig, Status, solve_circuit
        from repro.itc99 import instance as make_instance

        inst = make_instance("b04_1", 5)
        config = SolverConfig(
            structural_decisions=True, omega_branch_budget=1, timeout=30
        )
        result = solve_circuit(inst.circuit, inst.assumptions, config)
        assert result.status in (Status.UNKNOWN, Status.SAT, Status.UNSAT)


class TestProveCli:
    def test_prove_induction(self, capsys):
        assert main(["prove", "b13_1", "--max-k", "4", "--timeout", "120"]) == 0
        out = capsys.readouterr().out
        assert "proved" in out

    def test_prove_abstraction(self, capsys):
        assert main(["prove", "b02_1", "--method", "abstraction"]) == 0
        out = capsys.readouterr().out
        assert "proved" in out
