"""Portfolio end-to-end tests.

The load-bearing check is the randomized differential sweep: the
deterministic in-process portfolio must report exactly the same
statuses as a fresh sequential ``solve_circuit`` per instance, and
every SAT model must replay on the sequential simulator with the
monitor low at the violating frame — cube splitting, diversification
and clause sharing are all behaviourally invisible or they are bugs.

The multi-process pool is exercised separately through its crash
semantics (requeue once, then fail loudly), which also covers worker
spawn, the pipe protocol, and result assembly.
"""

from __future__ import annotations

import os
from typing import List, Sequence

import pytest

from repro.bmc import input_trace_from_model, make_bmc_instance
from repro.core import SolverConfig, Status, solve_circuit
from repro.core.hdpll import HdpllSolver, luby
from repro.errors import SolverError
from repro.harness.parallel import Task, run_tasks
from repro.itc99.generator import (
    random_safety_property,
    random_sequential_circuit,
)
from repro.portfolio import (
    Cube,
    PortfolioError,
    ProblemSpec,
    build_problem,
    default_cube_depth,
    generate_cubes,
    prove_by_induction_portfolio,
    replay_model,
    rotation_size,
    run_pool,
    solve_portfolio,
    worker_config,
)
from repro.rtl.simulate import SequentialSimulator

_NUM_SEEDS = 40
_CHUNK = 10
_MAX_BOUND = 3

#: Same generator shape (and pathological-seed skip list) as the BMC
#: session sweep — see tests/bmc/test_session.py for the rationale.
_SWEEP_SHAPE = dict(width=3, num_registers=2, operations=8)
_PATHOLOGICAL_SEEDS = frozenset({31})


def _test_jobs() -> int:
    return int(os.environ.get("REPRO_TEST_JOBS", "1"))


# ----------------------------------------------------------------------
# Diversification and restart schedules
# ----------------------------------------------------------------------


def test_luby_sequence():
    assert [luby(i) for i in range(1, 16)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
    ]


def test_unknown_restart_strategy_rejected():
    circuit = random_sequential_circuit(1, **_SWEEP_SHAPE)
    with pytest.raises(SolverError, match="restart strategy"):
        HdpllSolver(circuit, SolverConfig(restart_strategy="fibonacci"))


def test_worker_rotation_is_diverse_and_cyclic():
    base = SolverConfig(learning_threshold=7)
    configs = [worker_config(base, i) for i in range(rotation_size())]
    # All distinct, cycle wraps, base settings survive the overrides.
    assert len({repr(c) for c in configs}) == rotation_size()
    assert worker_config(base, rotation_size()) == configs[0]
    assert all(c.learning_threshold == 7 for c in configs)
    # Index 0 (the root-cube racer) is the cheapest strategy.
    assert not configs[0].structural_decisions
    assert not configs[0].predicate_learning
    # Both restart schedules and both learning modes are represented.
    assert {c.restart_strategy for c in configs} == {"geometric", "luby"}
    assert {c.predicate_learning for c in configs} == {True, False}
    assert {c.structural_decisions for c in configs} == {True, False}


def test_default_cube_depth():
    assert default_cube_depth(1) == 1
    assert default_cube_depth(2) == 2
    assert default_cube_depth(4) == 3
    assert default_cube_depth(8) == 4


# ----------------------------------------------------------------------
# Randomized differential sweep: portfolio vs sequential
# ----------------------------------------------------------------------


def _sweep_chunk(seeds: Sequence[int]) -> List[str]:
    """Portfolio-vs-sequential oracle over a seed range."""
    prop = random_safety_property()
    failures: List[str] = []
    for seed in seeds:
        if seed in _PATHOLOGICAL_SEEDS:
            continue
        circuit = random_sequential_circuit(seed, **_SWEEP_SHAPE)
        for bound in range(1, _MAX_BOUND + 1):
            instance = make_bmc_instance(circuit, prop, bound)
            sequential = solve_circuit(
                instance.circuit, instance.assumptions, SolverConfig()
            )
            if sequential.status is Status.UNKNOWN:
                failures.append(
                    f"seed {seed} bound {bound}: sequential UNKNOWN"
                )
                continue
            portfolio = solve_portfolio(
                instance.circuit,
                instance.assumptions,
                jobs=3,
                deterministic=True,
            )
            if portfolio.status is not sequential.status:
                failures.append(
                    f"seed {seed} bound {bound}: portfolio says "
                    f"{portfolio.status.value}, sequential says "
                    f"{sequential.status.value}"
                )
                continue
            if portfolio.is_sat:
                trace = input_trace_from_model(
                    circuit, portfolio.model, bound
                )
                frames = SequentialSimulator(circuit).run(trace)
                if frames[bound - 1]["ok"] != 0:
                    failures.append(
                        f"seed {seed} bound {bound}: portfolio model "
                        "fails simulation replay"
                    )
    return failures


def test_portfolio_sweep_matches_sequential():
    """Deterministic portfolio statuses and models match one-shot
    sequential solves across 40 random circuits."""
    chunks = [
        range(start, min(start + _CHUNK, _NUM_SEEDS))
        for start in range(0, _NUM_SEEDS, _CHUNK)
    ]
    tasks = [
        Task(
            fn=_sweep_chunk,
            args=(tuple(chunk),),
            label=f"sweep[{chunk[0]}:{chunk[-1] + 1}]",
        )
        for chunk in chunks
    ]
    failures: List[str] = []
    for outcome in run_tasks(tasks, jobs=_test_jobs()):
        if outcome.ok:
            failures.extend(outcome.value)
        else:
            failures.append(
                f"{outcome.label}: worker failed: {outcome.error}"
            )
    assert not failures, "\n".join(failures)


def test_deterministic_mode_is_reproducible():
    """Two identical deterministic runs agree bit-for-bit on status and
    search counters (the property the tests lean on)."""
    circuit = random_sequential_circuit(7, **_SWEEP_SHAPE)
    instance = make_bmc_instance(circuit, random_safety_property(), 3)

    def run():
        return solve_portfolio(
            instance.circuit,
            instance.assumptions,
            jobs=3,
            deterministic=True,
        )

    first, second = run(), run()
    assert first.status is second.status
    assert first.stats.decisions == second.stats.decisions
    assert first.stats.conflicts == second.stats.conflicts
    assert first.stats.cubes_solved == second.stats.cubes_solved
    assert first.stats.clauses_exported == second.stats.clauses_exported


def test_portfolio_stats_and_note_surface():
    circuit = random_sequential_circuit(9, **_SWEEP_SHAPE)
    instance = make_bmc_instance(circuit, random_safety_property(), 2)
    result = solve_portfolio(
        instance.circuit,
        instance.assumptions,
        jobs=2,
        deterministic=True,
    )
    stats = result.stats
    assert result.status is not Status.UNKNOWN
    assert stats.cubes_generated >= 1
    assert stats.cubes_refuted <= stats.cubes_generated
    assert stats.cubes_solved >= 1
    assert result.note.startswith("portfolio:")
    assert stats.solve_time > 0.0
    if result.is_sat:
        assert replay_model(
            instance.circuit, result.model, instance.assumptions
        )


# ----------------------------------------------------------------------
# Multi-process pool: crash requeue semantics
# ----------------------------------------------------------------------


def _crash_problem():
    spec = ProblemSpec("instance", "b01_1", 10)
    circuit, assumptions = build_problem(spec)
    report = generate_cubes(circuit, assumptions, depth=1)
    assert report.status is None
    return spec, [Cube(())] + list(report.cubes)


def test_crashed_worker_requeues_cube_once():
    """Worker 0 dies on its first assignment; the cube is requeued and
    the surviving worker still settles the query."""
    spec, cubes = _crash_problem()
    result = run_pool(
        spec,
        cubes,
        jobs=2,
        base_config=SolverConfig(),
        timeout=120.0,
        crash_cubes={0: tuple(range(len(cubes)))},
    )
    assert result.requeues == 1
    assert result.status == "sat"  # b01_1 is violated by bound 10
    assert result.model is not None
    circuit, assumptions = build_problem(spec)
    assert replay_model(circuit, result.model, assumptions)


def test_duplicate_holder_cancelled_when_cube_decided(tmp_path):
    """A worker grinding on an already-decided cube gets a cube-scoped
    cancel and lives on, instead of burning until the pool shuts down.

    Worker 0 stalls (test hook) on every cube it is handed, so its
    cubes are only ever decided by worker 1 picking up duplicates once
    the queue drains.  Each such result must trigger a ``("cancel",
    index)`` to worker 0 — proven by the marker files the stall hook
    writes on receipt — and the pool must still settle the query.
    The step query is UNSAT, so every split cube is UNSAT and the
    verdict needs *all* of them (no root cube, ``root_index=None``):
    the stalled cubes cannot be bypassed.  The problem is b13_1's
    inductive step at its proving depth — UNSAT, but beyond pure
    propagation, so cube generation cannot settle it early.
    """
    spec = ProblemSpec("step", "b13_1", 6)
    circuit, assumptions = build_problem(spec)
    report = generate_cubes(circuit, assumptions, depth=1)
    assert report.status is None
    cubes = list(report.cubes)
    assert len(cubes) >= 2
    result = run_pool(
        spec,
        cubes,
        jobs=2,
        base_config=SolverConfig(),
        timeout=120.0,
        root_index=None,
        stall_cubes={0: tuple(range(len(cubes)))},
        stall_dir=str(tmp_path),
    )
    assert result.status == "unsat"
    markers = sorted(p.name for p in tmp_path.iterdir())
    assert markers, "stalled duplicate holder never received a cancel"
    assert all(m.startswith("cancelled-0-") for m in markers)


def test_all_workers_crashing_fails_loudly():
    spec, cubes = _crash_problem()
    with pytest.raises(PortfolioError):
        run_pool(
            spec,
            cubes,
            jobs=2,
            base_config=SolverConfig(),
            timeout=120.0,
            crash_cubes={
                0: tuple(range(len(cubes))),
                1: tuple(range(len(cubes))),
            },
        )


# ----------------------------------------------------------------------
# Portfolio induction
# ----------------------------------------------------------------------


def test_portfolio_induction_proves_b13_counter():
    result = prove_by_induction_portfolio(
        "b13_1", max_k=6, jobs=2, deterministic=True
    )
    from repro.bmc.induction import InductionStatus

    assert result.status is InductionStatus.PROVED
    assert result.depth_stats
