"""Cube-splitter soundness: the kept cubes (plus the branches refuted
during generation) must partition the consistent assignment space.

The oracle is sampling: simulate random input vectors through the
unrolled circuit — every such valuation is circuit-consistent by
construction — and check that each one satisfying the base assumptions
is admitted by *exactly one* emitted cube, and that this cube is a kept
one (a refuted branch admitting a real model would mean the splitter
pruned a satisfiable region, the one unsound thing it could do).
"""

from __future__ import annotations

import random

from repro.bmc import make_bmc_instance
from repro.core import Status
from repro.intervals import Interval
from repro.itc99.generator import (
    random_safety_property,
    random_sequential_circuit,
)
from repro.portfolio import Cube, generate_cubes
from repro.rtl.builder import CircuitBuilder
from repro.rtl.simulate import simulate_combinational

_SHAPE = dict(width=3, num_registers=2, operations=8)
_SEEDS = range(6)
_SAMPLES = 50


def _sample(circuit, rng):
    """One circuit-consistent full valuation (every net name -> value)."""
    inputs = {
        net.name: rng.randrange(1 << net.width) for net in circuit.inputs
    }
    return simulate_combinational(circuit, inputs)


def _satisfies(assumptions, values) -> bool:
    for name, value in assumptions.items():
        interval = (
            value if isinstance(value, Interval) else Interval.point(value)
        )
        if not interval.lo <= values[name] <= interval.hi:
            return False
    return True


def _partition_check(circuit, assumptions, report, rng, samples=_SAMPLES):
    """Count samples proving exactly-one-cube membership."""
    cubes = list(report.cubes) + list(report.refuted)
    checked = 0
    for _ in range(samples):
        values = _sample(circuit, rng)
        if not _satisfies(assumptions, values):
            continue
        admitting = [cube for cube in cubes if cube.admits(values)]
        assert len(admitting) == 1, (
            f"sample admitted by {len(admitting)} cubes: {admitting}"
        )
        assert admitting[0] in report.cubes, (
            f"consistent sample lands in refuted branch {admitting[0]}"
        )
        checked += 1
    return checked


def test_cubes_partition_unconstrained_space():
    """With no base assumptions every sample must land in one cube."""
    rng = random.Random(2026)
    prop = random_safety_property()
    for seed in _SEEDS:
        sequential = random_sequential_circuit(seed, **_SHAPE)
        instance = make_bmc_instance(sequential, prop, 2)
        report = generate_cubes(instance.circuit, {}, depth=3)
        assert report.status is None
        assert report.cubes
        checked = _partition_check(instance.circuit, {}, report, rng)
        assert checked == _SAMPLES


def test_cubes_partition_under_assumptions():
    """Samples satisfying the BMC assumptions land in exactly one kept
    cube; samples violating them are out of scope (and skipped)."""
    rng = random.Random(99)
    prop = random_safety_property()
    total = 0
    for seed in _SEEDS:
        sequential = random_sequential_circuit(seed, **_SHAPE)
        instance = make_bmc_instance(sequential, prop, 2)
        report = generate_cubes(
            instance.circuit, instance.assumptions, depth=3
        )
        if report.status is not None:
            # Generation settled the query; per the contract that is
            # only ever UNSAT, never a silent SAT claim.
            assert report.status is Status.UNSAT
            continue
        total += _partition_check(
            instance.circuit, instance.assumptions, report, rng, samples=80
        )
    # At least some seed/sample pairs must actually exercise the check.
    assert total > 0


def test_depth_zero_is_single_empty_cube():
    sequential = random_sequential_circuit(3, **_SHAPE)
    instance = make_bmc_instance(sequential, random_safety_property(), 2)
    report = generate_cubes(instance.circuit, {}, depth=0)
    assert report.cubes == [Cube(())]
    assert not report.refuted
    assert Cube(()).admits({}) and Cube(()).size == 0


def test_cube_counts_respect_depth():
    sequential = random_sequential_circuit(4, **_SHAPE)
    instance = make_bmc_instance(sequential, random_safety_property(), 2)
    depth = 3
    report = generate_cubes(instance.circuit, {}, depth=depth)
    assert 1 <= len(report.cubes) <= 2**depth
    assert all(cube.size <= depth for cube in report.cubes)
    assert all(cube.size <= depth for cube in report.refuted)
    # Split variables are reported in first-use order, no duplicates.
    assert len(report.split_names) == len(set(report.split_names))


def test_generation_detects_refuted_assumptions():
    """x AND NOT x assumed true is killed by propagation before any
    cube exists, settling the query UNSAT at generation time."""
    b = CircuitBuilder("contradiction")
    x = b.input("x")
    never = b.and_(x, b.not_(x), name="never")
    b.output("never_out", never)
    circuit = b.build()
    report = generate_cubes(circuit, {"never": 1}, depth=2)
    assert report.status is Status.UNSAT
    assert not report.cubes
    assert "refuted" in report.note


def test_cube_round_trips_as_assumptions():
    cube = Cube((("a", 1, 1), ("w", 0, 7)))
    assumptions = cube.as_assumptions()
    assert assumptions == {
        "a": Interval.point(1),
        "w": Interval.make(0, 7),
    }
    assert cube.names() == frozenset({"a", "w"})
    assert cube.admits({"a": 1, "w": 3, "other": 9})
    assert not cube.admits({"a": 0, "w": 3})
