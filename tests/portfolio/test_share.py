"""Clause-sharing round trip: serialize on one compile, install on
another, and exercise every installation edge case the importer relies
on :meth:`ClauseDatabase.add_clause` to handle — re-watching, duplicate
rejection, clauses arriving already satisfied, unit, or falsified under
the importer's current trail.
"""

from __future__ import annotations

import pickle

from repro.constraints.clause import BoolLit, Clause, WordLit
from repro.constraints.store import Conflict
from repro.core import SolverConfig
from repro.core.session import SolverSession
from repro.intervals import Interval
from repro.portfolio import (
    ClauseExporter,
    ClauseImporter,
    ShareChannel,
    clause_payload_key,
    deserialize_clause,
    serialize_clause,
)
from repro.rtl.builder import CircuitBuilder


def _circuit():
    b = CircuitBuilder("share")
    a = b.input("a")
    c = b.input("c")
    w = b.input("w", 4)
    flag = b.or_(a, c, name="flag")
    small = b.lt(w, 9, name="small")
    b.output("out", b.and_(flag, small))
    return b.build()


def _session() -> SolverSession:
    return SolverSession(_circuit(), SolverConfig())


def _clause(session, lbd=2) -> Clause:
    names = session._var_by_name
    clause = Clause(
        literals=(
            BoolLit(names["a"], positive=True),
            WordLit(names["w"], Interval.make(0, 7), positive=True),
        ),
        learned=True,
        origin="conflict",
    )
    clause.lbd = lbd
    return clause


# ----------------------------------------------------------------------
# Serialization round trip
# ----------------------------------------------------------------------


def test_round_trip_across_compiles():
    """A clause serialized from one compile re-materializes against a
    *different* compile of the same circuit, bound to the receiver's
    variable objects, tagged shared/learned with the LBD preserved."""
    sender, receiver = _session(), _session()
    payload = serialize_clause(_clause(sender, lbd=3))
    # The payload crosses a process boundary in production; a pickle
    # round trip proves it is plain picklable data.
    payload = pickle.loads(pickle.dumps(payload))
    rebuilt = deserialize_clause(payload, receiver._var_by_name)
    assert rebuilt is not None
    assert rebuilt.learned and rebuilt.origin == "shared"
    assert rebuilt.lbd == 3
    bool_lit, word_lit = rebuilt.literals
    assert bool_lit.var is receiver._var_by_name["a"]
    assert bool_lit.positive
    assert word_lit.var is receiver._var_by_name["w"]
    assert word_lit.interval == Interval.make(0, 7)
    assert word_lit.positive


def test_unresolvable_name_is_rejected():
    sender, receiver = _session(), _session()
    payload = serialize_clause(_clause(sender))
    mangled = ((("b", "no-such-net", True),) + payload[0][1:], payload[1])
    assert deserialize_clause(mangled, receiver._var_by_name) is None
    importer = ClauseImporter(receiver._var_by_name)
    assert importer.accept([mangled]) == []
    assert importer.rejected == 1 and importer.installed == 0


def test_payload_key_is_order_insensitive():
    sender = _session()
    clause = _clause(sender)
    flipped = Clause(
        literals=tuple(reversed(clause.literals)),
        learned=True,
        origin="conflict",
    )
    flipped.lbd = clause.lbd
    assert clause_payload_key(serialize_clause(clause)) == clause_payload_key(
        serialize_clause(flipped)
    )


# ----------------------------------------------------------------------
# Installation against the receiver's trail
# ----------------------------------------------------------------------


def test_import_installs_and_watches():
    sender, receiver = _session(), _session()
    payload = serialize_clause(_clause(sender))
    importer = ClauseImporter(receiver._var_by_name)
    (clause,) = importer.accept([payload])
    db = receiver.solver.engine.clause_db
    assert receiver.solver.engine.add_clause(clause) is None
    assert clause in db.clauses
    # Both watch positions registered on the watched variables' lists.
    positions = db._watch_positions[id(clause)]
    for position in set(positions):
        var = clause.literals[position].var
        assert any(
            entry[0] is clause and entry[1] == position
            for entry in db.watches[var.index]
        )


def test_duplicate_payloads_rejected_once_installed():
    sender, receiver = _session(), _session()
    payload = serialize_clause(_clause(sender))
    reordered = serialize_clause(
        Clause(
            literals=tuple(reversed(_clause(sender).literals)),
            learned=True,
            origin="conflict",
        )
    )
    importer = ClauseImporter(receiver._var_by_name)
    assert len(importer.accept([payload])) == 1
    # Same clause again — even with the literals reordered — is a dup.
    assert importer.accept([payload, reordered]) == []
    assert importer.received == 3
    assert importer.installed == 1
    assert importer.rejected == 2
    assert abs(importer.hit_rate - 1 / 3) < 1e-9


def test_import_already_satisfied_clause():
    sender, receiver = _session(), _session()
    store = receiver.solver.store
    store.assume(receiver._var_by_name["a"], Interval.point(1))
    payload = serialize_clause(_clause(sender))
    importer = ClauseImporter(receiver._var_by_name)
    (clause,) = importer.accept([payload])
    # a=1 satisfies the Boolean literal: installs quietly, no narrowing
    # of the word variable.
    assert receiver.solver.engine.add_clause(clause) is None
    assert store.domain(receiver._var_by_name["w"]) == Interval.make(0, 15)
    assert clause in receiver.solver.engine.clause_db.clauses


def test_import_unit_clause_propagates():
    sender, receiver = _session(), _session()
    store = receiver.solver.store
    store.assume(receiver._var_by_name["a"], Interval.point(0))
    payload = serialize_clause(_clause(sender))
    importer = ClauseImporter(receiver._var_by_name)
    (clause,) = importer.accept([payload])
    # a=0 falsifies the Boolean literal, so the word literal is unit and
    # installation immediately narrows w to <0, 7>.
    assert receiver.solver.engine.add_clause(clause) is None
    assert store.domain(receiver._var_by_name["w"]) == Interval.make(0, 7)


def test_import_falsified_clause_conflicts():
    sender, receiver = _session(), _session()
    store = receiver.solver.store
    store.assume(receiver._var_by_name["a"], Interval.point(0))
    store.assume(receiver._var_by_name["w"], Interval.make(10, 12))
    payload = serialize_clause(_clause(sender))
    importer = ClauseImporter(receiver._var_by_name)
    (clause,) = importer.accept([payload])
    outcome = receiver.solver.engine.add_clause(clause)
    assert isinstance(outcome, Conflict)


# ----------------------------------------------------------------------
# Export filtering and batching
# ----------------------------------------------------------------------


def test_exporter_caps_and_cube_filter():
    session = _session()
    names = session._var_by_name
    batches = []
    exporter = ClauseExporter(
        batches.append, max_size=3, max_lbd=3, flush_threshold=2
    )
    # The dynamic glue threshold starts clamped to max_lbd.
    assert exporter.glue_threshold == 3

    def clause(*literals, lbd=1):
        built = Clause(literals=tuple(literals), learned=True)
        built.lbd = lbd
        return built

    a1 = BoolLit(names["a"], positive=True)
    c0 = BoolLit(names["c"], positive=False)
    w_low = WordLit(names["w"], Interval.make(0, 3), positive=True)
    w_high = WordLit(names["w"], Interval.make(4, 7), positive=True)

    # Too long (4 > max_size) and too glue-weak (3 literals with LBD 5
    # above the threshold): private.
    exporter.export(clause(a1, c0, w_low, w_high))
    exporter.export(clause(a1, c0, w_low, lbd=5))
    assert exporter.exported == 0 and not batches

    # Binary clauses always pass, whatever their recorded LBD.
    exporter.export(clause(a1, c0, lbd=5))
    assert exporter.exported == 1
    assert not batches  # buffered below threshold

    # Cube-local: mentions an assumption variable of the current cube.
    exporter.cube_names = frozenset({"w"})
    exporter.export(clause(a1, c0, w_low, lbd=2))
    assert exporter.suppressed == 1 and exporter.exported == 1
    exporter.cube_names = frozenset()

    # The same clause passes once the cube filter lifts, reaching the
    # flush threshold: one batch of two.
    exporter.export(clause(a1, c0, w_low, lbd=2))
    assert exporter.exported == 2
    assert len(batches) == 1 and len(batches[0]) == 2

    # A permuted repeat is deduplicated, buffered nothing.
    exporter.export(clause(c0, a1, lbd=5))
    exporter.flush()
    assert exporter.exported == 2
    assert len(batches) == 1


def test_share_channel_polls_receive_then_drains():
    session = _session()
    payload = serialize_clause(_clause(session))
    inbox = [[payload]]

    def receive():
        fresh, inbox[:] = list(inbox), []
        return fresh

    channel = ShareChannel(
        ClauseExporter(lambda batch: None),
        ClauseImporter(session._var_by_name),
        receive=receive,
    )
    (clause,) = channel.poll()
    assert clause.origin == "shared"
    assert channel.poll() == ()


def test_dynamic_glue_threshold_retunes_both_directions():
    """The admission ceiling relaxes when almost nothing qualifies and
    tightens again when the worker floods its peers (PR 9)."""
    from repro.portfolio.share import (
        DEFAULT_GLUE_START,
        GLUE_WINDOW,
    )

    session = _session()
    names = session._var_by_name
    exporter = ClauseExporter(lambda batch: None, flush_threshold=10_000)
    assert exporter.glue_threshold == DEFAULT_GLUE_START

    a1 = BoolLit(names["a"], positive=True)
    c1 = BoolLit(names["c"], positive=True)

    def word_clauses(lbd, extra):
        """Distinct clauses (unique interval literal) at a fixed LBD."""
        built = []
        for lo in range(16):
            for hi in range(lo, 16):
                clause = Clause(
                    literals=(
                        a1,
                        *extra,
                        WordLit(
                            names["w"],
                            Interval.make(lo, hi),
                            positive=True,
                        ),
                    ),
                    learned=True,
                )
                clause.lbd = lbd
                built.append(clause)
        return built

    # A full window of glue-weak clauses (LBD 6 > threshold 4): export
    # rate 0 is under the low-water mark, so the ceiling relaxes by one
    # notch per window until it reaches max_lbd.
    weak = iter(word_clauses(lbd=6, extra=(c1,)))
    for _ in range(GLUE_WINDOW):
        exporter.export(next(weak))
    assert exporter.glue_threshold == DEFAULT_GLUE_START + 1
    assert exporter.exported == 0

    # A window of always-admitted binary clauses floods the channel:
    # export rate 1.0 is over the high-water mark, so it tightens back.
    strong = iter(word_clauses(lbd=6, extra=()))
    for _ in range(GLUE_WINDOW):
        exporter.export(next(strong))
    assert exporter.glue_threshold == DEFAULT_GLUE_START
    assert exporter.exported == GLUE_WINDOW

    # With dynamic glue off the ceiling is pinned at max_lbd.
    fixed = ClauseExporter(
        lambda batch: None, max_lbd=5, dynamic_glue=False
    )
    assert fixed.glue_threshold == 5
    still_weak = iter(word_clauses(lbd=6, extra=(c1,)))
    for _ in range(GLUE_WINDOW):
        fixed.export(next(still_weak))
    assert fixed.glue_threshold == 5
