"""Tests for the SMT-LIB2 exporter.

The strong check: a miniature S-expression evaluator executes every
exported assertion against values from the concrete simulator — each
assertion must hold on every simulated point (the export is a faithful
encoding), and the assumption assertions must flip exactly when the
simulated values violate them.
"""

import random
import re

import pytest

from repro.errors import UnsupportedOperationError
from repro.export import to_smtlib2
from repro.intervals import Interval
from repro.itc99 import instance, random_combinational_circuit
from repro.rtl import CircuitBuilder, simulate_combinational


# ----------------------------------------------------------------------
# A tiny evaluator for the exported QF_BV subset.
# ----------------------------------------------------------------------

def _tokenize(text):
    return re.findall(r"\(|\)|\|[^|]*\||[^\s()]+", text)


def _parse(tokens, position=0):
    token = tokens[position]
    if token == "(":
        items = []
        position += 1
        while tokens[position] != ")":
            node, position = _parse(tokens, position)
            items.append(node)
        return items, position + 1
    return token, position + 1


def parse_script(text):
    """Yield top-level s-expressions."""
    tokens = _tokenize(text)
    position = 0
    expressions = []
    while position < len(tokens):
        node, position = _parse(tokens, position)
        expressions.append(node)
    return expressions


class MiniBv:
    """Evaluate the exported expression grammar over (value, width)."""

    def __init__(self, env):
        self.env = env  # name -> (value, width)

    def eval(self, node):
        if isinstance(node, str):
            name = node.strip("|")
            return self.env[name]
        head = node[0]
        if isinstance(head, list):  # ((_ extract hi lo) x) etc.
            inner = head
            if inner[1] == "extract":
                hi, lo = int(inner[2]), int(inner[3])
                value, _ = self.eval(node[1])
                return ((value >> lo) & ((1 << (hi - lo + 1)) - 1),
                        hi - lo + 1)
            if inner[1] == "zero_extend":
                pad = int(inner[2])
                value, width = self.eval(node[1])
                return value, width + pad
            raise AssertionError(f"unknown indexed op {inner}")
        if head == "_":  # (_ bvN w)
            return int(node[1][2:]), int(node[2])
        if head == "=":
            left, right = self.eval(node[1]), self.eval(node[2])
            return (int(left[0] == right[0]), 0)
        if head == "distinct":
            left, right = self.eval(node[1]), self.eval(node[2])
            return (int(left[0] != right[0]), 0)
        if head == "ite":
            condition = self.eval(node[1])
            return self.eval(node[2]) if condition[0] else self.eval(node[3])
        operands = [self.eval(child) for child in node[1:]]
        width = max(w for _, w in operands)
        mask = (1 << width) - 1
        values = [v for v, _ in operands]
        if head == "bvadd":
            return (sum(values) & mask, width)
        if head == "bvsub":
            return ((values[0] - values[1]) & mask, width)
        if head == "bvmul":
            return ((values[0] * values[1]) & mask, width)
        if head == "bvand":
            result = mask
            for value in values:
                result &= value
            return (result, width)
        if head == "bvor":
            result = 0
            for value in values:
                result |= value
            return (result, width)
        if head == "bvxor":
            return (values[0] ^ values[1], width)
        if head == "bvnot":
            return (~values[0] & mask, width)
        if head == "bvshl":
            return ((values[0] << values[1]) & mask if values[1] < width
                    else 0, width)
        if head == "bvlshr":
            return (values[0] >> values[1] if values[1] < width else 0,
                    width)
        if head == "concat":
            (hi_value, hi_width), (lo_value, lo_width) = operands
            return ((hi_value << lo_width) | lo_value, hi_width + lo_width)
        if head == "bvult":
            return (int(values[0] < values[1]), 0)
        if head == "bvule":
            return (int(values[0] <= values[1]), 0)
        if head == "bvugt":
            return (int(values[0] > values[1]), 0)
        if head == "bvuge":
            return (int(values[0] >= values[1]), 0)
        raise AssertionError(f"unknown operator {head}")


def check_script_against_simulation(circuit, assumptions, stimulus):
    """All circuit assertions must hold on the simulated point; return
    whether the assumption assertions hold too."""
    text = to_smtlib2(circuit, assumptions)
    values = simulate_combinational(circuit, stimulus)
    env = {net.name: (values[net.name], net.width) for net in circuit.nets}
    evaluator = MiniBv(env)
    expressions = parse_script(text)
    assumption_count = sum(
        2 if isinstance(v, Interval) else 1 for v in assumptions.values()
    )
    assertions = [e for e in expressions if e and e[0] == "assert"]
    circuit_assertions = assertions[: len(assertions) - assumption_count]
    assumption_assertions = assertions[len(assertions) - assumption_count:]
    for assertion in circuit_assertions:
        value, _ = evaluator.eval(assertion[1])
        assert value == 1, assertion
    return all(
        evaluator.eval(a[1])[0] == 1 for a in assumption_assertions
    )


def _mixed_circuit():
    b = CircuitBuilder("mix")
    a = b.input("a", 4)
    c = b.input("c", 4)
    sel = b.input("sel", 1)
    s = b.add(a, c, name="s")
    d = b.sub(a, c, name="d")
    m3 = b.mul_const(a, 3, name="m3")
    sh = b.shl(a, 1, name="sh")
    sr = b.shr(a, 2, name="sr")
    cat = b.concat(a, c, name="cat")
    ex = b.extract(cat, 5, 2, name="ex")
    z = b.zext(a, 6, name="z")
    p = b.lt(s, m3, name="p")
    q = b.ge(d, c, name="q")
    g = b.and_(p, sel, name="g")
    x = b.xor(q, g, name="x")
    m = b.mux(x, s, d, name="m")
    b.output("out", m)
    return b.build()


class TestExport:
    def test_structure(self):
        circuit = _mixed_circuit()
        text = to_smtlib2(circuit, {"out": 5})
        assert text.startswith("; circuit mix")
        assert "(set-logic QF_BV)" in text
        assert text.count("(declare-const") == len(circuit.nets)
        assert "(check-sat)" in text
        assert text.count("(") == text.count(")")

    def test_assertions_hold_on_simulated_points(self):
        circuit = _mixed_circuit()
        for av in (0, 7, 15):
            for cv in (0, 9):
                for sv in (0, 1):
                    stimulus = {"a": av, "c": cv, "sel": sv}
                    check_script_against_simulation(
                        circuit, {"out": 0}, stimulus
                    )

    def test_assumption_assertions_track_values(self):
        circuit = _mixed_circuit()
        stimulus = {"a": 3, "c": 2, "sel": 1}
        out_value = simulate_combinational(circuit, stimulus)["out"]
        assert check_script_against_simulation(
            circuit, {"out": out_value}, stimulus
        )
        assert not check_script_against_simulation(
            circuit, {"out": (out_value + 1) % 16}, stimulus
        )

    def test_interval_assumptions(self):
        circuit = _mixed_circuit()
        stimulus = {"a": 3, "c": 2, "sel": 1}
        out_value = simulate_combinational(circuit, stimulus)["out"]
        assert check_script_against_simulation(
            circuit, {"out": Interval(out_value, out_value)}, stimulus
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_random_circuits_export_faithfully(self, seed):
        circuit = random_combinational_circuit(seed, operations=10)
        rng = random.Random(seed)
        for _ in range(5):
            stimulus = {
                net.name: rng.randint(0, net.max_value)
                for net in circuit.inputs
            }
            check_script_against_simulation(circuit, {}, stimulus)

    def test_bmc_instance_exports(self):
        inst = instance("b13_1", 4)
        text = to_smtlib2(inst.circuit, inst.assumptions)
        # Frame names need quoting ('@' is not a plain symbol char).
        assert "|" in text
        assert text.count("(") == text.count(")")

    def test_sequential_rejected(self):
        from repro.itc99 import circuit as get_circuit

        with pytest.raises(UnsupportedOperationError):
            to_smtlib2(get_circuit("b01"), {})


class TestDimacsExport:
    def test_dimacs_roundtrips_and_solves(self):
        from repro.baselines import from_dimacs, solve_cnf
        from repro.export import to_dimacs

        circuit = _mixed_circuit()
        text = to_dimacs(circuit, {"out": 5})
        cnf = from_dimacs(text)
        result = solve_cnf(cnf)
        # The HDPLL answer is the reference.
        from repro.core import solve_circuit

        reference = solve_circuit(circuit, {"out": 5})
        assert result.satisfiable == reference.is_sat

    def test_dimacs_header(self):
        from repro.export import to_dimacs

        text = to_dimacs(_mixed_circuit(), {})
        assert text.startswith("p cnf ")
