"""Tests for predicate abstraction with learned relations (Section 6)."""

import pytest

from repro.errors import CircuitError
from repro.bmc import SafetyProperty
from repro.core import HDPLL_BASE
from repro.core.abstraction import (
    predicate_abstraction_check,
    state_predicates,
)
from repro.itc99 import circuit as itc_circuit
from repro.rtl import CircuitBuilder


def _guarded_counter():
    """count increments below 5; ok = count <= 5 is a state invariant."""
    b = CircuitBuilder("guarded")
    enable = b.input("enable", 1)
    count = b.register("count", 4, init=0)
    can = b.lt(count, 5, name="can")
    b.next_state(count, b.mux(b.and_(enable, can), b.inc(count), count))
    ok = b.le(count, 5, name="ok")
    b.output("ok", ok)
    return b.build()


def _unguarded_counter():
    b = CircuitBuilder("unguarded")
    enable = b.input("enable", 1)
    count = b.register("count", 4, init=0)
    b.next_state(count, b.mux(enable, b.inc(count), count))
    ok = b.le(count, 5, name="ok")
    b.output("ok", ok)
    return b.build()


PROP = SafetyProperty("inv", "ok", "")


class TestStatePredicates:
    def test_input_dependent_comparators_excluded(self):
        b = CircuitBuilder()
        data = b.input("data", 4)
        count = b.register("count", 4, init=0)
        state_only = b.lt(count, 5, name="state_only")
        mixed = b.lt(data, count, name="mixed")
        b.next_state(count, b.mux(mixed, b.inc(count), count))
        b.output("o", state_only)
        circuit = b.build()
        names = {net.name for net in state_predicates(circuit)}
        assert "state_only" in names
        assert "mixed" not in names

    def test_counter_predicates_found(self):
        names = {net.name for net in state_predicates(_guarded_counter())}
        assert {"can", "ok"} <= names


class TestAbstractionCheck:
    def test_proves_guarded_invariant(self):
        result = predicate_abstraction_check(_guarded_counter(), PROP)
        assert result.proved
        # All reachable abstract states keep ok = 1.
        ok_position = result.predicates.index("ok")
        assert all(s[ok_position] == 1 for s in result.reachable_states)

    def test_unguarded_invariant_not_proved(self):
        result = predicate_abstraction_check(_unguarded_counter(), PROP)
        assert not result.proved
        assert result.bad_state is not None

    def test_relations_prune_candidates(self):
        with_relations = predicate_abstraction_check(
            _guarded_counter(), PROP, use_learned_relations=True
        )
        without = predicate_abstraction_check(
            _guarded_counter(), PROP, use_learned_relations=False
        )
        assert with_relations.proved and without.proved
        # The Section 6 claim, measurably: relations remove candidate
        # valuations before any solver call.
        assert with_relations.pruned_by_relations > 0
        assert with_relations.solver_calls <= without.solver_calls

    def test_explicit_predicate_list(self):
        result = predicate_abstraction_check(
            _guarded_counter(), PROP, predicates=["can", "ok"]
        )
        assert result.proved
        assert result.predicates == ["can", "ok"]

    def test_b02_state_invariant_proved(self):
        from repro.itc99.b02 import PROPERTIES

        result = predicate_abstraction_check(
            itc_circuit("b02"),
            PROPERTIES["1"],
            config=HDPLL_BASE,
        )
        assert result.proved

    def test_unknown_property_signal(self):
        with pytest.raises(CircuitError):
            predicate_abstraction_check(
                _guarded_counter(), SafetyProperty("x", "ghost", "")
            )

    def test_no_predicates_rejected(self):
        b = CircuitBuilder()
        x = b.input("x", 1)
        r = b.register("r", 1, init=1)
        b.next_state(r, b.and_(r, x))
        b.output("ok", r)
        with pytest.raises(CircuitError):
            predicate_abstraction_check(
                b.build(), SafetyProperty("p", "ok", "")
            )
