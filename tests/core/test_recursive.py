"""Tests for recursive learning, including the paper's Figure 1."""

from repro.constraints import DomainStore, PropagationEngine, compile_circuit
from repro.core.recursive import RecursiveLearner, justification_options
from repro.intervals import Interval
from repro.rtl import CircuitBuilder


def make_learner(circuit):
    system = compile_circuit(circuit)
    store = DomainStore(system.variables)
    engine = PropagationEngine(store, system.propagators)
    engine.enqueue_all()
    assert engine.propagate() is None
    return system, store, engine, RecursiveLearner(system, store, engine)


def test_figure1_recursive_learning():
    """Figure 1: e = OR(c, d), c = AND(a, b), d = AND(a, b) — probing
    e = 1 to level 1 learns e=1 -> a=1 and e=1 -> b=1."""
    b = CircuitBuilder("figure1")
    a = b.input("a", 1)
    bb = b.input("b", 1)
    c = b.and_(a, bb, name="c")
    d = b.and_(a, bb, name="d")
    e = b.or_(c, d, name="e")
    b.output("e", e)
    circuit = b.build()
    system, store, engine, learner = make_learner(circuit)

    implications = learner.probe(system.var_by_name("e"), 1, depth=1)
    assert implications is not None
    a_var = system.var_by_name("a")
    b_var = system.var_by_name("b")
    assert implications.get(a_var.index) == Interval.point(1)
    assert implications.get(b_var.index) == Interval.point(1)


def test_probe_impossible_value():
    # g = AND(x, NOT(x)) can never be 1.
    b = CircuitBuilder()
    x = b.input("x", 1)
    g = b.and_(x, b.not_(x), name="g")
    b.output("g", g)
    system, store, engine, learner = make_learner(b.build())
    assert learner.probe(system.var_by_name("g"), 1, depth=1) is None


def test_probe_assigned_variable():
    b = CircuitBuilder()
    x = b.input("x", 1)
    g = b.buf(x, name="g")
    b.output("g", g)
    system, store, engine, learner = make_learner(b.build())
    store.assume(system.var_by_name("x"), Interval.point(1))
    engine.propagate()
    assert learner.probe(system.var_by_name("g"), 0) is None
    assert learner.probe(system.var_by_name("g"), 1) == {}


def test_probe_restores_state():
    b = CircuitBuilder()
    x = b.input("x", 1)
    y = b.input("y", 1)
    g = b.or_(x, y, name="g")
    b.output("g", g)
    system, store, engine, learner = make_learner(b.build())
    before = store.snapshot()
    learner.probe(system.var_by_name("g"), 1, depth=1)
    assert store.snapshot() == before
    assert store.decision_level == 0


def test_interval_implications_through_datapath():
    """Hybrid recursive learning: the probe narrows a word variable.

    g = OR(p, q) with p ⊨ (w < 2) and q ⊨ (w < 4): every justification
    of g = 1 implies w ∈ <0, 3>.
    """
    b = CircuitBuilder()
    w = b.input("w", 3)
    p = b.lt(w, 2, name="p")
    q = b.lt(w, 4, name="q")
    g = b.or_(p, q, name="g")
    b.output("g", g)
    system, store, engine, learner = make_learner(b.build())
    implications = learner.probe(system.var_by_name("g"), 1, depth=1)
    assert implications is not None
    w_var = system.var_by_name("w")
    assert implications.get(w_var.index) == Interval(0, 3)


def test_xor_justification_options():
    b = CircuitBuilder()
    x = b.input("x", 1)
    y = b.input("y", 1)
    g = b.xor(x, y, name="g")
    b.output("g", g)
    system = compile_circuit(b.build())
    node = system.circuit.net("g").driver
    options = justification_options(system, node, 1)
    assert len(options) == 2
    covered = {tuple(sorted((v.name, val) for v, val in opt)) for opt in options}
    assert covered == {
        (("x", 0), ("y", 1)),
        (("x", 1), ("y", 0)),
    }


def test_and_or_options():
    b = CircuitBuilder()
    x = b.input("x", 1)
    y = b.input("y", 1)
    z = b.input("z", 1)
    g = b.and_(x, y, z, name="g")
    h = b.or_(x, y, name="h")
    b.output("g", g)
    b.output("h", h)
    system = compile_circuit(b.build())
    g_node = system.circuit.net("g").driver
    h_node = system.circuit.net("h").driver
    assert len(justification_options(system, g_node, 0)) == 3
    assert justification_options(system, g_node, 1) is None
    assert len(justification_options(system, h_node, 1)) == 2
    assert justification_options(system, h_node, 0) is None


def test_comparator_has_no_enumerable_options():
    b = CircuitBuilder()
    w = b.input("w", 3)
    p = b.lt(w, 3, name="p")
    b.output("p", p)
    system = compile_circuit(b.build())
    node = system.circuit.net("p").driver
    assert justification_options(system, node, 1) is None


def test_depth2_probe_reaches_further():
    """A chain needing two levels: probing at depth 2 finds what depth 1
    misses."""
    b = CircuitBuilder("deep")
    a = b.input("a", 1)
    c = b.input("c", 1)
    d = b.input("d", 1)
    # inner1 = AND(a, c), inner2 = AND(a, d); mid = OR(inner1, inner2)
    # outer = OR(mid, mid2) where mid2 = AND(mid, c).
    inner1 = b.and_(a, c, name="inner1")
    inner2 = b.and_(a, d, name="inner2")
    mid = b.or_(inner1, inner2, name="mid")
    mid2 = b.and_(mid, c, name="mid2")
    outer = b.or_(mid, mid2, name="outer")
    b.output("outer", outer)
    system, store, engine, learner = make_learner(b.build())
    a_var = system.var_by_name("a")

    # outer = 1: branch mid=1 gives (via depth-2 recursion into mid's
    # own options) a=1; branch mid2=1 propagates mid=1 ... a=1 only with
    # recursion as well.
    deep = learner.probe(system.var_by_name("outer"), 1, depth=2)
    assert deep is not None
    assert deep.get(a_var.index) == Interval.point(1)
