"""Tests for the structural decision strategy (Section 4, Figures 3–4)."""

import pytest

from repro.constraints import (
    Conflict,
    DomainStore,
    PropagationEngine,
    compile_circuit,
)
from repro.core import HDPLL_S, HdpllSolver, SolverConfig, solve_circuit
from repro.core.conflict import analyze_conflict
from repro.core.decide import ActivityOrder
from repro.core.justify import StructuralDecide
from repro.figures import figure3_circuits, figure4_circuit
from repro.intervals import Interval
from repro.rtl import CircuitBuilder


def make_structural(circuit):
    system = compile_circuit(circuit)
    store = DomainStore(system.variables)
    engine = PropagationEngine(store, system.propagators)
    order = ActivityOrder(system, store)
    decide = StructuralDecide(system, store, order)
    return system, store, engine, decide


class TestFigure3:
    def test_and_gate_justification(self):
        """Fig. 3(a): o = 0 on an AND is unjustified; a 0-input decision
        justifies it."""
        and_circuit, _ = figure3_circuits()
        system, store, engine, decide = make_structural(and_circuit)
        store.assume(system.var_by_name("o"), Interval.point(0))
        engine.enqueue_all()
        assert engine.propagate() is None
        outcome = decide.next_decision()
        assert isinstance(outcome, tuple)
        var, value = outcome
        assert var.name in ("i1", "i2")
        assert value == 0

    def test_and_gate_output_one_needs_no_decision(self):
        # o = 1 forces both inputs via BCP: frontier stays empty.
        and_circuit, _ = figure3_circuits()
        system, store, engine, decide = make_structural(and_circuit)
        store.assume(system.var_by_name("o"), Interval.point(1))
        engine.enqueue_all()
        assert engine.propagate() is None
        assert decide.next_decision() is None

    def test_mux_justification(self):
        """Fig. 3(b): a required output interval on a free-select mux is
        justified by a select decision toward an intersecting branch."""
        _, mux_circuit = figure3_circuits()
        system, store, engine, decide = make_structural(mux_circuit)
        store.assume(system.var_by_name("o"), Interval(3, 4))
        store.assume(system.var_by_name("i2"), Interval(10, 12))
        engine.enqueue_all()
        assert engine.propagate() is None
        outcome = decide.next_decision()
        assert outcome == (system.var_by_name("sel"), 0)

    def test_mux_unconstrained_output_is_justified(self):
        _, mux_circuit = figure3_circuits()
        system, store, engine, decide = make_structural(mux_circuit)
        engine.enqueue_all()
        assert engine.propagate() is None
        assert decide.next_decision() is None


class TestFigure4:
    def test_full_trace(self):
        """Figure 4(b): two structural decisions (b1=0 then b2=0), empty
        frontier, SAT certified by the arithmetic solver."""
        circuit = figure4_circuit()
        system, store, engine, decide = make_structural(circuit)
        store.assume(system.var_by_name("w2"), Interval(6, 7))
        store.assume(system.var_by_name("b7"), Interval.point(1))
        engine.enqueue_all()
        assert engine.propagate() is None
        # Imply Proposition: b4=0, b5=0, b6=1, w4=<5>.
        assert store.value(system.var_by_name("b4")) == 0
        assert store.value(system.var_by_name("b5")) == 0
        assert store.value(system.var_by_name("b6")) == 1
        assert store.domain(system.var_by_name("w4")) == Interval.point(5)

        # First structural decision: w4 ∩ w2 = ∅, so b1 = 0.
        first = decide.next_decision()
        assert first == (system.var_by_name("b1"), 0)
        store.decide_bool(*first)
        assert engine.propagate() is None
        assert store.domain(system.var_by_name("w3")) == Interval.point(5)

        # Second: <6> ∩ w3 = ∅, so b2 = 0.
        second = decide.next_decision()
        assert second == (system.var_by_name("b2"), 0)
        store.decide_bool(*second)
        assert engine.propagate() is None
        assert store.domain(system.var_by_name("w1")) == Interval.point(5)

        # J-frontier now empty.
        assert decide.next_decision() is None

    def test_solver_end_to_end_sat(self):
        circuit = figure4_circuit()
        result = solve_circuit(
            circuit, {"w2": Interval(6, 7), "b7": 1}, HDPLL_S
        )
        assert result.is_sat
        assert result.model["w4"] == 5
        assert result.model["w1"] == 5

    def test_structural_uses_exactly_two_justification_decisions(self):
        circuit = figure4_circuit()
        solver = HdpllSolver(circuit, HDPLL_S)
        result = solver.solve({"w2": Interval(6, 7), "b7": 1})
        assert result.is_sat
        assert result.stats.structural_decisions == 2
        assert result.stats.conflicts == 0

    def test_base_solver_agrees(self):
        circuit = figure4_circuit()
        result = solve_circuit(circuit, {"w2": Interval(6, 7), "b7": 1})
        assert result.is_sat


class TestSection43Conflict:
    def test_learned_clause_matches_paper(self):
        """Section 4.3: with b2 = 1 blocking w3 at <6>, justifying
        w4 = <5> is impossible; the learned clause is (¬b6 ∨ ¬b2) —
        equivalently, the implying literals of the blocking intervals."""
        circuit = figure4_circuit()
        system = compile_circuit(circuit)
        store = DomainStore(system.variables)
        engine = PropagationEngine(store, system.propagators)
        store.assume(system.var_by_name("w2"), Interval(6, 7))
        engine.enqueue_all()
        assert engine.propagate() is None

        # Level 1: the proposition side — b7 = 1 implies b6 = 1, w4 = <5>.
        store.decide_bool(system.var_by_name("b7"), 1)
        assert engine.propagate() is None
        # Level 2: the blocking decision b2 = 1 implies w3 = <6>.
        store.decide_bool(system.var_by_name("b2"), 1)
        conflict = engine.propagate()
        assert isinstance(conflict, Conflict)

        analysis = analyze_conflict(conflict, store)
        assert analysis is not None
        names = {
            (lit.var.name, lit.positive) for lit in analysis.clause.literals
        }
        # ¬b2 is the UIP; the lower-level cause resolves to ¬b6 (or the
        # proposition literal ¬b7 that implied it).
        assert ("b2", False) in names
        assert ("b6", False) in names or ("b7", False) in names

    def test_unsat_when_block_is_level_zero(self):
        # b2 pinned 1 at level 0 makes the whole query UNSAT.
        circuit = figure4_circuit()
        result = solve_circuit(
            circuit,
            {"w2": Interval(6, 7), "b7": 1, "b2": 1},
            HDPLL_S,
        )
        assert result.is_unsat


class TestStructuralAgreesWithBase:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_agreement(self, seed):
        import random

        rng = random.Random(seed * 7919)
        b = CircuitBuilder(f"agree{seed}")
        words = [b.input("w0", 3), b.input("w1", 3)]
        bools = [b.input("b0", 1)]
        for _ in range(rng.randint(4, 10)):
            roll = rng.random()
            if roll < 0.3:
                words.append(
                    getattr(b, rng.choice(["add", "sub"]))(
                        rng.choice(words), rng.choice(words)
                    )
                )
            elif roll < 0.6:
                kind = rng.choice(["eq", "ne", "lt", "le", "gt", "ge"])
                bools.append(
                    getattr(b, kind)(rng.choice(words), rng.choice(words))
                )
            elif roll < 0.8 and len(bools) >= 2:
                bools.append(b.and_(rng.choice(bools), rng.choice(bools)))
            else:
                words.append(
                    b.mux(rng.choice(bools), rng.choice(words), rng.choice(words))
                )
        b.output("flag", bools[-1])
        b.output("word", words[-1])
        circuit = b.build()
        assumptions = {"flag": 1, "word": rng.randint(0, 7)}
        base = solve_circuit(circuit, assumptions)
        structural = solve_circuit(circuit, assumptions, HDPLL_S)
        assert base.status == structural.status

    def test_frontier_survives_backtracking(self):
        # After a conflict and backjump, the frontier entry must be
        # rediscovered (persistent candidate set).
        b = CircuitBuilder()
        sel1 = b.input("sel1", 1)
        sel2 = b.input("sel2", 1)
        w = b.input("w", 3)
        m1 = b.mux(sel1, 6, w, name="m1")
        m2 = b.mux(sel2, m1, 3, name="m2")
        p = b.eq(m2, 5, name="p")
        b.output("p", p)
        circuit = b.build()
        result = solve_circuit(circuit, {"p": 1}, HDPLL_S)
        assert result.is_sat
        assert result.model["m2"] == 5
