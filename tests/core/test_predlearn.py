"""Tests for predicate learning (Section 3), including Figure 2."""

import pytest

from repro.constraints import (
    BoolLit,
    DomainStore,
    PropagationEngine,
    WordLit,
    compile_circuit,
)
from repro.core import SolverConfig, solve_circuit
from repro.core.decide import ActivityOrder
from repro.core.predlearn import run_predicate_learning
from repro.figures import figure2_circuit
from repro.intervals import Interval
from repro.rtl import CircuitBuilder


def setup(circuit, **kwargs):
    system = compile_circuit(circuit)
    store = DomainStore(system.variables)
    engine = PropagationEngine(store, system.propagators)
    engine.enqueue_all()
    assert engine.propagate() is None
    order = ActivityOrder(system, store)
    report = run_predicate_learning(system, store, engine, order, **kwargs)
    return system, store, engine, order, report


def clause_signature(system, clause):
    """Readable form: frozenset of (name, kind, polarity[, interval])."""
    parts = []
    for literal in clause.literals:
        net_name = literal.var.name
        if isinstance(literal, BoolLit):
            parts.append((net_name, literal.positive))
        else:
            parts.append((net_name, literal.positive, literal.interval))
    return frozenset(parts)


class TestFigure2:
    def test_paper_relations_learned(self):
        system, store, engine, order, report = setup(figure2_circuit())
        signatures = {
            clause_signature(system, clause) for clause in report.clauses
        }
        # The four relations of Figure 2(b):
        # 1) b5=0 -> b6=0   ==  (b5 | ~b6)
        assert frozenset({("b5", True), ("b6", False)}) in signatures
        # 2) b6=0 -> b5=0   ==  (b6 | ~b5)
        assert frozenset({("b6", True), ("b5", False)}) in signatures
        # 3) b8=1 -> b9=1   ==  (~b8 | b9)
        assert frozenset({("b8", False), ("b9", True)}) in signatures
        # 4) b9=1 -> b8=1   ==  (~b9 | b8)
        assert frozenset({("b9", False), ("b8", True)}) in signatures

    def test_learning_order_is_level_order(self):
        # The b5/b6 relations (level 2) must be learned before the b8/b9
        # relations (level 3), because the latter depend on the former.
        system, store, engine, order, report = setup(figure2_circuit())
        names = [
            tuple(sorted(lit.var.name for lit in clause.literals))
            for clause in report.clauses
        ]
        b5b6 = names.index(("b5", "b6"))
        b8b9 = names.index(("b8", "b9"))
        assert b5b6 < b8b9

    def test_relations_count_positive(self):
        _, _, _, _, report = setup(figure2_circuit())
        assert report.relations_learned >= 4
        assert report.probes > 0
        assert report.candidates > 0

    def test_state_restored_after_learning(self):
        system, store, engine, order, report = setup(figure2_circuit())
        assert store.decision_level == 0
        # No variable was permanently assigned by learning.
        for net in ("b5", "b6", "b8", "b9", "b0"):
            assert store.value(system.var_by_name(net)) is None


class TestMechanics:
    def test_threshold_zero_learns_nothing(self):
        _, _, _, _, report = setup(figure2_circuit(), threshold=0)
        assert report.relations_learned == 0
        assert report.clauses == []

    def test_threshold_caps_relations(self):
        _, _, _, _, report = setup(figure2_circuit(), threshold=2)
        assert report.relations_learned == 2

    def test_impossible_probe_learns_unit_fact(self):
        # g = AND(x, y) with y = NOT(x): g = 1 is impossible; probing
        # learns the unit fact g = 0.
        b = CircuitBuilder()
        x = b.input("x", 1)
        y = b.not_(x, name="y")
        g = b.and_(x, y, name="g")
        m = b.mux(g, b.const(1, 3), b.const(2, 3), name="m")
        b.output("m", m)
        system, store, engine, order, report = setup(b.build())
        assert store.value(system.var_by_name("g")) == 0

    def test_word_interval_relation_learned(self):
        # g = OR(p, q), p = (w < 2), q = (w < 4): g=1 -> w in <0,3> is a
        # hybrid relation with a word literal.
        b = CircuitBuilder()
        w = b.input("w", 3)
        p = b.lt(w, 2, name="p")
        q = b.lt(w, 4, name="q")
        g = b.or_(p, q, name="g")
        m = b.mux(g, w, b.const(0, 3), name="m")
        b.output("m", m)
        system, store, engine, order, report = setup(b.build())
        signatures = {
            clause_signature(system, clause) for clause in report.clauses
        }
        assert (
            frozenset({("g", False), ("w", True, Interval(0, 3))})
            in signatures
        )

    def test_decision_weights_exported(self):
        system, store, engine, order, report = setup(figure2_circuit())
        weighted = {
            system.variables[index].name
            for index in order.static_weight
        }
        assert {"b5", "b6", "b8", "b9"} <= weighted

    def test_duplicate_relations_not_double_counted(self):
        _, _, _, _, report = setup(figure2_circuit())
        keys = set()
        for clause in report.clauses:
            key = tuple(
                sorted(
                    (lit.var.index, lit.positive) for lit in clause.literals
                )
            )
            assert key not in keys
            keys.add(key)


class TestEndToEndWithLearning:
    def test_learning_preserves_answers(self):
        # SAT/UNSAT must be identical with and without predicate learning.
        circuit = figure2_circuit()
        for assumption in ({"w5": 5}, {"w6": Interval(1, 2)}):
            base = solve_circuit(circuit, assumption, SolverConfig())
            learned = solve_circuit(
                circuit,
                assumption,
                SolverConfig(predicate_learning=True),
            )
            assert base.status == learned.status

    def test_learning_on_unsat_instance(self):
        b = CircuitBuilder()
        w = b.input("w", 3)
        p = b.lt(w, 2, name="p")
        q = b.gt(w, 5, name="q")
        g = b.and_(p, q, name="g")
        m = b.mux(g, w, b.const(0, 3), name="m")
        b.output("g", g)
        b.output("m", m)
        result = solve_circuit(
            b.build(), {"g": 1}, SolverConfig(predicate_learning=True)
        )
        assert result.is_unsat

    def test_stats_recorded(self):
        circuit = figure2_circuit()
        result = solve_circuit(
            circuit, {"w5": 5}, SolverConfig(predicate_learning=True)
        )
        assert result.stats.learned_relations >= 4
        assert result.stats.learn_time >= 0


class TestProbeDeadline:
    """The learning pass honours the solver's cooperative deadline."""

    def test_expired_deadline_learns_nothing(self):
        import time

        system, store, engine, order, report = setup(
            figure2_circuit(), deadline=time.perf_counter() - 1.0
        )
        assert report.relations_learned == 0
        # The store is back at the entry level: learning is abortable.
        assert store.decision_level == 0

    def test_learner_probe_raises_past_deadline(self):
        import time

        from repro.constraints import Conflict
        from repro.core.recursive import ProbeDeadline, RecursiveLearner

        circuit = figure2_circuit()
        system = compile_circuit(circuit)
        store = DomainStore(system.variables)
        engine = PropagationEngine(store, system.propagators)
        engine.enqueue_all()
        assert engine.propagate() is None
        learner = RecursiveLearner(
            system, store, engine, deadline=time.perf_counter() - 1.0
        )
        target = next(v for v in system.variables if v.is_bool)
        with pytest.raises(ProbeDeadline):
            learner.probe(target, 1)

    def test_far_deadline_matches_unbounded_learning(self):
        import time

        _, _, _, _, bounded = setup(
            figure2_circuit(), deadline=time.perf_counter() + 3600.0
        )
        _, _, _, _, unbounded = setup(figure2_circuit())
        assert bounded.relations_learned == unbounded.relations_learned
