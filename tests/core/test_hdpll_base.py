"""Tests for the base HDPLL solver, cross-checked against brute force."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SolverConfig, Status, solve_circuit
from repro.intervals import Interval
from repro.rtl import CircuitBuilder, simulate_combinational


def brute_force_sat(circuit, assumptions):
    """Exhaustive check: does any input assignment satisfy assumptions?"""
    input_nets = circuit.inputs
    for point in itertools.product(
        *(range(net.max_value + 1) for net in input_nets)
    ):
        values = dict(zip((n.name for n in input_nets), point))
        result = simulate_combinational(circuit, values)
        ok = True
        for name, required in assumptions.items():
            actual = result[name]
            if isinstance(required, Interval):
                if actual not in required:
                    ok = False
                    break
            elif actual != required:
                ok = False
                break
        if ok:
            return True
    return False


def check_against_brute_force(circuit, assumptions, config=None):
    expected = brute_force_sat(circuit, assumptions)
    result = solve_circuit(circuit, assumptions, config)
    assert result.status in (Status.SAT, Status.UNSAT)
    assert result.is_sat == expected, (
        f"solver said {result.status} but brute force said "
        f"{'SAT' if expected else 'UNSAT'}"
    )
    if result.is_sat:
        # The model is already verified against assumptions internally;
        # double-check one output value here for belt and braces.
        assert result.model is not None
    return result


class TestSimpleQueries:
    def test_trivial_sat(self):
        b = CircuitBuilder()
        a = b.input("a", 3)
        p = b.lt(a, 5, name="p")
        b.output("o", p)
        result = solve_circuit(b.build(), {"p": 1})
        assert result.is_sat
        assert result.model["a"] < 5

    def test_trivial_unsat(self):
        b = CircuitBuilder()
        a = b.input("a", 3)
        p = b.lt(a, 0, name="p")  # nothing is < 0
        b.output("o", p)
        result = solve_circuit(b.build(), {"p": 1})
        assert result.is_unsat

    def test_conjunction_of_ranges(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        p = b.ge(a, 5, name="p")
        q = b.le(a, 9, name="q")
        g = b.and_(p, q, name="g")
        b.output("o", g)
        result = solve_circuit(b.build(), {"g": 1})
        assert result.is_sat
        assert 5 <= result.model["a"] <= 9

    def test_contradictory_ranges(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        p = b.lt(a, 3, name="p")
        q = b.gt(a, 10, name="q")
        g = b.and_(p, q, name="g")
        b.output("o", g)
        assert solve_circuit(b.build(), {"g": 1}).is_unsat

    def test_arithmetic_wrap(self):
        # a + 1 == 0 has the wrap-around solution a == 15.
        b = CircuitBuilder()
        a = b.input("a", 4)
        s = b.inc(a, name="s")
        p = b.eq(s, 0, name="p")
        b.output("o", p)
        result = solve_circuit(b.build(), {"p": 1})
        assert result.is_sat
        assert result.model["a"] == 15

    def test_interval_assumption(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        s = b.add(a, 3, name="s")
        b.output("o", s)
        result = solve_circuit(b.build(), {"s": Interval(0, 2)})
        assert result.is_sat
        assert result.model["s"] in Interval(0, 2)

    def test_mux_chain(self):
        b = CircuitBuilder()
        sel1 = b.input("sel1", 1)
        sel2 = b.input("sel2", 1)
        a = b.input("a", 3)
        m1 = b.mux(sel1, a, 2, name="m1")
        m2 = b.mux(sel2, m1, 5, name="m2")
        p = b.eq(m2, 7, name="p")
        b.output("o", p)
        result = solve_circuit(b.build(), {"p": 1})
        assert result.is_sat
        assert result.model["m2"] == 7

    def test_disequality_semantics(self):
        b = CircuitBuilder()
        a = b.input("a", 2)
        c = b.input("c", 2)
        s = b.add(a, c, name="s")
        p = b.ne(a, c, name="p")
        q = b.eq(s, 2, name="q")
        g = b.and_(p, q, name="g")
        b.output("o", g)
        result = solve_circuit(b.build(), {"g": 1})
        assert result.is_sat
        assert result.model["a"] != result.model["c"]
        assert (result.model["a"] + result.model["c"]) % 4 == 2

    def test_xor_parity(self):
        b = CircuitBuilder()
        x = b.input("x", 1)
        y = b.input("y", 1)
        z = b.input("z", 1)
        parity = b.xor(b.xor(x, y), z, name="parity")
        b.output("o", parity)
        result = solve_circuit(b.build(), {"parity": 1, "x": 1, "y": 1})
        assert result.is_sat
        assert result.model["z"] == 1


class TestAgainstBruteForce:
    def test_min_max_structure(self):
        # The b04-style min/max fragment the paper's Fig. 2 comes from.
        b = CircuitBuilder()
        data = b.input("data", 3)
        reference = b.input("reference", 3)
        is_greater = b.gt(data, reference, name="is_greater")
        maximum = b.mux(is_greater, data, reference, name="maximum")
        minimum = b.mux(is_greater, reference, data, name="minimum")
        spread_ok = b.eq(b.sub(maximum, minimum), 3, name="spread_ok")
        b.output("o", spread_ok)
        check_against_brute_force(b.build(), {"spread_ok": 1})

    def test_unsat_via_interval_reasoning(self):
        b = CircuitBuilder()
        a = b.input("a", 3)
        c = b.input("c", 3)
        s = b.zext(a, 5)
        t = b.zext(c, 5)
        total = b.add(s, t, name="total")  # no wrap in 5 bits
        p = b.gt(total, 14, name="p")      # max is 7 + 7 = 14
        b.output("o", p)
        check_against_brute_force(b.build(), {"p": 1})

    @pytest.mark.parametrize("seed", range(20))
    def test_random_circuits(self, seed):
        rng = random.Random(seed)
        b = CircuitBuilder(f"random{seed}")
        width = rng.choice([2, 3])
        words = [b.input(f"w{i}", width) for i in range(2)]
        words.append(b.const(rng.randint(0, 2**width - 1), width))
        bools = [b.input("b0", 1)]
        for _ in range(rng.randint(4, 12)):
            roll = rng.random()
            if roll < 0.3:
                words.append(
                    getattr(b, rng.choice(["add", "sub"]))(
                        rng.choice(words), rng.choice(words)
                    )
                )
            elif roll < 0.45:
                words.append(b.mul_const(rng.choice(words), rng.randint(0, 3)))
            elif roll < 0.7:
                kind = rng.choice(["eq", "ne", "lt", "le", "gt", "ge"])
                bools.append(
                    getattr(b, kind)(rng.choice(words), rng.choice(words))
                )
            elif roll < 0.85 and len(bools) >= 2:
                kind = rng.choice(["and_", "or_", "xor", "not_"])
                if kind == "not_":
                    bools.append(b.not_(rng.choice(bools)))
                elif kind == "xor":
                    bools.append(b.xor(rng.choice(bools), rng.choice(bools)))
                else:
                    bools.append(
                        getattr(b, kind)(rng.choice(bools), rng.choice(bools))
                    )
            else:
                words.append(
                    b.mux(rng.choice(bools), rng.choice(words), rng.choice(words))
                )
        target_bool = bools[-1]
        target_word = words[-1]
        b.output("flag", target_bool)
        b.output("word", target_word)
        circuit = b.build()
        check_against_brute_force(
            circuit,
            {
                "flag": rng.randint(0, 1),
                "word": rng.randint(0, 2**width - 1),
            },
        )

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_circuits_hypothesis(self, data):
        rng = random.Random(data.draw(st.integers(0, 100_000)))
        b = CircuitBuilder("hyp")
        words = [b.input("w0", 3), b.input("w1", 3)]
        bools = []
        for _ in range(rng.randint(3, 8)):
            roll = rng.random()
            if roll < 0.4:
                words.append(b.add(rng.choice(words), rng.choice(words)))
            elif roll < 0.75:
                kind = rng.choice(["eq", "lt", "ge", "ne"])
                bools.append(
                    getattr(b, kind)(rng.choice(words), rng.choice(words))
                )
            elif bools:
                words.append(
                    b.mux(rng.choice(bools), rng.choice(words), rng.choice(words))
                )
        if not bools:
            bools.append(b.lt(words[0], words[1]))
        b.output("flag", bools[-1])
        circuit = b.build()
        check_against_brute_force(circuit, {"flag": 1})


class TestConfigurations:
    def _both_polarity_circuit(self):
        b = CircuitBuilder()
        a = b.input("a", 3)
        c = b.input("c", 3)
        p = b.lt(a, c, name="p")
        q = b.eq(b.add(a, c), 6, name="q")
        g = b.and_(p, q, name="g")
        b.output("o", g)
        return b.build()

    def test_default_phase_zero(self):
        config = SolverConfig(default_phase=0)
        result = solve_circuit(self._both_polarity_circuit(), {"g": 1}, config)
        assert result.is_sat

    def test_no_restarts(self):
        config = SolverConfig(restart_interval=0)
        result = solve_circuit(self._both_polarity_circuit(), {"g": 1}, config)
        assert result.is_sat

    def test_conflict_budget_unknown(self):
        # An 8-queens-hard-ish circuit is overkill; force budget 0.
        config = SolverConfig(max_conflicts=0)
        b = CircuitBuilder()
        a = b.input("a", 3)
        p = b.eq(a, 3, name="p")
        q = b.eq(a, 4, name="q")
        g = b.and_(p, q, name="g")
        b.output("o", g)
        result = solve_circuit(b.build(), {"g": 1}, config)
        # Either it proves UNSAT during setup propagation or runs out.
        assert result.status in (Status.UNSAT, Status.UNKNOWN)

    def test_stats_populated(self):
        result = solve_circuit(self._both_polarity_circuit(), {"g": 1})
        assert result.stats.decisions >= 0
        assert result.stats.fme_checks >= 1
        assert result.stats.solve_time >= 0


def test_solver_is_single_shot():
    from repro.core import HdpllSolver
    from repro.errors import SolverError

    b = CircuitBuilder()
    a = b.input("a", 3)
    p = b.lt(a, 5, name="p")
    b.output("p", p)
    solver = HdpllSolver(b.build())
    assert solver.solve({"p": 1}).is_sat
    with pytest.raises(SolverError):
        solver.solve({"p": 1})
