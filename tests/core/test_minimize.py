"""Differential sweep for recursive clause minimization (PR 9).

Every conflict analyzed during a randomized BMC sweep is run through
conflict analysis **twice** — ``minimize=False`` and ``minimize=True``
on the same implication graph — by monkeypatching the solver's
``analyze_conflict`` entry point.  The oracle is three-fold:

* the minimized literal set is a subset of the first-UIP set (removal
  only — a minimized clause can never be *longer* than first-UIP);
* the asserting UIP literal survives minimization unchanged;
* sampled minimized clauses are still **implied** by the problem: a
  fresh solver given the instance plus the negation of every clause
  literal must report UNSAT (negations are always convex here — learned
  word literals are negative interval literals, so their negation is a
  plain interval assumption).

A per-seed status comparison against a ``clause_minimization=False``
solve rides along, so an unsound removal that slips past the structural
checks still has to reproduce the exact verdict.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple

import repro.core.hdpll as hdpll_module
from repro.bmc import make_bmc_instance
from repro.constraints.clause import BoolLit, WordLit
from repro.core import SolverConfig, Status, solve_circuit
from repro.core.conflict import analyze_conflict
from repro.harness.parallel import Task, run_tasks
from repro.intervals import Interval
from repro.itc99.generator import (
    random_safety_property,
    random_sequential_circuit,
)

_NUM_SEEDS = 40
_CHUNK = 10
_BOUND = 3

#: Same generator shape (and pathological-seed skip list) as the
#: session differential sweep in ``tests/bmc/test_session.py``.
_SWEEP_SHAPE = dict(width=3, num_registers=2, operations=8)
_PATHOLOGICAL_SEEDS = frozenset({31})

#: Minimized clauses per seed put through the fresh-solver implication
#: check (each check is a full solve; sampling keeps the sweep fast).
_IMPLICATION_SAMPLES = 3


def _test_jobs() -> int:
    return int(os.environ.get("REPRO_TEST_JOBS", "1"))


def _lit_key(lit) -> tuple:
    if isinstance(lit, BoolLit):
        return ("b", lit.var.name, lit.positive)
    assert isinstance(lit, WordLit)
    return (
        "w",
        lit.var.name,
        lit.interval.lo,
        lit.interval.hi,
        lit.positive,
    )


def _negation_assumption(lit):
    """(net, assumption) forcing ``lit`` false, or ``None`` when the
    negation is not expressible as one convex assumption."""
    if isinstance(lit, BoolLit):
        return lit.var.name, 0 if lit.positive else 1
    if not lit.positive:
        # ¬(var notin I)  ==  var in I: a plain interval assumption.
        return lit.var.name, Interval(lit.interval.lo, lit.interval.hi)
    return None  # positive word literal: complement may be non-convex


def _sweep_chunk(seeds: Sequence[int]) -> Tuple[List[str], int]:
    """(failures, total literals removed) over a seed range."""
    prop = random_safety_property()
    config = SolverConfig(predicate_learning=True)
    baseline_config = SolverConfig(
        predicate_learning=True, clause_minimization=False
    )
    failures: List[str] = []
    total_removed = 0
    for seed in seeds:
        if seed in _PATHOLOGICAL_SEEDS:
            continue
        circuit = random_sequential_circuit(seed, **_SWEEP_SHAPE)
        instance = make_bmc_instance(circuit, prop, _BOUND)
        #: (first-UIP keys, minimized keys, minimized literals, removed)
        captured: List[tuple] = []

        def wrapper(
            conflict,
            store,
            hybrid_word_literals=False,
            minimize=True,
        ):
            base = analyze_conflict(
                conflict,
                store,
                hybrid_word_literals=hybrid_word_literals,
                minimize=False,
            )
            mini = analyze_conflict(
                conflict,
                store,
                hybrid_word_literals=hybrid_word_literals,
                minimize=True,
            )
            if base is not None and mini is not None:
                captured.append(
                    (
                        frozenset(_lit_key(l) for l in base.clause.literals),
                        frozenset(_lit_key(l) for l in mini.clause.literals),
                        mini.clause.literals,
                        mini.literals_minimized,
                        base.asserting_literal,
                        mini.asserting_literal,
                    )
                )
            return mini if minimize else base

        original = hdpll_module.analyze_conflict
        hdpll_module.analyze_conflict = wrapper
        try:
            result = solve_circuit(
                instance.circuit, instance.assumptions, config
            )
        finally:
            hdpll_module.analyze_conflict = original

        for base_keys, mini_keys, _lits, removed, base_uip, mini_uip in (
            captured
        ):
            total_removed += removed
            if not mini_keys <= base_keys:
                failures.append(
                    f"seed {seed}: minimized clause grew literals "
                    f"{sorted(mini_keys - base_keys)}"
                )
            if len(mini_keys) > len(base_keys):
                failures.append(
                    f"seed {seed}: minimized clause longer than "
                    f"first-UIP ({len(mini_keys)} > {len(base_keys)})"
                )
            if (base_uip is None) != (mini_uip is None) or (
                base_uip is not None
                and _lit_key(base_uip) != _lit_key(mini_uip)
            ):
                failures.append(
                    f"seed {seed}: minimization changed the asserting "
                    f"literal ({base_uip!r} -> {mini_uip!r})"
                )

        checked = 0
        for _base, _mini, literals, removed, _bu, _mu in captured:
            if checked >= _IMPLICATION_SAMPLES:
                break
            if not removed:
                continue
            merged = dict(instance.assumptions)
            consistent = True
            for lit in literals:
                negation = _negation_assumption(lit)
                if negation is None:
                    consistent = False  # cannot express; skip clause
                    break
                name, value = negation
                if name in merged and merged[name] != value:
                    # The negation contradicts a base assumption
                    # outright, so the clause is trivially implied.
                    consistent = False
                    break
                merged[name] = value
            if not consistent:
                continue
            checked += 1
            refutation = solve_circuit(
                instance.circuit, merged, SolverConfig()
            )
            if refutation.status is not Status.UNSAT:
                failures.append(
                    f"seed {seed}: minimized clause not implied — "
                    f"negation solved {refutation.status.value} "
                    f"(literals {[repr(l) for l in literals]})"
                )

        baseline = solve_circuit(
            instance.circuit, instance.assumptions, baseline_config
        )
        if result.status is not baseline.status:
            failures.append(
                f"seed {seed}: minimize on/off status drift "
                f"({result.status.value} vs {baseline.status.value})"
            )
    return failures, total_removed


def test_minimization_sweep_sound_and_subsumed():
    """40-seed sweep: minimized clauses are subsets of first-UIP, keep
    the asserting literal, stay implied, and preserve verdicts."""
    chunks = [
        range(start, min(start + _CHUNK, _NUM_SEEDS))
        for start in range(0, _NUM_SEEDS, _CHUNK)
    ]
    tasks = [
        Task(
            fn=_sweep_chunk,
            args=(tuple(chunk),),
            label=f"minimize[{chunk[0]}:{chunk[-1] + 1}]",
        )
        for chunk in chunks
    ]
    failures: List[str] = []
    total_removed = 0
    for outcome in run_tasks(tasks, jobs=_test_jobs()):
        if outcome.ok:
            chunk_failures, removed = outcome.value
            failures.extend(chunk_failures)
            total_removed += removed
        else:
            failures.append(
                f"{outcome.label}: worker failed: {outcome.error}"
            )
    assert not failures, "\n".join(failures)
    # The sweep must actually exercise minimization — zero removals
    # across 40 seeds would make every check above vacuous.
    assert total_removed > 0
