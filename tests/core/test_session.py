"""Regression tests for :class:`SolverSession` query semantics.

Both tests pin bugs that only bite once a session is *shared*: the
serve daemon keeps one warm session per netlist signature and routes
many requests (each with its own deadline) through it, so a per-call
timeout that leaks into the session config, or session counters that
drift on the root-conflict path, silently corrupt every later request.
"""

from __future__ import annotations

from repro.constraints.clause import BoolLit, Clause, WordLit
from repro.core import SolverConfig, Status
from repro.core.session import SolverSession
from repro.intervals import Interval
from repro.rtl.builder import CircuitBuilder


def _circuit():
    b = CircuitBuilder("session-fixes")
    a = b.input("a")
    c = b.input("c")
    w = b.input("w", 4)
    flag = b.or_(a, c, name="flag")
    small = b.lt(w, 9, name="small")
    b.output("out", b.and_(flag, small))
    return b.build()


# ----------------------------------------------------------------------
# Per-call timeout must not stick to the session
# ----------------------------------------------------------------------


def test_per_call_timeout_is_not_sticky():
    """A short-deadline query must not shorten the session default.

    The first solve carries an already-expired deadline and comes back
    UNKNOWN; the second passes ``timeout=None`` and must get the
    session's configured budget (unbounded here), not the leftover
    nanosecond one.
    """
    session = SolverSession(_circuit(), SolverConfig(timeout=None))

    first = session.solve({"a": 1}, timeout=1e-9)
    assert first.status is Status.UNKNOWN
    assert "timeout" in (first.note or "")
    # The override was query-scoped: the live config is untouched.
    assert session.solver.config.timeout is None

    second = session.solve({"a": 1}, timeout=None)
    assert second.status is Status.SAT
    assert second.stats.session_solves == 2


def test_explicit_timeout_still_applies_per_call():
    """The override still reaches the solver for the call that asks."""
    session = SolverSession(_circuit(), SolverConfig(timeout=None))
    result = session.solve({}, timeout=1e-9)
    assert result.status is Status.UNKNOWN
    # And a later generous override works after the tiny one.
    result = session.solve({}, timeout=60.0)
    assert result.status is Status.SAT
    assert session.solver.config.timeout is None


# ----------------------------------------------------------------------
# install_shifted root-conflict path keeps its accounting
# ----------------------------------------------------------------------


def _learned(*literals) -> Clause:
    # High LBD keeps multi-literal clauses in the evictable local tier
    # (binary/low-LBD clauses would be core tier, immune to the cap).
    return Clause(
        literals=tuple(literals), learned=True, origin="conflict", lbd=8
    )


def test_install_shifted_root_conflict_keeps_accounting():
    """A root conflict mid-batch must still fold the installed count
    into ``clauses_shifted`` and run the clause-DB cap.

    The conflicting clause is itself in the database (``add_clause``
    appends before detecting the conflict), so it counts too.
    """
    session = SolverSession(
        _circuit(), SolverConfig(clause_db_max_learned=1)
    )
    names = session._var_by_name
    # Falsify ``a`` at level 0 so the unit clause (a) below conflicts.
    session.solver.store.assume(names["a"], Interval.point(0))

    batch = [
        # Install cleanly: literals unassigned, disposable origin.
        _learned(
            BoolLit(names["c"], positive=True),
            WordLit(names["w"], Interval.make(0, 7), positive=True),
            WordLit(names["w"], Interval.make(0, 11), positive=True),
        ),
        _learned(
            BoolLit(names["c"], positive=False),
            WordLit(names["w"], Interval.make(0, 3), positive=True),
            WordLit(names["w"], Interval.make(0, 5), positive=True),
        ),
        # Root conflict: the only literal is false under the trail.
        _learned(BoolLit(names["a"], positive=True)),
        # Never reached — the batch stops at the refutation.
        _learned(
            BoolLit(names["c"], positive=False),
            WordLit(names["w"], Interval.make(8, 15), positive=True),
            WordLit(names["w"], Interval.make(6, 15), positive=True),
        ),
    ]
    installed = session.install_shifted(batch, lambda name: name)

    assert installed == 3
    assert session.clauses_shifted == 3
    assert session.root_conflict
    # The cap ran on this exit path: two disposable multi-literal
    # clauses against a cap of one forces an eviction (the conflicting
    # unit clause is never an eviction candidate).
    assert session.solver.engine.clause_db.clauses_evicted >= 1

    # Later queries are unconditionally UNSAT and carry the counters.
    result = session.solve({"c": 1})
    assert result.status is Status.UNSAT
    assert result.stats.clauses_shifted == 3


def test_install_shifted_clean_batch_counts_everything():
    """Baseline: a conflict-free batch counts every installed clause."""
    session = SolverSession(_circuit(), SolverConfig())
    names = session._var_by_name
    batch = [
        _learned(
            BoolLit(names["a"], positive=True),
            BoolLit(names["c"], positive=True),
        ),
        _learned(
            BoolLit(names["a"], positive=False),
            WordLit(names["w"], Interval.make(0, 7), positive=True),
        ),
    ]
    installed = session.install_shifted(batch, lambda name: name)
    assert installed == 2
    assert session.clauses_shifted == 2
    assert not session.root_conflict
    # Installing the same batch again is a dedup no-op.
    assert session.install_shifted(batch, lambda name: name) == 0
    assert session.clauses_shifted == 2
