"""Direct unit tests for hybrid conflict analysis (1-UIP)."""

import pytest

from repro.constraints import (
    ASSUMPTION,
    BoolLit,
    Conflict,
    DomainStore,
    Variable,
    WordLit,
)
from repro.core.conflict import analyze_conflict, decision_cut_clause
from repro.intervals import Interval


def make_store(*widths):
    variables = [
        Variable(index=i, name=f"v{i}", width=w) for i, w in enumerate(widths)
    ]
    return variables, DomainStore(variables)


def imply_bool(store, var, value, antecedent_events):
    """Record a propagated Boolean assignment with explicit antecedents."""
    from repro.constraints.store import Event

    event = Event(
        id=len(store.trail),
        var=var,
        old=store.domain(var),
        new=Interval.point(value),
        level=store.decision_level,
        reason="test-prop",
        antecedents=tuple(antecedent_events),
    )
    store.trail.append(event)
    store.domains[var.index] = event.new
    store.latest_event[var.index] = event.id
    return event.id


class TestAnalyze:
    def test_level0_only_conflict_is_unsat(self):
        variables, store = make_store(1, 1)
        store.assign_bool(variables[0], 1, ASSUMPTION)
        store.assign_bool(variables[1], 0, ASSUMPTION)
        conflict = Conflict(source="t", antecedents=(0, 1))
        assert analyze_conflict(conflict, store) is None

    def test_single_antecedent_is_its_own_uip(self):
        # A conflict implied by one assignment alone: the first UIP is
        # that assignment, and its negation becomes a unit fact.
        variables, store = make_store(1, 1, 1)
        store.decide_bool(variables[0], 1)                   # event 0, L1
        imply_bool(store, variables[1], 1, [0])              # event 1
        imply_bool(store, variables[2], 0, [1])              # event 2
        conflict = Conflict(source="t", antecedents=(2,))
        analysis = analyze_conflict(conflict, store)
        assert analysis is not None
        literals = {(l.var.name, l.positive) for l in analysis.clause.literals}
        assert literals == {("v2", True)}
        assert analysis.backtrack_level == 0

    def test_simple_uip_is_decision(self):
        # Two independent implication paths from the decision meet in
        # the conflict: resolution walks back to the decision.
        variables, store = make_store(1, 1, 1)
        store.decide_bool(variables[0], 1)                   # event 0, L1
        imply_bool(store, variables[1], 1, [0])              # event 1
        imply_bool(store, variables[2], 0, [0])              # event 2
        conflict = Conflict(source="t", antecedents=(1, 2))
        analysis = analyze_conflict(conflict, store)
        assert analysis is not None
        literals = {(l.var.name, l.positive) for l in analysis.clause.literals}
        assert literals == {("v0", False)}  # ~decision
        assert analysis.backtrack_level == 0

    def test_uip_below_decision(self):
        # decision -> x -> (two paths) -> conflict: x is the first UIP.
        variables, store = make_store(1, 1, 1, 1, 1)
        store.decide_bool(variables[0], 1)                   # 0
        imply_bool(store, variables[1], 1, [0])              # 1: x
        imply_bool(store, variables[2], 1, [1])              # 2: path a
        imply_bool(store, variables[3], 1, [1])              # 3: path b
        conflict = Conflict(source="t", antecedents=(2, 3))
        analysis = analyze_conflict(conflict, store)
        literals = {(l.var.name, l.positive) for l in analysis.clause.literals}
        assert literals == {("v1", False)}

    def test_lower_level_literals_kept(self):
        variables, store = make_store(1, 1, 1)
        store.decide_bool(variables[0], 1)                   # 0 @ L1
        store.decide_bool(variables[1], 1)                   # 1 @ L2
        imply_bool(store, variables[2], 0, [0, 1])           # 2 @ L2
        conflict = Conflict(source="t", antecedents=(1, 2))
        analysis = analyze_conflict(conflict, store)
        literals = {(l.var.name, l.positive) for l in analysis.clause.literals}
        assert literals == {("v0", False), ("v1", False)}
        assert analysis.backtrack_level == 1

    def test_word_event_expansion(self):
        # A word narrowing at the conflict level resolves into its
        # Boolean cause rather than appearing in the clause.
        variables, store = make_store(1, 8)
        store.decide_bool(variables[0], 1)                   # 0 @ L1
        store.narrow(
            variables[1], Interval(0, 3), "prop", involved=variables
        )                                                    # 1 @ L1
        conflict = Conflict(source="t", antecedents=(1,))
        analysis = analyze_conflict(conflict, store)
        literals = {(l.var.name, l.positive) for l in analysis.clause.literals}
        assert literals == {("v0", False)}

    def test_hybrid_keeps_lower_level_word_literal(self):
        variables, store = make_store(1, 8, 1)
        store.decide_bool(variables[0], 1)                   # 0 @ L1
        store.narrow(
            variables[1], Interval(0, 3), "prop", involved=[variables[0]]
        )                                                    # 1 @ L1
        store.decide_bool(variables[2], 1)                   # 2 @ L2
        conflict = Conflict(source="t", antecedents=(1, 2))
        analysis = analyze_conflict(
            conflict, store, hybrid_word_literals=True
        )
        kinds = {type(l).__name__ for l in analysis.clause.literals}
        assert kinds == {"BoolLit", "WordLit"}
        word = [
            l for l in analysis.clause.literals if isinstance(l, WordLit)
        ][0]
        assert word.positive is False
        assert word.interval == Interval(0, 3)
        # Backtrack lands at the word literal's level, where it is
        # already false and the asserting literal flips.
        assert analysis.backtrack_level == 1

    def test_boolean_mode_expands_word_literal(self):
        variables, store = make_store(1, 8, 1)
        store.decide_bool(variables[0], 1)
        store.narrow(
            variables[1], Interval(0, 3), "prop", involved=[variables[0]]
        )
        store.decide_bool(variables[2], 1)
        conflict = Conflict(source="t", antecedents=(1, 2))
        analysis = analyze_conflict(
            conflict, store, hybrid_word_literals=False
        )
        literals = {(l.var.name, l.positive) for l in analysis.clause.literals}
        assert literals == {("v0", False), ("v2", False)}

    def test_multiple_decisions_same_level(self):
        # The lazy-SMT pattern: several decisions share one level; all
        # relevant ones must appear in the clause.
        variables, store = make_store(1, 1, 1)
        store.push_level()
        from repro.constraints import DECISION

        store.assign_bool(variables[0], 1, DECISION)         # 0 @ L1
        store.assign_bool(variables[1], 1, DECISION)         # 1 @ L1
        imply_bool(store, variables[2], 0, [0, 1])           # 2 @ L1
        conflict = Conflict(source="t", antecedents=(0, 1, 2))
        analysis = analyze_conflict(conflict, store)
        literals = {(l.var.name, l.positive) for l in analysis.clause.literals}
        assert literals == {("v0", False), ("v1", False)}


class TestDecisionCut:
    def test_no_decisions_returns_none(self):
        variables, store = make_store(1)
        store.assign_bool(variables[0], 1, ASSUMPTION)
        assert decision_cut_clause(store) is None

    def test_all_decisions_negated(self):
        variables, store = make_store(1, 1, 1)
        store.decide_bool(variables[0], 1)
        store.decide_bool(variables[1], 0)
        clause = decision_cut_clause(store)
        literals = {(l.var.name, l.positive) for l in clause.literals}
        assert literals == {("v0", False), ("v1", True)}
