"""Command-line interface: ``repro-hdpll`` / ``python -m repro.harness``.

Subcommands::

    repro-hdpll solve b13_5 50 --engine hdpll+sp
    repro-hdpll trace b01_1 20 --output trace.jsonl --narrate
    repro-hdpll trace --replay trace.jsonl
    repro-hdpll profile b13_5 20
    repro-hdpll table1 --max-bound 30 --timeout 60
    repro-hdpll table2 --max-bound 30 --timeout 60
    repro-hdpll ablation
    repro-hdpll report telemetry-dir/
    repro-hdpll top telemetry-dir/ --once
    repro-hdpll serve --port 9123 --telemetry-dir serve-tel/
    repro-hdpll serve-load --cases b01_1:15,b13_1:10 --requests 16
    repro-hdpll dist-serve b13_5 150 --port 9124 --workers 4
    repro-hdpll -j 2 dist-work --host hubhost --port 9124
    repro-hdpll list

Global options: ``--log-level debug`` (or ``REPRO_LOG=debug``) wires the
library's ``repro`` logger to stderr (and is inherited by spawned
workers); ``--telemetry-dir DIR`` gives multi-process commands
(``bench``, ``solve --portfolio``) per-worker trace/metrics shards that
are merged into one clock-aligned timeline — inspect it afterwards with
``report`` (post-mortem) or ``top`` (live tail).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.experiments import run_ablation, run_table1, run_table2
from repro.harness.runner import ENGINE_NAMES, run_engine
from repro.harness.tables import format_records, format_table1, format_table2
from repro.itc99 import available_cases, instance
from repro.obs import (
    PROFILE_DRIFT_TOLERANCE,
    configure_logging,
    profile_drift,
)

#: Engines that accept an Observation (tracing / profiling).
TRACEABLE_ENGINES = tuple(
    name for name in ENGINE_NAMES if name.startswith("hdpll")
)

#: Engines the ``profile`` command accepts: the traceable solvers plus
#: the incremental session sweep (phase profile + session counters; its
#: trace interleaves several solves, so it stays out of ``trace``).
PROFILED_ENGINES = TRACEABLE_ENGINES + ("bmc-session",)

#: ``--engine-impl`` value -> engine-name suffix (reference is the
#: unsuffixed default; see ``runner.ENGINE_IMPL_SUFFIXES``).
_IMPL_SUFFIXES = {"reference": "", "specialized": "-spec", "vectorized": "-vec"}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout", type=float, default=120.0, help="per-run timeout (s)"
    )


def _add_engine_impl(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine-impl",
        choices=tuple(_IMPL_SUFFIXES),
        default="reference",
        help="propagation core: the reference engine, per-circuit "
        "specialized kernels, or kernels plus the NumPy batch filter",
    )


def _with_impl(engine: str, impl: str) -> str:
    """``("hdpll+sp", "specialized")`` -> ``"hdpll+sp-spec"``."""
    return engine + _IMPL_SUFFIXES[impl]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hdpll",
        description=(
            "Structural search for RTL with predicate learning "
            "(DAC 2005 reproduction)"
        ),
    )
    parser.add_argument(
        "--log-level",
        default=None,
        help="logging level for the repro logger (name or number; "
        "defaults to $REPRO_LOG, silent when neither is set)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for multi-instance commands "
        "(table1/table2/scaling/ablation/bench); 1 = run in-process "
        "(the historical sequential path)",
    )
    parser.add_argument(
        "--worker-dir",
        default=None,
        help="directory for per-worker trace/log files (created on "
        "demand; only used by commands that run the worker pool)",
    )
    parser.add_argument(
        "--telemetry-dir",
        default=None,
        help="cross-process telemetry directory: every worker writes a "
        "clock-aligned trace/metrics shard there and the run merges "
        "them into timeline.jsonl + metrics.json/.prom (bench and "
        "solve --portfolio; inspect with the report/top commands)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve one BMC instance")
    solve.add_argument("case", help="e.g. b13_5")
    solve.add_argument("bound", type=int, help="time frames")
    solve.add_argument(
        "--engine", choices=ENGINE_NAMES, default="hdpll+sp"
    )
    solve.add_argument(
        "--portfolio",
        action="store_true",
        help="cube-and-conquer portfolio solve (-j sets the width; "
        "overrides --engine)",
    )
    solve.add_argument(
        "--optimize",
        action="store_true",
        help="run the rtl.optimize pre-pass before compiling "
        "(default off)",
    )
    _add_engine_impl(solve)
    _add_common(solve)

    trace = sub.add_parser(
        "trace",
        help="solve one instance with structured JSONL tracing + "
        "phase profiling, or replay an existing trace",
    )
    trace.add_argument("case", nargs="?", help="e.g. b01_1")
    trace.add_argument("bound", nargs="?", type=int, help="time frames")
    trace.add_argument(
        "--engine", choices=TRACEABLE_ENGINES, default="hdpll+sp"
    )
    trace.add_argument(
        "--output", default="trace.jsonl", help="trace file path"
    )
    trace.add_argument(
        "--narrate",
        action="store_true",
        help="also print the human-readable search narrative",
    )
    trace.add_argument(
        "--replay",
        metavar="PATH",
        help="narrate an existing trace file instead of solving",
    )
    _add_engine_impl(trace)
    _add_common(trace)

    profile = sub.add_parser(
        "profile", help="per-phase wall-time breakdown of one solve"
    )
    profile.add_argument("case", help="e.g. b13_5")
    profile.add_argument("bound", type=int, help="time frames")
    profile.add_argument(
        "--engine", choices=PROFILED_ENGINES, default="hdpll+sp"
    )
    _add_engine_impl(profile)
    _add_common(profile)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument(
        "--max-bound",
        type=int,
        default=50,
        help="cap unrolling depth (0 = paper's full bounds)",
    )
    _add_common(table1)

    table2 = sub.add_parser("table2", help="regenerate Table 2")
    table2.add_argument("--max-bound", type=int, default=50)
    table2.add_argument(
        "--engines",
        default="hdpll,hdpll+s,hdpll+sp,uclid,ics",
        help="comma-separated engine list",
    )
    _add_common(table2)

    ablation = sub.add_parser("ablation", help="run the ablation study")
    _add_common(ablation)

    scaling = sub.add_parser(
        "scaling", help="run-time vs unrolling depth for one family"
    )
    scaling.add_argument("case", nargs="?", default="b13_1")
    scaling.add_argument(
        "--bounds", default="10,20,30,40,50", help="comma-separated depths"
    )
    scaling.add_argument(
        "--engines", default="hdpll,hdpll+s,hdpll+sp"
    )
    _add_common(scaling)

    prove = sub.add_parser(
        "prove",
        help="unbounded proof of a benchmark property "
        "(k-induction or predicate abstraction)",
    )
    prove.add_argument("case", help="e.g. b13_1")
    prove.add_argument(
        "--method",
        choices=("induction", "abstraction"),
        default="induction",
    )
    prove.add_argument("--max-k", type=int, default=8)
    prove.add_argument(
        "--portfolio",
        action="store_true",
        help="answer every base/step query with the cube-and-conquer "
        "portfolio (-j sets the width; induction method only)",
    )
    _add_common(prove)

    bench = sub.add_parser(
        "bench", help="run the perf benchmark matrix and emit BENCH_1.json"
    )
    bench.add_argument(
        "--profile",
        choices=("smoke", "full", "bmc", "portfolio", "prop", "serve", "dist"),
        default="smoke",
    )
    bench.add_argument(
        "--output", default="BENCH_1.json", help="report output path"
    )
    bench.add_argument(
        "--baseline",
        default=None,
        help="baseline report (default benchmarks/perf/baseline_<profile>.json)",
    )
    bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="also write this run as the committed baseline",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when a gated engine regresses past tolerance",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown vs baseline (default 0.25)",
    )
    bench.add_argument(
        "--repeat", type=int, default=2, help="runs per cell; min is kept"
    )
    _add_common(bench)

    serve = sub.add_parser(
        "serve",
        help="run the solver daemon (NDJSON solve requests over "
        "TCP/UNIX sockets, warm session reuse; see docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=9123,
        help="TCP port (0 = ephemeral, printed at startup)",
    )
    serve.add_argument(
        "--unix-socket",
        default=None,
        help="also serve on this UNIX socket path",
    )
    serve.add_argument(
        "--no-tcp",
        action="store_true",
        help="disable the TCP endpoint (UNIX socket only)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        help="concurrently solving requests; arrivals beyond this queue",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=8,
        help="warm sessions kept (LRU)",
    )
    serve.add_argument(
        "--cache-mb",
        type=int,
        default=512,
        help="approximate session-cache byte budget (MiB)",
    )
    serve.add_argument(
        "--default-timeout",
        type=float,
        default=120.0,
        help="deadline for requests that carry no timeout_s (s)",
    )
    serve.add_argument(
        "--max-jobs",
        type=int,
        default=8,
        help="cap on the per-request portfolio escalation width",
    )

    serve_load = sub.add_parser(
        "serve-load",
        help="drive a burst of solve requests at a running daemon and "
        "print the latency/status summary",
    )
    serve_load.add_argument("--host", default="127.0.0.1")
    serve_load.add_argument("--port", type=int, default=9123)
    serve_load.add_argument(
        "--unix-socket",
        default=None,
        help="connect over this UNIX socket instead of TCP",
    )
    serve_load.add_argument(
        "--cases",
        default="b01_1:15,b13_1:10",
        help="comma-separated case:bound pairs to round-robin",
    )
    serve_load.add_argument(
        "--requests", type=int, default=16, help="total solve requests"
    )
    serve_load.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="client connections driving requests in parallel",
    )
    serve_load.add_argument(
        "--escalate-jobs",
        type=int,
        default=1,
        help="jobs field on every request (>1 exercises the portfolio)",
    )
    _add_common(serve_load)

    dist_serve = sub.add_parser(
        "dist-serve",
        help="run a cube hub for one BMC instance: splits the query "
        "into cubes and serves them to dist-work hosts over a "
        "TCP/UNIX socket (see docs/distributed.md)",
    )
    dist_serve.add_argument("case", help="e.g. b13_5")
    dist_serve.add_argument("bound", type=int, help="time frames")
    dist_serve.add_argument("--host", default="127.0.0.1")
    dist_serve.add_argument(
        "--port",
        type=int,
        default=9124,
        help="TCP port (0 = ephemeral, printed at startup)",
    )
    dist_serve.add_argument(
        "--unix-socket",
        default=None,
        help="serve on this UNIX socket path instead of TCP",
    )
    dist_serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="expected total worker count across hosts (sets the cube "
        "splitting depth; the hub accepts any number of hosts)",
    )
    dist_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="solve deadline in seconds (default: none)",
    )
    dist_serve.add_argument(
        "--lease",
        type=float,
        default=30.0,
        help="cube lease in seconds: a host silent this long loses its "
        "cubes back to the queue",
    )
    dist_serve.add_argument(
        "--relay-max-lbd",
        type=int,
        default=6,
        help="hub clause-relay admission: keep clauses with LBD <= "
        "this (binaries always pass)",
    )
    dist_serve.add_argument(
        "--cube-depth",
        type=int,
        default=None,
        help="override the lookahead splitting depth",
    )

    dist_work = sub.add_parser(
        "dist-work",
        help="run a worker host against a dist-serve hub: pulls cubes, "
        "solves them with -j local diversified workers, exchanges "
        "learned clauses through the hub",
    )
    dist_work.add_argument("--host", default="127.0.0.1")
    dist_work.add_argument("--port", type=int, default=9124)
    dist_work.add_argument(
        "--unix-socket",
        default=None,
        help="connect over this UNIX socket instead of TCP",
    )
    dist_work.add_argument(
        "--name",
        default=None,
        help="host label in hub logs (default: the hostname)",
    )
    dist_work.add_argument(
        "--crash-on-first-cube",
        action="store_true",
        help=argparse.SUPPRESS,  # test hook: die on the first assignment
    )

    report = sub.add_parser(
        "report",
        help="merge a telemetry directory and print the run report "
        "(worker lanes, cube lifecycle, clause flow, resource peaks)",
    )
    report.add_argument(
        "directory", help="telemetry directory from a previous run"
    )
    report.add_argument(
        "--narrate",
        action="store_true",
        help="also print the merged timeline narrative",
    )

    top = sub.add_parser(
        "top",
        help="live tail of a telemetry directory while a run is active",
    )
    top.add_argument("directory", help="telemetry directory of a live run")
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="refresh period in seconds (default 1.0)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (for scripts and CI)",
    )

    sub.add_parser("list", help="list benchmark cases")
    return parser


def _trace_command(args) -> int:
    from repro.harness.tables import format_profile
    from repro.obs import (
        Observation,
        PhaseProfiler,
        TraceEmitter,
        narrate,
        read_trace,
        validate_trace,
    )

    if args.replay:
        try:
            events = read_trace(args.replay)
        except (OSError, ValueError) as error:
            print(f"trace: cannot replay {args.replay}: {error}",
                  file=sys.stderr)
            return 2
        errors = validate_trace(events, complete=False)
        print(narrate(events))
        for error in errors:
            print(f"schema error: {error}", file=sys.stderr)
        return 1 if errors else 0

    if args.case is None or args.bound is None:
        print(
            "trace: case and bound are required unless --replay is given",
            file=sys.stderr,
        )
        return 2
    inst = instance(args.case, args.bound)
    engine = _with_impl(args.engine, args.engine_impl)
    profiler = PhaseProfiler()
    with TraceEmitter.open(args.output) as tracer:
        observation = Observation(tracer=tracer, profiler=profiler)
        record = run_engine(
            inst, engine, args.timeout, observation=observation
        )
    events = read_trace(args.output)
    errors = validate_trace(events, complete=record.status != "-A-")
    print(
        f"{inst.name} [{engine}]: {record.status} in "
        f"{record.seconds:.2f}s — {len(events)} trace events "
        f"written to {args.output}"
    )
    if record.note:
        print(f"note: {record.note}")
    if args.narrate:
        print()
        print(narrate(events))
    print()
    reported = record.solve_seconds + record.learn_seconds
    print(format_profile(profiler.report(), reference=reported))
    drift_error = _check_profile_drift(profiler.report(), reported)
    if drift_error:
        errors.append(drift_error)
    for error in errors:
        print(f"trace error: {error}", file=sys.stderr)
    return 1 if errors else 0


def _check_profile_drift(report, reported: float) -> Optional[str]:
    """Phase sum vs solver-reported wall time, beyond tolerance?

    Sub-millisecond solves are all fixed overhead; the accounting check
    only means something once the solve is long enough to measure.
    """
    phase_sum = report["top_level_total"]
    drift = profile_drift(phase_sum, reported)
    if drift is not None and drift > PROFILE_DRIFT_TOLERANCE:
        return (
            f"profiler phase sum {phase_sum:.4f}s deviates "
            f"{drift:.0%} from solver-reported {reported:.4f}s"
        )
    return None


def _profile_command(args) -> int:
    from repro.harness.tables import format_profile
    from repro.obs import Observation, PhaseProfiler

    inst = instance(args.case, args.bound)
    engine = _with_impl(args.engine, args.engine_impl)
    profiler = PhaseProfiler()
    record = run_engine(
        inst,
        engine,
        args.timeout,
        observation=Observation(profiler=profiler),
    )
    print(
        f"{inst.name} [{engine}]: {record.status} in "
        f"{record.seconds:.2f}s"
    )
    if record.note:
        print(f"note: {record.note}")
    print()
    reported = record.solve_seconds + record.learn_seconds
    print(format_profile(profiler.report(), reference=reported))
    if record.props_per_sec:
        print()
        print(
            f"propagation core [{args.engine_impl}]: "
            f"{record.propagations} propagations "
            f"({record.props_per_sec:,.0f}/s), "
            f"{record.narrowings} narrowings "
            f"({record.narrowings_per_sec:,.0f}/s), "
            f"{record.props_filtered} filtered"
        )
    if record.session_solves:
        rate = record.probe_cache_hit_rate
        print()
        print(
            f"session: {record.session_solves} solves, "
            f"{record.clauses_shifted} clauses shifted, "
            f"probe cache {record.probe_cache_hits} hits / "
            f"{record.probe_cache_misses} misses ({rate:.0%}), "
            f"{record.clauses_evicted} clauses evicted"
        )
    db_total = (
        record.clause_db_core + record.clause_db_mid + record.clause_db_local
    )
    if db_total or record.literals_minimized:
        print()
        print(
            f"clause db: {record.clause_db_core} core / "
            f"{record.clause_db_mid} mid / "
            f"{record.clause_db_local} local "
            f"(mean LBD {record.learned_lbd_mean:.2f}); "
            f"{record.literals_minimized} literals minimized, "
            f"{record.clauses_demoted} demoted, "
            f"{record.clauses_evicted} evicted"
        )
    heap_total = record.heap_picks + record.heap_stale_pops
    if heap_total:
        stale = record.heap_stale_pops / heap_total
        print()
        print(
            f"decision heap: {record.heap_picks} picks, "
            f"{record.heap_stale_pops} stale pops ({stale:.0%} stale)"
        )
    if not args.engine.startswith("hdpll"):
        # The drift check compares one solve's phase sum to one solve's
        # reported time; a session sweep interleaves many solves with
        # session-level work, so the accounting identity does not apply.
        return 0
    drift_error = _check_profile_drift(profiler.report(), reported)
    if drift_error:
        print(f"profile error: {drift_error}", file=sys.stderr)
        return 1
    return 0


def _report_command(args) -> int:
    from pathlib import Path

    from repro.obs import narrate, read_trace, validate_trace
    from repro.obs.telemetry import format_report, merge_directory

    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"report: no such directory: {directory}", file=sys.stderr)
        return 2
    # Re-merging is deterministic and tolerates shards added since the
    # run wrote its timeline (e.g. a post-crash flight dump).
    summary = merge_directory(directory)
    if not summary["workers"]:
        print(f"report: no telemetry shards in {directory}", file=sys.stderr)
        return 2
    print(format_report(summary))
    if args.narrate:
        timeline = summary.get("timeline")
        if timeline:
            print()
            print(narrate(read_trace(timeline)))
    errors = validate_trace(read_trace(summary["timeline"]), complete=False)
    for error in errors:
        print(f"timeline error: {error}", file=sys.stderr)
    return 1 if errors else 0


def _top_command(args) -> int:
    import time as time_module
    from pathlib import Path

    from repro.obs.telemetry import format_top, snapshot_status

    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"top: no such directory: {directory}", file=sys.stderr)
        return 2
    try:
        while True:
            rows = snapshot_status(directory)
            print(format_top(rows))
            if args.once:
                return 0
            time_module.sleep(max(0.1, args.interval))
            print()
    except KeyboardInterrupt:
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        configure_logging(args.log_level)
    except ValueError as error:
        print(f"repro-hdpll: {error}", file=sys.stderr)
        return 2
    if args.command == "list":
        for case in available_cases():
            print(case)
        return 0
    if args.command == "solve":
        inst = instance(args.case, args.bound)
        engine = (
            "portfolio"
            if args.portfolio
            else _with_impl(args.engine, args.engine_impl)
        )
        record = run_engine(
            inst,
            engine,
            args.timeout,
            jobs=args.jobs,
            optimize=args.optimize,
            telemetry_dir=args.telemetry_dir,
        )
        print(
            f"{inst.name} [{engine}]: {record.status} in "
            f"{record.seconds:.2f}s (decisions={record.decisions}, "
            f"conflicts={record.conflicts})"
        )
        if engine == "portfolio":
            print(
                f"cubes: {record.cubes_generated} generated, "
                f"{record.cubes_solved} solved, "
                f"{record.cubes_refuted} refuted; clauses shared: "
                f"{record.clauses_exported} exported, "
                f"{record.clauses_imported} imported "
                f"(hit rate {record.share_import_hit_rate:.0%})"
            )
        if args.optimize:
            print(
                f"optimize: {record.optimize_nodes_before} -> "
                f"{record.optimize_nodes_after} nodes"
            )
        if record.note:
            print(f"note: {record.note}")
        return 0
    if args.command == "trace":
        return _trace_command(args)
    if args.command == "profile":
        return _profile_command(args)
    if args.command == "report":
        return _report_command(args)
    if args.command == "top":
        return _top_command(args)
    if args.command == "table1":
        max_bound = args.max_bound or None
        rows = run_table1(
            timeout=args.timeout,
            max_bound=max_bound,
            jobs=args.jobs,
            worker_dir=args.worker_dir,
        )
        print(format_table1(rows))
        return 0
    if args.command == "table2":
        max_bound = args.max_bound or None
        engines = tuple(args.engines.split(","))
        rows = run_table2(
            timeout=args.timeout,
            max_bound=max_bound,
            engines=engines,
            jobs=args.jobs,
            worker_dir=args.worker_dir,
        )
        print(format_table2(rows, engines))
        return 0
    if args.command == "prove":
        from repro.core import HDPLL_SP
        from repro.itc99 import CIRCUITS, circuit as get_circuit

        circuit_name, _, property_name = args.case.partition("_")
        _, properties = CIRCUITS[circuit_name]
        prop = properties[property_name]
        sequential = get_circuit(circuit_name)
        if args.method == "induction":
            if args.portfolio:
                from repro.portfolio import prove_by_induction_portfolio

                outcome = prove_by_induction_portfolio(
                    args.case,
                    max_k=args.max_k,
                    jobs=max(1, args.jobs),
                    timeout=args.timeout,
                    base_config=HDPLL_SP,
                )
            else:
                from repro.bmc import prove_by_induction

                outcome = prove_by_induction(
                    sequential,
                    prop,
                    max_k=args.max_k,
                    config=HDPLL_SP,
                    timeout=args.timeout,
                    jobs=args.jobs,
                    case=args.case,
                )
            print(f"{args.case}: {outcome.status.value} (k = {outcome.k})")
            if outcome.note:
                print(f"note: {outcome.note}")
            for depth in outcome.depth_stats:
                k = depth["k"]
                index = int(k) - 1  # type: ignore[call-overload]
                base_s = (
                    f"{outcome.base_seconds[index]:.2f}s"
                    if index < len(outcome.base_seconds)
                    else "-"
                )
                step_s = (
                    f"{outcome.step_seconds[index]:.2f}s"
                    if index < len(outcome.step_seconds)
                    else "-"
                )
                print(
                    f"  k={k}: base {depth['base_decisions']}d/"
                    f"{depth['base_conflicts']}c {base_s}, "
                    f"step {depth['step_decisions']}d/"
                    f"{depth['step_conflicts']}c {step_s}, "
                    f"probe-cache {depth['probe_cache_hit_rate']:.0%}"
                )
        else:
            from repro.core import predicate_abstraction_check

            outcome = predicate_abstraction_check(sequential, prop)
            verdict = "proved" if outcome.proved else "not proved"
            print(
                f"{args.case}: {verdict} "
                f"({len(outcome.reachable_states)} abstract states, "
                f"{outcome.solver_calls} solver calls, "
                f"{outcome.pruned_by_relations} pruned by relations)"
            )
            if outcome.note:
                print(f"note: {outcome.note}")
        return 0
    if args.command == "scaling":
        from repro.harness.experiments import run_scaling

        engines = tuple(args.engines.split(","))
        rows = run_scaling(
            case=args.case,
            bounds=[int(b) for b in args.bounds.split(",")],
            engines=engines,
            timeout=args.timeout,
            jobs=args.jobs,
            worker_dir=args.worker_dir,
        )
        print(format_table2(rows, engines))
        return 0
    if args.command == "bench":
        from pathlib import Path

        from repro.harness.bench import (
            compare_to_baseline,
            default_baseline_path,
            evaluate_speedup_gates,
            format_gates,
            format_report,
            format_speedup_gates,
            load_report,
            run_profile,
            write_report,
        )

        report = run_profile(
            args.profile,
            timeout=args.timeout,
            repeat=args.repeat,
            jobs=args.jobs,
            worker_dir=args.worker_dir,
            telemetry_dir=args.telemetry_dir,
        )
        print(format_report(report))
        write_report(report, Path(args.output))
        print(f"report written to {args.output}")
        speedups = evaluate_speedup_gates(report)
        if speedups:
            print(format_speedup_gates(speedups))
        failed = args.check and any(not gate.passed for gate in speedups)
        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else default_baseline_path(args.profile)
        )
        if args.update_baseline:
            write_report(report, baseline_path)
            print(f"baseline updated at {baseline_path}")
            return 1 if failed else 0
        baseline = load_report(baseline_path)
        if baseline is None:
            print(f"no baseline at {baseline_path}; skipping gate")
            return 1 if failed else 0
        gates = compare_to_baseline(report, baseline, args.tolerance)
        print(format_gates(gates, args.tolerance))
        if args.check and (failed or any(not g.passed for g in gates)):
            return 1
        return 0
    if args.command == "serve":
        return _serve_command(args)
    if args.command == "serve-load":
        return _serve_load_command(args)
    if args.command == "dist-serve":
        return _dist_serve_command(args)
    if args.command == "dist-work":
        return _dist_work_command(args)
    if args.command == "ablation":
        results = run_ablation(timeout=args.timeout, jobs=args.jobs)
        for name, records in results.items():
            print(f"== {name} ==")
            print(format_records(records))
            print()
        return 0
    return 1  # pragma: no cover - unreachable


def _serve_command(args) -> int:
    import asyncio
    import json

    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=-1 if args.no_tcp else args.port,
        unix_path=args.unix_socket,
        max_inflight=args.max_inflight,
        cache_entries=args.cache_entries,
        cache_bytes=args.cache_mb * 1024 * 1024,
        default_timeout_s=args.default_timeout,
        max_jobs=args.max_jobs,
        telemetry_dir=args.telemetry_dir,
    )

    def announce(server) -> None:
        # One parseable line so wrappers (tests, CI) can discover the
        # ephemeral port / socket path.
        print(
            json.dumps(
                {
                    "event": "listening",
                    "endpoints": [
                        [kind, address]
                        for kind, address in server.endpoints()
                    ],
                }
            ),
            flush=True,
        )

    asyncio.run(run_server(config, announce=announce))
    return 0


def _dist_serve_command(args) -> int:
    import json

    from repro.core import SolverConfig
    from repro.dist import CubeHub
    from repro.portfolio.cubes import Cube, generate_cubes
    from repro.portfolio.solve import default_cube_depth, replay_model
    from repro.portfolio.worker import ProblemSpec, build_problem

    workers = max(1, args.workers)
    spec = ProblemSpec("instance", args.case, args.bound)
    circuit, assumptions = build_problem(spec)
    depth = (
        args.cube_depth
        if args.cube_depth is not None
        else default_cube_depth(workers)
    )
    report = generate_cubes(
        circuit, assumptions, depth, max_cubes=4 * workers
    )
    if report.status is not None:
        print(
            json.dumps(
                {
                    "event": "result",
                    "status": report.status.value,
                    "note": report.note,
                    "cubes_solved": 0,
                }
            ),
            flush=True,
        )
        return 0
    cubes = [Cube(())] + list(report.cubes)
    hub = CubeHub(
        spec,
        cubes,
        base_config=SolverConfig(),
        timeout=args.timeout,
        lease_s=args.lease,
        relay_max_lbd=args.relay_max_lbd,
    )
    try:
        if args.unix_socket:
            kind, target = hub.start(unix_path=args.unix_socket)
        else:
            kind, target = hub.start(host=args.host, port=args.port)
        # Same one-line discovery contract as the solve daemon.
        print(
            json.dumps(
                {
                    "event": "listening",
                    "endpoints": [
                        [kind, target if kind == "unix" else list(target)]
                    ],
                    "cubes": len(cubes),
                }
            ),
            flush=True,
        )
        result = None
        while result is None:
            result = hub.wait(timeout=1.0)
    except KeyboardInterrupt:
        result = hub.abort("interrupted")
    finally:
        hub.close()
    if result.failure:
        print(
            json.dumps(
                {"event": "result", "status": "unknown", "error": result.failure}
            ),
            flush=True,
        )
        return 1
    status = result.status
    verified = None
    if status == "sat":
        verified = result.model is not None and replay_model(
            circuit, result.model, assumptions
        )
        if not verified:
            print(
                json.dumps(
                    {
                        "event": "result",
                        "status": "unknown",
                        "error": "SAT model failed simulator replay",
                    }
                ),
                flush=True,
            )
            return 1
    print(
        json.dumps(
            {
                "event": "result",
                "status": status,
                "note": result.note,
                "winning_cube": result.winning_cube,
                "hosts": result.hosts_seen,
                "cubes_solved": len(result.outcomes),
                "requeues": result.requeues,
                "clauses_relayed": result.clauses_relayed,
                **({"model_verified": True} if verified else {}),
            }
        ),
        flush=True,
    )
    return 0 if status in ("sat", "unsat") else 1


def _dist_work_command(args) -> int:
    import json

    from repro.dist import DistError, run_worker_host

    address = (
        ("unix", args.unix_socket)
        if args.unix_socket
        else ("tcp", (args.host, args.port))
    )
    # The crash hook marks every cube, so the host dies on whichever
    # assignment it receives first.
    crash = tuple(range(4096)) if args.crash_on_first_cube else ()
    try:
        summary = run_worker_host(
            address, max(1, args.jobs), name=args.name, crash_cubes=crash
        )
    except DistError as error:
        print(f"repro-hdpll dist-work: {error}", file=sys.stderr)
        return 1
    print(json.dumps({"event": "done", **summary}), flush=True)
    return 0


def _serve_load_command(args) -> int:
    import json

    from repro.serve import run_load_blocking

    cases = []
    for token in args.cases.split(","):
        name, _, bound = token.partition(":")
        if not bound:
            print(
                f"bad --cases entry {token!r} (want case:bound)",
                file=sys.stderr,
            )
            return 2
        cases.append((name.strip(), int(bound)))
    kwargs = (
        {"path": args.unix_socket}
        if args.unix_socket
        else {"host": args.host, "port": args.port}
    )
    summary = run_load_blocking(
        cases=cases,
        total=args.requests,
        concurrency=args.concurrency,
        timeout_s=args.timeout,
        jobs=args.escalate_jobs,
        **kwargs,
    )
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if summary["errors"] == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
