"""Command-line interface: ``repro-hdpll`` / ``python -m repro.harness``.

Subcommands::

    repro-hdpll solve b13_5 50 --engine hdpll+sp
    repro-hdpll table1 --max-bound 30 --timeout 60
    repro-hdpll table2 --max-bound 30 --timeout 60
    repro-hdpll ablation
    repro-hdpll list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.experiments import run_ablation, run_table1, run_table2
from repro.harness.runner import ENGINE_NAMES, run_engine
from repro.harness.tables import format_records, format_table1, format_table2
from repro.itc99 import available_cases, instance


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout", type=float, default=120.0, help="per-run timeout (s)"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hdpll",
        description=(
            "Structural search for RTL with predicate learning "
            "(DAC 2005 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve one BMC instance")
    solve.add_argument("case", help="e.g. b13_5")
    solve.add_argument("bound", type=int, help="time frames")
    solve.add_argument(
        "--engine", choices=ENGINE_NAMES, default="hdpll+sp"
    )
    _add_common(solve)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument(
        "--max-bound",
        type=int,
        default=50,
        help="cap unrolling depth (0 = paper's full bounds)",
    )
    _add_common(table1)

    table2 = sub.add_parser("table2", help="regenerate Table 2")
    table2.add_argument("--max-bound", type=int, default=50)
    table2.add_argument(
        "--engines",
        default="hdpll,hdpll+s,hdpll+sp,uclid,ics",
        help="comma-separated engine list",
    )
    _add_common(table2)

    ablation = sub.add_parser("ablation", help="run the ablation study")
    _add_common(ablation)

    scaling = sub.add_parser(
        "scaling", help="run-time vs unrolling depth for one family"
    )
    scaling.add_argument("case", nargs="?", default="b13_1")
    scaling.add_argument(
        "--bounds", default="10,20,30,40,50", help="comma-separated depths"
    )
    scaling.add_argument(
        "--engines", default="hdpll,hdpll+s,hdpll+sp"
    )
    _add_common(scaling)

    prove = sub.add_parser(
        "prove",
        help="unbounded proof of a benchmark property "
        "(k-induction or predicate abstraction)",
    )
    prove.add_argument("case", help="e.g. b13_1")
    prove.add_argument(
        "--method",
        choices=("induction", "abstraction"),
        default="induction",
    )
    prove.add_argument("--max-k", type=int, default=8)
    _add_common(prove)

    bench = sub.add_parser(
        "bench", help="run the perf benchmark matrix and emit BENCH_1.json"
    )
    bench.add_argument(
        "--profile", choices=("smoke", "full"), default="smoke"
    )
    bench.add_argument(
        "--output", default="BENCH_1.json", help="report output path"
    )
    bench.add_argument(
        "--baseline",
        default=None,
        help="baseline report (default benchmarks/perf/baseline_<profile>.json)",
    )
    bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="also write this run as the committed baseline",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when a gated engine regresses past tolerance",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown vs baseline (default 0.25)",
    )
    bench.add_argument(
        "--repeat", type=int, default=2, help="runs per cell; min is kept"
    )
    _add_common(bench)

    sub.add_parser("list", help="list benchmark cases")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for case in available_cases():
            print(case)
        return 0
    if args.command == "solve":
        inst = instance(args.case, args.bound)
        record = run_engine(inst, args.engine, args.timeout)
        print(
            f"{inst.name} [{args.engine}]: {record.status} in "
            f"{record.seconds:.2f}s (decisions={record.decisions}, "
            f"conflicts={record.conflicts})"
        )
        if record.note:
            print(f"note: {record.note}")
        return 0
    if args.command == "table1":
        max_bound = args.max_bound or None
        rows = run_table1(timeout=args.timeout, max_bound=max_bound)
        print(format_table1(rows))
        return 0
    if args.command == "table2":
        max_bound = args.max_bound or None
        engines = tuple(args.engines.split(","))
        rows = run_table2(
            timeout=args.timeout, max_bound=max_bound, engines=engines
        )
        print(format_table2(rows, engines))
        return 0
    if args.command == "prove":
        from repro.core import HDPLL_SP
        from repro.itc99 import CIRCUITS, circuit as get_circuit

        circuit_name, _, property_name = args.case.partition("_")
        _, properties = CIRCUITS[circuit_name]
        prop = properties[property_name]
        sequential = get_circuit(circuit_name)
        if args.method == "induction":
            from repro.bmc import prove_by_induction

            outcome = prove_by_induction(
                sequential,
                prop,
                max_k=args.max_k,
                config=HDPLL_SP,
                timeout=args.timeout,
            )
            print(f"{args.case}: {outcome.status.value} (k = {outcome.k})")
            if outcome.note:
                print(f"note: {outcome.note}")
        else:
            from repro.core import predicate_abstraction_check

            outcome = predicate_abstraction_check(sequential, prop)
            verdict = "proved" if outcome.proved else "not proved"
            print(
                f"{args.case}: {verdict} "
                f"({len(outcome.reachable_states)} abstract states, "
                f"{outcome.solver_calls} solver calls, "
                f"{outcome.pruned_by_relations} pruned by relations)"
            )
            if outcome.note:
                print(f"note: {outcome.note}")
        return 0
    if args.command == "scaling":
        from repro.harness.experiments import run_scaling

        engines = tuple(args.engines.split(","))
        rows = run_scaling(
            case=args.case,
            bounds=[int(b) for b in args.bounds.split(",")],
            engines=engines,
            timeout=args.timeout,
        )
        print(format_table2(rows, engines))
        return 0
    if args.command == "bench":
        from pathlib import Path

        from repro.harness.bench import (
            compare_to_baseline,
            default_baseline_path,
            format_gates,
            format_report,
            load_report,
            run_profile,
            write_report,
        )

        report = run_profile(
            args.profile, timeout=args.timeout, repeat=args.repeat
        )
        print(format_report(report))
        write_report(report, Path(args.output))
        print(f"report written to {args.output}")
        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else default_baseline_path(args.profile)
        )
        if args.update_baseline:
            write_report(report, baseline_path)
            print(f"baseline updated at {baseline_path}")
            return 0
        baseline = load_report(baseline_path)
        if baseline is None:
            print(f"no baseline at {baseline_path}; skipping gate")
            return 0
        gates = compare_to_baseline(report, baseline, args.tolerance)
        print(format_gates(gates, args.tolerance))
        if args.check and any(not gate.passed for gate in gates):
            return 1
        return 0
    if args.command == "ablation":
        results = run_ablation(timeout=args.timeout)
        for name, records in results.items():
            print(f"== {name} ==")
            print(format_records(records))
            print()
        return 0
    return 1  # pragma: no cover - unreachable


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
