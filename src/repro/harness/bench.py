"""Performance benchmark harness: ``python -m repro.harness bench``.

Runs a fixed ITC99 BMC workload matrix per engine, records wall time and
the solver's hot-path counters, and emits a machine-readable report
(``BENCH_1.json`` by default).  A committed baseline report
(``benchmarks/perf/baseline_<profile>.json``) turns the harness into a
perf-regression gate: ``--check`` fails the run when the geomean wall
time of a gated engine regresses past ``--tolerance``.

Workflow::

    # refresh the committed baseline (done once per accepted perf change)
    python -m repro.harness bench --profile smoke --update-baseline

    # measure and compare (CI smoke gate)
    python -m repro.harness bench --profile smoke --check

Runs are deterministic, so each (engine, instance) cell is repeated
``--repeat`` times and the best *successful* record is kept — minimum
wall time among ``S``/``U`` repeats, the standard best-of-N discipline
for microbenchmarks, falling back to ``-to-`` and only then ``-A-``
when no repeat succeeds.  (Selecting blindly by minimum seconds would
let a 10 ms abort beat a 2 s solve and record the abort as the cell.)

Gate semantics: geomeans **exclude aborted cells** and **pin timed-out
cells to the timeout value** — an engine that starts failing fast gets
*worse*, never better.  ``compare_to_baseline`` fails loudly when a
gated engine is missing from either report or when a gated cell's
status differs from the baseline's.

``jobs > 1`` runs the matrix on the crash-isolated worker pool
(:mod:`repro.harness.parallel`); parallelism is capped at the core
count so wall-clock cells measure the solver, not scheduler contention.
"""

from __future__ import annotations

import json
import logging
import math
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.parallel import (
    EngineTask,
    effective_bench_jobs,
    run_engine_tasks,
)
from repro.harness.runner import RunRecord

logger = logging.getLogger(__name__)

#: Report schema version (bump when the JSON layout changes).
#: 2: geomeans exclude aborts and pin timeouts to the timeout value;
#: failed cells (``-to-``/``-A-``) carry no counters (their values
#: depend on wall-clock progress, not the workload).
SCHEMA_VERSION = 2

#: Counter fields copied from a :class:`RunRecord` into the report.
COUNTER_FIELDS = (
    "decisions",
    "conflicts",
    "propagations",
    "propagator_wakeups",
    "clause_visits",
    "watch_moves",
    "interval_cache_hit_rate",
    "session_solves",
    "clauses_shifted",
    "probe_cache_hits",
    "probe_cache_misses",
    "probe_cache_hit_rate",
    "clauses_evicted",
    "clauses_demoted",
    "literals_minimized",
    "clause_db_core",
    "clause_db_mid",
    "clause_db_local",
    "learned_lbd_mean",
    "heap_picks",
    "heap_stale_pops",
    "cubes_generated",
    "cubes_solved",
    "cubes_refuted",
    "clauses_exported",
    "clauses_imported",
    "share_import_hit_rate",
    "dist_requeues",
    "dist_clauses_relayed",
    "optimize_nodes_before",
    "optimize_nodes_after",
    # Throughput *rates* (props_per_sec, narrowings_per_sec) stay out:
    # report counters must be deterministic so parallel and sequential
    # runs produce identical reports; rates are derived at format time
    # from (propagations, wall_time).
    "narrowings",
    "props_filtered",
    "kernel_plan_hits",
    "kernel_plan_misses",
)

#: Workload matrices.  ``smoke`` is the CI gate (seconds-scale); ``full``
#: is the Table 2 style sweep for local investigation.
PROFILES: Dict[str, Dict[str, object]] = {
    "smoke": {
        "instances": (
            ("b01_1", 20),
            ("b02_1", 20),
            ("b04_1", 20),
            ("b13_5", 20),
            ("b13_1", 20),
        ),
        "engines": ("hdpll", "hdpll+sp", "hdpll+sp-spec"),
        #: Engines whose geomean is gated against the baseline.
        "gated": ("hdpll+sp",),
        #: The smoke cells are seconds-scale, so the specialized-core
        #: row is gated as a *no-regression* bound with status parity:
        #: the two ~10ms cells sit at parity (kernel codegen is the
        #: whole solve there) and pin the geomean, while the b13 cells
        #: run 1.5-2x.  The actual speedup bars live in the prop
        #: (>= 2x) and bmc (>= 1.15x) profiles.
        "speedup_gates": (
            {"fast": "hdpll+sp-spec", "slow": "hdpll+sp", "min_ratio": 0.9},
        ),
    },
    "full": {
        "instances": (
            ("b01_1", 50),
            ("b02_1", 50),
            ("b04_1", 50),
            ("b13_1", 50),
            ("b13_2", 50),
            ("b13_3", 50),
            ("b13_5", 50),
            ("b13_8", 50),
        ),
        "engines": ("hdpll", "hdpll+s", "hdpll+sp"),
        "gated": ("hdpll+sp",),
    },
    #: Incremental-solving comparison: each cell sweeps bounds
    #: 1..bound; ``bmc-session`` reuses one persistent solver and
    #: ``bmc-oneshot`` restarts per bound.  Besides the baseline gate on
    #: the session engine, a *speedup gate* requires the session sweep's
    #: geomean to beat the one-shot sweep's by ``min_ratio``.
    "bmc": {
        "instances": (
            ("b01_1", 15),
            ("b02_1", 15),
            ("b06_1", 10),
            ("b13_1", 15),
        ),
        "engines": ("bmc-oneshot", "bmc-session", "bmc-session-spec"),
        "gated": ("bmc-session",),
        "speedup_gates": (
            {"fast": "bmc-session", "slow": "bmc-oneshot", "min_ratio": 2.0},
            #: Sweeps spend most of their time in per-frame extension
            #: machinery (unroll, levelize, predicate extraction) and
            #: these cells are tens of milliseconds, so the
            #: specialized-core row is a no-regression bound with status
            #: parity; the actual speedup bar lives in the prop profile.
            {
                "fast": "bmc-session-spec",
                "slow": "bmc-session",
                "min_ratio": 0.85,
            },
        ),
    },
    #: Single-query parallelism: the cube-and-conquer portfolio against
    #: the sequential paper configuration (and its ``rtl.optimize``
    #: variant) on deep unrollings where one strategy stalls.  The
    #: portfolio cells spawn their *own* worker processes, so the bench
    #: pool runs this profile inline (``single_query_jobs``) and ``-j``
    #: sets the portfolio width instead of the matrix parallelism; the
    #: speedup gate is the issue's acceptance bar: >= 1.5x geomean at
    #: ``-j 4`` with per-instance status parity.
    #: Raw-propagation microbench (see ``runner.run_prop_drill``): the
    #: BCP+ICP fixpoint in isolation — root propagation plus repeated
    #: half-split probe sweeps, zero search/learning share.  One row per
    #: propagation-core impl; the speedup gate is the accelerated-core
    #: acceptance bar: the specialized kernels must hold a >= 2x geomean
    #: over the reference engine with per-instance status parity.  The
    #: vectorized row is reported ungated (its batch filter pays off on
    #: wide queues, which these cells only partly produce).
    "prop": {
        "instances": (
            ("b01_1", 50),
            ("b04_1", 30),
            ("b13_3", 20),
            ("b13_8", 20),
        ),
        "engines": ("prop", "prop-spec", "prop-vec"),
        "gated": ("prop-spec",),
        "speedup_gates": (
            {"fast": "prop-spec", "slow": "prop", "min_ratio": 2.0},
        ),
    },
    "portfolio": {
        "instances": (
            ("b01_1", 50),
            ("b04_1", 150),
            ("b13_3", 100),
            ("b13_5", 150),
            ("b13_8", 100),
        ),
        "engines": ("hdpll+sp", "hdpll+sp-opt", "portfolio"),
        "gated": ("portfolio",),
        "speedup_gates": (
            {"fast": "portfolio", "slow": "hdpll+sp", "min_ratio": 1.5},
        ),
        "single_query_jobs": True,
    },
    #: Solver-daemon serving cells (PR 8): every cell drives a *real*
    #: daemon over a unix socket through the wire protocol.  A
    #: ``serve-cold`` cell restarts the daemon per request, paying the
    #: full unroll + compile + predicate warm-up each time; a
    #: ``serve-warm`` cell reuses one warm session, paying only the
    #: solve.  The speedup gate is the issue's acceptance bar: warm must
    #: hold a >= 2x geomean over cold with per-instance status parity.
    #: Cells run their own asyncio loop and executor threads, so the
    #: profile runs inline (``single_query_jobs``) like the portfolio.
    "serve": {
        "instances": (
            ("b01_1", 15),
            ("b04_1", 15),
            ("b13_1", 10),
            ("b13_5", 15),
        ),
        "engines": ("serve-cold", "serve-warm"),
        "gated": ("serve-warm",),
        "speedup_gates": (
            {"fast": "serve-warm", "slow": "serve-cold", "min_ratio": 2.0},
        ),
        "single_query_jobs": True,
    },
    #: Distributed cube-and-conquer cells (PR 9): every cell runs the
    #: query through a real cube hub over a UNIX socket.  ``dist-1h``
    #: is one worker host, ``dist-2h`` is two (same wire path, so the
    #: ratio isolates what the second host buys); ``-j`` sets the
    #: per-host width.  On a single machine the second host's win comes
    #: from the wider global diversification spread (hosts receive
    #: disjoint worker-index ranges) plus cube-level work stealing, not
    #: raw parallelism — the gate instances are the ones where the
    #: portfolio profile showed diversification carrying the solve.
    #: Cells spawn their own host/worker processes, so the profile runs
    #: inline (``single_query_jobs``) like the portfolio and serve ones.
    "dist": {
        "instances": (
            ("b01_1", 50),
            ("b04_1", 150),
            ("b04_1", 200),
            ("b13_5", 150),
        ),
        "engines": ("dist-1h", "dist-2h"),
        "gated": ("dist-2h",),
        "speedup_gates": (
            {"fast": "dist-2h", "slow": "dist-1h", "min_ratio": 1.3},
        ),
        "single_query_jobs": True,
    },
}

#: Floor applied to per-run wall times before geomean aggregation so a
#: near-zero cell cannot dominate the ratio.
_GEOMEAN_FLOOR = 1e-3


@dataclass
class BenchCell:
    """One measured (engine, instance) cell."""

    case: str
    bound: int
    engine: str
    status: str
    wall_time: float
    counters: Dict[str, float] = field(default_factory=dict)


def _record_counters(record: RunRecord) -> Dict[str, float]:
    # A timed-out cell's counters measure how much work fit into the
    # wall-clock budget — machine noise, not the workload — and would
    # make otherwise-identical reports differ run to run.
    if record.status not in ("S", "U"):
        return {}
    counters: Dict[str, float] = {}
    for name in COUNTER_FIELDS:
        counters[name] = getattr(record, name, 0) or 0
    return counters


#: Best-of-repeat preference: successful statuses beat timeouts beat
#: aborts; wall time only breaks ties within a rank.
_STATUS_RANK = {"S": 0, "U": 0, "-to-": 1, "-A-": 2}


def select_best(records: Sequence[RunRecord]) -> RunRecord:
    """The cell record among ``repeat`` runs of one (engine, instance).

    Prefers successful (``S``/``U``) records and falls back to ``-to-``
    and then ``-A-`` only when no repeat did better; the fastest record
    *within* the best status rank wins.
    """
    assert records
    return min(
        records,
        key=lambda r: (_STATUS_RANK.get(r.status, 3), r.seconds),
    )


def run_profile(
    profile: str,
    timeout: float = 60.0,
    repeat: int = 2,
    jobs: int = 1,
    worker_dir: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run one profile's matrix; returns the report dictionary.

    ``telemetry_dir`` runs the matrix under a
    :class:`~repro.obs.telemetry.TelemetryHub`: every task gets a
    clock-aligned trace/metrics shard, the merged ``timeline.jsonl``
    and metrics exports are written there, and the report grows a
    ``telemetry`` section with cross-worker phase aggregates and the
    per-worker profiler drift check.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown bench profile {profile!r}")
    spec = PROFILES[profile]
    instances: Sequence[Tuple[str, int]] = spec["instances"]  # type: ignore
    engines: Sequence[str] = spec["engines"]  # type: ignore
    repeat = max(1, repeat)
    # Single-query-parallel profiles hand ``jobs`` to the engine (the
    # portfolio spawns its own diversified workers) and run the matrix
    # inline — nesting the portfolio inside bench pool workers would
    # fail (daemonic processes cannot spawn) and oversubscribe cores.
    single_query = bool(spec.get("single_query_jobs", False))
    engine_jobs = max(1, jobs) if single_query else 1
    pool_jobs = 1 if single_query else effective_bench_jobs(jobs)
    matrix = [
        (case, bound, engine)
        for case, bound in instances
        for engine in engines
    ]
    specs = [
        EngineTask(
            case=case,
            bound=bound,
            engine=engine,
            timeout=timeout,
            jobs=(
                engine_jobs
                if engine == "portfolio" or engine.startswith("dist-")
                else 1
            ),
        )
        for case, bound, engine in matrix
        for _ in range(repeat)
    ]
    hub = None
    if telemetry_dir is not None:
        from repro.obs.telemetry import TelemetryHub

        hub = TelemetryHub(telemetry_dir)
    records = run_engine_tasks(
        specs, jobs=pool_jobs, worker_dir=worker_dir, telemetry=hub
    )
    telemetry_summary: Optional[Dict[str, object]] = None
    if hub is not None:
        merged = hub.merge()
        phase_totals = merged.get("phase_totals") or {}
        telemetry_summary = {
            "directory": str(hub.directory),
            "timeline": merged.get("timeline"),
            "metrics": merged.get("metrics"),
            "workers": len(merged.get("workers", [])),
            "events": merged.get("events", 0),
            "phase_totals": phase_totals,
            "drift_errors": merged.get("drift_errors", []),
            "flight_dumps": merged.get("flight_dumps", []),
        }
        for error in merged.get("drift_errors", []):  # type: ignore[union-attr]
            logger.warning("profiler drift: %s", error)
    cells: List[BenchCell] = []
    for slot, (case, bound, engine) in enumerate(matrix):
        best = select_best(records[slot * repeat:(slot + 1) * repeat])
        logger.info(
            "bench cell: %s(%d) %s %s %.3fs",
            case,
            bound,
            engine,
            best.status,
            best.seconds,
        )
        cells.append(
            BenchCell(
                case=case,
                bound=bound,
                engine=engine,
                status=best.status,
                wall_time=best.seconds,
                counters=_record_counters(best),
            )
        )
    report: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "profile": profile,
        "timeout": timeout,
        "repeat": repeat,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "runs": [asdict(cell) for cell in cells],
        "geomean": {
            engine: geomean_wall_time(cells, engine, timeout=timeout)
            for engine in engines
        },
        "gated_engines": list(spec["gated"]),  # type: ignore[arg-type]
        # Parallel pool runs stay byte-identical to sequential ones, so
        # ordinary profiles never record a width; single-query profiles
        # do — there ``jobs`` is the portfolio width and part of the
        # measurement's identity (a -j 2 run is not comparable to the
        # -j 4 baseline).
        **({"jobs": engine_jobs} if single_query else {}),
        "speedup_gates": [
            dict(gate) for gate in spec.get("speedup_gates", ())  # type: ignore[attr-defined]
        ],
        **(
            {"telemetry": telemetry_summary}
            if telemetry_summary is not None
            else {}
        ),
    }
    logger.info(
        "bench profile %s: %d cells, geomean %s",
        profile,
        len(cells),
        {
            e: (round(g, 3) if g is not None else None)
            for e, g in report["geomean"].items()  # type: ignore
        },
    )
    return report


def geomean_wall_time(
    cells: Sequence[BenchCell],
    engine: str,
    timeout: Optional[float] = None,
) -> Optional[float]:
    """Geometric mean wall time of one engine across the matrix.

    Aborted cells (``-A-``) are excluded — an engine that crashes fast
    must not *improve* its geomean — and timed-out cells are pinned to
    the ``timeout`` value rather than their raw wall time.  Returns
    ``None`` when the engine has no scorable (non-abort) cell, so a
    fully-failing engine can never produce a passable number.
    """
    times: List[float] = []
    for cell in cells:
        if cell.engine != engine:
            continue
        if cell.status == "-A-":
            continue
        wall = cell.wall_time
        if cell.status == "-to-" and timeout is not None:
            wall = timeout
        times.append(max(wall, _GEOMEAN_FLOOR))
    if not times:
        return None
    return math.exp(sum(math.log(t) for t in times) / len(times))


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------
@dataclass
class GateResult:
    """Baseline comparison for one gated engine."""

    engine: str
    baseline: Optional[float]
    current: Optional[float]
    #: current/baseline; < 1 is a speedup.  ``None`` when either side
    #: is missing.
    ratio: Optional[float]
    passed: bool
    #: Why the gate failed, when it failed for a structural reason
    #: (missing engine, status drift) rather than a slow geomean.
    reason: str = ""


def _cell_statuses(
    report: Dict[str, object], engine: str
) -> Dict[Tuple[str, int], str]:
    statuses: Dict[Tuple[str, int], str] = {}
    for run in report.get("runs", []):  # type: ignore[union-attr]
        if run["engine"] == engine:
            statuses[(run["case"], run["bound"])] = run["status"]
    return statuses


def compare_to_baseline(
    report: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.25,
) -> List[GateResult]:
    """Gate the report's geomeans against a baseline report.

    ``tolerance`` is the allowed fractional slowdown: 0.25 passes any
    run up to 25% slower than baseline (absorbing machine noise) and
    fails anything beyond it.

    Every gated engine yields a :class:`GateResult` — a gated engine
    missing from either report's geomeans is a *failure*, not a skip
    (a renamed or dropped engine must not pass the gate vacuously).
    A gated cell whose status differs from the baseline's also fails:
    a wall-time ratio between runs that did not reach the same answer
    is meaningless.
    """
    results: List[GateResult] = []
    current_geo: Dict[str, Optional[float]] = report["geomean"]  # type: ignore
    baseline_geo: Dict[str, Optional[float]] = baseline.get("geomean", {})  # type: ignore
    for engine in report.get("gated_engines", []):  # type: ignore[union-attr]
        base = baseline_geo.get(engine)
        cur = current_geo.get(engine)
        problems: List[str] = []
        if engine not in baseline_geo:
            problems.append("engine missing from baseline geomeans")
        elif base is None:
            problems.append("baseline has no scorable cells (all aborted)")
        elif base <= 0:
            problems.append(f"non-positive baseline geomean {base!r}")
        if engine not in current_geo:
            problems.append("engine missing from current geomeans")
        elif cur is None:
            problems.append("current run has no scorable cells (all aborted)")

        base_statuses = _cell_statuses(baseline, engine)
        cur_statuses = _cell_statuses(report, engine)
        for key in sorted(set(base_statuses) | set(cur_statuses)):
            before = base_statuses.get(key)
            after = cur_statuses.get(key)
            if before != after:
                case, bound = key
                problems.append(
                    f"status drift at {case}({bound}): "
                    f"baseline {before or 'absent'} vs current "
                    f"{after or 'absent'}"
                )

        if problems:
            results.append(
                GateResult(
                    engine=engine,
                    baseline=base,
                    current=cur,
                    ratio=None,
                    passed=False,
                    reason="; ".join(problems),
                )
            )
            logger.error("bench gate [%s]: %s", engine, "; ".join(problems))
            continue
        assert base is not None and cur is not None
        ratio = cur / base
        results.append(
            GateResult(
                engine=engine,
                baseline=base,
                current=cur,
                ratio=ratio,
                passed=ratio <= 1.0 + tolerance,
            )
        )
    return results


@dataclass
class SpeedupGateResult:
    """In-report comparison of a fast engine against a slow one."""

    fast: str
    slow: str
    fast_geomean: Optional[float]
    slow_geomean: Optional[float]
    #: slow/fast; >= min_ratio passes.  ``None`` when either side is
    #: missing or unscorable.
    ratio: Optional[float]
    min_ratio: float
    passed: bool
    reason: str = ""


def evaluate_speedup_gates(
    report: Dict[str, object]
) -> List[SpeedupGateResult]:
    """Check the report's fast-vs-slow speedup requirements.

    Unlike the baseline gate (this run vs a committed past run), a
    speedup gate compares two engines *within* the report — the bmc
    profile uses it to require the incremental session sweep to stay a
    ``min_ratio`` geomean factor ahead of the one-shot sweep.  A fast
    cell whose status differs from the slow engine's on the same
    instance fails the gate (a speedup between different answers is
    meaningless).
    """
    results: List[SpeedupGateResult] = []
    geomeans: Dict[str, Optional[float]] = report.get("geomean", {})  # type: ignore[assignment]
    for gate in report.get("speedup_gates", []):  # type: ignore[union-attr]
        fast = gate["fast"]
        slow = gate["slow"]
        min_ratio = float(gate.get("min_ratio", 1.0))
        fast_geo = geomeans.get(fast)
        slow_geo = geomeans.get(slow)
        problems: List[str] = []
        if fast_geo is None:
            problems.append(f"engine {fast!r} has no scorable geomean")
        if slow_geo is None:
            problems.append(f"engine {slow!r} has no scorable geomean")
        fast_statuses = _cell_statuses(report, fast)
        slow_statuses = _cell_statuses(report, slow)
        for key in sorted(set(fast_statuses) | set(slow_statuses)):
            a = fast_statuses.get(key)
            b = slow_statuses.get(key)
            if a != b:
                case, bound = key
                problems.append(
                    f"status mismatch at {case}({bound}): "
                    f"{fast} {a or 'absent'} vs {slow} {b or 'absent'}"
                )
        if problems:
            results.append(
                SpeedupGateResult(
                    fast=fast,
                    slow=slow,
                    fast_geomean=fast_geo,
                    slow_geomean=slow_geo,
                    ratio=None,
                    min_ratio=min_ratio,
                    passed=False,
                    reason="; ".join(problems),
                )
            )
            logger.error(
                "speedup gate [%s vs %s]: %s", fast, slow, "; ".join(problems)
            )
            continue
        assert fast_geo is not None and slow_geo is not None
        ratio = slow_geo / max(fast_geo, _GEOMEAN_FLOOR)
        results.append(
            SpeedupGateResult(
                fast=fast,
                slow=slow,
                fast_geomean=fast_geo,
                slow_geomean=slow_geo,
                ratio=ratio,
                min_ratio=min_ratio,
                passed=ratio >= min_ratio,
            )
        )
    return results


def format_speedup_gates(gates: Sequence[SpeedupGateResult]) -> str:
    lines = []
    for gate in gates:
        if gate.ratio is None:
            lines.append(
                f"speedup[{gate.fast} vs {gate.slow}]: FAILED — {gate.reason}"
            )
            continue
        verdict = "ok" if gate.passed else "TOO SLOW"
        lines.append(
            f"speedup[{gate.fast} vs {gate.slow}]: "
            f"{gate.slow_geomean:.3f}s / {gate.fast_geomean:.3f}s = "
            f"{gate.ratio:.2f}x (required >= {gate.min_ratio:.1f}x) {verdict}"
        )
    return "\n".join(lines)


def default_baseline_path(profile: str) -> Path:
    return Path("benchmarks") / "perf" / f"baseline_{profile}.json"


def load_report(path: Path) -> Optional[Dict[str, object]]:
    if not path.exists():
        return None
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def write_report(report: Dict[str, object], path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# Human-readable rendering
# ----------------------------------------------------------------------
def format_report(report: Dict[str, object]) -> str:
    lines = [
        f"{'instance':14s} {'engine':10s} {'st':4s} {'secs':>8s} "
        f"{'props':>9s} {'props/s':>9s} {'wakeups':>9s} {'visits':>9s} "
        f"{'moves':>8s}"
    ]
    for run in report["runs"]:  # type: ignore[union-attr]
        counters = run["counters"]
        # Derived at format time so the stored report stays
        # deterministic across execution modes (see COUNTER_FIELDS).
        props = int(counters.get("propagations", 0))
        wall = run["wall_time"]
        rate = f"{props / wall:>9,.0f}" if props and wall else f"{'-':>9s}"
        lines.append(
            f"{run['case'] + '(' + str(run['bound']) + ')':14s} "
            f"{run['engine']:10s} "
            f"{run['status']:4s} "
            f"{run['wall_time']:>8.3f} "
            f"{props:>9d} "
            f"{rate} "
            f"{int(counters.get('propagator_wakeups', 0)):>9d} "
            f"{int(counters.get('clause_visits', 0)):>9d} "
            f"{int(counters.get('watch_moves', 0)):>8d}"
        )
    lines.append("")
    for engine, value in report["geomean"].items():  # type: ignore[union-attr]
        if value is None:
            lines.append(f"geomean[{engine}] = n/a (no scorable cells)")
        else:
            lines.append(f"geomean[{engine}] = {value:.3f}s")
    return "\n".join(lines)


def format_gates(gates: Sequence[GateResult], tolerance: float) -> str:
    if not gates:
        return "no baseline comparison (baseline missing or not gated)"
    lines = []
    for gate in gates:
        if gate.ratio is None:
            lines.append(f"gate[{gate.engine}]: FAILED — {gate.reason}")
            continue
        assert gate.baseline is not None and gate.current is not None
        speedup = gate.baseline / gate.current if gate.current else float("inf")
        verdict = "ok" if gate.passed else "REGRESSION"
        lines.append(
            f"gate[{gate.engine}]: baseline {gate.baseline:.3f}s -> "
            f"current {gate.current:.3f}s  (speedup {speedup:.2f}x, "
            f"tolerance +{tolerance:.0%}) {verdict}"
        )
    return "\n".join(lines)
