"""Performance benchmark harness: ``python -m repro.harness bench``.

Runs a fixed ITC99 BMC workload matrix per engine, records wall time and
the solver's hot-path counters, and emits a machine-readable report
(``BENCH_1.json`` by default).  A committed baseline report
(``benchmarks/perf/baseline_<profile>.json``) turns the harness into a
perf-regression gate: ``--check`` fails the run when the geomean wall
time of a gated engine regresses past ``--tolerance``.

Workflow::

    # refresh the committed baseline (done once per accepted perf change)
    python -m repro.harness bench --profile smoke --update-baseline

    # measure and compare (CI smoke gate)
    python -m repro.harness bench --profile smoke --check

Runs are deterministic, so each (engine, instance) cell is repeated
``--repeat`` times and the *minimum* wall time is recorded — the standard
best-of-N discipline for microbenchmarks, which strips scheduler noise
without averaging in warm-up effects.
"""

from __future__ import annotations

import json
import logging
import math
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.runner import RunRecord, run_engine
from repro.itc99 import instance

logger = logging.getLogger(__name__)

#: Report schema version (bump when the JSON layout changes).
SCHEMA_VERSION = 1

#: Counter fields copied from a :class:`RunRecord` into the report.
COUNTER_FIELDS = (
    "decisions",
    "conflicts",
    "propagations",
    "propagator_wakeups",
    "clause_visits",
    "watch_moves",
    "interval_cache_hit_rate",
)

#: Workload matrices.  ``smoke`` is the CI gate (seconds-scale); ``full``
#: is the Table 2 style sweep for local investigation.
PROFILES: Dict[str, Dict[str, object]] = {
    "smoke": {
        "instances": (
            ("b01_1", 20),
            ("b02_1", 20),
            ("b04_1", 20),
            ("b13_5", 20),
            ("b13_1", 20),
        ),
        "engines": ("hdpll", "hdpll+sp"),
        #: Engines whose geomean is gated against the baseline.
        "gated": ("hdpll+sp",),
    },
    "full": {
        "instances": (
            ("b01_1", 50),
            ("b02_1", 50),
            ("b04_1", 50),
            ("b13_1", 50),
            ("b13_2", 50),
            ("b13_3", 50),
            ("b13_5", 50),
            ("b13_8", 50),
        ),
        "engines": ("hdpll", "hdpll+s", "hdpll+sp"),
        "gated": ("hdpll+sp",),
    },
}

#: Floor applied to per-run wall times before geomean aggregation so a
#: near-zero cell cannot dominate the ratio.
_GEOMEAN_FLOOR = 1e-3


@dataclass
class BenchCell:
    """One measured (engine, instance) cell."""

    case: str
    bound: int
    engine: str
    status: str
    wall_time: float
    counters: Dict[str, float] = field(default_factory=dict)


def _record_counters(record: RunRecord) -> Dict[str, float]:
    counters: Dict[str, float] = {}
    for name in COUNTER_FIELDS:
        counters[name] = getattr(record, name, 0) or 0
    return counters


def run_profile(
    profile: str,
    timeout: float = 60.0,
    repeat: int = 2,
) -> Dict[str, object]:
    """Run one profile's matrix; returns the report dictionary."""
    if profile not in PROFILES:
        raise ValueError(f"unknown bench profile {profile!r}")
    spec = PROFILES[profile]
    instances: Sequence[Tuple[str, int]] = spec["instances"]  # type: ignore
    engines: Sequence[str] = spec["engines"]  # type: ignore
    cells: List[BenchCell] = []
    for case, bound in instances:
        inst = instance(case, bound)
        for engine in engines:
            best: Optional[RunRecord] = None
            for _ in range(max(1, repeat)):
                record = run_engine(inst, engine, timeout)
                if best is None or record.seconds < best.seconds:
                    best = record
            assert best is not None
            logger.info(
                "bench cell: %s(%d) %s %s %.3fs",
                case,
                bound,
                engine,
                best.status,
                best.seconds,
            )
            cells.append(
                BenchCell(
                    case=case,
                    bound=bound,
                    engine=engine,
                    status=best.status,
                    wall_time=best.seconds,
                    counters=_record_counters(best),
                )
            )
    report: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "profile": profile,
        "timeout": timeout,
        "repeat": repeat,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "runs": [asdict(cell) for cell in cells],
        "geomean": {
            engine: geomean_wall_time(cells, engine) for engine in engines
        },
        "gated_engines": list(spec["gated"]),  # type: ignore[arg-type]
    }
    logger.info(
        "bench profile %s: %d cells, geomean %s",
        profile,
        len(cells),
        {e: round(g, 3) for e, g in report["geomean"].items()},  # type: ignore
    )
    return report


def geomean_wall_time(cells: Sequence[BenchCell], engine: str) -> float:
    """Geometric mean wall time of one engine across the matrix."""
    times = [
        max(cell.wall_time, _GEOMEAN_FLOOR)
        for cell in cells
        if cell.engine == engine
    ]
    if not times:
        return 0.0
    return math.exp(sum(math.log(t) for t in times) / len(times))


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------
@dataclass
class GateResult:
    """Baseline comparison for one gated engine."""

    engine: str
    baseline: float
    current: float
    #: current/baseline; < 1 is a speedup.
    ratio: float
    passed: bool


def compare_to_baseline(
    report: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.25,
) -> List[GateResult]:
    """Gate the report's geomeans against a baseline report.

    ``tolerance`` is the allowed fractional slowdown: 0.25 passes any
    run up to 25% slower than baseline (absorbing machine noise) and
    fails anything beyond it.
    """
    results: List[GateResult] = []
    current_geo: Dict[str, float] = report["geomean"]  # type: ignore
    baseline_geo: Dict[str, float] = baseline.get("geomean", {})  # type: ignore
    for engine in report.get("gated_engines", []):  # type: ignore[union-attr]
        base = baseline_geo.get(engine)
        cur = current_geo.get(engine)
        if base is None or cur is None or base <= 0:
            continue
        ratio = cur / base
        results.append(
            GateResult(
                engine=engine,
                baseline=base,
                current=cur,
                ratio=ratio,
                passed=ratio <= 1.0 + tolerance,
            )
        )
    return results


def default_baseline_path(profile: str) -> Path:
    return Path("benchmarks") / "perf" / f"baseline_{profile}.json"


def load_report(path: Path) -> Optional[Dict[str, object]]:
    if not path.exists():
        return None
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def write_report(report: Dict[str, object], path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# Human-readable rendering
# ----------------------------------------------------------------------
def format_report(report: Dict[str, object]) -> str:
    lines = [
        f"{'instance':14s} {'engine':10s} {'st':4s} {'secs':>8s} "
        f"{'props':>9s} {'wakeups':>9s} {'visits':>9s} {'moves':>8s}"
    ]
    for run in report["runs"]:  # type: ignore[union-attr]
        counters = run["counters"]
        lines.append(
            f"{run['case'] + '(' + str(run['bound']) + ')':14s} "
            f"{run['engine']:10s} "
            f"{run['status']:4s} "
            f"{run['wall_time']:>8.3f} "
            f"{int(counters.get('propagations', 0)):>9d} "
            f"{int(counters.get('propagator_wakeups', 0)):>9d} "
            f"{int(counters.get('clause_visits', 0)):>9d} "
            f"{int(counters.get('watch_moves', 0)):>8d}"
        )
    lines.append("")
    for engine, value in report["geomean"].items():  # type: ignore[union-attr]
        lines.append(f"geomean[{engine}] = {value:.3f}s")
    return "\n".join(lines)


def format_gates(gates: Sequence[GateResult], tolerance: float) -> str:
    if not gates:
        return "no baseline comparison (baseline missing or not gated)"
    lines = []
    for gate in gates:
        speedup = gate.baseline / gate.current if gate.current else float("inf")
        verdict = "ok" if gate.passed else "REGRESSION"
        lines.append(
            f"gate[{gate.engine}]: baseline {gate.baseline:.3f}s -> "
            f"current {gate.current:.3f}s  (speedup {speedup:.2f}x, "
            f"tolerance +{tolerance:.0%}) {verdict}"
        )
    return "\n".join(lines)
