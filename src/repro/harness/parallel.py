"""Crash-isolated parallel worker pool for harness runs.

Every experiment surface (tables, bench profiles, the differential
test) executes ``(engine, instance, config)`` tasks.  This module runs
such tasks across worker *processes* (``multiprocessing`` spawn
context) so that

* a worker that overruns its **hard wall-clock deadline** is killed and
  recorded as a timeout (``-to-``) instead of hanging the harness,
* a worker that **dies** — unhandled exception, ``os._exit``, OOM kill,
  recursion blowup — yields an abort outcome (``-A-``) carrying the
  exit reason instead of crashing the whole run, and
* a crashed worker gets **one bounded retry** after a short backoff
  (transient failures recover; deterministic ones fail twice and are
  reported once).

Results are merged in deterministic task order, so a parallel run's
output is identical to the sequential run's, cell for cell (wall times
aside).  ``jobs=1`` bypasses multiprocessing entirely and runs tasks
inline — the historical sequential path.

The hard deadline is a *backstop*, not the primary timeout: engines
honour their cooperative ``timeout=`` budget themselves (and return a
clean ``-to-`` record with counters), so the kill only fires for a
worker whose cooperative deadline failed — the derived hard deadline
leaves the cooperative one a 2x + grace head start.

Tracing under concurrency: each :class:`EngineTask` can carry its own
trace/log file path (see :func:`run_engine_tasks`'s ``worker_dir``), so
the PR 2 observability stack keeps working when runs overlap — one
JSONL trace and one log file per task, never a shared descriptor.

Spawn caveat: worker processes re-import the parent's ``__main__``, so
``jobs > 1`` requires a driver that is importable — a real script file
(with the usual ``if __name__ == "__main__"`` guard) or ``python -m``.
Driving the pool from stdin or a bare REPL makes every worker die on
re-import; the pool degrades gracefully (``-A-`` records, no hang) but
nothing runs in parallel.
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.runner import RunRecord, run_engine

logger = logging.getLogger(__name__)

#: Hard deadline = cooperative timeout * factor + grace.  The slack is
#: deliberately generous: the kill is for *stuck* workers, and a worker
#: killed mid-solve loses its counters, which parallel/sequential
#: byte-identity wants to keep rare.
HARD_TIMEOUT_FACTOR = 2.0
HARD_TIMEOUT_GRACE = 5.0

#: Seconds before a crashed task's single retry is launched.
RETRY_BACKOFF = 0.25

#: Grace between SIGTERM and SIGKILL at the hard deadline.  The TERM
#: gives the worker's flight-recorder signal handler (see
#: ``repro.obs.telemetry.install_crash_dump_handler``) a chance to dump
#: its ring before the unconditional kill.
TERM_GRACE = 1.0

#: Scheduler poll interval while workers are running.
_POLL_INTERVAL = 0.05


@dataclass(frozen=True)
class Task:
    """One unit of pool work: a picklable call returning a result.

    ``fn`` must be an importable module-level callable (spawn workers
    re-import it by reference).  ``timeout`` is the *cooperative*
    budget the callee itself honours; the pool derives the hard kill
    deadline from it unless ``hard_timeout`` overrides it.
    """

    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    timeout: Optional[float] = None
    hard_timeout: Optional[float] = None
    label: str = ""

    def hard_deadline_seconds(self) -> Optional[float]:
        if self.hard_timeout is not None:
            return self.hard_timeout
        if self.timeout is not None:
            return self.timeout * HARD_TIMEOUT_FACTOR + HARD_TIMEOUT_GRACE
        return None


@dataclass
class TaskOutcome:
    """What happened to one task, in submission order."""

    index: int
    label: str
    ok: bool
    value: Any = None
    #: Human-readable failure ("ValueError: ...", "exitcode 7",
    #: "signal 9", "hard timeout: killed after 12.0s").
    error: str = ""
    #: True when the pool killed the worker at the hard deadline.
    timed_out: bool = False
    #: Launch attempts consumed (2 = the single retry was used).
    attempts: int = 1
    seconds: float = 0.0


def _child_main(conn, fn, args, kwargs) -> None:
    """Worker process entry point: run the task, ship the outcome."""
    try:
        value = fn(*args, **kwargs)
        payload = ("ok", value)
    except BaseException as error:  # report, never crash silently
        payload = ("error", f"{type(error).__name__}: {error}")
    try:
        conn.send(payload)
    except Exception as error:  # unpicklable value / broken pipe
        try:
            conn.send(("error", f"result transport failed: {error}"))
        except Exception:
            pass
    finally:
        conn.close()


class _Running:
    """Bookkeeping for one live worker process."""

    __slots__ = ("task", "index", "process", "conn", "started", "attempt")

    def __init__(self, task, index, process, conn, attempt):
        self.task = task
        self.index = index
        self.process = process
        self.conn = conn
        self.started = time.monotonic()
        self.attempt = attempt

    def label_for_log(self) -> str:
        return self.task.label or self.task.fn.__name__


def _terminate_then_kill(process, grace: float = TERM_GRACE) -> None:
    """Stop a worker: SIGTERM, a short grace, then SIGKILL.

    Used at the hard deadline (where a postmortem flight dump is worth
    one second of patience); intentional cancellations still kill
    outright.
    """
    process.terminate()
    process.join(grace)
    if process.is_alive():
        process.kill()
    process.join()


def _cancelled_outcome(index: int, task: Task) -> TaskOutcome:
    return TaskOutcome(
        index=index,
        label=task.label,
        ok=False,
        error="cancelled: another task already decided the outcome",
    )


def _run_inline(
    tasks: Sequence[Task],
    stop_when: Optional[Callable[[TaskOutcome], bool]] = None,
) -> List[TaskOutcome]:
    """jobs=1: the historical sequential path, no subprocesses.

    Hard timeouts cannot be enforced inline (there is nothing to kill);
    the cooperative ``timeout`` each engine honours is the only budget,
    exactly as before this module existed.
    """
    outcomes: List[TaskOutcome] = []
    stopped = False
    for index, task in enumerate(tasks):
        if stopped:
            outcomes.append(_cancelled_outcome(index, task))
            continue
        start = time.monotonic()
        try:
            value = task.fn(*task.args, **task.kwargs)
            outcome = TaskOutcome(
                index=index, label=task.label, ok=True, value=value
            )
        except Exception as error:
            outcome = TaskOutcome(
                index=index,
                label=task.label,
                ok=False,
                error=f"{type(error).__name__}: {error}",
            )
        outcome.seconds = time.monotonic() - start
        outcomes.append(outcome)
        if stop_when is not None and outcome.ok and stop_when(outcome):
            stopped = True
    return outcomes


def run_tasks(
    tasks: Sequence[Task],
    jobs: int = 1,
    stop_when: Optional[Callable[[TaskOutcome], bool]] = None,
) -> List[TaskOutcome]:
    """Run tasks with up to ``jobs`` concurrent spawn workers.

    Returns one :class:`TaskOutcome` per task **in submission order**
    regardless of completion order.  ``jobs <= 1`` runs inline.

    ``stop_when`` makes the pool *first-finisher-decides*: as soon as a
    successful outcome satisfies the predicate, every other running
    worker is killed and every not-yet-finished task is recorded as a
    cancelled outcome (``ok=False``, error mentioning cancellation).
    The deciding outcome itself is always kept.
    """
    tasks = list(tasks)
    if jobs <= 1 or not tasks:
        return _run_inline(tasks, stop_when=stop_when)

    ctx = multiprocessing.get_context("spawn")
    outcomes: Dict[int, TaskOutcome] = {}
    decided = False
    #: (index, task, attempt, not_before) — crashed tasks awaiting retry.
    retries: List[Tuple[int, Task, int, float]] = []
    pending: List[Tuple[int, Task]] = list(enumerate(tasks))
    pending.reverse()  # pop() from the end keeps submission order
    running: List[_Running] = []

    def launch(index: int, task: Task, attempt: int) -> None:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_main,
            args=(send_conn, task.fn, task.args, task.kwargs),
            daemon=True,
        )
        process.start()
        send_conn.close()  # child holds the write end now
        running.append(_Running(task, index, process, recv_conn, attempt))
        logger.debug(
            "pool launch: task %d (%s) attempt %d pid %d",
            index, task.label or task.fn.__name__, attempt, process.pid,
        )

    def finish_crash(entry: _Running, reason: str) -> None:
        if entry.attempt == 1:
            retries.append(
                (
                    entry.index,
                    entry.task,
                    entry.attempt + 1,
                    time.monotonic() + RETRY_BACKOFF * entry.attempt,
                )
            )
            logger.warning(
                "pool worker crashed (%s), retrying task %d (%s)",
                reason, entry.index, entry.label_for_log(),
            )
            return
        outcomes[entry.index] = TaskOutcome(
            index=entry.index,
            label=entry.task.label,
            ok=False,
            error=reason,
            attempts=entry.attempt,
            seconds=time.monotonic() - entry.started,
        )
        logger.warning(
            "pool worker crashed twice (%s), recording abort for task %d",
            reason, entry.index,
        )

    try:
        while pending or retries or running:
            # Start retries whose backoff has elapsed, then fresh tasks.
            now = time.monotonic()
            ready_retries = [r for r in retries if r[3] <= now]
            for entry in ready_retries:
                if len(running) >= jobs:
                    break
                retries.remove(entry)
                launch(entry[0], entry[1], entry[2])
            while pending and len(running) < jobs:
                index, task = pending.pop()
                launch(index, task, attempt=1)
            if not running:
                if retries:  # every slot idle, waiting out a backoff
                    time.sleep(
                        max(0.0, min(r[3] for r in retries) - time.monotonic())
                    )
                continue

            ready = connection_wait(
                [entry.conn for entry in running], timeout=_POLL_INTERVAL
            )
            completed: List[_Running] = []
            for entry in running:
                if entry.conn not in ready:
                    continue
                try:
                    kind, payload = entry.conn.recv()
                except (EOFError, OSError):
                    # Pipe closed with no result: the process died.
                    entry.process.join()
                    code = entry.process.exitcode
                    reason = (
                        f"signal {-code}" if code is not None and code < 0
                        else f"exitcode {code}"
                    )
                    finish_crash(entry, reason)
                else:
                    entry.process.join()
                    if kind == "ok":
                        outcome = TaskOutcome(
                            index=entry.index,
                            label=entry.task.label,
                            ok=True,
                            value=payload,
                            attempts=entry.attempt,
                            seconds=time.monotonic() - entry.started,
                        )
                        outcomes[entry.index] = outcome
                        if stop_when is not None and stop_when(outcome):
                            decided = True
                    else:
                        finish_crash(entry, payload)
                entry.conn.close()
                completed.append(entry)
            for entry in completed:
                running.remove(entry)

            if decided:
                # First-finisher-decides: cancel everything unfinished.
                for entry in running:
                    entry.process.kill()
                    entry.process.join()
                    entry.conn.close()
                    outcomes[entry.index] = _cancelled_outcome(
                        entry.index, entry.task
                    )
                running.clear()
                for index, task in pending:
                    outcomes[index] = _cancelled_outcome(index, task)
                pending.clear()
                for index, task, _attempt, _when in retries:
                    outcomes[index] = _cancelled_outcome(index, task)
                retries.clear()
                break

            # Hard-deadline enforcement: kill overrunning workers.
            now = time.monotonic()
            overran: List[_Running] = []
            for entry in running:
                limit = entry.task.hard_deadline_seconds()
                if limit is not None and now - entry.started > limit:
                    overran.append(entry)
            for entry in overran:
                _terminate_then_kill(entry.process)
                entry.conn.close()
                running.remove(entry)
                elapsed = time.monotonic() - entry.started
                outcomes[entry.index] = TaskOutcome(
                    index=entry.index,
                    label=entry.task.label,
                    ok=False,
                    error=f"hard timeout: killed after {elapsed:.1f}s",
                    timed_out=True,
                    attempts=entry.attempt,
                    seconds=elapsed,
                )
                logger.warning(
                    "pool killed task %d after %.1fs (hard deadline %.1fs)",
                    entry.index, elapsed, entry.task.hard_deadline_seconds(),
                )
    finally:
        for entry in running:  # interrupted: leave no orphans behind
            entry.process.kill()
            entry.process.join()
            entry.conn.close()

    return [outcomes[index] for index in range(len(tasks))]


# ----------------------------------------------------------------------
# Engine-task layer: (engine, instance, config) -> RunRecord
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineTask:
    """One ``run_engine`` call, fully described by picklable fields.

    The worker rebuilds the instance from ``(case, bound)`` via the
    ITC99 registry rather than shipping a pickled circuit, so spawn
    startup stays cheap and the task description stays tiny.
    """

    case: str
    bound: int
    engine: str
    timeout: Optional[float] = None
    learning_threshold: Optional[int] = None
    #: Per-task JSONL trace file (tracing under concurrency; superseded
    #: by the telemetry shard when ``telemetry`` is set).
    trace_path: Optional[str] = None
    #: Per-task log file for the worker's ``repro`` logger.
    log_path: Optional[str] = None
    #: Log level for the worker; ``None`` inherits the parent's
    #: configured level (the log-config inheritance fix) and falls back
    #: to "info" when a log file was requested without one.
    log_level: Optional[str] = None
    #: Portfolio width forwarded to ``run_engine`` (``portfolio`` engine
    #: only; the bench pool runs such cells inline with ``jobs=1`` so
    #: the portfolio owns the process budget).
    jobs: int = 1
    #: Cross-process telemetry shard config (minted by a TelemetryHub).
    telemetry: Optional["TelemetryConfig"] = None
    #: Flight-recorder dump path for workers running *without* a
    #: telemetry shard (the ring is always on once it has a home).
    flight_path: Optional[str] = None
    #: Explicit hard kill deadline override (tests/CI).
    hard_timeout: Optional[float] = None
    #: Deliberate failure injection (tests/CI only): "abort" raises
    #: inside the worker, "hang" sleeps past the hard deadline.
    inject_crash: str = ""


def _engine_worker(task: EngineTask) -> RunRecord:
    """Worker body: solve one instance, with optional per-task obs."""
    from repro.intervals import reset_interval_cache
    from repro.itc99 import instance
    from repro.obs import configure_logging

    # Cold interning cache per task: a spawned worker starts cold, so
    # the inline path must too or cache-hit-rate stats would depend on
    # execution mode and task order.
    reset_interval_cache()
    if task.log_path is not None:
        configure_logging(
            task.log_level or "info",
            stream=open(task.log_path, "w", encoding="utf-8"),
        )
    elif task.log_level:
        configure_logging(task.log_level)
    inst = instance(task.case, task.bound)
    observation = None
    tracer = None
    flight = None
    telemetry = None
    if task.telemetry is not None:
        from repro.obs.telemetry import WorkerTelemetry

        telemetry = WorkerTelemetry(task.telemetry)
        telemetry.install_signal_dump()
        observation = telemetry.observation()
    else:
        emitter = None
        if task.trace_path is not None:
            from repro.obs import TraceEmitter

            tracer = TraceEmitter.open(task.trace_path)
            emitter = tracer
        if task.flight_path is not None:
            from repro.obs import FlightRecorder, TeeEmitter
            from repro.obs.telemetry import install_crash_dump_handler

            flight = FlightRecorder()
            emitter = TeeEmitter(tracer, flight)

            def _dump(reason: str, _f=flight, _p=task.flight_path) -> None:
                _f.dump(_p, reason=reason)
                if tracer is not None:
                    tracer.flush()

            install_crash_dump_handler(_dump)
        if emitter is not None:
            from repro.obs import Observation

            observation = Observation(tracer=emitter)
    label = f"{task.case}({task.bound})/{task.engine}"
    start = time.perf_counter()
    if telemetry is not None:
        telemetry.task_begin(label)
    try:
        if task.inject_crash == "abort":
            raise RuntimeError("injected crash (inject_crash='abort')")
        if task.inject_crash == "hang":
            time.sleep(3600.0)
        record = run_engine(
            inst,
            task.engine,
            task.timeout,
            learning_threshold=task.learning_threshold,
            observation=observation,
            jobs=task.jobs,
        )
    except BaseException as error:
        reason = f"{type(error).__name__}: {error}"
        if telemetry is not None:
            telemetry.task_end(label, "crash", time.perf_counter() - start)
            telemetry.dump_flight(reason)
            telemetry.close()
        elif flight is not None:
            flight.dump(task.flight_path, reason=reason)
        if tracer is not None:
            tracer.close()
        raise
    if telemetry is not None:
        telemetry.task_end(label, record.status, time.perf_counter() - start)
        metrics = {
            name: value
            for name, value in dataclasses.asdict(record).items()
            if name != "bound"
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
        }
        telemetry.record_metrics(metrics)
        telemetry.close()
    if tracer is not None:
        tracer.close()
    return record


def _task_file_stem(index: int, spec: EngineTask) -> str:
    engine = spec.engine.replace("+", "")
    return f"task-{index:04d}-{spec.case}-{spec.bound}-{engine}"


def outcome_to_record(
    outcome: TaskOutcome, case: str, bound: int, engine: str
) -> RunRecord:
    """An ``-A-``/``-to-`` :class:`RunRecord` for a failed outcome."""
    return RunRecord(
        case=case,
        bound=bound,
        engine=engine,
        status="-to-" if outcome.timed_out else "-A-",
        seconds=outcome.seconds,
        note=outcome.error,
    )


def run_engine_tasks(
    specs: Sequence[EngineTask],
    jobs: int = 1,
    worker_dir: Optional[str] = None,
    telemetry: Optional["TelemetryHub"] = None,
) -> List[RunRecord]:
    """Run engine tasks (parallel when ``jobs > 1``) into RunRecords.

    Crashed workers become ``-A-`` records carrying the exit reason;
    hard-killed workers become ``-to-`` records.  ``worker_dir`` (a
    directory, created on demand) gives every task its own trace and
    log file — the artifacts CI uploads to diagnose worker crashes.

    ``telemetry`` (a :class:`~repro.obs.telemetry.TelemetryHub`) gives
    every task a per-worker shard instead: trace + resource samples +
    flight ring + metrics snapshot, clock-aligned to the hub's epoch
    (the caller merges afterwards).  Either way, a worker that dies
    leaves a flight-recorder dump whose path is appended to the failed
    record's note.
    """
    from repro.obs import effective_level_spec

    specs = list(specs)
    # Log-config inheritance: spawn workers re-import from scratch and
    # never see the parent's --log-level/REPRO_LOG; ship the effective
    # spec into every task that does not pin its own.
    level_spec = effective_level_spec()
    if level_spec:
        specs = [
            dataclasses.replace(spec, log_level=level_spec)
            if spec.log_level is None
            else spec
            for spec in specs
        ]
    if worker_dir is not None:
        directory = Path(worker_dir)
        directory.mkdir(parents=True, exist_ok=True)
        routed = []
        for index, spec in enumerate(specs):
            stem = _task_file_stem(index, spec)
            routed.append(
                dataclasses.replace(
                    spec,
                    trace_path=(
                        str(directory / f"{stem}.trace.jsonl")
                        if spec.engine.startswith("hdpll")
                        and telemetry is None
                        else None
                    ),
                    log_path=str(directory / f"{stem}.log"),
                    flight_path=(
                        str(directory / f"{stem}.flight.jsonl")
                        if telemetry is None
                        else None
                    ),
                )
            )
        specs = routed
    if telemetry is not None:
        specs = [
            dataclasses.replace(
                spec,
                telemetry=telemetry.worker_config(
                    f"t{index:04d}",
                    label=f"{spec.case}({spec.bound})/{spec.engine}",
                ),
            )
            for index, spec in enumerate(specs)
        ]
    tasks = [
        Task(
            fn=_engine_worker,
            args=(spec,),
            timeout=spec.timeout,
            hard_timeout=spec.hard_timeout,
            label=f"{spec.case}({spec.bound})/{spec.engine}",
        )
        for spec in specs
    ]
    outcomes = run_tasks(tasks, jobs=jobs)
    records: List[RunRecord] = []
    for spec, outcome in zip(specs, outcomes):
        if outcome.ok:
            records.append(outcome.value)
            continue
        record = outcome_to_record(
            outcome, spec.case, spec.bound, spec.engine
        )
        dump = (
            spec.telemetry.flight_path
            if spec.telemetry is not None
            else Path(spec.flight_path) if spec.flight_path else None
        )
        if dump is not None and Path(dump).exists():
            note = record.note or ""
            record = dataclasses.replace(
                record,
                note=(note + "; " if note else "")
                + f"flight recorder dump: {dump}",
            )
        records.append(record)
    return records


def effective_bench_jobs(jobs: int) -> int:
    """Cap bench parallelism at the core count.

    The bench harness measures wall time; oversubscribing the cores
    would time contention, not the solver, and would let a ``-j`` run
    drift from the sequential report.  Throughput surfaces (tables,
    the differential test) take ``jobs`` at face value.
    """
    cores = os.cpu_count() or 1
    effective = max(1, min(jobs, cores))
    if effective != jobs:
        logger.info(
            "bench jobs capped at %d (requested %d, %d cores): "
            "oversubscription would distort wall-clock measurement",
            effective, jobs, cores,
        )
    return effective
