"""Paper-style table formatting."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.harness.experiments import TableRow
from repro.harness.runner import RunRecord


def _time_cell(record: RunRecord) -> str:
    if record.status == "-to-":
        return "-to-"
    if record.status == "-A-":
        return "-A-"
    return f"{record.seconds:.2f}"


def format_table1(rows: Iterable[TableRow]) -> str:
    """Columns of the paper's Table 1: Ckt, Type, No. Rels, Learn Time,
    HDPLL, HDPLL+Pred.Learn."""
    lines = [
        f"{'Ckt':16s} {'Type':4s} {'No.Rels':>8s} {'LearnT':>8s} "
        f"{'HDPLL':>9s} {'HDPLL+P':>9s}"
    ]
    for row in rows:
        base = row.records["hdpll"]
        learned = row.records["hdpll+p"]
        lines.append(
            f"{row.case + f'({row.bound})':16s} "
            f"{row.result_letter:4s} "
            f"{learned.learned_relations:>8d} "
            f"{learned.learn_seconds:>8.2f} "
            f"{_time_cell(base):>9s} "
            f"{_time_cell(learned):>9s}"
        )
    return "\n".join(lines)


def format_table2(
    rows: Iterable[TableRow],
    engines: Sequence[str] = ("hdpll", "hdpll+s", "hdpll+sp", "uclid", "ics"),
) -> str:
    """Columns of the paper's Table 2: Test-case, Rslt, Arith Ops, Bool
    Ops, then one run-time column per engine."""
    headers = {
        "hdpll": "HDPLL",
        "hdpll+s": "+S",
        "hdpll+sp": "+S+P",
        "uclid": "UCLID*",
        "ics": "ICS*",
        "bitblast": "BITBLAST",
    }
    header = (
        f"{'Test-case':16s} {'Rslt':4s} {'Arith':>7s} {'Bool':>7s}"
        + "".join(f" {headers.get(e, e):>9s}" for e in engines)
    )
    lines = [header]
    for row in rows:
        any_record = next(iter(row.records.values()))
        cells = "".join(
            f" {_time_cell(row.records[e]):>9s}" for e in engines
            if e in row.records
        )
        lines.append(
            f"{row.case + f'({row.bound})':16s} "
            f"{row.result_letter:4s} "
            f"{any_record.arith_ops:>7d} "
            f"{any_record.bool_ops:>7d}"
            + cells
        )
    return "\n".join(lines)


def format_profile(report: dict, reference: Optional[float] = None) -> str:
    """Render a :meth:`repro.obs.PhaseProfiler.report` as a table.

    ``reference`` is the solver-reported wall time the percentages are
    taken against (defaults to the profiler's own top-level total).
    Nesting shows as indentation: ``search/propagate`` prints as
    ``  propagate`` under ``search``.
    """
    phases = report["phases"]
    total = report["top_level_total"]
    base = reference if reference else total
    lines = [
        f"{'phase':28s} {'count':>8s} {'seconds':>9s} "
        f"{'self':>9s} {'%':>6s}"
    ]
    for entry in phases:
        path = entry["path"]
        depth = path.count("/")
        label = "  " * depth + path.rsplit("/", 1)[-1]
        share = entry["seconds"] / base if base > 0 else 0.0
        lines.append(
            f"{label:28s} "
            f"{entry['count']:>8d} "
            f"{entry['seconds']:>9.4f} "
            f"{entry['self_seconds']:>9.4f} "
            f"{share:>6.1%}"
        )
    summary = f"{'total (top-level phases)':28s} {'':>8s} {total:>9.4f}"
    if reference is not None:
        summary += f" {'':>9s} vs reported {reference:.4f}s"
    lines.append(summary)
    return "\n".join(lines)


def format_records(records: List[RunRecord]) -> str:
    """Generic per-record listing (used for ablations)."""
    lines = [
        f"{'case':16s} {'engine':24s} {'st':3s} {'secs':>8s} "
        f"{'conf':>6s} {'dec':>6s} {'props':>8s} {'wakes':>8s} "
        f"{'cvis':>8s} {'wmov':>7s} {'cache%':>7s}"
    ]
    for record in records:
        lines.append(
            f"{record.case + f'({record.bound})':16s} "
            f"{record.engine:24s} "
            f"{record.status:3s} "
            f"{record.seconds:>8.2f} "
            f"{record.conflicts:>6d} "
            f"{record.decisions:>6d} "
            f"{record.propagations:>8d} "
            f"{record.propagator_wakeups:>8d} "
            f"{record.clause_visits:>8d} "
            f"{record.watch_moves:>7d} "
            f"{record.interval_cache_hit_rate:>7.1%}"
        )
    return "\n".join(lines)
