"""Benchmark harness: instance runners and the paper's table drivers."""

from repro.harness.experiments import (
    ABLATION_INSTANCES,
    TABLE1_INSTANCES,
    TABLE2_INSTANCES,
    TableRow,
    run_ablation,
    run_table1,
    run_table2,
)
from repro.harness.parallel import (
    EngineTask,
    Task,
    TaskOutcome,
    run_engine_tasks,
    run_tasks,
)
from repro.harness.runner import (
    ENGINE_NAMES,
    RunRecord,
    apply_stats,
    run_engine,
)
from repro.harness.tables import (
    format_profile,
    format_records,
    format_table1,
    format_table2,
)

__all__ = [
    "ABLATION_INSTANCES",
    "ENGINE_NAMES",
    "EngineTask",
    "RunRecord",
    "TABLE1_INSTANCES",
    "TABLE2_INSTANCES",
    "TableRow",
    "Task",
    "TaskOutcome",
    "apply_stats",
    "format_profile",
    "format_records",
    "format_table1",
    "format_table2",
    "run_ablation",
    "run_engine",
    "run_engine_tasks",
    "run_table1",
    "run_table2",
    "run_tasks",
]
