"""Experiment drivers for the paper's tables.

Each driver regenerates one table: the same instance list as the paper,
the same columns, the same -to-/-A- markers.  Because this is a pure
Python reproduction of a C/C++ system, absolute run-times are not
comparable; a ``max_bound`` knob scales the deepest unrollings down so a
full table run finishes on a laptop, while ``max_bound=None`` reproduces
the paper's exact instance list.  EXPERIMENTS.md records a full
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.runner import RunRecord, run_engine
from repro.itc99 import instance

#: Table 1 instance list (case, bound) — Section 3.1.
TABLE1_INSTANCES: Tuple[Tuple[str, int], ...] = (
    ("b01_1", 10),
    ("b01_1", 20),
    ("b02_1", 10),
    ("b02_1", 20),
    ("b04_1", 20),
    ("b13_5", 10),
    ("b13_1", 10),
    ("b13_5", 20),
    ("b13_1", 20),
    ("b13_5", 30),
    ("b13_1", 30),
    ("b13_5", 50),
    ("b13_1", 50),
    ("b13_5", 100),
    ("b13_1", 100),
    ("b13_5", 200),
    ("b13_1", 200),
    ("b13_1", 300),
)

#: Table 2 instance list (case, bound) — Section 5.
TABLE2_INSTANCES: Tuple[Tuple[str, int], ...] = (
    ("b01_1", 50),
    ("b01_1", 100),
    ("b02_1", 50),
    ("b02_1", 100),
    ("b04_1", 50),
    ("b04_1", 100),
    ("b13_40", 13),
    ("b13_1", 50),
    ("b13_2", 50),
    ("b13_3", 50),
    ("b13_5", 50),
    ("b13_8", 50),
    ("b13_1", 100),
    ("b13_2", 100),
    ("b13_3", 100),
    ("b13_5", 100),
    ("b13_8", 100),
    ("b13_1", 200),
    ("b13_2", 200),
    ("b13_3", 200),
    ("b13_5", 200),
    ("b13_8", 200),
    ("b13_1", 300),
    ("b13_2", 300),
    ("b13_3", 300),
    ("b13_5", 300),
    ("b13_8", 300),
    ("b13_1", 400),
    ("b13_2", 400),
    ("b13_3", 400),
    ("b13_5", 400),
    ("b13_8", 400),
)

#: Table 1's learning threshold (Section 3.1).
TABLE1_THRESHOLD = 2500


@dataclass
class TableRow:
    """One line of a regenerated table: per-engine records."""

    case: str
    bound: int
    records: Dict[str, RunRecord] = field(default_factory=dict)

    @property
    def result_letter(self) -> str:
        for record in self.records.values():
            if record.status in ("S", "U"):
                return record.status
        return "?"


def _scaled(
    instances: Sequence[Tuple[str, int]], max_bound: Optional[int]
) -> List[Tuple[str, int]]:
    """Cap bounds, dropping rows that collapse onto an existing one."""
    if max_bound is None:
        return list(instances)
    seen = set()
    scaled: List[Tuple[str, int]] = []
    for case, bound in instances:
        capped = min(bound, max_bound)
        if (case, capped) not in seen:
            seen.add((case, capped))
            scaled.append((case, capped))
    return scaled


def run_table1(
    timeout: float = 120.0,
    max_bound: Optional[int] = 50,
    instances: Optional[Sequence[Tuple[str, int]]] = None,
) -> List[TableRow]:
    """Regenerate Table 1: HDPLL with and without predicate learning."""
    rows: List[TableRow] = []
    for case, bound in _scaled(instances or TABLE1_INSTANCES, max_bound):
        inst = instance(case, bound)
        row = TableRow(case=case, bound=bound)
        row.records["hdpll"] = run_engine(inst, "hdpll", timeout)
        row.records["hdpll+p"] = run_engine(
            inst, "hdpll+p", timeout, learning_threshold=TABLE1_THRESHOLD
        )
        rows.append(row)
    return rows


def run_table2(
    timeout: float = 120.0,
    max_bound: Optional[int] = 50,
    instances: Optional[Sequence[Tuple[str, int]]] = None,
    engines: Sequence[str] = ("hdpll", "hdpll+s", "hdpll+sp", "uclid", "ics"),
) -> List[TableRow]:
    """Regenerate Table 2: the structural decision strategy comparison."""
    rows: List[TableRow] = []
    for case, bound in _scaled(instances or TABLE2_INSTANCES, max_bound):
        inst = instance(case, bound)
        row = TableRow(case=case, bound=bound)
        for engine in engines:
            row.records[engine] = run_engine(inst, engine, timeout)
        rows.append(row)
    return rows


def run_scaling(
    case: str = "b13_1",
    bounds: Sequence[int] = (10, 20, 30, 40, 50),
    engines: Sequence[str] = ("hdpll", "hdpll+s", "hdpll+sp"),
    timeout: float = 120.0,
) -> List[TableRow]:
    """Run-time as a function of unrolling depth for one family.

    This is the growth-curve view behind the paper's tables: where the
    paper reports spot depths, the sweep shows each configuration's
    scaling trend and where the separations open up.
    """
    rows: List[TableRow] = []
    for bound in bounds:
        inst = instance(case, bound)
        row = TableRow(case=case, bound=bound)
        for engine in engines:
            row.records[engine] = run_engine(inst, engine, timeout)
        rows.append(row)
    return rows


#: Ablation axes: config override -> instances that expose the effect.
ABLATION_INSTANCES: Tuple[Tuple[str, int], ...] = (
    ("b02_1", 20),
    ("b04_1", 20),
    ("b13_1", 30),
)


def run_ablation(
    timeout: float = 120.0,
) -> Dict[str, List[RunRecord]]:
    """Ablation study over the design choices DESIGN.md calls out.

    Axes: hybrid learned clauses off (Boolean-only learning), the
    strengthened mux backward rule on, and Section 4.4 phase hints on.
    """
    from repro.core import SolverConfig, solve_circuit
    import time as _time

    variants: Dict[str, SolverConfig] = {
        "hdpll+sp": SolverConfig(
            structural_decisions=True, predicate_learning=True, timeout=timeout
        ),
        "no-hybrid-clauses": SolverConfig(
            structural_decisions=True,
            predicate_learning=True,
            hybrid_learned_clauses=False,
            timeout=timeout,
        ),
        "mux-select-implication": SolverConfig(
            structural_decisions=True,
            predicate_learning=True,
            mux_select_implication=True,
            timeout=timeout,
        ),
        "phase-hints": SolverConfig(
            structural_decisions=True,
            predicate_learning=True,
            learned_phase_hints=True,
            timeout=timeout,
        ),
    }
    results: Dict[str, List[RunRecord]] = {}
    for name, config in variants.items():
        records: List[RunRecord] = []
        for case, bound in ABLATION_INSTANCES:
            inst = instance(case, bound)
            start = _time.monotonic()
            result = solve_circuit(inst.circuit, inst.assumptions, config)
            elapsed = _time.monotonic() - start
            records.append(
                RunRecord(
                    case=case,
                    bound=bound,
                    engine=name,
                    status={"sat": "S", "unsat": "U"}.get(
                        result.status.value, "-to-"
                    ),
                    seconds=elapsed,
                    conflicts=result.stats.conflicts,
                    decisions=result.stats.decisions,
                    learned_relations=result.stats.learned_relations,
                )
            )
        results[name] = records
    return results
