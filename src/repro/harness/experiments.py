"""Experiment drivers for the paper's tables.

Each driver regenerates one table: the same instance list as the paper,
the same columns, the same -to-/-A- markers.  Because this is a pure
Python reproduction of a C/C++ system, absolute run-times are not
comparable; a ``max_bound`` knob scales the deepest unrollings down so a
full table run finishes on a laptop, while ``max_bound=None`` reproduces
the paper's exact instance list.  EXPERIMENTS.md records a full
paper-vs-measured comparison.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.parallel import (
    EngineTask,
    Task,
    outcome_to_record,
    run_engine_tasks,
    run_tasks,
)
from repro.harness.runner import RunRecord, run_engine
from repro.itc99 import instance

#: Table 1 instance list (case, bound) — Section 3.1.
TABLE1_INSTANCES: Tuple[Tuple[str, int], ...] = (
    ("b01_1", 10),
    ("b01_1", 20),
    ("b02_1", 10),
    ("b02_1", 20),
    ("b04_1", 20),
    ("b13_5", 10),
    ("b13_1", 10),
    ("b13_5", 20),
    ("b13_1", 20),
    ("b13_5", 30),
    ("b13_1", 30),
    ("b13_5", 50),
    ("b13_1", 50),
    ("b13_5", 100),
    ("b13_1", 100),
    ("b13_5", 200),
    ("b13_1", 200),
    ("b13_1", 300),
)

#: Table 2 instance list (case, bound) — Section 5.
TABLE2_INSTANCES: Tuple[Tuple[str, int], ...] = (
    ("b01_1", 50),
    ("b01_1", 100),
    ("b02_1", 50),
    ("b02_1", 100),
    ("b04_1", 50),
    ("b04_1", 100),
    ("b13_40", 13),
    ("b13_1", 50),
    ("b13_2", 50),
    ("b13_3", 50),
    ("b13_5", 50),
    ("b13_8", 50),
    ("b13_1", 100),
    ("b13_2", 100),
    ("b13_3", 100),
    ("b13_5", 100),
    ("b13_8", 100),
    ("b13_1", 200),
    ("b13_2", 200),
    ("b13_3", 200),
    ("b13_5", 200),
    ("b13_8", 200),
    ("b13_1", 300),
    ("b13_2", 300),
    ("b13_3", 300),
    ("b13_5", 300),
    ("b13_8", 300),
    ("b13_1", 400),
    ("b13_2", 400),
    ("b13_3", 400),
    ("b13_5", 400),
    ("b13_8", 400),
)

#: Table 1's learning threshold (Section 3.1).
TABLE1_THRESHOLD = 2500


@dataclass
class TableRow:
    """One line of a regenerated table: per-engine records."""

    case: str
    bound: int
    records: Dict[str, RunRecord] = field(default_factory=dict)

    @property
    def result_letter(self) -> str:
        for record in self.records.values():
            if record.status in ("S", "U"):
                return record.status
        return "?"


def _scaled(
    instances: Sequence[Tuple[str, int]], max_bound: Optional[int]
) -> List[Tuple[str, int]]:
    """Cap bounds, dropping rows that collapse onto an existing one."""
    if max_bound is None:
        return list(instances)
    seen = set()
    scaled: List[Tuple[str, int]] = []
    for case, bound in instances:
        capped = min(bound, max_bound)
        if (case, capped) not in seen:
            seen.add((case, capped))
            scaled.append((case, capped))
    return scaled


def _run_matrix(
    pairs: Sequence[Tuple[str, int]],
    columns: Sequence[Tuple[str, Optional[int]]],
    timeout: float,
    jobs: int,
    worker_dir: Optional[str],
) -> List[TableRow]:
    """Run an (instance x engine) matrix into table rows.

    ``columns`` is ``(engine, learning_threshold)`` per table column.
    All cells go through the worker pool; ``jobs=1`` is the inline
    sequential path, so table output is identical either way, cell for
    cell, in deterministic row order.
    """
    specs = [
        EngineTask(
            case=case,
            bound=bound,
            engine=engine,
            timeout=timeout,
            learning_threshold=threshold,
        )
        for case, bound in pairs
        for engine, threshold in columns
    ]
    records = run_engine_tasks(specs, jobs=jobs, worker_dir=worker_dir)
    rows: List[TableRow] = []
    cursor = 0
    for case, bound in pairs:
        row = TableRow(case=case, bound=bound)
        for engine, _ in columns:
            row.records[engine] = records[cursor]
            cursor += 1
        rows.append(row)
    return rows


def run_table1(
    timeout: float = 120.0,
    max_bound: Optional[int] = 50,
    instances: Optional[Sequence[Tuple[str, int]]] = None,
    jobs: int = 1,
    worker_dir: Optional[str] = None,
) -> List[TableRow]:
    """Regenerate Table 1: HDPLL with and without predicate learning."""
    return _run_matrix(
        _scaled(instances or TABLE1_INSTANCES, max_bound),
        (("hdpll", None), ("hdpll+p", TABLE1_THRESHOLD)),
        timeout,
        jobs,
        worker_dir,
    )


def run_table2(
    timeout: float = 120.0,
    max_bound: Optional[int] = 50,
    instances: Optional[Sequence[Tuple[str, int]]] = None,
    engines: Sequence[str] = ("hdpll", "hdpll+s", "hdpll+sp", "uclid", "ics"),
    jobs: int = 1,
    worker_dir: Optional[str] = None,
) -> List[TableRow]:
    """Regenerate Table 2: the structural decision strategy comparison."""
    return _run_matrix(
        _scaled(instances or TABLE2_INSTANCES, max_bound),
        tuple((engine, None) for engine in engines),
        timeout,
        jobs,
        worker_dir,
    )


def run_scaling(
    case: str = "b13_1",
    bounds: Sequence[int] = (10, 20, 30, 40, 50),
    engines: Sequence[str] = ("hdpll", "hdpll+s", "hdpll+sp"),
    timeout: float = 120.0,
    jobs: int = 1,
    worker_dir: Optional[str] = None,
) -> List[TableRow]:
    """Run-time as a function of unrolling depth for one family.

    This is the growth-curve view behind the paper's tables: where the
    paper reports spot depths, the sweep shows each configuration's
    scaling trend and where the separations open up.
    """
    return _run_matrix(
        [(case, bound) for bound in bounds],
        tuple((engine, None) for engine in engines),
        timeout,
        jobs,
        worker_dir,
    )


#: Ablation axes: config override -> instances that expose the effect.
ABLATION_INSTANCES: Tuple[Tuple[str, int], ...] = (
    ("b02_1", 20),
    ("b04_1", 20),
    ("b13_1", 30),
)


def _ablation_cell(name: str, config, case: str, bound: int) -> RunRecord:
    """One ablation solve — module-level so pool workers can import it."""
    from repro.core import solve_circuit
    from repro.intervals import reset_interval_cache

    reset_interval_cache()
    inst = instance(case, bound)
    start = _time.monotonic()
    result = solve_circuit(inst.circuit, inst.assumptions, config)
    elapsed = _time.monotonic() - start
    return RunRecord(
        case=case,
        bound=bound,
        engine=name,
        status={"sat": "S", "unsat": "U"}.get(result.status.value, "-to-"),
        seconds=elapsed,
        conflicts=result.stats.conflicts,
        decisions=result.stats.decisions,
        learned_relations=result.stats.learned_relations,
    )


def run_ablation(
    timeout: float = 120.0,
    jobs: int = 1,
) -> Dict[str, List[RunRecord]]:
    """Ablation study over the design choices DESIGN.md calls out.

    Axes: hybrid learned clauses off (Boolean-only learning), the
    strengthened mux backward rule on, and Section 4.4 phase hints on.
    Each (variant, instance) cell is an independent pool task — the
    ablation exercises the pool's generic ``(engine, instance, config)``
    form, with the config pickled into the worker.
    """
    from repro.core import SolverConfig

    variants: Dict[str, SolverConfig] = {
        "hdpll+sp": SolverConfig(
            structural_decisions=True, predicate_learning=True, timeout=timeout
        ),
        "no-hybrid-clauses": SolverConfig(
            structural_decisions=True,
            predicate_learning=True,
            hybrid_learned_clauses=False,
            timeout=timeout,
        ),
        "mux-select-implication": SolverConfig(
            structural_decisions=True,
            predicate_learning=True,
            mux_select_implication=True,
            timeout=timeout,
        ),
        "phase-hints": SolverConfig(
            structural_decisions=True,
            predicate_learning=True,
            learned_phase_hints=True,
            timeout=timeout,
        ),
    }
    cells = [
        (name, config, case, bound)
        for name, config in variants.items()
        for case, bound in ABLATION_INSTANCES
    ]
    tasks = [
        Task(
            fn=_ablation_cell,
            args=cell,
            timeout=timeout,
            label=f"{cell[2]}({cell[3]})/{cell[0]}",
        )
        for cell in cells
    ]
    outcomes = run_tasks(tasks, jobs=jobs)
    results: Dict[str, List[RunRecord]] = {name: [] for name in variants}
    for (name, _config, case, bound), outcome in zip(cells, outcomes):
        if outcome.ok:
            results[name].append(outcome.value)
        else:
            results[name].append(
                outcome_to_record(outcome, case, bound, name)
            )
    return results
