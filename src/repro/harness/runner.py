"""Instance runner: one (engine, instance) measurement.

Engines are addressed by the names used in the paper's tables plus the
extra baselines this reproduction adds:

========  ====================================================
name      solver
========  ====================================================
hdpll     HDPLL (activity decisions, hybrid learning) [9]
hdpll+p   HDPLL + predicate learning (Table 1)
hdpll+s   HDPLL + structural decisions (Table 2, "+S")
hdpll+sp  HDPLL + both (Table 2, "+S+P")
uclid     lazy-SMT comparator substitute (Table 2, UCLID)
ics       eager-CDP comparator substitute (Table 2, ICS)
bitblast  CNF translation + CDCL (the introduction's baseline)
========  ====================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.baselines import (
    solve_by_bitblasting,
    solve_eager_cdp,
    solve_lazy_smt,
)
from repro.bmc.property import BmcInstance
from repro.core import SolverConfig, SolverResult, Status, solve_circuit

ENGINE_NAMES = (
    "hdpll",
    "hdpll+p",
    "hdpll+s",
    "hdpll+sp",
    "uclid",
    "ics",
    "bitblast",
)


@dataclass
class RunRecord:
    """One timed solver run on one instance."""

    case: str
    bound: int
    engine: str
    status: str              # "S", "U", "-to-" (timeout) or "-A-" (abort)
    seconds: float
    learn_seconds: float = 0.0
    learned_relations: int = 0
    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    propagator_wakeups: int = 0
    clause_visits: int = 0
    watch_moves: int = 0
    interval_cache_hit_rate: float = 0.0
    arith_ops: int = 0
    bool_ops: int = 0
    note: str = ""

    @property
    def timed_out(self) -> bool:
        return self.status == "-to-"


def _status_letter(result: SolverResult) -> str:
    if result.status is Status.SAT:
        return "S"
    if result.status is Status.UNSAT:
        return "U"
    return "-to-"


def _hdpll_config(
    engine: str,
    timeout: Optional[float],
    learning_threshold: Optional[int],
) -> SolverConfig:
    return SolverConfig(
        structural_decisions=engine in ("hdpll+s", "hdpll+sp"),
        predicate_learning=engine in ("hdpll+p", "hdpll+sp"),
        learning_threshold=learning_threshold,
        timeout=timeout,
    )


def run_engine(
    instance: BmcInstance,
    engine: str,
    timeout: Optional[float] = None,
    learning_threshold: Optional[int] = None,
) -> RunRecord:
    """Run one engine on a BMC instance, catching aborts."""
    stats = instance.circuit.stats()
    record = RunRecord(
        case=instance.name.rsplit("(", 1)[0],
        bound=instance.bound,
        engine=engine,
        status="-A-",
        seconds=0.0,
        arith_ops=stats.arith_ops,
        bool_ops=stats.bool_ops,
    )
    start = time.monotonic()
    try:
        if engine.startswith("hdpll"):
            result = solve_circuit(
                instance.circuit,
                instance.assumptions,
                _hdpll_config(engine, timeout, learning_threshold),
            )
            record.status = _status_letter(result)
            record.learn_seconds = result.stats.learn_time
            record.learned_relations = result.stats.learned_relations
            record.decisions = result.stats.decisions
            record.conflicts = result.stats.conflicts
            record.propagations = result.stats.propagations
            record.propagator_wakeups = result.stats.propagator_wakeups
            record.clause_visits = result.stats.clause_visits
            record.watch_moves = result.stats.watch_moves
            record.interval_cache_hit_rate = (
                result.stats.interval_cache_hit_rate
            )
            record.note = result.note
        elif engine == "uclid":
            result = solve_lazy_smt(
                instance.circuit, instance.assumptions, timeout=timeout
            )
            record.status = _status_letter(result)
            record.note = result.note
        elif engine == "ics":
            result = solve_eager_cdp(
                instance.circuit, instance.assumptions, timeout=timeout
            )
            record.status = _status_letter(result)
            record.decisions = result.stats.decisions
            record.note = result.note
        elif engine == "bitblast":
            satisfiable, _model, sat_result = solve_by_bitblasting(
                instance.circuit, instance.assumptions, timeout=timeout
            )
            if satisfiable is True:
                record.status = "S"
            elif satisfiable is False:
                record.status = "U"
            else:
                record.status = "-to-"
            record.decisions = sat_result.stats.decisions
            record.conflicts = sat_result.stats.conflicts
        else:
            raise ValueError(f"unknown engine {engine!r}")
    except Exception as error:  # aborts are data, not crashes (cf. -A-)
        record.status = "-A-"
        record.note = f"{type(error).__name__}: {error}"
    record.seconds = time.monotonic() - start
    return record
