"""Instance runner: one (engine, instance) measurement.

Engines are addressed by the names used in the paper's tables plus the
extra baselines this reproduction adds:

========  ====================================================
name      solver
========  ====================================================
hdpll     HDPLL (activity decisions, hybrid learning) [9]
hdpll+p   HDPLL + predicate learning (Table 1)
hdpll+s   HDPLL + structural decisions (Table 2, "+S")
hdpll+sp  HDPLL + both (Table 2, "+S+P")
uclid     lazy-SMT comparator substitute (Table 2, UCLID)
ics       eager-CDP comparator substitute (Table 2, ICS)
bitblast  CNF translation + CDCL (the introduction's baseline)
portfolio cube-and-conquer portfolio with clause sharing (PR 5)
serve-cold  solver daemon, fresh process state per request (PR 8)
serve-warm  solver daemon, warm session reuse across requests (PR 8)
========  ====================================================

Any HDPLL engine name may carry an ``-opt`` suffix (``hdpll+sp-opt``):
the instance's circuit is rewritten by :func:`repro.rtl.optimize`
before compiling, and the node counts around the pass land in
``optimize_nodes_before`` / ``optimize_nodes_after``.

Any HDPLL-family engine (including ``bmc-session``/``bmc-oneshot`` and
``portfolio``) may additionally carry an engine-implementation suffix
selecting ``SolverConfig.engine_impl``: ``-ref`` (reference), ``-spec``
(specialized kernels) or ``-vec`` (vectorized, NumPy).  The impl suffix
is outermost: ``hdpll+sp-opt-vec`` optimizes the circuit and runs the
vectorized engine.  All implementations are bit-for-bit equivalent, so
the suffix only changes wall time, never statuses or counters.

Counter fields on :class:`RunRecord` are filled from the solver's
:meth:`~repro.core.SolverStats.as_dict` snapshot — any stats metric
whose name matches a record field (modulo :data:`_STAT_FIELD_ALIASES`)
is copied, so a new solver counter only needs a record field of the
same name to surface in reports.
"""

from __future__ import annotations

import dataclasses
import logging
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines import (
    solve_by_bitblasting,
    solve_eager_cdp,
    solve_lazy_smt,
)
from repro.bmc.property import BmcInstance
from repro.core import (
    SolverConfig,
    SolverResult,
    SolverStats,
    Status,
    solve_circuit,
)
from repro.obs import Observation

logger = logging.getLogger(__name__)

ENGINE_NAMES = (
    "hdpll",
    "hdpll+p",
    "hdpll+s",
    "hdpll+sp",
    "uclid",
    "ics",
    "bitblast",
    #: BMC bound sweeps 1..bound (the incremental-solving comparison):
    #: one persistent session vs a fresh solver per bound.
    "bmc-session",
    "bmc-oneshot",
    #: Single-query cube-and-conquer portfolio (``jobs`` sets its width).
    "portfolio",
    #: Raw-propagation microbench (no search; see :func:`run_prop_drill`).
    "prop",
    #: Solver-daemon cells (PR 8): each request goes through a real
    #: daemon over a unix socket; ``serve-cold`` restarts the daemon per
    #: request, ``serve-warm`` reuses one warm session (see
    #: ``repro.serve.bench``).
    "serve-cold",
    "serve-warm",
    #: Distributed cube-and-conquer cells (PR 9): the query runs through
    #: a cube hub plus N worker-host processes (each ``jobs`` wide),
    #: exactly the ``repro-hdpll dist-serve``/``dist-work`` deployment
    #: but on one machine (see ``repro.dist``).
    "dist-1h",
    "dist-2h",
)


#: Engine-name suffix -> ``SolverConfig.engine_impl`` value.
ENGINE_IMPL_SUFFIXES = {
    "-ref": "reference",
    "-spec": "specialized",
    "-vec": "vectorized",
}


def split_engine_impl(engine: str) -> tuple:
    """``("hdpll+sp", "vectorized")`` for ``"hdpll+sp-vec"`` etc.

    Names without an impl suffix map to ``engine_impl="reference"``.
    """
    for suffix, impl in ENGINE_IMPL_SUFFIXES.items():
        if engine.endswith(suffix):
            return engine[: -len(suffix)], impl
    return engine, "reference"


@dataclass
class RunRecord:
    """One timed solver run on one instance."""

    case: str
    bound: int
    engine: str
    status: str              # "S", "U", "-to-" (timeout) or "-A-" (abort)
    seconds: float
    #: Solver-reported search seconds (excludes compile and learn).
    solve_seconds: float = 0.0
    learn_seconds: float = 0.0
    learned_relations: int = 0
    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    propagator_wakeups: int = 0
    clause_visits: int = 0
    watch_moves: int = 0
    interval_cache_hit_rate: float = 0.0
    #: Incremental-session counters (bmc-session engine; zero elsewhere).
    session_solves: int = 0
    clauses_shifted: int = 0
    probe_cache_hits: int = 0
    probe_cache_misses: int = 0
    probe_cache_hit_rate: float = 0.0
    clauses_evicted: int = 0
    #: Clause-quality engine (LBD tiers + minimization, PR 9).
    clauses_demoted: int = 0
    literals_minimized: int = 0
    clause_db_core: int = 0
    clause_db_mid: int = 0
    clause_db_local: int = 0
    learned_lbd_mean: float = 0.0
    #: Decision-heap health (all HDPLL engines).
    heap_picks: int = 0
    heap_stale_pops: int = 0
    #: Portfolio counters (portfolio engine; zero elsewhere).
    cubes_generated: int = 0
    cubes_solved: int = 0
    cubes_refuted: int = 0
    clauses_exported: int = 0
    clauses_imported: int = 0
    share_import_hit_rate: float = 0.0
    #: Distributed counters (dist-Nh engines; zero elsewhere).
    dist_hosts: int = 0
    dist_requeues: int = 0
    dist_clauses_relayed: int = 0
    #: Node counts around the optional ``rtl.optimize`` pre-pass.
    optimize_nodes_before: int = 0
    optimize_nodes_after: int = 0
    #: Propagation-core throughput (all HDPLL engines).
    narrowings: int = 0
    props_filtered: int = 0
    props_per_sec: float = 0.0
    narrowings_per_sec: float = 0.0
    kernel_plan_hits: int = 0
    kernel_plan_misses: int = 0
    arith_ops: int = 0
    bool_ops: int = 0
    note: str = ""

    @property
    def timed_out(self) -> bool:
        return self.status == "-to-"


#: Stats-metric name -> RunRecord field name, where they differ.
_STAT_FIELD_ALIASES = {
    "learn_time": "learn_seconds",
    "solve_time": "solve_seconds",
}

_RECORD_FIELD_NAMES = frozenset(
    f.name for f in dataclasses.fields(RunRecord)
)


def apply_stats(record: RunRecord, stats) -> None:
    """Fill every matching counter field of ``record`` from ``stats``.

    This is the single point where solver metrics flow into run
    records; there is deliberately no field-by-field copying anywhere
    else in the harness.  ``stats`` is a :class:`SolverStats` or any
    plain stats dataclass (the baseline engines' ``SatStats``).
    """
    if isinstance(stats, SolverStats):
        snapshot = stats.as_dict(include_histograms=False)
    elif dataclasses.is_dataclass(stats):
        snapshot = dataclasses.asdict(stats)
    else:
        snapshot = vars(stats)
    for name, value in snapshot.items():
        field_name = _STAT_FIELD_ALIASES.get(name, name)
        if field_name in _RECORD_FIELD_NAMES:
            setattr(record, field_name, value)


def _status_letter(result: SolverResult) -> str:
    if result.status is Status.SAT:
        return "S"
    if result.status is Status.UNSAT:
        return "U"
    return "-to-"


def _hdpll_config(
    engine: str,
    timeout: Optional[float],
    learning_threshold: Optional[int],
    engine_impl: str = "reference",
) -> SolverConfig:
    return SolverConfig(
        structural_decisions=engine in ("hdpll+s", "hdpll+sp"),
        predicate_learning=engine in ("hdpll+p", "hdpll+sp"),
        learning_threshold=learning_threshold,
        timeout=timeout,
        engine_impl=engine_impl,
    )


#: Probe-sweep repetitions for the raw-propagation microbench.
#: Chosen so the smallest ITC'99 unrollings still spend >100ms inside
#: the fixpoint, keeping per-run timer noise under a few percent.
PROP_DRILL_REPEATS = 10


def run_prop_drill(
    instance: BmcInstance,
    engine_impl: str = "reference",
    repeats: int = PROP_DRILL_REPEATS,
) -> RunRecord:
    """Raw-propagation microbench: the BCP+ICP fixpoint in isolation.

    Builds the solver for ``instance`` but never searches.  One timed
    region covers the root fixpoint (assumptions asserted at level 0,
    then ``enqueue_all`` + ``propagate``) followed by ``repeats`` probe
    sweeps modelled on the BMC session's probe pass: for every variable
    left unfixed at the root, push a decision level, split its domain to
    the lower half, propagate the fanout cone to fixpoint, and backtrack
    to the root.  Every repetition redoes identical narrowing work, so
    the drill measures propagation-core throughput with zero search,
    conflict-analysis, or learning share — the denominator the
    engine-impl speedup gates divide by.

    Status is deterministic ("U" iff the root fixpoint conflicts, else
    "S"; probe conflicts are expected and merely end that probe), so
    per-instance status parity across engine impls is meaningful and
    gated exactly like the full-solve profiles.
    """
    from repro.constraints.store import DECISION, Conflict
    from repro.core.hdpll import HdpllSolver
    from repro.intervals.interval import Interval

    record = RunRecord(
        case=instance.name.rsplit("(", 1)[0],
        bound=instance.bound,
        engine="prop",
        status="-A-",
        seconds=0.0,
    )
    solver = HdpllSolver(
        instance.circuit, SolverConfig(engine_impl=engine_impl)
    )
    store, engine = solver.store, solver.engine
    narrow_bounds = store.narrow_bounds
    propagate = engine.propagate
    conflicted = False
    start = time.perf_counter()
    for name, value in instance.assumptions.items():
        interval = (
            value if isinstance(value, Interval) else Interval.point(value)
        )
        outcome = store.assume(solver.system.var_by_name(name), interval)
        if isinstance(outcome, Conflict):
            conflicted = True
            break
    if not conflicted:
        engine.enqueue_all()
        conflicted = propagate() is not None
    if not conflicted:
        # Probe targets are fixed by the root fixpoint, identical for
        # every impl; the half-split lower bound stays the current lo so
        # each probe narrows (never widens) and always fires an event.
        probes = [
            (var, store.lo[var.index],
             (store.lo[var.index] + store.hi[var.index]) // 2)
            for var in solver.system.variables
            if store.lo[var.index] < store.hi[var.index]
        ]
        for _ in range(repeats):
            for var, lo, mid in probes:
                store.push_level()
                outcome = narrow_bounds(var, lo, mid, DECISION)
                if not isinstance(outcome, Conflict):
                    propagate()
                store.backtrack_to(0)
                engine.notify_backtrack()
    seconds = time.perf_counter() - start
    record.status = "U" if conflicted else "S"
    record.seconds = seconds
    record.solve_seconds = seconds
    record.propagations = engine.propagation_count
    record.propagator_wakeups = engine.wakeup_count
    record.narrowings = store.narrowings
    record.props_filtered = engine.props_filtered
    record.kernel_plan_hits = engine.kernel_plan_hits
    record.kernel_plan_misses = engine.kernel_plan_misses
    record.clause_visits = engine.clause_db.clause_visits
    if seconds > 0.0:
        record.props_per_sec = engine.propagation_count / seconds
        record.narrowings_per_sec = store.narrowings / seconds
    return record


def run_engine(
    instance: BmcInstance,
    engine: str,
    timeout: Optional[float] = None,
    learning_threshold: Optional[int] = None,
    observation: Optional[Observation] = None,
    jobs: int = 1,
    optimize: bool = False,
    telemetry_dir: Optional[str] = None,
) -> RunRecord:
    """Run one engine on a BMC instance, catching aborts.

    ``observation`` (tracing / profiling) applies to the HDPLL engines
    only; baseline engines ignore it.  ``jobs`` is the portfolio width
    (``portfolio`` engine only); ``optimize`` (or an ``-opt`` engine
    suffix) runs the ``rtl.optimize`` pre-pass.  ``telemetry_dir``
    enables cross-process telemetry for the portfolio pool (other
    engines run in-process and ignore it).
    """
    stats = instance.circuit.stats()
    record = RunRecord(
        case=instance.name.rsplit("(", 1)[0],
        bound=instance.bound,
        engine=engine,
        status="-A-",
        seconds=0.0,
        arith_ops=stats.arith_ops,
        bool_ops=stats.bool_ops,
    )
    #: Engine-measured wall time overriding the harness stopwatch (the
    #: serve cells time only their requests, not daemon startup).
    measured_seconds: Optional[float] = None
    base_engine, engine_impl = split_engine_impl(engine)
    optimize = optimize or base_engine.endswith("-opt")
    base_engine = (
        base_engine[:-4] if base_engine.endswith("-opt") else base_engine
    )
    logger.debug("run begin: %s engine=%s", instance.name, engine)
    start = time.perf_counter()
    try:
        if base_engine == "portfolio":
            from repro.itc99 import available_cases
            from repro.portfolio import ProblemSpec, solve_portfolio

            spec = (
                ProblemSpec("instance", record.case, instance.bound)
                if record.case in available_cases()
                else None
            )
            result = solve_portfolio(
                instance.circuit,
                instance.assumptions,
                spec=spec,
                jobs=jobs,
                timeout=timeout,
                base_config=SolverConfig(
                    learning_threshold=learning_threshold,
                    engine_impl=engine_impl,
                ),
                optimize=optimize,
                observation=observation,
                telemetry_dir=telemetry_dir,
            )
            record.status = _status_letter(result)
            apply_stats(record, result.stats)
            record.note = result.note
        elif base_engine in ("dist-1h", "dist-2h"):
            from repro.dist import solve_dist
            from repro.itc99 import available_cases

            if record.case not in available_cases():
                raise ValueError(
                    "dist engines need a registry instance "
                    f"(got {record.case!r})"
                )
            hosts = int(base_engine[5])
            result = solve_dist(
                record.case,
                instance.bound,
                hosts=hosts,
                jobs=jobs,
                timeout=timeout,
                base_config=SolverConfig(
                    learning_threshold=learning_threshold,
                    engine_impl=engine_impl,
                ),
            )
            record.status = _status_letter(result)
            apply_stats(record, result.stats)
            record.note = result.note
        elif base_engine.startswith("hdpll"):
            circuit = instance.circuit
            if optimize:
                from repro.rtl.optimize import optimize as optimize_circuit

                record.optimize_nodes_before = len(circuit.nodes)
                circuit = optimize_circuit(circuit)
                record.optimize_nodes_after = len(circuit.nodes)
            result = solve_circuit(
                circuit,
                instance.assumptions,
                _hdpll_config(
                    base_engine, timeout, learning_threshold, engine_impl
                ),
                observation=observation,
            )
            record.status = _status_letter(result)
            optimize_before = record.optimize_nodes_before
            optimize_after = record.optimize_nodes_after
            apply_stats(record, result.stats)
            record.optimize_nodes_before = optimize_before
            record.optimize_nodes_after = optimize_after
            record.note = result.note
        elif engine == "uclid":
            result = solve_lazy_smt(
                instance.circuit, instance.assumptions, timeout=timeout
            )
            record.status = _status_letter(result)
            apply_stats(record, result.stats)
            record.note = result.note
        elif engine == "ics":
            result = solve_eager_cdp(
                instance.circuit, instance.assumptions, timeout=timeout
            )
            record.status = _status_letter(result)
            apply_stats(record, result.stats)
            record.note = result.note
        elif base_engine in ("bmc-session", "bmc-oneshot"):
            from repro.bmc.session import (
                bmc_sweep_oneshot,
                bmc_sweep_session,
            )

            # The sweep solves bounds 1..instance.bound on the original
            # sequential circuit; ``timeout`` budgets the whole sweep.
            config = SolverConfig(
                predicate_learning=True, engine_impl=engine_impl
            )
            if base_engine == "bmc-session":
                results = bmc_sweep_session(
                    instance.sequential,
                    instance.prop,
                    instance.bound,
                    config,
                    observation=observation,
                    timeout=timeout,
                )
            else:
                results = bmc_sweep_oneshot(
                    instance.sequential,
                    instance.prop,
                    instance.bound,
                    config,
                    timeout=timeout,
                )
            complete = len(results) == instance.bound and all(
                r.status is not Status.UNKNOWN for r in results
            )
            if complete:
                record.status = _status_letter(results[-1])
                # The final query's stats carry the session-cumulative
                # counters (probe cache, clause shifting) stamped by the
                # session layer; per-query search counters are summed so
                # the record reflects the whole sweep.
                apply_stats(record, results[-1].stats)
                for name in ("decisions", "conflicts", "propagations"):
                    setattr(
                        record,
                        name,
                        sum(getattr(r.stats, name) for r in results),
                    )
                record.solve_seconds = sum(
                    r.stats.solve_time for r in results
                )
                record.note = results[-1].note
            else:
                record.status = "-to-"
                record.note = (
                    f"sweep incomplete: {len(results)}/{instance.bound} "
                    "bounds solved"
                )
        elif base_engine == "prop":
            # Raw-propagation drill; ``record`` is rebuilt wholesale so
            # the engine label keeps its impl suffix.
            drill = run_prop_drill(instance, engine_impl)
            drill.engine = engine
            drill.arith_ops = record.arith_ops
            drill.bool_ops = record.bool_ops
            record = drill
        elif base_engine in ("serve-cold", "serve-warm"):
            from repro.serve.bench import run_serve_cell

            cell = run_serve_cell(
                record.case, instance.bound, base_engine, timeout=timeout
            )
            record.status = str(cell["status"])
            record.note = str(cell["note"])
            record.solve_seconds = float(cell["solve_seconds"])
            record.session_solves = int(cell["session_solves"])
            for name, value in dict(cell["stats"]).items():
                if name in _RECORD_FIELD_NAMES:
                    setattr(record, name, value)
            measured_seconds = float(cell["seconds"])
        elif engine == "bitblast":
            satisfiable, _model, sat_result = solve_by_bitblasting(
                instance.circuit, instance.assumptions, timeout=timeout
            )
            if satisfiable is True:
                record.status = "S"
            elif satisfiable is False:
                record.status = "U"
            else:
                record.status = "-to-"
            apply_stats(record, sat_result.stats)
        else:
            raise ValueError(f"unknown engine {engine!r}")
    except Exception as error:  # aborts are data, not crashes (cf. -A-)
        record.status = "-A-"
        record.note = f"{type(error).__name__}: {error}"
        logger.warning(
            "run aborted: %s engine=%s: %s", instance.name, engine, record.note
        )
    record.seconds = (
        measured_seconds
        if measured_seconds is not None
        else time.perf_counter() - start
    )
    logger.debug(
        "run end: %s engine=%s status=%s seconds=%.3f",
        instance.name,
        engine,
        record.status,
        record.seconds,
    )
    return record
