"""Worker diversification for the solving portfolio.

On a single-query parallel solve every worker attacks (a share of) the
same problem, so the portfolio wins by making the workers *different*,
not by making them many: different decision strategies, restart
schedules, phases and activity decays explore disjoint parts of the
search tree, and the first worker whose strategy happens to fit the
instance decides the race (SAT anywhere wins; UNSAT accumulates per
cube).

The rotation below is ordered deliberately: index 0 — which the pool
hands the *root cube* (the whole, unsplit problem) — is the cheapest
configuration (plain activity decisions, no predicate learning), so a
quickly-solvable instance is never taxed by the heavier strategies'
setup cost.  Predicate learning only enters the rotation from index 4
on, where its pre-processing cost is paid by workers that would
otherwise duplicate cheaper strategies.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import SolverConfig

#: Per-worker config overrides, applied cyclically by worker index.
#: Every entry pins the three diversification axes the issue names:
#: decision strategy (structural vs. activity), predicate learning
#: on/off, and the restart schedule (geometric vs. Luby) — plus phase
#: and decay variation so same-strategy workers still diverge.
_ROTATION: Tuple[dict, ...] = (
    # 0 — the root-cube racer: cheapest possible strategy.
    dict(
        structural_decisions=False,
        predicate_learning=False,
        restart_strategy="geometric",
    ),
    # 1 — structural decisions, Luby restarts, zero-first phase.
    dict(
        structural_decisions=True,
        predicate_learning=False,
        restart_strategy="luby",
        default_phase=0,
    ),
    # 2 — structural decisions, aggressive short geometric restarts.
    dict(
        structural_decisions=True,
        predicate_learning=False,
        restart_strategy="geometric",
        restart_interval=128,
        activity_decay=0.90,
    ),
    # 3 — activity decisions, Luby restarts, slow decay, zero phase.
    dict(
        structural_decisions=False,
        predicate_learning=False,
        restart_strategy="luby",
        default_phase=0,
        activity_decay=0.99,
    ),
    # 4 — the paper's full HDPLL+S+P strategy.
    dict(
        structural_decisions=True,
        predicate_learning=True,
        restart_strategy="geometric",
    ),
    # 5 — predicate learning without structural decisions, Luby.
    dict(
        structural_decisions=False,
        predicate_learning=True,
        restart_strategy="luby",
    ),
)


def worker_config(base: SolverConfig, index: int) -> SolverConfig:
    """The diversified configuration for worker ``index``.

    ``base`` supplies everything the rotation does not override
    (timeouts, clause-DB limits, verification, ...), so harness-level
    settings still reach every worker.
    """
    return base.with_overrides(**_ROTATION[index % len(_ROTATION)])


def rotation_size() -> int:
    """Number of distinct configurations before the rotation repeats."""
    return len(_ROTATION)
