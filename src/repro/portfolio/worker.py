"""Portfolio worker process: one diversified session, many cubes.

Workers never receive a circuit over the pipe — unrolled circuits are
deeply recursive object graphs that pickle badly — they receive a tiny
:class:`ProblemSpec` and rebuild the problem from the ITC99 registry
(exactly like the crash-isolated bench pool in
:mod:`repro.harness.parallel`).  Each worker owns one persistent
:class:`~repro.core.session.SolverSession` configured by the
diversification rotation, solves cube after cube against it (cube
assumptions ride on the session's retractable assumption levels, so
learned clauses survive from cube to cube), and exchanges learned
clauses with its peers through the master over its duplex pipe.

Wire protocol (all tuples, first element is the kind):

master -> worker   ("cube", index, assumptions, timeout)
                   ("clauses", payload_batch)
                   ("cancel", cube_index)
                   ("stop",)
worker -> master   ("ready", worker_index)
                   ("clauses", worker_index, payload_batch)
                   ("result", worker_index, cube_index, status,
                    model, stats, share_totals)
                   ("fatal", worker_index, message)

``stop`` is honoured *mid-solve*: the share hook the solver polls every
few search iterations also drains the pipe, and raises
:class:`WorkerStopped` when a stop arrives — unwinding cleanly through
the solver (whose persistent mode backtracks in a ``finally``).

``cancel`` is the cube-scoped variant: the master sends it when another
worker already decided the named cube, so a duplicate holder abandons
*that cube only* (raising :class:`CubeCancelled` if it is the one being
solved), reports ready, and lives on for the next assignment.  A cancel
naming any other cube is stale — the worker already finished it and the
result crossed the cancel on the pipe — and is dropped silently.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.config import SolverConfig
from repro.core.session import SolverSession
from repro.intervals import Interval, reset_interval_cache
from repro.portfolio.diversify import worker_config
from repro.portfolio.share import (
    ClauseExporter,
    ClauseImporter,
    DEFAULT_MAX_LBD,
    DEFAULT_MAX_SIZE,
    payload_digest,
)
from repro.rtl.circuit import Circuit

if TYPE_CHECKING:
    from repro.obs.telemetry import TelemetryConfig, WorkerTelemetry

#: How often (in share-hook polls, i.e. search-loop iterations) a
#: worker checks its pipe for stop/clauses messages.  Power of two; the
#: check is a cheap ``Connection.poll(0)`` but not free.
POLL_STRIDE = 16


class WorkerStopped(BaseException):
    """Raised inside the search loop when the master cancels a worker.

    Deliberately a ``BaseException``: broad ``except Exception`` result
    handling (e.g. the harness runner's abort guard) must not swallow a
    cancellation.
    """


class CubeCancelled(WorkerStopped):
    """Cube-scoped cancellation: abandon the current cube, keep living.

    Subclasses :class:`WorkerStopped` so the solver unwinds identically
    (persistent mode backtracks to level 0 in a ``finally``), but the
    worker loop catches it before the process-level handler does and
    goes back to the master for the next cube.
    """

    def __init__(self, cube_index: int):
        super().__init__(f"cube {cube_index} cancelled")
        self.cube_index = cube_index


@dataclass(frozen=True)
class ProblemSpec:
    """Picklable recipe for rebuilding a problem in a worker.

    ``kind`` selects the construction:

    * ``"instance"`` — the registry BMC instance ``case`` at ``bound``,
    * ``"base"``     — the k-induction base case at depth ``bound``,
    * ``"step"``     — the k-induction inductive step at depth ``bound``.
    """

    kind: str
    case: str
    bound: int


def build_problem(spec: ProblemSpec) -> Tuple[Circuit, Dict[str, int]]:
    """(circuit, base assumptions) for a problem spec."""
    if spec.kind == "instance":
        from repro.itc99 import instance

        built = instance(spec.case, spec.bound)
        return built.circuit, dict(built.assumptions)

    from repro.bmc.property import make_bmc_instance
    from repro.bmc.unroll import frame_name, unroll_free_initial
    from repro.itc99 import CIRCUITS, circuit as get_circuit

    circuit_name, _, property_name = spec.case.partition("_")
    sequential = get_circuit(circuit_name)
    prop = CIRCUITS[circuit_name][1][property_name]
    if spec.kind == "base":
        built = make_bmc_instance(sequential, prop, spec.bound)
        return built.circuit, dict(built.assumptions)
    if spec.kind == "step":
        k = spec.bound
        step_circuit = unroll_free_initial(sequential, k + 1)
        assumptions: Dict[str, int] = {
            frame_name(prop.ok_signal, frame): 1 for frame in range(k)
        }
        assumptions[frame_name(prop.ok_signal, k)] = 0
        return step_circuit, assumptions
    raise ValueError(f"unknown problem kind {spec.kind!r}")


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs, shipped at spawn."""

    problem: ProblemSpec
    worker_index: int
    base_config: SolverConfig
    #: Run ``rtl.optimize`` on the rebuilt circuit before compiling.
    optimize: bool = False
    share_max_size: int = DEFAULT_MAX_SIZE
    share_max_lbd: int = DEFAULT_MAX_LBD
    #: Test hook: hard-exit (simulating a crash) when assigned any of
    #: these cube indices — exercises the master's requeue path.
    crash_cubes: Tuple[int, ...] = ()
    #: Test hook: instead of solving these cubes, block on the pipe
    #: until a matching ``("cancel", index)`` (or ``("stop",)``)
    #: arrives — exercises the master's duplicate-cancellation path.
    #: A received cancel is proven by a marker file in ``stall_dir``.
    stall_cubes: Tuple[int, ...] = ()
    stall_dir: Optional[str] = None
    #: Cross-process telemetry shard config (minted by the master's
    #: TelemetryHub; carries the clock-offset epoch).
    telemetry: Optional["TelemetryConfig"] = None
    #: Log level inherited from the parent (spawn workers re-import
    #: from scratch and would otherwise ignore ``--log-level``).
    log_level: Optional[str] = None


class _WorkerChannel:
    """The share hook a worker plugs into its solver.

    ``poll`` (called once per search-loop iteration) drains the pipe
    every :data:`POLL_STRIDE` calls — delivering peer clauses mid-solve
    and honouring mid-solve cancellation — then hands any pending
    imported clauses to the solver.
    """

    def __init__(self, conn, exporter: ClauseExporter,
                 importer: ClauseImporter, emitter=None):
        self._conn = conn
        self.exporter = exporter
        self.importer = importer
        #: Optional telemetry emitter: installed shared clauses are
        #: announced as ``share`` events carrying their payload digests,
        #: the importer half of the merged timeline's clause flow.
        self._emitter = emitter
        self._pending = []
        self._tick = 0
        #: Cube index being solved right now (None while idle); a
        #: ``cancel`` only takes effect when it names this cube.
        self.current_cube: Optional[int] = None

    def export(self, clause) -> None:
        self.exporter.export(clause)

    def enqueue(self, payloads) -> None:
        clauses, keys = self.importer.accept_keyed(payloads)
        self._pending.extend(clauses)
        if keys and self._emitter is not None:
            self._emitter.event(
                "share", dl=0, action="install",
                clauses=len(keys), keys=keys,
                lbd=[clause.lbd for clause in clauses],
            )

    def drain_pipe(self) -> None:
        while self._conn.poll():
            message = self._conn.recv()
            if message[0] == "stop":
                raise WorkerStopped()
            if message[0] == "clauses":
                self.enqueue(message[1])
            elif message[0] == "cancel":
                # Cube-scoped: only the cube being solved right now can
                # be cancelled; a cancel for any other index is stale
                # (our result crossed it on the pipe) and is dropped.
                if message[1] == self.current_cube:
                    raise CubeCancelled(message[1])
            # "cube" cannot arrive mid-solve: the master assigns one
            # cube at a time and waits for its result.

    def poll(self):
        self._tick += 1
        if self._tick % POLL_STRIDE == 0:
            self.drain_pipe()
        if not self._pending:
            return ()
        pending = self._pending
        self._pending = []
        return pending


def _stats_payload(stats) -> Dict[str, object]:
    """Plain-dict snapshot of a query's stats (pipe-friendly)."""
    return stats.as_dict(include_histograms=False)


def _stall_until_cancelled(
    conn, spec: WorkerSpec, cube_index: int, channel: "_WorkerChannel"
) -> bool:
    """Test hook body for ``stall_cubes``: pretend the cube is hard.

    Blocks on the pipe instead of solving, so the cube stays in-flight
    until a peer decides it and the master's ``("cancel", index)``
    arrives.  Returns True (after reporting ready) when cancelled,
    False when a ``stop`` ended the pool; a received cancel is recorded
    as a marker file in ``stall_dir`` for the test to assert on.
    """
    while True:
        message = conn.recv()
        if message[0] == "stop":
            return False
        if message[0] == "clauses":
            channel.enqueue(message[1])
            continue
        if message[0] == "cancel" and message[1] == cube_index:
            if spec.stall_dir:
                marker = os.path.join(
                    spec.stall_dir,
                    f"cancelled-{spec.worker_index}-{cube_index}.txt",
                )
                with open(marker, "w", encoding="utf-8") as handle:
                    handle.write("cancelled\n")
            conn.send(("ready", spec.worker_index))
            return True


def _worker_body(
    conn, spec: WorkerSpec, telemetry: Optional["WorkerTelemetry"] = None
) -> None:
    reset_interval_cache()  # per-process interning state
    if spec.log_level:
        from repro.obs import configure_logging

        configure_logging(spec.log_level)
    circuit, base_assumptions = build_problem(spec.problem)
    if spec.optimize:
        from repro.rtl.optimize import optimize

        circuit = optimize(circuit)
    config = worker_config(spec.base_config, spec.worker_index)
    observation = telemetry.observation() if telemetry is not None else None
    session = SolverSession(circuit, config, observation=observation)
    if config.predicate_learning and not session.root_conflict:
        session.learn(None)

    emitter = telemetry.emitter if telemetry is not None else None

    def send_batch(batch) -> None:
        if emitter is not None:
            # The exporter half of the clause flow: every payload in
            # the batch is named by its cross-process digest so the
            # merged timeline can pair it with install events.
            emitter.event(
                "share", dl=0, action="export",
                clauses=len(batch),
                keys=[payload_digest(p) for p in batch],
                lbd=[p[1] for p in batch],
            )
        conn.send(("clauses", spec.worker_index, batch))

    exporter = ClauseExporter(
        sink=send_batch,
        max_size=spec.share_max_size,
        max_lbd=spec.share_max_lbd,
    )
    importer = ClauseImporter(session._var_by_name)
    channel = _WorkerChannel(conn, exporter, importer, emitter=emitter)
    session.solver.share = channel

    conn.send(("ready", spec.worker_index))
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "stop":
            return
        if kind == "clauses":
            channel.enqueue(message[1])
            continue
        if kind == "cancel":
            # Stale: names a cube whose result we already sent (the
            # cancel crossed it on the pipe while we sat idle).
            continue
        if kind != "cube":  # pragma: no cover - protocol guard
            raise ValueError(f"unexpected message {kind!r}")
        _, cube_index, cube_assumptions, timeout = message
        if cube_index in spec.crash_cubes:
            if telemetry is not None:
                telemetry.dump_flight(
                    f"crash_cubes test hook (cube {cube_index})"
                )
            os._exit(23)  # test hook: simulated hard crash
        if cube_index in spec.stall_cubes:
            if _stall_until_cancelled(conn, spec, cube_index, channel):
                continue
            return  # stop arrived while stalled
        merged: Dict[str, object] = dict(base_assumptions)
        for name, lo, hi in cube_assumptions:
            merged[name] = Interval.make(lo, hi)
        exporter.cube_names = frozenset(
            name for name, _, _ in cube_assumptions
        )
        if emitter is not None:
            emitter.event(
                "cube", dl=0, n=cube_index,
                size=len(cube_assumptions), outcome="begin",
            )
        channel.current_cube = cube_index
        try:
            result = session.solve(merged, timeout=timeout)
        except CubeCancelled:
            # Another worker already decided this cube: drop it, tell
            # the master we are free, and keep the session warm for the
            # next assignment.
            exporter.cube_names = frozenset()
            exporter.flush()
            if emitter is not None:
                emitter.event(
                    "cube", dl=0, n=cube_index,
                    size=len(cube_assumptions), outcome="cancelled",
                )
            conn.send(("ready", spec.worker_index))
            continue
        finally:
            channel.current_cube = None
        exporter.cube_names = frozenset()
        exporter.flush()
        if emitter is not None:
            emitter.event(
                "cube", dl=0, n=cube_index,
                size=len(cube_assumptions), outcome=result.status.value,
            )
        stats_payload = _stats_payload(result.stats)
        if telemetry is not None:
            telemetry.record_metrics(stats_payload)
        conn.send(
            (
                "result",
                spec.worker_index,
                cube_index,
                result.status.value,
                result.model if result.is_sat else None,
                stats_payload,
                {
                    "exported": exporter.exported,
                    "suppressed": exporter.suppressed,
                    "received": importer.received,
                    "installed": importer.installed,
                },
            )
        )


def portfolio_worker(conn, spec: WorkerSpec) -> None:
    """Process entry point: run the worker body, report fatal errors."""
    telemetry = None
    if spec.telemetry is not None:
        from repro.obs.telemetry import WorkerTelemetry

        telemetry = WorkerTelemetry(spec.telemetry)
        telemetry.install_signal_dump()
    try:
        _worker_body(conn, spec, telemetry=telemetry)
    except (WorkerStopped, EOFError, KeyboardInterrupt):
        pass  # master went away or cancelled us: silent exit
    except BaseException as error:  # noqa: BLE001 - crash reporting
        if telemetry is not None:
            telemetry.dump_flight(f"{type(error).__name__}: {error}")
        try:
            conn.send(
                (
                    "fatal",
                    spec.worker_index,
                    f"{type(error).__name__}: {error}",
                )
            )
        except Exception:
            pass
    finally:
        if telemetry is not None:
            telemetry.close()
        try:
            conn.close()
        except Exception:
            pass
