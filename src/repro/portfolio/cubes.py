"""Bounded lookahead cube generation (the "cube" in cube-and-conquer).

A *cube* is a conjunction of variable-range assumptions that carves out
one branch of a shallow decision tree over the problem; the set of kept
cubes is pairwise disjoint and — together with the branches refuted
during generation — covers every assignment consistent with the
problem's constraints, so

* SAT under any cube  ⇒  the problem is SAT, and
* UNSAT under *all* kept cubes  ⇒  the problem is UNSAT
  (refuted branches were killed by sound propagation at generation).

The splitter drives a throwaway solver's propagation machinery
directly: it saturates level 0, asserts the query's base assumptions,
then does a depth-``depth`` DFS.  At each node it branches on the
highest-activity unassigned Boolean variable (the fanout-seeded VSIDS
ranking — the same signal the J-frontier strategy keys on), falling
back to a midpoint interval split of the widest-domain word *input*
when every Boolean candidate is already implied.  Each branch is
propagated; refuted branches are recorded and pruned, everything else
recurses.  Cubes travel as ``(name, lo, hi)`` tuples so they pickle
trivially across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.constraints.store import DECISION, Conflict
from repro.core.config import SolverConfig
from repro.core.hdpll import AssumptionValue, HdpllSolver
from repro.core.result import Status
from repro.intervals import Interval
from repro.obs.trace import TraceEmitter
from repro.rtl.circuit import Circuit
from repro.rtl.levelize import transitive_fanout_count

#: Splitting uses the cheapest solver configuration: propagation only,
#: no learning, no structural machinery.
_SPLIT_CONFIG = SolverConfig()


@dataclass(frozen=True)
class Cube:
    """A conjunction of range assumptions, as picklable plain data."""

    assumptions: Tuple[Tuple[str, int, int], ...] = ()

    @property
    def size(self) -> int:
        return len(self.assumptions)

    def names(self) -> frozenset:
        return frozenset(name for name, _, _ in self.assumptions)

    def as_assumptions(self) -> Dict[str, Interval]:
        return {
            name: Interval.make(lo, hi)
            for name, lo, hi in self.assumptions
        }

    def admits(self, values: Mapping[str, int]) -> bool:
        """True when ``values`` (name -> concrete value) satisfies every
        range of the cube — the membership test the exhaustiveness
        tests sample."""
        return all(
            lo <= values[name] <= hi
            for name, lo, hi in self.assumptions
        )


@dataclass
class CubeReport:
    """Everything the splitter produced for one query."""

    #: Kept cubes: pairwise disjoint, jointly covering (with
    #: :attr:`refuted`) the consistent assignment space.
    cubes: List[Cube] = field(default_factory=list)
    #: Branches refuted by propagation during generation.
    refuted: List[Cube] = field(default_factory=list)
    #: Variable names branched on, in first-use order.
    split_names: List[str] = field(default_factory=list)
    #: ``Status.UNSAT`` when generation itself settled the query (base
    #: assumptions refuted, or every branch refuted); ``None`` otherwise.
    status: Optional[Status] = None
    note: str = ""


def generate_cubes(
    circuit: Circuit,
    assumptions: Mapping[str, AssumptionValue],
    depth: int,
    max_cubes: Optional[int] = None,
    tracer: Optional[TraceEmitter] = None,
) -> CubeReport:
    """Split ``circuit`` under ``assumptions`` into at most ``2**depth``
    cubes (``max_cubes`` caps the kept count; branches past the cap are
    emitted unsplit, so coverage is preserved)."""
    report = CubeReport()
    solver = HdpllSolver(circuit, _SPLIT_CONFIG)
    store, engine = solver.store, solver.engine

    def settle_unsat(note: str) -> CubeReport:
        report.status = Status.UNSAT
        report.note = note
        return report

    engine.enqueue_all()
    if engine.propagate() is not None:
        return settle_unsat("level-0 refutation during cube generation")
    for name, value in assumptions.items():
        var = solver.system.var_by_name(name)
        interval = (
            value if isinstance(value, Interval) else Interval.point(value)
        )
        outcome = store.assume(var, interval)
        if isinstance(outcome, Conflict):
            return settle_unsat(
                f"assumption {name!r} refuted during cube generation"
            )
    engine.enqueue_all()
    if engine.propagate() is not None:
        return settle_unsat("assumptions refuted during cube generation")

    order = solver.order
    ranked_bool = sorted(
        order.candidates,
        key=lambda var: (-order.activity[var.index], var.index),
    )
    word_inputs = [
        solver.system.var(net)
        for net in sorted(
            (net for net in circuit.inputs if net.width > 1),
            key=lambda net: -transitive_fanout_count(net),
        )
    ]

    def next_split() -> Tuple[Optional[object], Tuple[Tuple[int, int], ...]]:
        for var in ranked_bool:
            if not store.is_assigned(var):
                phase = order.phase.get(var.index, 1)
                return var, ((phase, phase), (1 - phase, 1 - phase))
        for var in word_inputs:
            domain = store.domain(var)
            if domain.lo < domain.hi:
                mid = (domain.lo + domain.hi) // 2
                return var, ((domain.lo, mid), (mid + 1, domain.hi))
        return None, ()

    prefix: List[Tuple[str, int, int]] = []
    emitted = 0

    def emit(bucket: List[Cube], outcome: str) -> None:
        nonlocal emitted
        emitted += 1
        cube = Cube(tuple(prefix))
        bucket.append(cube)
        if tracer is not None:
            tracer.event(
                "cube",
                dl=store.decision_level,
                n=emitted,
                size=cube.size,
                outcome=outcome,
            )

    def descend(remaining: int) -> None:
        if remaining == 0 or (
            max_cubes is not None and len(report.cubes) >= max_cubes
        ):
            emit(report.cubes, "kept")
            return
        var, branches = next_split()
        if var is None:  # everything implied — nothing left to split
            emit(report.cubes, "kept")
            return
        if var.name not in report.split_names:
            report.split_names.append(var.name)
        for lo, hi in branches:
            level_before = store.decision_level
            store.push_level()
            outcome = store.narrow_bounds(var, lo, hi, DECISION)
            conflict = (
                outcome
                if isinstance(outcome, Conflict)
                else engine.propagate()
            )
            prefix.append((var.name, lo, hi))
            if conflict is not None:
                emit(report.refuted, "refuted")
            else:
                descend(remaining - 1)
            prefix.pop()
            store.backtrack_to(level_before)
            engine.notify_backtrack()

    descend(max(0, depth))
    if not report.cubes:
        return settle_unsat("every cube refuted during generation")
    return report
