"""Cross-worker learned-clause sharing.

Clauses learned by one portfolio worker are valid for every other
worker solving the same compiled problem, with one caveat: a clause
derived *under a cube* may mention the cube's assumption variables.
That is still globally sound here — cube assumptions are asserted as
retractable decision levels (the MiniSat assumption scheme), so conflict
analysis keeps the assumption literals *in* the learned clause rather
than resolving them away — but such clauses are useless to workers on
other cubes and would bloat their databases, so the exporter filters
them out.

Clauses cross process boundaries as plain tuples keyed by variable
*name* (variable indices are per-process compile artifacts; names are
stable because every worker compiles the same circuit):

* ``("b", name, positive)`` — a Boolean literal,
* ``("w", name, lo, hi, positive)`` — a word literal over ``<lo, hi>``.

A payload is ``(literals, lbd)``.  The importer resolves names through
the receiving session's variable table, installs survivors with origin
``"shared"`` (disposable: the clause-DB reduction may evict them), and
relies on :meth:`ClauseDatabase.add_clause` to re-watch the clause and
re-check it against the importer's *current* trail — a shared clause
may arrive already satisfied, already falsified (conflict), or unit.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.constraints.clause import BoolLit, Clause, WordLit
from repro.constraints.variable import Variable
from repro.intervals import Interval

#: Literal tuple payloads (see module docstring).
LiteralPayload = Tuple
#: One serialized clause: (tuple of literal payloads, lbd).
ClausePayload = Tuple[Tuple[LiteralPayload, ...], int]

#: Wire-safety size cap: clauses longer than this never leave the
#: learning worker regardless of LBD (admission itself is LBD-driven,
#: see :class:`ClauseExporter`).
DEFAULT_MAX_SIZE = 32
#: Ceiling the dynamic glue threshold may relax to.
DEFAULT_MAX_LBD = 6
#: Dynamic glue admission: the LBD ceiling starts here and self-tunes
#: between :data:`GLUE_MIN` and ``max_lbd`` to hold the export rate
#: inside the target band below.
DEFAULT_GLUE_START = 4
GLUE_MIN = 2
#: Admission offers per retuning window, and the export-rate band the
#: threshold steers toward (fractions of offered clauses exported).
GLUE_WINDOW = 128
GLUE_RATE_LOW = 0.08
GLUE_RATE_HIGH = 0.35
#: Exported clauses are batched: the exporter flushes to its sink once
#: this many are buffered (and at end-of-cube).
DEFAULT_FLUSH_THRESHOLD = 16


def serialize_clause(clause: Clause) -> ClausePayload:
    """Name-keyed wire form of a learned clause.

    The literal tuple is *canonical* (sorted): two permutations of the
    same clause serialize identically, so the wire form, the dedup key
    and the telemetry digest all agree — a permuted duplicate can never
    slip past a filter keyed on any of them.
    """
    literals: List[LiteralPayload] = []
    for literal in clause.literals:
        if isinstance(literal, BoolLit):
            literals.append(("b", literal.var.name, literal.positive))
        elif isinstance(literal, WordLit):
            literals.append(
                (
                    "w",
                    literal.var.name,
                    literal.interval.lo,
                    literal.interval.hi,
                    literal.positive,
                )
            )
        else:  # pragma: no cover - new literal kinds must be handled
            raise TypeError(f"unshareable literal {literal!r}")
    return tuple(sorted(literals)), clause.lbd


def clause_payload_key(payload: ClausePayload) -> Tuple:
    """Order-insensitive dedup key of a serialized clause.

    Serialization is already canonical; the sort here additionally
    canonicalizes payloads built by hand (tests, older peers).
    """
    return tuple(sorted(payload[0]))


def payload_digest(payload: ClausePayload) -> str:
    """Short stable identity of a shared clause for telemetry.

    CRC32 of the dedup key's repr, rendered as 8 hex digits.  Unlike
    ``hash()`` this is identical in every process regardless of
    ``PYTHONHASHSEED``, which is what lets the merged timeline follow a
    clause from the learner's export event to each importer's install.
    """
    key = clause_payload_key(payload)
    return format(zlib.crc32(repr(key).encode("utf-8")), "08x")


def deserialize_clause(
    payload: ClausePayload,
    var_by_name: Dict[str, Variable],
) -> Optional[Clause]:
    """Rebuild a clause against the local compile, or ``None`` when any
    variable name does not resolve here (defensive; workers compile the
    same circuit, so names should always resolve)."""
    literals = []
    for entry in payload[0]:
        var = var_by_name.get(entry[1])
        if var is None:
            return None
        if entry[0] == "b":
            literals.append(BoolLit(var, positive=entry[2]))
        else:
            literals.append(
                WordLit(
                    var,
                    Interval.make(entry[2], entry[3]),
                    positive=entry[4],
                )
            )
    clause = Clause(literals=tuple(literals), learned=True, origin="shared")
    clause.lbd = payload[1]
    return clause


class ClauseExporter:
    """LBD-gated, deduplicated clause export with batching.

    Admission is by literal-block distance against a *dynamic glue
    threshold*: binary clauses always pass, longer clauses pass while
    their LBD is at or under the threshold, and the threshold self-tunes
    — every :data:`GLUE_WINDOW` offered clauses the export rate is
    compared to the ``[GLUE_RATE_LOW, GLUE_RATE_HIGH]`` band and the
    threshold tightens (toward :data:`GLUE_MIN`) when the worker floods
    its peers or relaxes (toward ``max_lbd``) when almost nothing
    qualifies.  ``max_size`` remains only as a wire-safety cap.

    Plugged into the solver as the ``export`` half of its share hook;
    ``sink`` receives batches of :data:`ClausePayload` (a pipe send in
    the multi-process pool, a list append in deterministic mode).
    """

    def __init__(
        self,
        sink: Callable[[List[ClausePayload]], None],
        max_size: int = DEFAULT_MAX_SIZE,
        max_lbd: int = DEFAULT_MAX_LBD,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
        dynamic_glue: bool = True,
    ):
        self._sink = sink
        self.max_size = max_size
        self.max_lbd = max_lbd
        self.flush_threshold = flush_threshold
        #: Current LBD admission ceiling; fixed at ``max_lbd`` when
        #: ``dynamic_glue`` is off.
        self.dynamic_glue = dynamic_glue
        self.glue_threshold = (
            min(DEFAULT_GLUE_START, max_lbd) if dynamic_glue else max_lbd
        )
        #: Assumption-variable names of the cube currently being solved;
        #: clauses mentioning any of them are suppressed (cube-local).
        self.cube_names: FrozenSet[str] = frozenset()
        self._seen: set = set()
        self._buffer: List[ClausePayload] = []
        self.exported = 0
        self.suppressed = 0
        self._window_offers = 0
        self._window_exports = 0

    def _retune(self, exported: bool) -> None:
        """One admission offer observed; adjust the glue threshold."""
        self._window_offers += 1
        if exported:
            self._window_exports += 1
        if not self.dynamic_glue or self._window_offers < GLUE_WINDOW:
            return
        rate = self._window_exports / self._window_offers
        if rate > GLUE_RATE_HIGH and self.glue_threshold > GLUE_MIN:
            self.glue_threshold -= 1
        elif rate < GLUE_RATE_LOW and self.glue_threshold < self.max_lbd:
            self.glue_threshold += 1
        self._window_offers = 0
        self._window_exports = 0

    def export(self, clause: Clause) -> None:
        literals = clause.literals
        admitted = len(literals) <= self.max_size and (
            len(literals) <= 2 or 0 < clause.lbd <= self.glue_threshold
        )
        if not admitted:
            self._retune(exported=False)
            return
        if self.cube_names and any(
            literal.var.name in self.cube_names for literal in literals
        ):
            self.suppressed += 1
            self._retune(exported=False)
            return
        payload = serialize_clause(clause)
        key = clause_payload_key(payload)
        if key in self._seen:
            self._retune(exported=False)
            return
        self._seen.add(key)
        self.exported += 1
        self._retune(exported=True)
        self._buffer.append(payload)
        if len(self._buffer) >= self.flush_threshold:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self._sink(list(self._buffer))
            self._buffer.clear()


class ClauseImporter:
    """Deduplicates and deserializes incoming payloads.

    :meth:`accept` returns ready-to-install :class:`Clause` objects; the
    caller (the solver's share hook) installs them through
    ``PropagationEngine.add_clause``, which re-watches and re-checks
    each clause against the current trail.
    """

    def __init__(self, var_by_name: Dict[str, Variable]):
        self._var_by_name = var_by_name
        self._seen: set = set()
        self.received = 0
        self.installed = 0
        self.rejected = 0

    def accept(
        self, payloads: Sequence[ClausePayload]
    ) -> List[Clause]:
        return self.accept_keyed(payloads)[0]

    def accept_keyed(
        self, payloads: Sequence[ClausePayload]
    ) -> Tuple[List[Clause], List[str]]:
        """Like :meth:`accept`, also returning the installed clauses'
        :func:`payload_digest` keys (for telemetry install events)."""
        clauses: List[Clause] = []
        keys: List[str] = []
        for payload in payloads:
            self.received += 1
            key = clause_payload_key(payload)
            if key in self._seen:
                self.rejected += 1
                continue
            self._seen.add(key)
            clause = deserialize_clause(payload, self._var_by_name)
            if clause is None:
                self.rejected += 1
                continue
            self.installed += 1
            clauses.append(clause)
            keys.append(payload_digest(payload))
        return clauses, keys

    @property
    def hit_rate(self) -> float:
        """installed / received (0.0 before anything arrived)."""
        return self.installed / self.received if self.received else 0.0


class ShareChannel:
    """The object a solver's ``share`` slot points at.

    ``export`` feeds the exporter; ``poll`` drains clauses queued by
    :meth:`enqueue` (and, when ``receive`` is given, pulls fresh payload
    batches from it first — the deterministic in-process pool uses that
    to read a shared list).
    """

    def __init__(
        self,
        exporter: ClauseExporter,
        importer: ClauseImporter,
        receive: Optional[Callable[[], List[Sequence[ClausePayload]]]] = None,
    ):
        self.exporter = exporter
        self.importer = importer
        self._receive = receive
        self._pending: List[Clause] = []

    def export(self, clause: Clause) -> None:
        self.exporter.export(clause)

    def enqueue(self, payloads: Sequence[ClausePayload]) -> None:
        self._pending.extend(self.importer.accept(payloads))

    def poll(self) -> Sequence[Clause]:
        if self._receive is not None:
            for batch in self._receive():
                self.enqueue(batch)
        if not self._pending:
            return ()
        pending = self._pending
        self._pending = []
        return pending
