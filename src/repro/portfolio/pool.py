"""Portfolio master: schedule cubes, relay clauses, survive crashes.

The master owns N spawned workers (duplex pipe each) and a cube list.
Cube index 0 is conventionally the *root cube* — the whole problem
with no splitting assumptions — so the portfolio degenerates gracefully
into a pure diversified race when splitting buys nothing: the first of
{root solved, all split cubes solved} decides.

Scheduling is pull-based: a worker that reports ready (or finishes a
cube) gets the next pending cube; once the queue drains, idle workers
are handed *duplicates* of in-flight cubes (fewest current assignees
first) — on a loaded machine the diversified duplicate often finishes
first, and late results for already-decided cubes are simply dropped.

Result semantics (the issue's contract):

* first SAT anywhere wins and cancels every other worker,
* UNSAT requires the root cube UNSAT *or* every split cube UNSAT,
* anything else (timeouts, budget exhaustion) is UNKNOWN,
* a worker crash requeues its cube once; losing the same cube twice —
  or losing every worker — raises :class:`PortfolioError`.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import SolverConfig
from repro.errors import SolverError
from repro.obs import effective_level_spec
from repro.portfolio.cubes import Cube
from repro.portfolio.worker import (
    ProblemSpec,
    WorkerSpec,
    portfolio_worker,
)

if TYPE_CHECKING:
    from repro.obs.telemetry import TelemetryHub

#: Seconds the master waits in one poll round before sweeping for
#: silently-died workers and checking the deadline.
_POLL_INTERVAL = 0.05
#: Seconds workers get to exit after a cooperative stop before being
#: terminated.
_STOP_GRACE = 1.0


class PortfolioError(SolverError):
    """Unrecoverable portfolio failure (crashed cubes, dead pool)."""


@dataclass
class CubeOutcome:
    """First accepted verdict for one cube."""

    index: int
    status: str  # "sat" | "unsat" | "unknown"
    model: Optional[Dict[str, int]]
    stats: Dict[str, object]
    worker: int


@dataclass
class PoolResult:
    """Everything the master learned, for the caller to interpret."""

    status: str  # "sat" | "unsat" | "unknown"
    model: Optional[Dict[str, int]] = None
    winning_cube: Optional[int] = None
    winning_worker: Optional[int] = None
    outcomes: Dict[int, CubeOutcome] = field(default_factory=dict)
    #: Sum over workers of their exporter/importer totals.
    share_totals: Dict[str, int] = field(default_factory=dict)
    requeues: int = 0
    note: str = ""


class _Worker:
    __slots__ = ("index", "process", "conn", "assigned")

    def __init__(self, index, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        #: Cube indices currently assigned to this worker.
        self.assigned: Set[int] = set()


def run_pool(
    problem: ProblemSpec,
    cubes: Sequence[Cube],
    jobs: int,
    base_config: SolverConfig,
    timeout: Optional[float] = None,
    optimize: bool = False,
    root_index: Optional[int] = 0,
    share: bool = True,
    share_max_size: Optional[int] = None,
    share_max_lbd: Optional[int] = None,
    crash_cubes: Optional[Dict[int, Tuple[int, ...]]] = None,
    stall_cubes: Optional[Dict[int, Tuple[int, ...]]] = None,
    stall_dir: Optional[str] = None,
    telemetry: Optional["TelemetryHub"] = None,
) -> PoolResult:
    """Solve every cube of ``problem`` on ``jobs`` diversified workers.

    ``crash_cubes`` and ``stall_cubes`` (worker index -> cube indices)
    are the test hooks forwarded to :class:`WorkerSpec`; stalled cubes
    block until cancelled, proving the duplicate-cancellation path
    (markers land in ``stall_dir``).  ``root_index`` names the cube
    whose UNSAT alone settles the query (``None`` when no root cube is
    in the list).  ``telemetry`` (a TelemetryHub) gives every worker a
    clock-aligned trace/metrics shard; the caller merges afterwards.
    """
    if not cubes:
        raise ValueError("run_pool needs at least one cube")
    jobs = max(1, jobs)
    deadline = (
        time.monotonic() + timeout if timeout is not None else None
    )

    def remaining() -> Optional[float]:
        if deadline is None:
            return base_config.timeout
        return max(0.0, deadline - time.monotonic())

    context = multiprocessing.get_context("spawn")
    workers: List[_Worker] = []
    share_kwargs = {}
    if share_max_size is not None:
        share_kwargs["share_max_size"] = share_max_size
    if share_max_lbd is not None:
        share_kwargs["share_max_lbd"] = share_max_lbd
    level_spec = effective_level_spec()
    for index in range(jobs):
        parent_conn, child_conn = context.Pipe(duplex=True)
        spec = WorkerSpec(
            problem=problem,
            worker_index=index,
            base_config=base_config,
            optimize=optimize,
            crash_cubes=tuple((crash_cubes or {}).get(index, ())),
            stall_cubes=tuple((stall_cubes or {}).get(index, ())),
            stall_dir=stall_dir,
            telemetry=(
                telemetry.worker_config(
                    f"p{index}", label=f"portfolio-{index}"
                )
                if telemetry is not None
                else None
            ),
            log_level=level_spec,
            **share_kwargs,
        )
        process = context.Process(
            target=portfolio_worker,
            args=(child_conn, spec),
            daemon=True,
            name=f"portfolio-{index}",
        )
        process.start()
        child_conn.close()
        workers.append(_Worker(index, process, parent_conn))

    live: Dict[int, _Worker] = {w.index: w for w in workers}
    pending: List[int] = list(range(len(cubes)))
    done: Dict[int, CubeOutcome] = {}
    retries: Dict[int, int] = {}
    totals: Dict[int, Dict[str, int]] = {}
    result = PoolResult(status="unknown")

    def split_indices() -> List[int]:
        return [i for i in range(len(cubes)) if i != root_index]

    def verdict() -> Optional[str]:
        for outcome in done.values():
            if outcome.status == "sat":
                return "sat"
        if root_index is not None:
            root = done.get(root_index)
            if root is not None and root.status == "unsat":
                return "unsat"
        splits = split_indices()
        if splits and all(i in done for i in splits):
            if all(done[i].status == "unsat" for i in splits):
                return "unsat"
        if len(done) == len(cubes):
            return "unknown"
        return None

    def assign(worker: _Worker) -> None:
        if pending:
            index = pending.pop(0)
        else:
            # Queue drained: duplicate the least-covered in-flight cube.
            candidates = [
                i
                for i in range(len(cubes))
                if i not in done and i not in worker.assigned
            ]
            if not candidates:
                return  # genuinely nothing left for this worker
            index = min(
                candidates,
                key=lambda i: (
                    sum(1 for w in live.values() if i in w.assigned),
                    i,
                ),
            )
        worker.assigned.add(index)
        worker.conn.send(
            ("cube", index, cubes[index].assumptions, remaining())
        )

    def drop_worker(worker: _Worker, reason: str) -> None:
        live.pop(worker.index, None)
        try:
            worker.conn.close()
        except Exception:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=_STOP_GRACE)
        for index in sorted(worker.assigned):
            if index in done:
                continue
            still_held = any(
                index in w.assigned for w in live.values()
            )
            if still_held:
                continue
            if retries.get(index, 0) >= 1:
                raise PortfolioError(
                    f"cube {index} lost to repeated worker crashes "
                    f"({reason})"
                )
            retries[index] = retries.get(index, 0) + 1
            result.requeues += 1
            pending.insert(0, index)
        if not live and (pending or len(done) < len(cubes)):
            raise PortfolioError(
                f"all portfolio workers died ({reason})"
            )

    def handle(worker: _Worker, message) -> None:
        kind = message[0]
        if kind == "ready":
            assign(worker)
        elif kind == "clauses":
            if share:
                for peer in live.values():
                    if peer.index != worker.index:
                        try:
                            peer.conn.send(("clauses", message[2]))
                        except (BrokenPipeError, OSError):
                            pass  # peer death surfaces via its pipe
        elif kind == "result":
            _, w_index, cube_index, status, model, stats, w_totals = (
                message
            )
            totals[w_index] = w_totals
            worker.assigned.discard(cube_index)
            if cube_index not in done:
                done[cube_index] = CubeOutcome(
                    index=cube_index,
                    status=status,
                    model=model,
                    stats=stats,
                    worker=w_index,
                )
                # The cube is decided: duplicate holders grinding on it
                # are cancelled (cube-scoped, the worker survives) so
                # they free up for the next assignment.  A cancel that
                # crosses the peer's own result on the pipe is dropped
                # as stale by the worker.
                for peer in live.values():
                    if (
                        peer.index != worker.index
                        and cube_index in peer.assigned
                    ):
                        peer.assigned.discard(cube_index)
                        try:
                            peer.conn.send(("cancel", cube_index))
                        except (BrokenPipeError, OSError):
                            pass  # peer death surfaces via its pipe
            assign(worker)
        elif kind == "fatal":
            drop_worker(worker, f"worker {worker.index}: {message[2]}")
        else:  # pragma: no cover - protocol guard
            raise PortfolioError(f"unexpected message {kind!r}")

    try:
        while True:
            settled = verdict()
            if settled is not None:
                result.status = settled
                break
            if deadline is not None and time.monotonic() > deadline:
                result.status = "unknown"
                result.note = f"portfolio timeout after {timeout:.1f}s"
                break
            if not live:
                raise PortfolioError("all portfolio workers died")
            conns = {w.conn: w for w in live.values()}
            ready = connection_wait(
                list(conns), timeout=_POLL_INTERVAL
            )
            if not ready:
                for worker in list(live.values()):
                    if not worker.process.is_alive():
                        drop_worker(
                            worker,
                            f"worker {worker.index} died "
                            f"(exit {worker.process.exitcode})",
                        )
                continue
            for conn in ready:
                worker = conns[conn]
                if worker.index not in live:
                    continue  # dropped earlier this round
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    drop_worker(
                        worker,
                        f"worker {worker.index} pipe closed "
                        f"(exit {worker.process.exitcode})",
                    )
                    continue
                handle(worker, message)
    finally:
        for worker in live.values():
            try:
                worker.conn.send(("stop",))
            except Exception:
                pass
        stop_deadline = time.monotonic() + _STOP_GRACE
        for worker in live.values():
            worker.process.join(
                timeout=max(0.0, stop_deadline - time.monotonic())
            )
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=_STOP_GRACE)
            try:
                worker.conn.close()
            except Exception:
                pass

    for outcome in done.values():
        if outcome.status == "sat":
            result.model = outcome.model
            result.winning_cube = outcome.index
            result.winning_worker = outcome.worker
            break
    result.outcomes = done
    result.share_totals = {
        key: sum(t.get(key, 0) for t in totals.values())
        for key in ("exported", "suppressed", "received", "installed")
    }
    return result
