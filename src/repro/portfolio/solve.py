"""Portfolio entry points: one query, many diversified solvers.

:func:`solve_portfolio` is the single-query API the harness and CLI
call.  It generates cubes (:mod:`repro.portfolio.cubes`), prepends the
*root cube* (the unsplit problem — index 0), and then either

* fans the cube list out to spawned worker processes
  (:mod:`repro.portfolio.pool`) with live clause sharing, or
* runs the **deterministic in-process mode**: the same diversified
  configurations as sequential :class:`SolverSession`\\ s with clause
  sharing between cube solves — bit-for-bit reproducible, used by the
  tests and as the automatic fallback when the problem cannot be
  described by a picklable :class:`ProblemSpec` or when the current
  process is itself a daemonic pool worker (which may not spawn
  children).

Every SAT model — wherever it was found — is replayed through the
concrete simulator against the base assumptions before it is reported;
a replay failure raises (a portfolio soundness bug must never pass
silently as SAT).
"""

from __future__ import annotations

import math
import multiprocessing
import time
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.config import SolverConfig
from repro.core.result import SolverResult, SolverStats, Status
from repro.core.session import SolverSession
from repro.errors import SolverError
from repro.intervals import Interval
from repro.obs import Observation
from repro.portfolio.cubes import Cube, CubeReport, generate_cubes
from repro.portfolio.diversify import worker_config
from repro.portfolio.pool import CubeOutcome, PoolResult, run_pool
from repro.portfolio.share import (
    ClauseExporter,
    ClauseImporter,
    ShareChannel,
)
from repro.portfolio.worker import ProblemSpec, build_problem
from repro.rtl.circuit import Circuit
from repro.rtl.simulate import simulate_combinational

#: Per-cube solver counters summed into the aggregate stats.
_SUM_COUNTERS = (
    "decisions",
    "conflicts",
    "propagations",
    "learned_clauses",
    "restarts",
    "fme_checks",
    "fme_conflicts",
    "structural_decisions",
    "j_conflicts",
    "learned_relations",
    "propagator_wakeups",
    "clause_visits",
    "watch_moves",
    "clauses_evicted",
    "clauses_demoted",
    "literals_minimized",
    "heap_picks",
    "heap_stale_pops",
)


def default_cube_depth(jobs: int) -> int:
    """Splitting depth giving roughly ``2 * jobs`` cubes."""
    return max(1, math.ceil(math.log2(max(2, 2 * jobs))))


def replay_model(
    circuit: Circuit,
    model: Mapping[str, int],
    assumptions: Mapping[str, object],
) -> bool:
    """Re-simulate ``model``'s inputs and check the base assumptions."""
    input_values = {net.name: model[net.name] for net in circuit.inputs}
    values = simulate_combinational(circuit, input_values)
    for name, value in assumptions.items():
        interval = (
            value if isinstance(value, Interval) else Interval.point(value)
        )
        if not interval.lo <= values[name] <= interval.hi:
            return False
    return True


def _solve_inline(
    circuit: Circuit,
    assumptions: Mapping[str, object],
    cubes: List[Cube],
    jobs: int,
    base_config: SolverConfig,
    timeout: Optional[float],
    root_index: Optional[int],
) -> PoolResult:
    """Deterministic in-process portfolio (see module docstring).

    Cube order is fixed: split cubes first (round-robin over the
    diversified sessions), then — only if the splits did not already
    decide — the root cube on session 0.  Clauses exported by one cube
    solve are imported by every later solve on a *different* session.
    """
    deadline = time.monotonic() + timeout if timeout is not None else None

    def remaining() -> Optional[float]:
        if deadline is None:
            return base_config.timeout
        return max(0.0, deadline - time.monotonic())

    batches: List[Tuple[int, list]] = []
    sessions: Dict[int, Tuple[SolverSession, ClauseExporter, ClauseImporter]] = {}

    def get_worker(index: int):
        if index not in sessions:
            config = worker_config(base_config, index)
            session = SolverSession(circuit, config)
            if config.predicate_learning and not session.root_conflict:
                session.learn(None)
            exporter = ClauseExporter(
                sink=lambda batch, i=index: batches.append((i, batch))
            )
            importer = ClauseImporter(session._var_by_name)
            cursor = [0]

            def receive(i=index, cursor=cursor):
                fresh = []
                while cursor[0] < len(batches):
                    origin, batch = batches[cursor[0]]
                    cursor[0] += 1
                    if origin != i:
                        fresh.append(batch)
                return fresh

            session.solver.share = ShareChannel(
                exporter, importer, receive=receive
            )
            sessions[index] = (session, exporter, importer)
        return sessions[index]

    result = PoolResult(status="unknown")

    def solve_cube(worker_index: int, cube_index: int) -> Optional[str]:
        """Solve one cube; returns the status or None on deadline."""
        budget = remaining()
        if budget is not None and deadline is not None and budget <= 0.0:
            result.note = f"portfolio timeout after {timeout:.1f}s"
            return None
        session, exporter, _importer = get_worker(worker_index)
        cube = cubes[cube_index]
        exporter.cube_names = cube.names()
        merged: Dict[str, object] = dict(assumptions)
        merged.update(cube.as_assumptions())
        solved = session.solve(merged, timeout=budget)
        exporter.cube_names = frozenset()
        exporter.flush()
        result.outcomes[cube_index] = CubeOutcome(
            index=cube_index,
            status=solved.status.value,
            model=solved.model if solved.is_sat else None,
            stats=solved.stats.as_dict(include_histograms=False),
            worker=worker_index,
        )
        return solved.status.value

    split = [i for i in range(len(cubes)) if i != root_index]
    sat_cube: Optional[int] = None
    timed_out = False
    for position, cube_index in enumerate(split):
        status = solve_cube(position % max(1, jobs), cube_index)
        if status is None:
            timed_out = True
            break
        if status == "sat":
            sat_cube = cube_index
            break
    if sat_cube is None and not timed_out:
        split_unsat = split and all(
            result.outcomes[i].status == "unsat" for i in split
        )
        if split_unsat:
            result.status = "unsat"
        elif root_index is not None:
            status = solve_cube(0, root_index)
            if status == "sat":
                sat_cube = root_index
            elif status == "unsat":
                result.status = "unsat"
    if sat_cube is not None:
        outcome = result.outcomes[sat_cube]
        result.status = "sat"
        result.model = outcome.model
        result.winning_cube = sat_cube
        result.winning_worker = outcome.worker
    result.share_totals = {
        "exported": sum(e.exported for _, e, _ in sessions.values()),
        "suppressed": sum(e.suppressed for _, e, _ in sessions.values()),
        "received": sum(i.received for _, _, i in sessions.values()),
        "installed": sum(i.installed for _, _, i in sessions.values()),
    }
    return result


def solve_portfolio(
    circuit: Optional[Circuit] = None,
    assumptions: Optional[Mapping[str, object]] = None,
    *,
    spec: Optional[ProblemSpec] = None,
    jobs: int = 4,
    timeout: Optional[float] = None,
    base_config: Optional[SolverConfig] = None,
    cube_depth: Optional[int] = None,
    deterministic: bool = False,
    optimize: bool = False,
    share: bool = True,
    observation: Optional[Observation] = None,
    crash_cubes: Optional[Dict[int, Tuple[int, ...]]] = None,
    telemetry_dir: Optional[str] = None,
) -> SolverResult:
    """Cube-and-conquer portfolio solve of one satisfiability query.

    Give either a ``(circuit, assumptions)`` pair, a :class:`ProblemSpec`
    (required for the multi-process pool — workers rebuild the problem
    from it), or both (the pair then skips a rebuild on the master).

    ``telemetry_dir`` enables cross-process telemetry for the
    multi-process pool: every worker writes a clock-aligned shard there
    and the merged ``timeline.jsonl`` + metrics exports are produced
    before returning.  The deterministic/inline modes run in one
    process and ignore it (the ordinary ``observation`` covers them).
    """
    base_config = base_config or SolverConfig()
    jobs = max(1, jobs)
    start = time.perf_counter()
    if circuit is None:
        if spec is None:
            raise ValueError(
                "solve_portfolio needs a circuit or a ProblemSpec"
            )
        circuit, assumptions = build_problem(spec)
    assert assumptions is not None
    tracer = observation.tracer if observation is not None else None

    optimize_before = optimize_after = 0
    if optimize:
        from repro.rtl.optimize import optimize as optimize_circuit

        optimize_before = len(circuit.nodes)
        circuit = optimize_circuit(circuit)
        optimize_after = len(circuit.nodes)

    depth = cube_depth if cube_depth is not None else default_cube_depth(jobs)
    report = generate_cubes(
        circuit,
        assumptions,
        depth,
        max_cubes=4 * jobs,
        tracer=tracer,
    )

    def finalize(pool_result: Optional[PoolResult]) -> SolverResult:
        stats = SolverStats()
        stats.cubes_generated = len(report.cubes) + len(report.refuted)
        stats.cubes_refuted = len(report.refuted)
        if optimize:
            stats.optimize_nodes_before = optimize_before
            stats.optimize_nodes_after = optimize_after
        if pool_result is None:  # settled during generation
            stats.solve_time = time.perf_counter() - start
            return SolverResult(
                status=report.status or Status.UNKNOWN,
                stats=stats,
                note=report.note,
            )
        for outcome in pool_result.outcomes.values():
            for name in _SUM_COUNTERS:
                setattr(
                    stats,
                    name,
                    getattr(stats, name) + int(outcome.stats.get(name, 0)),
                )
            stats.max_decision_level = max(
                stats.max_decision_level,
                int(outcome.stats.get("max_decision_level", 0)),
            )
        stats.cubes_solved = len(pool_result.outcomes)
        totals = pool_result.share_totals
        stats.clauses_exported = totals.get("exported", 0)
        stats.clauses_imported = totals.get("installed", 0)
        received = totals.get("received", 0)
        stats.share_import_hit_rate = (
            totals.get("installed", 0) / received if received else 0.0
        )
        stats.solve_time = time.perf_counter() - start
        if tracer is not None:
            tracer.event(
                "share", dl=0, action="export", clauses=stats.clauses_exported
            )
            tracer.event(
                "share", dl=0, action="import", clauses=stats.clauses_imported
            )
        status = Status(pool_result.status)
        model = None
        note = pool_result.note
        if status is Status.SAT:
            model = pool_result.model
            if model is None or not replay_model(
                circuit, model, assumptions
            ):
                raise SolverError(
                    "portfolio SAT model failed simulator replay "
                    f"(cube {pool_result.winning_cube}, worker "
                    f"{pool_result.winning_worker})"
                )
            note = (
                f"portfolio: cube {pool_result.winning_cube} SAT on "
                f"worker {pool_result.winning_worker}"
            )
        elif status is Status.UNSAT and not note:
            root = pool_result.outcomes.get(0)
            if root is not None and root.status == "unsat":
                note = "portfolio: root cube UNSAT"
            else:
                note = (
                    f"portfolio: all {len(report.cubes)} cubes UNSAT"
                )
        return SolverResult(status=status, model=model, stats=stats, note=note)

    if report.status is not None:
        return finalize(None)

    cubes: List[Cube] = [Cube(())] + list(report.cubes)
    inline = (
        deterministic
        or jobs <= 1
        or spec is None
        or multiprocessing.current_process().daemon
    )
    if inline:
        pool_result = _solve_inline(
            circuit,
            assumptions,
            cubes,
            jobs=jobs,
            base_config=base_config,
            timeout=timeout,
            root_index=0,
        )
    else:
        hub = None
        if telemetry_dir is not None:
            from repro.obs.telemetry import TelemetryHub

            hub = TelemetryHub(telemetry_dir)
        pool_result = run_pool(
            spec,
            cubes,
            jobs=jobs,
            base_config=base_config,
            timeout=timeout,
            optimize=optimize,
            root_index=0,
            share=share,
            crash_cubes=crash_cubes,
            telemetry=hub,
        )
        if hub is not None:
            hub.merge()
    return finalize(pool_result)


def prove_by_induction_portfolio(
    case: str,
    max_k: int = 10,
    jobs: int = 4,
    timeout: Optional[float] = None,
    base_config: Optional[SolverConfig] = None,
    deterministic: bool = False,
):
    """k-induction with every base/step query answered by the portfolio.

    Mirrors :func:`repro.bmc.induction.prove_by_induction`'s loop and
    result type; ``case`` must name a registry property (``b13_1``).
    """
    from repro.bmc.induction import InductionResult, InductionStatus

    config = base_config or SolverConfig()
    deadline = time.monotonic() + timeout if timeout is not None else None

    def remaining() -> Optional[float]:
        if deadline is None:
            return None
        return max(0.0, deadline - time.monotonic())

    result = InductionResult(status=InductionStatus.UNDECIDED)
    for k in range(1, max_k + 1):
        if deadline is not None and time.monotonic() > deadline:
            result.note = f"timeout before depth {k}"
            return result
        depth_entry: Dict[str, object] = {
            "k": k,
            "base_decisions": 0,
            "base_conflicts": 0,
            "step_decisions": 0,
            "step_conflicts": 0,
            "probe_cache_hit_rate": 0.0,
        }
        result.depth_stats.append(depth_entry)

        start = time.monotonic()
        base = solve_portfolio(
            spec=ProblemSpec("base", case, k),
            jobs=jobs,
            timeout=remaining(),
            base_config=config,
            deterministic=deterministic,
        )
        result.base_seconds.append(time.monotonic() - start)
        depth_entry["base_decisions"] = base.stats.decisions
        depth_entry["base_conflicts"] = base.stats.conflicts
        if base.is_sat:
            result.status = InductionStatus.VIOLATED
            result.k = k
            result.counterexample = base.model
            return result
        if base.status is Status.UNKNOWN:
            result.note = f"base case budget exhausted at depth {k}"
            return result

        start = time.monotonic()
        step = solve_portfolio(
            spec=ProblemSpec("step", case, k),
            jobs=jobs,
            timeout=remaining(),
            base_config=config,
            deterministic=deterministic,
        )
        result.step_seconds.append(time.monotonic() - start)
        depth_entry["step_decisions"] = step.stats.decisions
        depth_entry["step_conflicts"] = step.stats.conflicts
        if step.is_unsat:
            result.status = InductionStatus.PROVED
            result.k = k
            return result
        if step.status is Status.UNKNOWN:
            result.note = f"inductive step budget exhausted at depth {k}"
            return result
    result.note = f"not inductive up to k = {max_k}"
    return result
