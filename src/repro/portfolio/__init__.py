"""Cube-and-conquer portfolio solving with cross-worker clause sharing.

One satisfiability query, many diversified solvers: a bounded lookahead
splitter carves the problem into disjoint *cubes*
(:mod:`repro.portfolio.cubes`), a rotation of solver configurations
makes the workers explore differently (:mod:`repro.portfolio.diversify`),
short learned clauses flow between workers through the master
(:mod:`repro.portfolio.share`), and the pool
(:mod:`repro.portfolio.pool`) applies the result semantics: first SAT
anywhere wins, UNSAT needs the root cube or every split cube refuted.

:func:`repro.portfolio.solve.solve_portfolio` is the entry point; it
falls back to a deterministic single-process mode for tests and
non-picklable problems.
"""

from repro.portfolio.cubes import Cube, CubeReport, generate_cubes
from repro.portfolio.diversify import rotation_size, worker_config
from repro.portfolio.pool import PoolResult, PortfolioError, run_pool
from repro.portfolio.share import (
    ClauseExporter,
    ClauseImporter,
    ShareChannel,
    clause_payload_key,
    deserialize_clause,
    serialize_clause,
)
from repro.portfolio.solve import (
    default_cube_depth,
    prove_by_induction_portfolio,
    replay_model,
    solve_portfolio,
)
from repro.portfolio.worker import ProblemSpec, WorkerSpec, build_problem

__all__ = [
    "Cube",
    "CubeReport",
    "ClauseExporter",
    "ClauseImporter",
    "PoolResult",
    "PortfolioError",
    "ProblemSpec",
    "ShareChannel",
    "WorkerSpec",
    "build_problem",
    "clause_payload_key",
    "default_cube_depth",
    "deserialize_clause",
    "generate_cubes",
    "prove_by_induction_portfolio",
    "replay_model",
    "rotation_size",
    "run_pool",
    "serialize_clause",
    "solve_portfolio",
    "worker_config",
]
