"""Closed finite integer intervals and forward interval arithmetic.

An :class:`Interval` ``<lo, hi>`` denotes the set of integers ``v`` with
``lo <= v <= hi``.  Intervals are immutable value objects; every operation
returns a new interval.  The empty set is represented by ``None`` at call
sites (operations that can produce an empty result return ``Optional``),
which keeps the invariant ``lo <= hi`` unconditional and makes accidental
use of an empty interval an immediate error rather than a silent wrong
answer.

Forward operations compute the exact integer *hull* of the image set: the
smallest interval containing ``{x op y | x in X, y in Y}``.  For monotonic
operations (addition, subtraction, multiplication by a non-negative
constant, shifts) the hull equals the image, which is what makes interval
constraint propagation effective on RTL datapaths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

#: Interned-interval cache: (lo, hi) -> Interval.  Domains revisit the
#: same bounds constantly (booleans, points, full width domains), so the
#: solver trail mostly shares instances instead of allocating.  The cache
#: stops admitting new entries at the cap; lookups keep working either
#: way, and equality is by value so interned and direct instances mix.
_CACHE: "dict[Tuple[int, int], Interval]" = {}
_CACHE_MAX = 1 << 16
#: Hit/miss counters (read via :func:`interval_cache_stats`).
_CACHE_COUNTS = [0, 0]  # [hits, misses]


@dataclass(frozen=True, order=True, slots=True)
class Interval:
    """A closed integer interval ``<lo, hi>`` with ``lo <= hi``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval <{self.lo}, {self.hi}>")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def make(lo: int, hi: int) -> "Interval":
        """Interning constructor — the hot-path way to build an interval."""
        key = (lo, hi)
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE_COUNTS[0] += 1
            return cached
        _CACHE_COUNTS[1] += 1
        interval = Interval(lo, hi)
        if len(_CACHE) < _CACHE_MAX:
            _CACHE[key] = interval
        return interval

    @staticmethod
    def point(value: int) -> "Interval":
        """The singleton interval ``<value, value>`` (interned)."""
        return Interval.make(value, value)

    # ------------------------------------------------------------------
    # Predicates and set queries
    # ------------------------------------------------------------------
    @property
    def is_point(self) -> bool:
        """True when the interval contains exactly one integer."""
        return self.lo == self.hi

    @property
    def size(self) -> int:
        """Number of integers in the interval."""
        return self.hi - self.lo + 1

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi + 1))

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` is a subset of this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def intersects(self, other: "Interval") -> bool:
        """True when the two intervals share at least one integer."""
        return self.lo <= other.hi and other.lo <= self.hi

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """Intersection, or ``None`` when the intervals are disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval.make(lo, hi)

    def union_hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands."""
        return Interval.make(min(self.lo, other.lo), max(self.hi, other.hi))

    def difference(self, other: "Interval") -> Optional["Interval"]:
        """Interval hull-preserving set difference ``self \\ other``.

        Returns the exact difference when it is itself an interval
        (``other`` covers a prefix or suffix of ``self``), returns ``self``
        unchanged when removing ``other`` would punch a hole (holes are not
        representable — this is the standard sound weakening used by
        interval constraint solvers), and ``None`` when ``other`` covers
        ``self`` entirely.
        """
        if not self.intersects(other):
            return self
        if other.lo <= self.lo and self.hi <= other.hi:
            return None
        if other.lo <= self.lo:
            return Interval.make(other.hi + 1, self.hi)
        if self.hi <= other.hi:
            return Interval.make(self.lo, other.lo - 1)
        return self

    # ------------------------------------------------------------------
    # Forward arithmetic (exact hulls)
    # ------------------------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        return Interval.make(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        return Interval.make(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        return Interval.make(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        """General interval multiplication (Equation 1 of the paper)."""
        products = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        return Interval.make(min(products), max(products))

    def mul_const(self, k: int) -> "Interval":
        if k >= 0:
            return Interval.make(self.lo * k, self.hi * k)
        return Interval.make(self.hi * k, self.lo * k)

    def floordiv_const(self, k: int) -> "Interval":
        """Image hull of ``x // k`` (Python floor division), ``k != 0``."""
        if k == 0:
            raise ZeroDivisionError("interval division by zero constant")
        if k > 0:
            return Interval.make(self.lo // k, self.hi // k)
        return Interval.make(self.hi // k, self.lo // k)

    def shift_left(self, k: int) -> "Interval":
        """Image of ``x << k`` for a constant non-negative shift."""
        if k < 0:
            raise ValueError("shift amount must be non-negative")
        return self.mul_const(1 << k)

    def shift_right(self, k: int) -> "Interval":
        """Image hull of logical ``x >> k`` for constant shifts."""
        if k < 0:
            raise ValueError("shift amount must be non-negative")
        return self.floordiv_const(1 << k)

    def clamp_to(self, bound: "Interval") -> Optional["Interval"]:
        """Alias for :meth:`intersect` that reads better at call sites."""
        return self.intersect(bound)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_point:
            return f"<{self.lo}>"
        return f"<{self.lo}, {self.hi}>"


def interval_cache_stats() -> Tuple[int, int]:
    """Interning cache counters as ``(hits, misses)`` since import."""
    return _CACHE_COUNTS[0], _CACHE_COUNTS[1]


#: Extra per-process caches to empty alongside the interning cache.
#: Other modules (the specialized-propagator plan cache, the NumPy
#: fallback warn-once flag) register a clearing callback here instead of
#: being imported from this module, which keeps the dependency direction
#: intervals <- constraints intact.
_CACHE_RESET_HOOKS: "list" = []


def register_cache_reset(hook) -> None:
    """Register a zero-argument callable run by :func:`reset_interval_cache`.

    Idempotent per callable: registering the same function twice keeps a
    single entry (modules may be re-imported under some test runners).
    """
    if hook not in _CACHE_RESET_HOOKS:
        _CACHE_RESET_HOOKS.append(hook)


def reset_interval_cache() -> None:
    """Empty the interning cache, zero its counters, and clear every
    registered engine-level memo table.

    Harness runs call this once per task so the reported hit rate is a
    function of the task alone, not of which solves happened to warm
    the cache earlier in the same process — a pool worker (fresh
    process, cold cache) and a sequential run must report the same
    number.  The registered hooks extend the same guarantee to the
    specialized-propagator plan cache and other execution-mode memo
    state: cache-hit counters must not depend on whether a solve ran
    inline or in a warm pool worker.
    """
    _CACHE.clear()
    _CACHE_COUNTS[0] = 0
    _CACHE_COUNTS[1] = 0
    for hook in _CACHE_RESET_HOOKS:
        hook()


#: Domain of a Boolean variable, per Section 2.1 of the paper.
BOOL_DOMAIN = Interval.make(0, 1)


def interval_for_width(width: int) -> Interval:
    """Full unsigned domain ``<0, 2**width - 1>`` of a word of ``width`` bits."""
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    return Interval.make(0, (1 << width) - 1)


def full_interval(width: int) -> Interval:
    """Deprecated-style alias kept for symmetry with the paper's notation."""
    return interval_for_width(width)


def hull(values: "list[int]") -> Interval:
    """Smallest interval containing every integer in ``values``."""
    if not values:
        raise ValueError("hull of an empty value set")
    return Interval.make(min(values), max(values))
