"""Integer interval arithmetic for RTL datapath reasoning.

This package implements the interval machinery of Section 2.2 of the paper:
closed finite integer intervals, forward evaluation of the RTL operator set
over intervals, and the backward *narrowing* rules used by interval
constraint propagation (Equations 2 and 3 of the paper and their analogues
for every supported operator).

The two halves are deliberately separate:

* :mod:`repro.intervals.interval` — the :class:`Interval` value type and
  forward (image) arithmetic.
* :mod:`repro.intervals.narrowing` — backward rules: given the interval on
  an operator's output, shrink the intervals on its inputs (and vice
  versa) without ever discarding a feasible integer point.
"""

from repro.intervals.interval import (
    BOOL_DOMAIN,
    Interval,
    full_interval,
    hull,
    interval_cache_stats,
    interval_for_width,
    register_cache_reset,
    reset_interval_cache,
)
from repro.intervals.narrowing import (
    narrow_add,
    narrow_concat,
    narrow_eq,
    narrow_le,
    narrow_lt,
    narrow_mul_const,
    narrow_ne,
    narrow_neg,
    narrow_shift_left,
    narrow_shift_right,
    narrow_sub,
)

__all__ = [
    "BOOL_DOMAIN",
    "Interval",
    "full_interval",
    "hull",
    "interval_cache_stats",
    "interval_for_width",
    "register_cache_reset",
    "reset_interval_cache",
    "narrow_add",
    "narrow_concat",
    "narrow_eq",
    "narrow_le",
    "narrow_lt",
    "narrow_mul_const",
    "narrow_ne",
    "narrow_neg",
    "narrow_shift_left",
    "narrow_shift_right",
    "narrow_sub",
]
