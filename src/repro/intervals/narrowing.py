"""Backward narrowing rules for interval constraint propagation.

Each function takes the current intervals of the variables appearing in one
RTL constraint and returns the narrowed intervals, or ``None`` when the
constraint is inconsistent with the current intervals (an empty domain — a
conflict for the solver).

The rules implement bounds consistency: no integer that participates in a
solution of the single constraint is ever removed (soundness), and for the
monotonic operators the resulting bounds are tight (the rule of Equation 3
in the paper, generalised).  The ICP engine in :mod:`repro.constraints`
iterates these rules to a fixpoint over the whole constraint set.

Conventions
-----------
* Ternary rules ``narrow_<op>(z, x, y)`` handle the constraint
  ``z = x <op> y`` and return ``(z', x', y')``.
* Binary relation rules ``narrow_le(x, y)`` handle ``x <= y`` and return
  ``(x', y')``.
* All returned intervals are subsets of the corresponding inputs
  (narrowing is monotonic, Section 2.2 of the paper).

The specialized propagation kernels in
:mod:`repro.constraints.compile` inline the bounds arithmetic of these
rules (on raw lo/hi ints, skipping Interval allocation) rather than
calling them; a change to any rule here must be reflected in the
corresponding kernel template, with the differential sweep as the
referee.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.intervals.interval import Interval

Triple = Tuple[Interval, Interval, Interval]
Pair = Tuple[Interval, Interval]


def _ceil_div(a: int, b: int) -> int:
    """Ceiling division, correct for any sign of ``b`` (``b != 0``)."""
    return -((-a) // b)


def narrow_add(z: Interval, x: Interval, y: Interval) -> Optional[Triple]:
    """Narrow ``z = x + y``."""
    new_z = z.intersect(x.add(y))
    if new_z is None:
        return None
    new_x = x.intersect(new_z.sub(y))
    if new_x is None:
        return None
    new_y = y.intersect(new_z.sub(new_x))
    if new_y is None:
        return None
    return new_z, new_x, new_y


def narrow_sub(z: Interval, x: Interval, y: Interval) -> Optional[Triple]:
    """Narrow ``z = x - y``."""
    new_z = z.intersect(x.sub(y))
    if new_z is None:
        return None
    new_x = x.intersect(new_z.add(y))
    if new_x is None:
        return None
    new_y = y.intersect(new_x.sub(new_z))
    if new_y is None:
        return None
    return new_z, new_x, new_y


def narrow_neg(z: Interval, x: Interval) -> Optional[Pair]:
    """Narrow ``z = -x``."""
    new_z = z.intersect(x.neg())
    if new_z is None:
        return None
    new_x = x.intersect(new_z.neg())
    if new_x is None:
        return None
    return new_z, new_x


def narrow_mul_const(z: Interval, x: Interval, k: int) -> Optional[Pair]:
    """Narrow ``z = k * x`` for a constant ``k``; returns ``(z', x')``."""
    new_z = z.intersect(x.mul_const(k))
    if new_z is None:
        return None
    if k == 0:
        # z is pinned to 0; x is unconstrained by this rule.
        return new_z, x
    if k > 0:
        back_lo, back_hi = _ceil_div(new_z.lo, k), new_z.hi // k
    else:
        back_lo, back_hi = _ceil_div(new_z.hi, k), new_z.lo // k
    if back_lo > back_hi:
        return None
    new_x = x.intersect(Interval(back_lo, back_hi))
    if new_x is None:
        return None
    return new_z, new_x


def narrow_shift_left(z: Interval, x: Interval, k: int) -> Optional[Pair]:
    """Narrow ``z = x << k`` (constant shift), i.e. ``z = x * 2**k``."""
    return narrow_mul_const(z, x, 1 << k)


def narrow_shift_right(z: Interval, x: Interval, k: int) -> Optional[Pair]:
    """Narrow ``z = x >> k`` (logical shift; ``z = x // 2**k``)."""
    scale = 1 << k
    new_z = z.intersect(x.floordiv_const(scale))
    if new_z is None:
        return None
    back = Interval(new_z.lo * scale, new_z.hi * scale + scale - 1)
    new_x = x.intersect(back)
    if new_x is None:
        return None
    return new_z, new_x


def narrow_concat(
    z: Interval, hi_part: Interval, lo_part: Interval, lo_width: int
) -> Optional[Triple]:
    """Narrow ``z = hi_part * 2**lo_width + lo_part``; returns ``(z', hi', lo')``.

    ``lo_part`` is additionally expected to live in ``<0, 2**lo_width - 1>``
    (enforced by the caller's variable domains).
    """
    scale = 1 << lo_width
    new_z = z.intersect(hi_part.mul_const(scale).add(lo_part))
    if new_z is None:
        return None
    hi_back_lo = _ceil_div(new_z.lo - lo_part.hi, scale)
    hi_back_hi = (new_z.hi - lo_part.lo) // scale
    if hi_back_lo > hi_back_hi:
        return None
    new_hi = hi_part.intersect(Interval(hi_back_lo, hi_back_hi))
    if new_hi is None:
        return None
    lo_back = Interval(new_z.lo - new_hi.hi * scale, new_z.hi - new_hi.lo * scale)
    new_lo = lo_part.intersect(lo_back)
    if new_lo is None:
        return None
    return new_z, new_hi, new_lo


def narrow_le(x: Interval, y: Interval) -> Optional[Pair]:
    """Narrow under the relation ``x <= y``."""
    new_x_hi = min(x.hi, y.hi)
    new_y_lo = max(y.lo, x.lo)
    if new_x_hi < x.lo or new_y_lo > y.hi:
        return None
    return Interval(x.lo, new_x_hi), Interval(new_y_lo, y.hi)


def narrow_lt(x: Interval, y: Interval) -> Optional[Pair]:
    """Narrow under ``x < y`` — Equation 3 of the paper."""
    new_x_hi = min(x.hi, y.hi - 1)
    new_y_lo = max(y.lo, x.lo + 1)
    if new_x_hi < x.lo or new_y_lo > y.hi:
        return None
    return Interval(x.lo, new_x_hi), Interval(new_y_lo, y.hi)


def narrow_eq(x: Interval, y: Interval) -> Optional[Pair]:
    """Narrow under ``x == y``: both shrink to the intersection."""
    meet = x.intersect(y)
    if meet is None:
        return None
    return meet, meet


def narrow_ne(x: Interval, y: Interval) -> Optional[Pair]:
    """Narrow under ``x != y``.

    Only effective when one side is a singleton: the other side loses that
    endpoint if it sits on its boundary.  Interior holes cannot be
    represented by intervals and are soundly ignored.
    """
    new_x: Optional[Interval] = x
    new_y: Optional[Interval] = y
    if y.is_point:
        new_x = x.difference(y)
        if new_x is None:
            return None
    if x.is_point:
        new_y = y.difference(x)
        if new_y is None:
            return None
    assert new_x is not None and new_y is not None
    if new_x.is_point and new_y.is_point and new_x.lo == new_y.lo:
        return None
    return new_x, new_y
