"""Distributed cube-and-conquer driver: one query, many hosts.

:func:`solve_dist` is the single-query API (and what the ``dist-1h`` /
``dist-2h`` bench engines call): it generates cubes exactly like
:func:`repro.portfolio.solve.solve_portfolio`, starts a
:class:`~repro.dist.hub.CubeHub` on a UNIX socket, launches ``hosts``
worker-host processes against it (each spawning ``jobs`` local solver
workers), and interprets the hub's verdict as a
:class:`~repro.core.result.SolverResult` — including the mandatory
simulator replay of any SAT model, which must never be weaker in the
distributed path than in the local one.

On a real deployment the hub and the hosts live on different machines
(see ``docs/distributed.md``); this driver is the single-machine
harness the benchmarks and tests use, so host processes are
``multiprocessing`` children rather than SSH sessions — the wire
protocol between them is byte-identical either way.
"""

from __future__ import annotations

import logging
import os
import tempfile
import time
from typing import Optional, Tuple

from repro.core.config import SolverConfig
from repro.core.result import SolverResult, SolverStats, Status
from repro.dist.hub import CubeHub, DistError, DistResult
from repro.dist.worker import run_worker_host
from repro.portfolio.cubes import Cube, generate_cubes
from repro.portfolio.solve import (
    _SUM_COUNTERS,
    default_cube_depth,
    replay_model,
)
from repro.portfolio.worker import ProblemSpec, build_problem

logger = logging.getLogger(__name__)

#: Seconds granted past the solve deadline for hosts to report in.
_SETTLE_GRACE = 10.0


def _host_main(
    address: Tuple[str, object],
    jobs: int,
    name: str,
    log_level: Optional[str],
    crash_cubes: Tuple[int, ...] = (),
) -> None:
    """Worker-host process entry point (spawn target)."""
    if log_level:
        from repro.obs import configure_logging

        configure_logging(log_level)
    try:
        run_worker_host(
            address, jobs, name=name, crash_cubes=crash_cubes
        )
    except DistError as error:
        logger.warning("dist host %s: %s", name, error)
        raise SystemExit(1)


def solve_dist(
    case: str,
    bound: int,
    *,
    hosts: int = 2,
    jobs: int = 2,
    timeout: Optional[float] = None,
    base_config: Optional[SolverConfig] = None,
    cube_depth: Optional[int] = None,
    lease_s: float = 30.0,
    crash_hosts: int = 0,
) -> SolverResult:
    """Distributed cube-and-conquer solve of one registry instance.

    ``hosts`` worker-host processes each run ``jobs`` local solver
    workers; diversification indices are global, so a 2-host x 2-job
    run explores the same strategy spread as a 4-worker portfolio.
    ``crash_hosts`` is the requeue test hook: that many of the launched
    hosts run with the crash-on-first-assignment worker hook, dying as
    soon as they take a cube — the hub must requeue their cubes onto
    the surviving hosts without changing the verdict.
    """
    import multiprocessing

    base_config = base_config or SolverConfig()
    hosts = max(1, hosts)
    jobs = max(1, jobs)
    start = time.perf_counter()
    spec = ProblemSpec("instance", case, bound)
    circuit, assumptions = build_problem(spec)
    total_workers = hosts * jobs
    depth = (
        cube_depth
        if cube_depth is not None
        else default_cube_depth(total_workers)
    )
    report = generate_cubes(
        circuit, assumptions, depth, max_cubes=4 * total_workers
    )

    def finalize(dist_result: Optional[DistResult]) -> SolverResult:
        stats = SolverStats()
        stats.cubes_generated = len(report.cubes) + len(report.refuted)
        stats.cubes_refuted = len(report.refuted)
        stats.dist_hosts = 0
        stats.dist_requeues = 0
        stats.dist_clauses_relayed = 0
        if dist_result is None:  # settled during generation
            stats.solve_time = time.perf_counter() - start
            return SolverResult(
                status=report.status or Status.UNKNOWN,
                stats=stats,
                note=report.note,
            )
        if dist_result.failure:
            raise DistError(dist_result.failure)
        for outcome in dist_result.outcomes.values():
            for name in _SUM_COUNTERS:
                setattr(
                    stats,
                    name,
                    getattr(stats, name) + int(outcome.stats.get(name, 0)),
                )
            stats.max_decision_level = max(
                stats.max_decision_level,
                int(outcome.stats.get("max_decision_level", 0)),
            )
        stats.cubes_solved = len(dist_result.outcomes)
        totals = dist_result.share_totals
        stats.clauses_exported = totals.get("exported", 0)
        stats.clauses_imported = totals.get("installed", 0)
        received = totals.get("received", 0)
        stats.share_import_hit_rate = (
            totals.get("installed", 0) / received if received else 0.0
        )
        stats.dist_hosts = dist_result.hosts_seen
        stats.dist_requeues = dist_result.requeues
        stats.dist_clauses_relayed = dist_result.clauses_relayed
        stats.solve_time = time.perf_counter() - start
        status = Status(dist_result.status)
        model = None
        note = dist_result.note
        if status is Status.SAT:
            model = dist_result.model
            if model is None or not replay_model(
                circuit, model, assumptions
            ):
                raise DistError(
                    "distributed SAT model failed simulator replay "
                    f"(cube {dist_result.winning_cube}, worker "
                    f"{dist_result.winning_worker} on host "
                    f"{dist_result.winning_host})"
                )
            note = (
                f"dist: cube {dist_result.winning_cube} SAT on worker "
                f"{dist_result.winning_worker} (host "
                f"{dist_result.winning_host})"
            )
        elif status is Status.UNSAT and not note:
            root = dist_result.outcomes.get(0)
            if root is not None and root.status == "unsat":
                note = "dist: root cube UNSAT"
            else:
                note = f"dist: all {len(report.cubes)} cubes UNSAT"
        if dist_result.requeues and note:
            note += f" ({dist_result.requeues} cube requeues)"
        return SolverResult(status=status, model=model, stats=stats, note=note)

    if report.status is not None:
        return finalize(None)

    cubes = [Cube(())] + list(report.cubes)
    hub = CubeHub(
        spec,
        cubes,
        base_config=base_config,
        root_index=0,
        timeout=timeout,
        lease_s=lease_s,
    )
    tmpdir = tempfile.mkdtemp(prefix="repro-dist-")
    socket_path = os.path.join(tmpdir, "hub.sock")
    context = multiprocessing.get_context("spawn")
    processes = []
    try:
        address = hub.start(unix_path=socket_path)
        from repro.obs import effective_level_spec

        level_spec = effective_level_spec()
        for index in range(hosts):
            crash = (
                tuple(range(len(cubes))) if index < crash_hosts else ()
            )
            process = context.Process(
                target=_host_main,
                args=(
                    address,
                    jobs,
                    f"host-{index}",
                    level_spec,
                    crash,
                ),
                # NOT daemonic: hosts spawn their own worker children.
                daemon=False,
                name=f"dist-host-{index}",
            )
            process.start()
            processes.append(process)
        deadline = (
            time.monotonic() + timeout + _SETTLE_GRACE
            if timeout is not None
            else None
        )
        dist_result = None
        while dist_result is None:
            if deadline is not None and time.monotonic() >= deadline:
                dist_result = hub.abort("dist driver wait expired")
                break
            dist_result = hub.wait(timeout=0.5)
            if dist_result is None and not any(
                p.is_alive() for p in processes
            ):
                # Give the hub one last sweep: the connection-drop
                # handler may have settled a failure verdict already.
                dist_result = hub.wait(timeout=0.0)
                if dist_result is None:
                    raise DistError("all dist worker hosts died")
    finally:
        hub.close()
        stop_deadline = time.monotonic() + 2.0
        for process in processes:
            process.join(
                timeout=max(0.0, stop_deadline - time.monotonic())
            )
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        try:
            os.unlink(socket_path)
            os.rmdir(tmpdir)
        except OSError:
            pass
    return finalize(dist_result)
