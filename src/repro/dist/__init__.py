"""Distributed cube-and-conquer (PR 9).

A :class:`~repro.dist.hub.CubeHub` owns one query's cube list and
serves it over NDJSON sockets to worker hosts
(:func:`~repro.dist.worker.run_worker_host`), each running a local pool
of diversified portfolio workers.  Learned clauses flow host-to-host
through the hub's LBD filter; lost hosts' cubes are requeued.
:func:`~repro.dist.run.solve_dist` is the single-machine driver the
benchmarks use; ``repro-hdpll dist-serve`` / ``dist-work`` are the
multi-machine CLI (see ``docs/distributed.md``).
"""

from repro.dist.hub import (
    DEFAULT_LEASE_S,
    CubeHub,
    DistError,
    DistOutcome,
    DistResult,
)
from repro.dist.run import solve_dist
from repro.dist.worker import HubClient, run_worker_host

__all__ = [
    "DEFAULT_LEASE_S",
    "CubeHub",
    "DistError",
    "DistOutcome",
    "DistResult",
    "HubClient",
    "run_worker_host",
    "solve_dist",
]
