"""Distributed worker host: local portfolio workers fed from a hub.

One worker host connects to a :class:`~repro.dist.hub.CubeHub`,
introduces itself (``hello``), and spawns ``jobs`` local solver
processes — exactly the processes the in-process portfolio pool uses
(:func:`repro.portfolio.worker.portfolio_worker`), diversified by their
*global* worker index (the hub assigns each host a base index so
rotations never collide across hosts).  The host then runs a single
event loop:

* a local worker reporting ready (or finishing a cube) triggers a
  ``pull`` from the hub and the cube is handed to that worker over its
  pipe, re-using the pool's ``("cube", ...)`` message unchanged;
* clause batches exported by a local worker are rebroadcast to the
  *local* peers directly (no hub round-trip for same-host sharing) and
  uploaded to the hub, which relays them — LBD-filtered — to every
  other host;
* clause batches and decided-cube notices piggy-backed on hub responses
  are forwarded to the local workers (``("clauses", ...)`` /
  ``("cancel", ...)`` — duplicate holders abandon decided cubes);
* a heartbeat renews this host's cube leases whenever no other request
  has done so recently, so the hub's lost-host requeue only fires on
  genuinely dead hosts.

The loop ends when the hub says ``stop`` (verdict settled), the hub
connection drops, or every local worker has died.
"""

from __future__ import annotations

import logging
import socket
import time
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Optional, Tuple

from repro.core.config import SolverConfig
from repro.dist.hub import DistError
from repro.obs import effective_level_spec
from repro.portfolio.worker import (
    ProblemSpec,
    WorkerSpec,
    portfolio_worker,
)
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode,
    encode,
)

logger = logging.getLogger(__name__)

#: Seconds the host waits in one child-pipe poll round.
_POLL_INTERVAL = 0.05
#: Seconds an idle host waits before retrying a ``wait``-answered pull.
_PULL_RETRY = 0.2
#: Seconds children get to exit after a cooperative stop.
_STOP_GRACE = 1.0


class HubClient:
    """Blocking NDJSON request/response client for the hub socket."""

    def __init__(self, address: Tuple[str, object]):
        kind, target = address
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(str(target))
        elif kind == "tcp":
            host, port = target  # type: ignore[misc]
            sock = socket.create_connection((str(host), int(port)))
        else:
            raise ValueError(f"unknown hub address kind {kind!r}")
        self._sock = sock
        self._reader = sock.makefile("rb")

    def call(self, message: Dict[str, object]) -> Dict[str, object]:
        try:
            self._sock.sendall(encode(message))
            line = self._reader.readline(MAX_LINE_BYTES + 1)
        except (ConnectionError, OSError) as error:
            raise DistError(f"hub connection lost: {error}") from None
        if not line:
            raise DistError("hub closed the connection")
        try:
            response = decode(line)
        except ProtocolError as error:
            raise DistError(f"bad hub response: {error}") from None
        if not response.get("ok", False):
            raise DistError(
                f"hub rejected {message.get('op')!r}: "
                f"{response.get('error')}"
            )
        return response

    def close(self) -> None:
        try:
            self._reader.close()
            self._sock.close()
        except OSError:
            pass


class _Child:
    __slots__ = ("index", "global_index", "process", "conn", "cube")

    def __init__(self, index, global_index, process, conn):
        self.index = index
        self.global_index = global_index
        self.process = process
        self.conn = conn
        #: Cube index currently assigned (None while idle *or* ready).
        self.cube: Optional[int] = None


def run_worker_host(
    address: Tuple[str, object],
    jobs: int,
    name: Optional[str] = None,
    base_config: Optional[SolverConfig] = None,
    crash_cubes: Tuple[int, ...] = (),
) -> Dict[str, int]:
    """Run one worker host against the hub at ``address`` until the hub
    stops the solve; returns a small summary counter dict.

    ``base_config`` overrides the hub-shipped solver configuration
    (tests); ``crash_cubes`` is the pool's crash-on-assignment test
    hook, applied to every local worker — it makes the whole host die
    deterministically on its first assignment, which is how the requeue
    path is exercised end to end.
    """
    import multiprocessing

    jobs = max(1, jobs)
    client = HubClient(address)
    summary = {"cubes_solved": 0, "clauses_uploaded": 0, "requeues": 0}
    children: List[_Child] = []
    try:
        welcome = client.call(
            {
                "op": "hello",
                "name": name or socket.gethostname(),
                "slots": jobs,
            }
        )
        problem = ProblemSpec(**welcome["problem"])  # type: ignore[arg-type]
        config = (
            base_config
            if base_config is not None
            else SolverConfig(**welcome["config"])  # type: ignore[arg-type]
        )
        base_index = int(welcome["base_index"])  # type: ignore[arg-type]
        lease_s = float(welcome.get("lease_s", 30.0))  # type: ignore[arg-type]
        # Well under lease_s / 3 so leases never expire on a live host;
        # capped low so a busy host still notices ``stop`` quickly.
        heartbeat_s = max(0.5, min(2.0, lease_s / 3.0))

        context = multiprocessing.get_context("spawn")
        level_spec = effective_level_spec()
        for index in range(jobs):
            parent_conn, child_conn = context.Pipe(duplex=True)
            spec = WorkerSpec(
                problem=problem,
                worker_index=base_index + index,
                base_config=config,
                crash_cubes=crash_cubes,
                log_level=level_spec,
            )
            process = context.Process(
                target=portfolio_worker,
                args=(child_conn, spec),
                daemon=True,
                name=f"dist-{base_index + index}",
            )
            process.start()
            child_conn.close()
            children.append(
                _Child(index, base_index + index, process, parent_conn)
            )

        try:
            _host_loop(
                client, children, summary, welcome, heartbeat_s
            )
        except DistError as error:
            # A hub that vanishes mid-run is indistinguishable from a
            # settled hub that already exited; either way this host has
            # nothing left to do, so drain cleanly rather than failing.
            message = str(error)
            if not message.startswith(
                ("hub connection lost", "hub closed")
            ):
                raise
            logger.info("dist host: stopping (%s)", error)
    finally:
        _stop_children(children)
        client.close()
    return summary


def _host_loop(
    client: HubClient,
    children: List[_Child],
    summary: Dict[str, int],
    welcome: Dict[str, object],
    heartbeat_s: float,
) -> None:
    live: Dict[int, _Child] = {c.index: c for c in children}
    idle: List[_Child] = []
    stop = False
    next_pull = 0.0
    last_call = time.monotonic()

    def deliver(response: Dict[str, object]) -> None:
        """Forward piggy-backed hub state to the local workers."""
        nonlocal stop
        for batch in response.get("clauses", ()):  # type: ignore[union-attr]
            payloads = [
                (
                    tuple(tuple(literal) for literal in payload[0]),
                    int(payload[1]),
                )
                for payload in batch
            ]
            for child in live.values():
                _send(child, ("clauses", payloads))
        for index in response.get("decided", ()):  # type: ignore[union-attr]
            for child in live.values():
                if child.cube == index:
                    _send(child, ("cancel", index))
                    child.cube = None
        if response.get("stop"):
            stop = True

    def call(message: Dict[str, object]) -> Dict[str, object]:
        nonlocal last_call
        response = client.call(message)
        last_call = time.monotonic()
        deliver(response)
        return response

    deliver(welcome)

    def drop_child(child: _Child, reason: str) -> None:
        live.pop(child.index, None)
        if child in idle:
            idle.remove(child)
        try:
            child.conn.close()
        except OSError:
            pass
        logger.warning("dist host: lost worker %d (%s)", child.index, reason)
        if child.cube is not None:
            # The hub's lease machinery would recover this eventually;
            # reporting the loss as an unknown result... would poison
            # the cube's verdict instead, so the lease expiry (or this
            # host's death, if the last worker went) is the recovery
            # path.  A dead child's cube is simply dropped here.
            child.cube = None

    while True:
        if stop:
            return
        if not live:
            raise DistError("all local workers died")
        ready = connection_wait(
            [child.conn for child in live.values()],
            timeout=_POLL_INTERVAL,
        )
        conn_to_child = {child.conn: child for child in live.values()}
        for conn in ready:
            child = conn_to_child[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                drop_child(
                    child,
                    f"pipe closed (exit {child.process.exitcode})",
                )
                continue
            kind = message[0]
            if kind == "ready":
                child.cube = None
                if child not in idle:
                    idle.append(child)
            elif kind == "clauses":
                _, _worker, batch = message
                for peer in live.values():
                    if peer is not child:
                        _send(peer, ("clauses", batch))
                response = call(
                    {
                        "op": "clauses",
                        "batch": [
                            [list(payload[0]), payload[1]]
                            for payload in batch
                        ],
                    }
                )
                summary["clauses_uploaded"] += int(
                    response.get("admitted", 0)  # type: ignore[arg-type]
                )
            elif kind == "result":
                (
                    _,
                    _worker,
                    cube_index,
                    status,
                    model,
                    stats,
                    totals,
                ) = message
                child.cube = None
                call(
                    {
                        "op": "result",
                        "worker": child.global_index,
                        "cube": cube_index,
                        "status": status,
                        "model": model,
                        "stats": stats,
                        "share": totals,
                    }
                )
                summary["cubes_solved"] += 1
                if child not in idle:
                    idle.append(child)
            elif kind == "fatal":
                drop_child(child, f"fatal: {message[2]}")
            if stop:
                return

        now = time.monotonic()
        while idle and not stop and now >= next_pull:
            child = idle[0]
            response = call({"op": "pull"})
            if stop:
                return
            cube = response.get("cube")
            if cube is None:
                if response.get("wait"):
                    next_pull = now + _PULL_RETRY
                break
            idle.pop(0)
            index = int(cube["index"])  # type: ignore[index]
            assumptions = [
                (str(name), int(lo), int(hi))
                for name, lo, hi in cube["assumptions"]  # type: ignore[index]
            ]
            child.cube = index
            _send(
                child,
                ("cube", index, assumptions, cube.get("timeout")),  # type: ignore[union-attr]
            )
        if time.monotonic() - last_call > heartbeat_s:
            call({"op": "heartbeat"})


def _send(child: _Child, message) -> None:
    try:
        child.conn.send(message)
    except (BrokenPipeError, OSError):
        pass  # child death surfaces via its pipe on the next poll


def _stop_children(children: List[_Child]) -> None:
    for child in children:
        try:
            child.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
    deadline = time.monotonic() + _STOP_GRACE
    for child in children:
        child.process.join(
            timeout=max(0.0, deadline - time.monotonic())
        )
        if child.process.is_alive():
            child.process.terminate()
            child.process.join(timeout=_STOP_GRACE)
        try:
            child.conn.close()
        except OSError:
            pass
