"""Distributed cube hub: a work-stealing queue over NDJSON sockets.

The hub owns one query's cube list and serves it to *worker hosts* —
processes (typically on other machines) that each run a local pool of
diversified portfolio workers and pull cubes as their workers free up.
Framing reuses the solver daemon's wire format
(:mod:`repro.serve.protocol`): one UTF-8 JSON object per line, over a
UNIX or TCP socket.  The protocol is strictly worker-driven
request/response — the hub never pushes — so a host behind NAT or an
SSH tunnel works unmodified, and every response piggy-backs the pending
broadcast state (relayed clause batches, decided cubes, stop flag).

Operations (``op`` selects the handler; all responses carry ``ok``):

=============  =======================================================
``hello``      register a host (``name``, ``slots``); the response
               assigns the host id and a globally-unique *base worker
               index* (diversification rotations must not collide
               across hosts) and carries the :class:`ProblemSpec`
               fields plus the solver configuration, so hosts need no
               out-of-band problem distribution.
``pull``       request a cube; the response carries ``cube`` (index,
               assumptions, remaining timeout), ``wait`` (queue empty
               right now — in-flight cubes may still requeue), or
               ``stop`` (verdict settled).  Once the queue drains,
               pulls are handed *duplicates* of the least-covered
               in-flight cube, mirroring the in-process pool.
``result``     report a cube verdict (first report wins; duplicates
               are dropped).
``clauses``    upload learned-clause payload batches; the hub admits
               them through an LBD filter and relays them to every
               other host.
``heartbeat``  renew this host's cube leases.
=============  =======================================================

Every pulled cube carries a *lease*: a deadline renewed by any request
from the holding host.  A host that goes silent past its lease — or
whose connection drops — loses its cubes back to the queue (one requeue
per cube; a cube lost twice fails the solve, exactly like the
in-process pool's crash policy).

Verdict semantics are the portfolio's: SAT anywhere wins immediately;
UNSAT requires the root cube UNSAT or every split cube UNSAT; anything
else is UNKNOWN.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import SolverConfig
from repro.errors import SolverError
from repro.portfolio.cubes import Cube
from repro.portfolio.share import DEFAULT_MAX_LBD, clause_payload_key
from repro.portfolio.worker import ProblemSpec
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode,
    encode,
    error_response,
)

logger = logging.getLogger(__name__)

#: Seconds a pulled cube stays leased without any request from its
#: holder before the hub requeues it.
DEFAULT_LEASE_S = 30.0

#: Relayed clause batches are re-chunked to this many payloads so one
#: response line stays far below ``MAX_LINE_BYTES``.
_RELAY_CHUNK = 64


class DistError(SolverError):
    """Unrecoverable distributed-solve failure."""


@dataclass
class DistOutcome:
    """First accepted verdict for one cube."""

    index: int
    status: str  # "sat" | "unsat" | "unknown"
    model: Optional[Dict[str, int]]
    stats: Dict[str, object]
    worker: int
    host: str


@dataclass
class DistResult:
    """Everything the hub learned, for the driver to interpret."""

    status: str  # "sat" | "unsat" | "unknown"
    model: Optional[Dict[str, int]] = None
    winning_cube: Optional[int] = None
    winning_worker: Optional[int] = None
    winning_host: Optional[str] = None
    outcomes: Dict[int, DistOutcome] = field(default_factory=dict)
    #: Sum over workers of their exporter/importer totals.
    share_totals: Dict[str, int] = field(default_factory=dict)
    requeues: int = 0
    #: Clause payloads admitted by the hub's LBD filter and relayed.
    clauses_relayed: int = 0
    hosts_seen: int = 0
    note: str = ""
    #: Set when the solve failed structurally (cube lost twice); the
    #: driver raises :class:`DistError` with this message.
    failure: Optional[str] = None


class _Host:
    __slots__ = (
        "host_id",
        "name",
        "slots",
        "base_index",
        "clause_cursor",
        "decided_cursor",
        "last_seen",
        "leases",
    )

    def __init__(self, host_id, name, slots, base_index):
        self.host_id = host_id
        self.name = name
        self.slots = slots
        self.base_index = base_index
        #: Next entry of the hub's clause log to relay to this host.
        self.clause_cursor = 0
        #: Next entry of the decided-cube log to announce to this host.
        self.decided_cursor = 0
        self.last_seen = time.monotonic()
        #: Cube indices currently leased to this host.
        self.leases: Set[int] = set()


class CubeHub:
    """The distributed cube queue (see module docstring).

    Construct with the query (problem spec, cube list, base config),
    :meth:`start` a listener, hand the address to worker hosts, then
    :meth:`wait` for the verdict.  Thread-based: one listener thread
    plus one handler thread per connected host — host counts are
    single digits, so threads beat an event loop on simplicity.
    """

    def __init__(
        self,
        problem: ProblemSpec,
        cubes: Sequence[Cube],
        base_config: Optional[SolverConfig] = None,
        root_index: Optional[int] = 0,
        timeout: Optional[float] = None,
        lease_s: float = DEFAULT_LEASE_S,
        relay_max_lbd: int = DEFAULT_MAX_LBD,
        share: bool = True,
    ):
        if not cubes:
            raise ValueError("CubeHub needs at least one cube")
        self.problem = problem
        self.cubes = list(cubes)
        self.base_config = base_config or SolverConfig()
        self.root_index = root_index
        self.lease_s = lease_s
        self.relay_max_lbd = relay_max_lbd
        self.share = share
        self._deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        self._timeout = timeout

        self._lock = threading.Lock()
        self._pending: List[int] = list(range(len(self.cubes)))
        self._done: Dict[int, DistOutcome] = {}
        self._decided_log: List[int] = []
        self._retries: Dict[int, int] = {}
        self._hosts: Dict[str, _Host] = {}
        self._next_host = 0
        self._next_base_index = 0
        #: (owner host_id, payload) log of admitted shared clauses.
        self._clause_log: List[Tuple[str, tuple]] = []
        self._clause_keys: Set[tuple] = set()
        #: Global worker index -> latest cumulative share totals.
        self._share_totals: Dict[int, Dict[str, int]] = {}
        self._requeues = 0
        self._hosts_seen = 0

        self._settled = threading.Event()
        self._result: Optional[DistResult] = None
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._closing = False
        self.address: Optional[Tuple[str, object]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(
        self,
        unix_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> Tuple[str, object]:
        """Bind and start accepting hosts; returns the bound address as
        ``("unix", path)`` or ``("tcp", (host, port))``."""
        if unix_path is not None:
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(unix_path)
            self.address = ("unix", unix_path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((host, port))
            self.address = ("tcp", listener.getsockname())
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        thread = threading.Thread(
            target=self._accept_loop, name="dist-hub-accept", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        logger.info("dist hub: listening on %s", self.address)
        return self.address

    def wait(self, timeout: Optional[float] = None) -> Optional[DistResult]:
        """Block until the verdict settles; returns the
        :class:`DistResult`, or ``None`` if ``timeout`` elapsed with the
        run still undecided (the run keeps going — callers poll)."""
        wait_deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            if self._settled.is_set():
                return self._result
            with self._lock:
                self._sweep_leases()
                self._maybe_settle()
            if self._settled.is_set():
                return self._result
            if (
                wait_deadline is not None
                and time.monotonic() >= wait_deadline
            ):
                return None
            step = 0.1
            if wait_deadline is not None:
                step = min(step, max(0.0, wait_deadline - time.monotonic()))
            self._settled.wait(step)

    def abort(self, note: str = "aborted") -> DistResult:
        """Force-settle an UNKNOWN verdict (no-op if already settled);
        returns the final :class:`DistResult` either way."""
        with self._lock:
            self._settle("unknown", note=note)
        assert self._result is not None
        return self._result

    def close(self) -> None:
        """Stop accepting and close the listener (hosts already draining
        still receive ``stop`` from their in-flight requests)."""
        self._closing = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    @property
    def settled(self) -> bool:
        return self._settled.is_set()

    # ------------------------------------------------------------------
    # Accept / per-connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing:
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="dist-hub-conn",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        host_id: Optional[str] = None
        reader = conn.makefile("rb")
        try:
            while True:
                line = reader.readline(MAX_LINE_BYTES + 1)
                if not line:
                    return
                try:
                    request = decode(line)
                except ProtocolError as error:
                    conn.sendall(encode(error_response({}, str(error))))
                    continue
                try:
                    response, host_id = self._dispatch(request, host_id)
                except Exception as error:  # noqa: BLE001 - must respond
                    logger.exception("dist hub: request failed")
                    response = error_response(
                        request, f"{type(error).__name__}: {error}"
                    )
                conn.sendall(encode(response))
        except (ConnectionError, OSError, ValueError):
            pass
        finally:
            try:
                reader.close()
                conn.close()
            except OSError:
                pass
            if host_id is not None:
                with self._lock:
                    self._drop_host(host_id, "connection closed")

    # ------------------------------------------------------------------
    # Request dispatch (all under the hub lock)
    # ------------------------------------------------------------------
    def _dispatch(self, request, host_id):
        op = request.get("op")
        with self._lock:
            if op == "hello":
                return self._op_hello(request)
            if host_id is None or host_id not in self._hosts:
                return (
                    error_response(request, "hello required first"),
                    host_id,
                )
            host = self._hosts[host_id]
            host.last_seen = time.monotonic()
            self._sweep_leases()
            if op == "pull":
                response = self._op_pull(request, host)
            elif op == "result":
                response = self._op_result(request, host)
            elif op == "clauses":
                response = self._op_clauses(request, host)
            elif op == "heartbeat":
                response = {"id": request.get("id"), "ok": True}
            else:
                return (
                    error_response(request, f"unknown op {op!r}"),
                    host_id,
                )
            self._maybe_settle()
            self._augment(response, host)
            return response, host_id

    def _op_hello(self, request):
        name = str(request.get("name", "host"))
        slots = max(1, int(request.get("slots", 1)))
        host_id = f"h{self._next_host}"
        self._next_host += 1
        self._hosts_seen += 1
        host = _Host(host_id, name, slots, self._next_base_index)
        self._next_base_index += slots
        self._hosts[host_id] = host
        logger.info(
            "dist hub: host %s (%s) joined with %d slots, base index %d",
            host_id,
            name,
            slots,
            host.base_index,
        )
        import dataclasses

        response = {
            "id": request.get("id"),
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "host": host_id,
            "base_index": host.base_index,
            "lease_s": self.lease_s,
            "share": self.share,
            "problem": dataclasses.asdict(self.problem),
            "config": dataclasses.asdict(self.base_config),
        }
        self._augment(response, host)
        return response, host_id

    def _op_pull(self, request, host: _Host):
        response: Dict[str, object] = {"id": request.get("id"), "ok": True}
        if self._settled.is_set() or self._past_deadline():
            return response  # _augment stamps stop
        index = self._next_cube(host)
        if index is None:
            response["wait"] = True
            return response
        host.leases.add(index)
        response["cube"] = {
            "index": index,
            "assumptions": [
                list(entry) for entry in self.cubes[index].assumptions
            ],
            "timeout": self._remaining(),
        }
        return response

    def _next_cube(self, host: _Host) -> Optional[int]:
        if self._pending:
            return self._pending.pop(0)
        # Queue drained: hand out a duplicate of the least-covered
        # in-flight cube (same policy as the in-process pool).
        candidates = [
            i
            for i in range(len(self.cubes))
            if i not in self._done and i not in host.leases
        ]
        if not candidates:
            return None

        def coverage(i: int) -> Tuple[int, int]:
            holders = sum(
                1 for h in self._hosts.values() if i in h.leases
            )
            return (holders, i)

        return min(candidates, key=coverage)

    def _op_result(self, request, host: _Host):
        index = int(request["cube"])
        worker = int(request.get("worker", host.base_index))
        status = str(request["status"])
        host.leases.discard(index)
        share = request.get("share")
        if isinstance(share, dict):
            self._share_totals[worker] = {
                key: int(share.get(key, 0))
                for key in ("exported", "suppressed", "received", "installed")
            }
        if index not in self._done:
            model = request.get("model")
            self._done[index] = DistOutcome(
                index=index,
                status=status,
                model=dict(model) if isinstance(model, dict) else None,
                stats=dict(request.get("stats") or {}),
                worker=worker,
                host=host.host_id,
            )
            self._decided_log.append(index)
            # Late duplicate holders learn via the ``decided`` list on
            # their next response and cancel locally.
        return {"id": request.get("id"), "ok": True}

    def _op_clauses(self, request, host: _Host):
        admitted = 0
        if self.share:
            for payload in request.get("batch", ()):  # type: ignore[union-attr]
                literals = tuple(
                    tuple(literal) for literal in payload[0]
                )
                lbd = int(payload[1])
                if not (
                    len(literals) <= 2 or 0 < lbd <= self.relay_max_lbd
                ):
                    continue
                key = clause_payload_key((literals, lbd))
                if key in self._clause_keys:
                    continue
                self._clause_keys.add(key)
                self._clause_log.append((host.host_id, (literals, lbd)))
                admitted += 1
        return {
            "id": request.get("id"),
            "ok": True,
            "admitted": admitted,
        }

    # ------------------------------------------------------------------
    # Broadcast state piggy-backed on every response
    # ------------------------------------------------------------------
    def _augment(self, response: Dict[str, object], host: _Host) -> None:
        batches: List[List[tuple]] = []
        chunk: List[tuple] = []
        while host.clause_cursor < len(self._clause_log):
            owner, payload = self._clause_log[host.clause_cursor]
            host.clause_cursor += 1
            if owner == host.host_id:
                continue
            chunk.append(payload)
            if len(chunk) >= _RELAY_CHUNK:
                batches.append(chunk)
                chunk = []
        if chunk:
            batches.append(chunk)
        if batches:
            response["clauses"] = [
                [list(payload) for payload in batch] for batch in batches
            ]
        if host.decided_cursor < len(self._decided_log):
            response["decided"] = self._decided_log[host.decided_cursor:]
            host.decided_cursor = len(self._decided_log)
        if self._settled.is_set() or self._past_deadline():
            response["stop"] = True

    # ------------------------------------------------------------------
    # Leases, requeue, verdict
    # ------------------------------------------------------------------
    def _sweep_leases(self) -> None:
        now = time.monotonic()
        for host in list(self._hosts.values()):
            if (
                host.leases
                and now - host.last_seen > self.lease_s
            ):
                self._release_leases(
                    host,
                    f"host {host.host_id} lease expired "
                    f"({now - host.last_seen:.1f}s silent)",
                )

    def _drop_host(self, host_id: str, reason: str) -> None:
        host = self._hosts.pop(host_id, None)
        if host is None:
            return
        logger.info("dist hub: host %s left (%s)", host_id, reason)
        self._release_leases(host, reason)

    def _release_leases(self, host: _Host, reason: str) -> None:
        for index in sorted(host.leases):
            if index in self._done:
                continue
            still_held = any(
                index in other.leases
                for other in self._hosts.values()
                if other is not host
            )
            if still_held:
                continue
            if self._retries.get(index, 0) >= 1:
                self._settle(
                    "unknown",
                    note="",
                    failure=(
                        f"cube {index} lost twice to host failures "
                        f"({reason})"
                    ),
                )
                break
            self._retries[index] = self._retries.get(index, 0) + 1
            self._requeues += 1
            self._pending.insert(0, index)
            logger.info(
                "dist hub: requeued cube %d (%s)", index, reason
            )
        host.leases.clear()

    def _verdict(self) -> Optional[str]:
        for outcome in self._done.values():
            if outcome.status == "sat":
                return "sat"
        if self.root_index is not None:
            root = self._done.get(self.root_index)
            if root is not None and root.status == "unsat":
                return "unsat"
        splits = [
            i for i in range(len(self.cubes)) if i != self.root_index
        ]
        if splits and all(i in self._done for i in splits):
            if all(self._done[i].status == "unsat" for i in splits):
                return "unsat"
        if len(self._done) == len(self.cubes):
            return "unknown"
        return None

    def _maybe_settle(self) -> None:
        if self._settled.is_set():
            return
        verdict = self._verdict()
        if verdict is not None:
            self._settle(verdict)
        elif self._past_deadline():
            note = (
                f"dist timeout after {self._timeout:.1f}s"
                if self._timeout is not None
                else "dist timeout"
            )
            self._settle("unknown", note=note)

    def _settle(
        self,
        status: str,
        note: str = "",
        failure: Optional[str] = None,
        force: bool = False,
    ) -> None:
        if self._settled.is_set() and not force:
            return
        result = DistResult(status=status, note=note, failure=failure)
        for outcome in self._done.values():
            if outcome.status == "sat":
                result.model = outcome.model
                result.winning_cube = outcome.index
                result.winning_worker = outcome.worker
                result.winning_host = outcome.host
                break
        result.outcomes = dict(self._done)
        result.share_totals = {
            key: sum(
                totals.get(key, 0)
                for totals in self._share_totals.values()
            )
            for key in ("exported", "suppressed", "received", "installed")
        }
        result.requeues = self._requeues
        result.clauses_relayed = len(self._clause_log)
        result.hosts_seen = self._hosts_seen
        self._result = result
        self._settled.set()

    def _past_deadline(self) -> bool:
        return (
            self._deadline is not None
            and time.monotonic() > self._deadline
        )

    def _remaining(self) -> Optional[float]:
        if self._deadline is None:
            return self.base_config.timeout
        return max(0.0, self._deadline - time.monotonic())
