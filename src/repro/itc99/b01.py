"""b01: serial-flow comparator FSM (ITC'99), re-modelled.

The original b01 is a small FSM comparing two serial bit flows.  This
model keeps that shape — two 1-bit inputs, a match-tracking FSM — and
adds the modulo-8 frame counter and a small accumulator datapath that
give property 1 its bound-dependent satisfiability:

* ``b01_1``: "never (cnt == 1 and the flows matched twice in a row with
  the accumulator past its threshold)".  The counter makes a violation
  possible exactly when ``(bound - 1) mod 8 == 1`` — SAT at bounds 10
  and 50, UNSAT at 20 and 100, matching Tables 1 and 2.
"""

from __future__ import annotations

from repro.bmc.property import SafetyProperty
from repro.rtl.builder import CircuitBuilder
from repro.rtl.circuit import Circuit


def build() -> Circuit:
    """Construct the sequential b01 model."""
    b = CircuitBuilder("b01")
    a = b.input("a", 1)
    flow = b.input("flow", 1)

    # Modulo-8 frame counter (free running).
    cnt = b.register("cnt", 3, init=0)
    b.next_state(cnt, b.inc(cnt))

    # Match FSM: tracks whether the two flows agreed in the last two
    # cycles (the b01 comparison core).
    matched_once = b.register("matched_once", 1, init=0)
    matched_twice = b.register("matched_twice", 1, init=0)
    agree = b.xnor(a, flow, name="agree")
    b.next_state(matched_once, agree)
    b.next_state(matched_twice, b.and_(agree, matched_once))

    # Small datapath: accumulate 3 per agreeing cycle, 1 otherwise.
    acc = b.register("acc", 8, init=0)
    step = b.mux(agree, b.const(3, 8), b.const(1, 8), name="step")
    b.next_state(acc, b.add(acc, step))

    armed = b.eq(cnt, b.const(1, 3), name="armed")
    hot = b.ge(acc, b.const(9, 8), name="hot")
    bad = b.and_(armed, matched_twice, hot, name="bad")
    ok = b.not_(bad, name="ok_p1")
    b.output("ok_p1", ok)
    b.output("cnt_out", cnt)
    b.output("acc_out", acc)
    return b.build()


PROPERTIES = {
    "1": SafetyProperty(
        name="1",
        ok_signal="ok_p1",
        description=(
            "never (cnt == 1 and flows matched twice with acc >= 9); "
            "violable iff (bound - 1) mod 8 == 1"
        ),
    ),
}
