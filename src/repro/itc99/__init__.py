"""ITC'99-style benchmark circuits and the BMC instance registry.

The original ITC'99 RTL (VHDL, via the VIS distribution) is not
available offline; these are re-modelled equivalents at matched shape —
see DESIGN.md ("Substitutions").  Instances are addressed with the
paper's naming scheme: ``instance("b13_5", 100)`` is property 5 of b13
unrolled for 100 time frames.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import CircuitError
from repro.bmc.property import BmcInstance, SafetyProperty, make_bmc_instance
from repro.rtl.circuit import Circuit
from repro.itc99 import b01, b02, b03, b04, b06, b13
from repro.itc99.generator import (
    random_combinational_circuit,
    random_safety_property,
    random_sequential_circuit,
)

#: circuit name -> (builder, properties).
CIRCUITS: Dict[str, Tuple[Callable[[], Circuit], Dict[str, SafetyProperty]]] = {
    "b01": (b01.build, b01.PROPERTIES),
    "b02": (b02.build, b02.PROPERTIES),
    "b03": (b03.build, b03.PROPERTIES),
    "b04": (b04.build, b04.PROPERTIES),
    "b06": (b06.build, b06.PROPERTIES),
    "b13": (b13.build, b13.PROPERTIES),
}

_circuit_cache: Dict[str, Circuit] = {}


def circuit(name: str) -> Circuit:
    """The (cached) sequential circuit for a benchmark name."""
    if name not in CIRCUITS:
        raise CircuitError(f"unknown benchmark circuit {name!r}")
    if name not in _circuit_cache:
        builder, _ = CIRCUITS[name]
        _circuit_cache[name] = builder()
    return _circuit_cache[name]


def instance(case: str, bound: int) -> BmcInstance:
    """A BMC instance by paper-style name, e.g. ``instance("b13_5", 100)``."""
    circuit_name, _, property_name = case.partition("_")
    if not property_name:
        raise CircuitError(
            f"instance name {case!r} must look like 'b13_5'"
        )
    if circuit_name not in CIRCUITS:
        raise CircuitError(f"unknown benchmark circuit {circuit_name!r}")
    _, properties = CIRCUITS[circuit_name]
    if property_name not in properties:
        raise CircuitError(
            f"{circuit_name} has no property {property_name!r}; "
            f"available: {sorted(properties)}"
        )
    return make_bmc_instance(
        circuit(circuit_name), properties[property_name], bound
    )


def available_cases() -> List[str]:
    """Every circuit_property combination, e.g. ['b01_1', ..., 'b13_8']."""
    cases = []
    for name, (_, properties) in sorted(CIRCUITS.items()):
        for property_name in sorted(properties, key=str):
            cases.append(f"{name}_{property_name}")
    return cases


__all__ = [
    "CIRCUITS",
    "available_cases",
    "circuit",
    "instance",
    "random_combinational_circuit",
    "random_safety_property",
    "random_sequential_circuit",
]
