"""b04: min/max tracker with an 8-bit datapath (ITC'99), re-modelled.

The original b04 keeps running maximum (RMAX) and minimum (RMIN)
registers over an 8-bit data stream — the paper's Figure 2 fragment is
lifted from exactly this comparator/mux structure.  Property 1 asks for
a data sequence spreading the extremes more than 200 apart: satisfiable
at any bound >= 3, and finding the witness requires the solver to drive
the 8-bit datapath through the muxes — the instance family where the
structural decision strategy shines in Table 2 (112.78 s -> 0.34 s at
bound 100).
"""

from __future__ import annotations

from repro.bmc.property import SafetyProperty
from repro.rtl.builder import CircuitBuilder
from repro.rtl.circuit import Circuit


def build() -> Circuit:
    """Construct the sequential b04 model."""
    b = CircuitBuilder("b04")
    data = b.input("data", 8)
    enable = b.input("enable", 1)

    rmax = b.register("rmax", 8, init=0)
    rmin = b.register("rmin", 8, init=255)
    seen = b.register("seen", 1, init=0)
    seen2 = b.register("seen2", 1, init=0)

    is_greater = b.gt(data, rmax, name="is_greater")
    is_smaller = b.lt(data, rmin, name="is_smaller")
    new_max = b.mux(is_greater, data, rmax, name="new_max")
    new_min = b.mux(is_smaller, data, rmin, name="new_min")

    # On the very first enabled sample both extremes snap to the data.
    first_sample = b.and_(enable, b.not_(seen), name="first_sample")
    max_candidate = b.mux(first_sample, data, new_max, name="max_candidate")
    min_candidate = b.mux(first_sample, data, new_min, name="min_candidate")

    b.next_state(rmax, b.mux(enable, max_candidate, rmax))
    b.next_state(rmin, b.mux(enable, min_candidate, rmin))
    b.next_state(seen, b.or_(enable, seen))
    b.next_state(seen2, b.or_(b.and_(enable, seen), seen2))

    spread = b.sub(rmax, rmin, name="spread")
    wide = b.gt(spread, b.const(200, 8), name="wide")
    bad = b.and_(seen2, wide, name="bad")
    ok = b.not_(bad, name="ok_p1")
    b.output("ok_p1", ok)
    b.output("rmax_out", rmax)
    b.output("rmin_out", rmin)
    return b.build()


PROPERTIES = {
    "1": SafetyProperty(
        name="1",
        ok_signal="ok_p1",
        description=(
            "never (two samples seen and rmax - rmin > 200): a witness "
            "exists at any bound >= 3 (SAT)"
        ),
    ),
}
