"""b13: weather-station interface (ITC'99), re-modelled.

The original b13 drives sensors over a serial link: an FSM sequences
load/transmit phases, a 4-bit counter paces the shift register, and an
8-bit datapath carries the sample.  This model reproduces that shape:

* FSM ``state``: 0 idle -> 1 load -> 2 transmit (8 counted shifts) ->
  3 done -> 0, with a guarded ``state + 1`` mixed into the next-state
  logic so control reasoning needs case splits;
* ``cnt``: 4-bit transmit counter, incremented behind a ``cnt < 8``
  guard;
* ``shreg``: 8-bit shift register, reloaded in load, shifted in tx;
* ``acc``: saturating 8-bit activity accumulator (guarded at 200);
* ``idle_cnt``: counts consecutive idle cycles (property 40).

Properties (the paper's numbering is kept; all bounds refer to
violation at exactly the last frame):

* ``1``  cnt <= 8                      — invariant (UNSAT at all bounds)
* ``2``  not(state == 2 and cnt == 15) — invariant (UNSAT)
* ``3``  state != 6                    — control-only invariant (UNSAT);
         the paper notes this family is provable purely in control
         logic, the case where plain HDPLL beats justification.
* ``5``  acc <= 250                    — datapath invariant (UNSAT)
* ``8``  not(state == 3 and cnt == 0)  — FSM/counter invariant (UNSAT)
* ``40`` idle_cnt != 12                — violable at frame 12, so SAT
         at bound 13 (Table 2's b13_40(13) S row)
"""

from __future__ import annotations

from repro.bmc.property import SafetyProperty
from repro.rtl.builder import CircuitBuilder
from repro.rtl.circuit import Circuit


def build() -> Circuit:
    """Construct the sequential b13 model."""
    b = CircuitBuilder("b13")
    start = b.input("start", 1)
    din = b.input("din", 8)

    state = b.register("state", 3, init=0)
    cnt = b.register("cnt", 4, init=0)
    shreg = b.register("shreg", 8, init=0)
    acc = b.register("acc", 8, init=0)
    idle_cnt = b.register("idle_cnt", 4, init=0)

    in_idle = b.eq(state, b.const(0, 3), name="in_idle")
    in_load = b.eq(state, b.const(1, 3), name="in_load")
    in_tx = b.eq(state, b.const(2, 3), name="in_tx")
    in_done = b.eq(state, b.const(3, 3), name="in_done")

    # --- FSM next state -------------------------------------------------
    tx_done = b.eq(cnt, b.const(8, 4), name="tx_done")
    advanced = b.inc(state, name="advanced")
    # idle: advance on start, else stay.
    from_idle = b.mux(start, advanced, state, name="from_idle")
    # load: always advance (guarded increment keeps the hull wide).
    from_load = advanced
    # tx: advance when the counter saturates.
    from_tx = b.mux(tx_done, advanced, state, name="from_tx")
    # done: restart.
    from_done = b.const(0, 3, name="from_done")

    next_state = b.mux(
        in_idle,
        from_idle,
        b.mux(in_load, from_load, b.mux(in_tx, from_tx, from_done)),
        name="next_state",
    )
    b.next_state(state, next_state)

    # --- transmit counter -----------------------------------------------
    can_count = b.lt(cnt, b.const(8, 4), name="can_count")
    counted = b.mux(can_count, b.inc(cnt), cnt, name="counted")
    next_cnt = b.mux(
        in_tx,
        counted,
        b.mux(in_idle, b.const(0, 4), cnt),
        name="next_cnt",
    )
    b.next_state(cnt, next_cnt)

    # --- shift register ---------------------------------------------------
    shifted = b.shr(shreg, 1, name="shifted")
    next_shreg = b.mux(
        in_load,
        din,
        b.mux(in_tx, shifted, shreg),
        name="next_shreg",
    )
    b.next_state(shreg, next_shreg)

    # --- activity accumulator ---------------------------------------------
    acc_guard = b.and_(in_tx, b.lt(acc, b.const(200, 8)), name="acc_guard")
    next_acc = b.mux(acc_guard, b.inc(acc), acc, name="next_acc")
    b.next_state(acc, next_acc)

    # --- idle counter -------------------------------------------------------
    staying_idle = b.and_(in_idle, b.not_(start), name="staying_idle")
    next_idle = b.mux(
        staying_idle, b.inc(idle_cnt), b.const(0, 4), name="next_idle"
    )
    b.next_state(idle_cnt, next_idle)

    # --- property monitors ---------------------------------------------------
    ok1 = b.le(cnt, b.const(8, 4), name="ok_p1")
    ok2 = b.not_(
        b.and_(in_tx, b.eq(cnt, b.const(15, 4))), name="ok_p2"
    )
    ok3 = b.ne(state, b.const(6, 3), name="ok_p3")
    ok5 = b.le(acc, b.const(250, 8), name="ok_p5")
    ok8 = b.not_(
        b.and_(in_done, b.eq(cnt, b.const(0, 4))), name="ok_p8"
    )
    ok40 = b.ne(idle_cnt, b.const(12, 4), name="ok_p40")

    for name, net in (
        ("ok_p1", ok1),
        ("ok_p2", ok2),
        ("ok_p3", ok3),
        ("ok_p5", ok5),
        ("ok_p8", ok8),
        ("ok_p40", ok40),
    ):
        b.output(name, net)
    b.output("state_out", state)
    b.output("cnt_out", cnt)
    b.output("shreg_out", shreg)
    b.output("acc_out", acc)
    return b.build()


PROPERTIES = {
    "1": SafetyProperty("1", "ok_p1", "cnt <= 8 (UNSAT)"),
    "2": SafetyProperty("2", "ok_p2", "not in_tx with cnt == 15 (UNSAT)"),
    "3": SafetyProperty("3", "ok_p3", "state != 6, control-only (UNSAT)"),
    "5": SafetyProperty("5", "ok_p5", "acc <= 250 (UNSAT)"),
    "8": SafetyProperty("8", "ok_p8", "not in done with cnt == 0 (UNSAT)"),
    "40": SafetyProperty("40", "ok_p40", "idle_cnt != 12 (SAT at bound 13)"),
}
