"""b02: BCD serial recognizer FSM (ITC'99), re-modelled.

A 7-state FSM over a serial character input.  The next-state function
deliberately mixes a guarded increment (``state + 1`` behind a
``state < 6`` check) with constant transitions, so the unreachable
state 7 cannot be excluded by interval reasoning alone — each time frame
needs a genuine case split, which is what makes the UNSAT proof cost
grow with the bound (Tables 1 and 2: b02_1 is UNSAT at every bound).
"""

from __future__ import annotations

from repro.bmc.property import SafetyProperty
from repro.rtl.builder import CircuitBuilder
from repro.rtl.circuit import Circuit


def build() -> Circuit:
    """Construct the sequential b02 model."""
    b = CircuitBuilder("b02")
    char = b.input("char", 1)

    state = b.register("state", 3, init=0)
    can_advance = b.lt(state, b.const(6, 3), name="can_advance")
    advanced = b.inc(state, name="advanced")
    on_one = b.mux(can_advance, advanced, b.const(0, 3), name="on_one")

    # A zero character from the "accept" checkpoint (state 3) restarts;
    # otherwise the state holds.
    at_checkpoint = b.eq(state, b.const(3, 3), name="at_checkpoint")
    on_zero = b.mux(at_checkpoint, b.const(0, 3), state, name="on_zero")

    next_state = b.mux(char, on_one, on_zero, name="next_state")
    b.next_state(state, next_state)

    ok = b.ne(state, b.const(7, 3), name="ok_p1")
    b.output("ok_p1", ok)
    b.output("state_out", state)
    return b.build()


PROPERTIES = {
    "1": SafetyProperty(
        name="1",
        ok_signal="ok_p1",
        description="state 7 is unreachable (UNSAT at every bound)",
    ),
}
