"""Parametric workload generators.

Two generators back the test-suite oracles and the scaling studies:

* :func:`random_sequential_circuit` — random FSM+datapath circuits in
  the ITC'99 style (registers, guarded counters, mux trees,
  comparators), with a designated 1-bit ``ok`` monitor output;
* :func:`random_combinational_circuit` — plain combinational circuits
  for direct solver cross-checking.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.bmc.property import SafetyProperty
from repro.rtl.builder import CircuitBuilder
from repro.rtl.circuit import Circuit


def random_combinational_circuit(
    seed: int,
    num_word_inputs: int = 2,
    width: int = 3,
    operations: int = 8,
) -> Circuit:
    """A random combinational circuit with 'flag' and 'word' outputs."""
    rng = random.Random(seed)
    b = CircuitBuilder(f"rand_comb_{seed}")
    words = [b.input(f"w{i}", width) for i in range(num_word_inputs)]
    words.append(b.const(rng.randint(0, 2**width - 1), width))
    bools = [b.input("b0", 1)]
    for _ in range(operations):
        roll = rng.random()
        if roll < 0.3:
            words.append(
                getattr(b, rng.choice(["add", "sub"]))(
                    rng.choice(words), rng.choice(words)
                )
            )
        elif roll < 0.4:
            words.append(b.mul_const(rng.choice(words), rng.randint(0, 3)))
        elif roll < 0.65:
            kind = rng.choice(["eq", "ne", "lt", "le", "gt", "ge"])
            bools.append(
                getattr(b, kind)(rng.choice(words), rng.choice(words))
            )
        elif roll < 0.8 and len(bools) >= 2:
            kind = rng.choice(["and_", "or_", "xor"])
            if kind == "xor":
                bools.append(b.xor(rng.choice(bools), rng.choice(bools)))
            else:
                bools.append(
                    getattr(b, kind)(rng.choice(bools), rng.choice(bools))
                )
        else:
            words.append(
                b.mux(rng.choice(bools), rng.choice(words), rng.choice(words))
            )
    b.output("flag", bools[-1])
    b.output("word", words[-1])
    return b.build()


def random_sequential_circuit(
    seed: int,
    width: int = 4,
    num_registers: int = 3,
    operations: int = 10,
) -> Circuit:
    """A random sequential circuit with an ``ok`` safety monitor.

    The monitor compares a derived word against a threshold, so both
    SAT and UNSAT instances occur across seeds and bounds.
    """
    rng = random.Random(seed)
    b = CircuitBuilder(f"rand_seq_{seed}")
    control = b.input("ctl", 1)
    data = b.input("data", width)

    registers = [
        b.register(f"r{i}", width, init=rng.randint(0, 2**width - 1))
        for i in range(num_registers)
    ]
    words: List = list(registers) + [data]
    bools: List = [control]

    for _ in range(operations):
        roll = rng.random()
        if roll < 0.35:
            words.append(
                getattr(b, rng.choice(["add", "sub"]))(
                    rng.choice(words), rng.choice(words)
                )
            )
        elif roll < 0.6:
            kind = rng.choice(["eq", "ne", "lt", "le", "gt", "ge"])
            bools.append(
                getattr(b, kind)(rng.choice(words), rng.choice(words))
            )
        elif roll < 0.75 and len(bools) >= 2:
            bools.append(b.and_(rng.choice(bools), rng.choice(bools)))
        else:
            words.append(
                b.mux(rng.choice(bools), rng.choice(words), rng.choice(words))
            )

    for register in registers:
        candidates = [w for w in words if w.width == register.width]
        source = rng.choice(candidates)
        guarded = b.mux(rng.choice(bools), source, register)
        b.next_state(register, guarded)

    monitor_word = rng.choice(
        [w for w in words if w.width == width]
    )
    threshold = rng.randint(0, 2**width - 1)
    ok = b.not_(
        b.gt(monitor_word, b.const(threshold, width)), name="ok"
    )
    b.output("ok", ok)
    b.output("probe", monitor_word)
    return b.build()


def random_safety_property() -> SafetyProperty:
    """The monitor property of :func:`random_sequential_circuit`."""
    return SafetyProperty("rand", "ok", "generated monitor stays high")
