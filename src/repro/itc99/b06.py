"""b06: interrupt handler (ITC'99), re-modelled.

The original b06 is a small controller that acknowledges an interrupt
line with a handshake FSM.  The model: an FSM (idle / ack / service /
drain), a nesting counter bounded by a guard, and an urgency flag raised
when interrupts arrive during service.

Properties (extensions — b06 is not in the paper's table set):

* ``1``  the nesting counter stays within its bound (UNSAT invariant);
* ``2``  the FSM never reaches the illegal encoding 5 (UNSAT, control-
         only — the same predicate-abstraction-friendly shape as b13_3);
* ``40`` urgent service is reachable (SAT at small bounds).
"""

from __future__ import annotations

from repro.bmc.property import SafetyProperty
from repro.rtl.builder import CircuitBuilder
from repro.rtl.circuit import Circuit


def build() -> Circuit:
    """Construct the sequential b06 model."""
    b = CircuitBuilder("b06")
    irq = b.input("irq", 1)

    state = b.register("state", 3, init=0)
    nesting = b.register("nesting", 3, init=0)
    urgent = b.register("urgent", 1, init=0)

    in_idle = b.eq(state, b.const(0, 3), name="in_idle")
    in_ack = b.eq(state, b.const(1, 3), name="in_ack")
    in_service = b.eq(state, b.const(2, 3), name="in_service")
    in_drain = b.eq(state, b.const(3, 3), name="in_drain")

    advanced = b.inc(state, name="advanced")
    from_idle = b.mux(irq, advanced, state, name="from_idle")
    from_ack = advanced
    done = b.eq(nesting, b.const(0, 3), name="done")
    from_service = b.mux(done, advanced, state, name="from_service")
    from_drain = b.const(0, 3, name="from_drain")
    next_state = b.mux(
        in_idle,
        from_idle,
        b.mux(in_ack, from_ack, b.mux(in_service, from_service, from_drain)),
        name="next_state",
    )
    b.next_state(state, next_state)

    # Nesting counter: grows on irq during service (guarded at 5),
    # drains by one per service cycle otherwise.
    can_nest = b.lt(nesting, b.const(5, 3), name="can_nest")
    nest_up = b.and_(in_service, irq, can_nest, name="nest_up")
    positive = b.gt(nesting, b.const(0, 3), name="positive")
    nest_down = b.and_(in_service, b.not_(irq), positive, name="nest_down")
    next_nesting = b.mux(
        nest_up,
        b.inc(nesting),
        b.mux(nest_down, b.sub(nesting, 1), nesting),
        name="next_nesting",
    )
    b.next_state(nesting, next_nesting)

    # Urgency: raised when nesting saturates during service.
    saturated = b.ge(nesting, b.const(4, 3), name="saturated")
    b.next_state(
        urgent, b.or_(b.and_(in_service, saturated), urgent)
    )

    ok1 = b.le(nesting, b.const(5, 3), name="ok_p1")
    ok2 = b.ne(state, b.const(5, 3), name="ok_p2")
    ok40 = b.not_(urgent, name="ok_p40")

    b.output("ok_p1", ok1)
    b.output("ok_p2", ok2)
    b.output("ok_p40", ok40)
    b.output("state_out", state)
    b.output("nesting_out", nesting)
    return b.build()


PROPERTIES = {
    "1": SafetyProperty("1", "ok_p1", "nesting stays <= 5 (UNSAT)"),
    "2": SafetyProperty("2", "ok_p2", "state 5 unreachable (UNSAT)"),
    "40": SafetyProperty(
        "40", "ok_p40", "urgent service reachable (SAT at bounds >= 11)"
    ),
}
