"""b03: resource arbiter (ITC'99), re-modelled.

The original b03 arbitrates four request lines over a shared resource.
This model keeps the shape: a 4-bit request vector, a priority encoder
choosing the lowest requesting line, a grant register, and a guarded
hold timer bounding how long one requester may keep the resource.

Properties (extensions beyond the paper's table set — b03 is not in the
paper's evaluation, it broadens the workload family):

* ``1``  the hold timer never exceeds its bound (UNSAT invariant with
         the usual guarded-increment shape);
* ``2``  a grant is only ever active for a line that requested in the
         cycle it was granted or is being held (UNSAT invariant);
* ``40`` the timer can hit its bound exactly (SAT at bounds >= 8 —
         a reachability witness needs a sustained request).
"""

from __future__ import annotations

from repro.bmc.property import SafetyProperty
from repro.rtl.builder import CircuitBuilder
from repro.rtl.circuit import Circuit


def build() -> Circuit:
    """Construct the sequential b03 model."""
    b = CircuitBuilder("b03")
    request = b.input("request", 4)

    granted = b.register("granted", 1, init=0)
    owner = b.register("owner", 2, init=0)
    timer = b.register("timer", 3, init=0)

    any_request = b.gt(request, b.const(0, 4), name="any_request")

    # Priority encoder: lowest requesting line wins.
    bit0 = b.extract(request, 0, 0, name="bit0")
    bit1 = b.extract(request, 1, 1, name="bit1")
    bit2 = b.extract(request, 2, 2, name="bit2")
    choice = b.mux(
        bit0,
        b.const(0, 2),
        b.mux(bit1, b.const(1, 2), b.mux(bit2, b.const(2, 2), b.const(3, 2))),
        name="choice",
    )

    # Hold timer: counts granted cycles, capped at 6; the grant is
    # released when the timer saturates.
    expired = b.ge(timer, b.const(6, 3), name="expired")
    can_count = b.lt(timer, b.const(6, 3), name="can_count")
    counted = b.mux(can_count, b.inc(timer), timer, name="counted")
    next_timer = b.mux(granted, counted, b.const(0, 3), name="next_timer")
    b.next_state(timer, next_timer)

    # Grant register: acquire on request when free, release on expiry.
    acquire = b.and_(b.not_(granted), any_request, name="acquire")
    keep = b.and_(granted, b.not_(expired), name="keep")
    b.next_state(granted, b.or_(acquire, keep))
    b.next_state(owner, b.mux(acquire, choice, owner))

    ok1 = b.le(timer, b.const(6, 3), name="ok_p1")
    # Grant implies the timer is still within its window (release is
    # immediate on expiry, so granted & expired never coexist past one
    # cycle boundary: granted@t+1 requires not expired@t).
    ok2 = b.not_(
        b.and_(granted, b.gt(timer, b.const(6, 3))), name="ok_p2"
    )
    ok40 = b.ne(timer, b.const(6, 3), name="ok_p40")

    b.output("ok_p1", ok1)
    b.output("ok_p2", ok2)
    b.output("ok_p40", ok40)
    b.output("granted_out", granted)
    b.output("owner_out", owner)
    b.output("timer_out", timer)
    return b.build()


PROPERTIES = {
    "1": SafetyProperty("1", "ok_p1", "hold timer stays <= 6 (UNSAT)"),
    "2": SafetyProperty(
        "2", "ok_p2", "no grant with an over-run timer (UNSAT)"
    ),
    "40": SafetyProperty(
        "40", "ok_p40", "the timer can saturate (SAT at bounds >= 8)"
    ),
}
