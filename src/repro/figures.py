"""Reconstructions of the paper's running examples (Figures 1–4).

These circuits are used by the test suite to reproduce the paper's
worked examples literally, and by the example scripts to demonstrate
the library on the exact structures the paper discusses.
"""

from __future__ import annotations

from repro.rtl.builder import CircuitBuilder
from repro.rtl.circuit import Circuit


def figure1_circuit() -> Circuit:
    """Figure 1: recursive learning example.

    ``e = OR(c, d)`` with ``c = AND(a, b)`` and ``d = AND(a, b)``:
    level-1 recursive learning on ``e = 1`` discovers ``a = 1`` and
    ``b = 1``.
    """
    b = CircuitBuilder("figure1")
    a = b.input("a", 1)
    b_in = b.input("b", 1)
    c = b.and_(a, b_in, name="c")
    d = b.and_(a, b_in, name="d")
    e = b.or_(c, d, name="e")
    b.output("e", e)
    return b.build()


def figure2_circuit() -> Circuit:
    """Figure 2(a): the b04 fragment used for predicate learning.

    Control relations::

        b1 = (w1 > 0)      b2 = (w1 > 0)     (distinct comparator nodes)
        b3 = (w2 >= 1)     b4 = (w2 <= 1)
        b5 = AND(b0, b1)   b6 = AND(b0, b2)  b7 = AND(b3, b4)
        b8 = OR(b5, b7)    b9 = OR(b6, b7)

    ``b8``/``b9`` drive the two mux selects; predicate learning derives
    the four relations of Figure 2(b): ``b5=0 → b6=0``, ``b6=0 → b5=0``,
    ``b8=1 → b9=1`` and ``b9=1 → b8=1``.
    """
    b = CircuitBuilder("figure2")
    w0 = b.input("w0", 3)
    w1 = b.input("w1", 3)
    w2 = b.input("w2", 3)
    w3 = b.input("w3", 3)
    w4 = b.input("w4", 3)
    b0 = b.input("b0", 1)
    b1 = b.gt(w1, 0, name="b1")
    b2 = b.gt(w1, 0, name="b2")
    b3 = b.ge(w2, 1, name="b3")
    b4 = b.le(w2, 1, name="b4")
    b5 = b.and_(b0, b1, name="b5")
    b6 = b.and_(b0, b2, name="b6")
    b7 = b.and_(b3, b4, name="b7")
    b8 = b.or_(b5, b7, name="b8")
    b9 = b.or_(b6, b7, name="b9")
    w5 = b.mux(b8, w3, w0, name="w5")
    w6 = b.mux(b9, w4, w0, name="w6")
    b.output("w5", w5)
    b.output("w6", w6)
    return b.build()


def figure3_circuits() -> "tuple[Circuit, Circuit]":
    """Figure 3: the two justification examples.

    (a) ``o = AND(i1, i2)`` — requiring ``o = 0`` is unjustified until an
        input is decided to 0.
    (b) ``o = sel ? i2 : i1`` — an RTL mux whose output interval demands
        a select decision.
    """
    b = CircuitBuilder("figure3a")
    i1 = b.input("i1", 1)
    i2 = b.input("i2", 1)
    o = b.and_(i1, i2, name="o")
    b.output("o", o)
    and_circuit = b.build()

    b = CircuitBuilder("figure3b")
    sel = b.input("sel", 1)
    i1 = b.input("i1", 4)
    i2 = b.input("i2", 4)
    o = b.mux(sel, i2, i1, name="o")
    b.output("o", o)
    mux_circuit = b.build()
    return and_circuit, mux_circuit


def figure4_circuit() -> Circuit:
    """Figure 4(a): the structural-decision example.

    Datapath::

        w3 = mux(b2, <6>, w1)       # b2 = 1 selects the constant 6
        w4 = mux(b1, w2, w3)        # b1 = 1 selects w2

    Predicates on ``w4`` (the "Comp" column of the figure)::

        b4 = (w4 > 5),  b5 = (w4 < 5),  b6 = (w4 == 5)
        b7 = AND(NOT b4, NOT b5, b6)

    Checking ``b7 = 1`` with ``w2`` assumed in ``<6, 7>`` reproduces the
    Figure 4(b) trace: imply ``{b4=0, b5=0, b6=1, w4=<5>}``; justify the
    ``w4`` mux with the decision ``b1 = 0`` (since ``w4 ∩ w2 = ∅``);
    justify the ``w3`` mux with ``b2 = 0`` (since ``<6> ∩ w3 = ∅``);
    J-frontier empty; the arithmetic solver certifies SAT.
    """
    b = CircuitBuilder("figure4")
    w1 = b.input("w1", 3)
    w2 = b.input("w2", 3)
    b1 = b.input("b1", 1)
    b2 = b.input("b2", 1)
    k6 = b.const(6, 3, name="k6")
    w3 = b.mux(b2, k6, w1, name="w3")
    w4 = b.mux(b1, w2, w3, name="w4")
    b4 = b.gt(w4, 5, name="b4")
    b5 = b.lt(w4, 5, name="b5")
    b6 = b.eq(w4, 5, name="b6")
    nb4 = b.not_(b4, name="nb4")
    nb5 = b.not_(b5, name="nb5")
    b7 = b.and_(nb4, nb5, b6, name="b7")
    b.output("b7", b7)
    b.output("w4", w4)
    return b.build()
