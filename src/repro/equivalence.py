"""RTL-RTL equivalence checking on top of HDPLL.

Section 6 of the paper singles out "data-path that has considerable
duplication such as in an RTL-RTL equivalence checking environment" as
the natural next application of predicate learning — a miter duplicates
every predicate, and learned cross-copy relations prune the search.
This module provides that environment:

* **combinational equivalence** — a miter over shared inputs; the two
  implementations are equivalent iff "some output differs" is UNSAT.
* **sequential equivalence** — the product machine of two designs
  checked cycle-by-cycle, bounded (BMC) or unbounded (k-induction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import CircuitError
from repro.core.config import SolverConfig
from repro.core.hdpll import solve_circuit
from repro.core.result import Status
from repro.rtl.circuit import Circuit
from repro.rtl.compose import copy_into
from repro.rtl.types import OpKind
from repro.bmc.induction import InductionStatus, prove_by_induction
from repro.bmc.property import SafetyProperty, make_bmc_instance


class EquivalenceStatus(enum.Enum):
    EQUIVALENT = "equivalent"
    DIFFERENT = "different"
    UNDECIDED = "undecided"


@dataclass
class EquivalenceResult:
    status: EquivalenceStatus
    #: Distinguishing input assignment (DIFFERENT only; miter net model).
    counterexample: Optional[Dict[str, int]] = None
    note: str = ""
    #: For sequential proofs: the induction depth that closed it.
    k: int = 0


def build_miter(
    left: Circuit,
    right: Circuit,
    outputs: Optional[Sequence[str]] = None,
) -> Circuit:
    """A miter: shared inputs, ``mismatch`` = OR of output differences.

    Both circuits must expose the compared ``outputs`` (default: every
    output alias of ``left``) at equal widths, and agree on the names
    and widths of their primary inputs.  Works for sequential circuits
    too — registers are instantiated per side (the product machine) and
    a 1-bit ``equal`` output monitors the outputs every cycle.
    """
    compared = list(outputs) if outputs is not None else sorted(left.outputs)
    for name in compared:
        if name not in left.outputs or name not in right.outputs:
            raise CircuitError(f"output {name!r} missing from one side")
        if left.outputs[name].width != right.outputs[name].width:
            raise CircuitError(f"output {name!r} widths differ")
    left_inputs = {net.name: net.width for net in left.inputs}
    right_inputs = {net.name: net.width for net in right.inputs}
    if left_inputs != right_inputs:
        raise CircuitError(
            f"input interfaces differ: {left_inputs} vs {right_inputs}"
        )

    miter = Circuit(f"miter_{left.name}_vs_{right.name}")
    left_map = copy_into(miter, left, prefix="l::", share_inputs=True)
    right_map = copy_into(miter, right, prefix="r::", share_inputs=True)

    difference_bits = []
    for name in compared:
        left_net = left_map[left.outputs[name].name]
        right_net = right_map[right.outputs[name].name]
        difference_bits.append(
            miter.add_node(
                OpKind.NE, (left_net, right_net), name=f"diff::{name}"
            )
        )
    if len(difference_bits) == 1:
        mismatch = miter.add_node(
            OpKind.BUF, (difference_bits[0],), name="mismatch"
        )
    else:
        mismatch = miter.add_node(
            OpKind.OR, tuple(difference_bits), name="mismatch"
        )
    equal = miter.add_node(OpKind.NOT, (mismatch,), name="equal")
    miter.mark_output("mismatch", mismatch)
    miter.mark_output("equal", equal)
    miter.validate()
    return miter


def check_combinational_equivalence(
    left: Circuit,
    right: Circuit,
    outputs: Optional[Sequence[str]] = None,
    config: Optional[SolverConfig] = None,
) -> EquivalenceResult:
    """Decide combinational equivalence via the miter."""
    if not left.is_combinational or not right.is_combinational:
        raise CircuitError(
            "use check_sequential_equivalence for circuits with registers"
        )
    miter = build_miter(left, right, outputs)
    result = solve_circuit(miter, {"mismatch": 1}, config)
    if result.status is Status.UNSAT:
        return EquivalenceResult(EquivalenceStatus.EQUIVALENT)
    if result.status is Status.SAT:
        return EquivalenceResult(
            EquivalenceStatus.DIFFERENT, counterexample=result.model
        )
    return EquivalenceResult(EquivalenceStatus.UNDECIDED, note=result.note)


def check_sequential_equivalence(
    left: Circuit,
    right: Circuit,
    outputs: Optional[Sequence[str]] = None,
    config: Optional[SolverConfig] = None,
    bound: Optional[int] = None,
    max_k: int = 8,
) -> EquivalenceResult:
    """Sequential equivalence of the product machine.

    With ``bound`` set: a BMC check ("outputs agree for the first
    ``bound`` cycles") — refutation-complete up to the bound.  Without:
    an unbounded k-induction proof attempt of the ``equal`` monitor.
    """
    miter = build_miter(left, right, outputs)
    prop = SafetyProperty("equal", "equal", "both sides agree every cycle")
    if bound is not None:
        for depth in range(1, bound + 1):
            instance = make_bmc_instance(miter, prop, depth)
            result = solve_circuit(instance.circuit, instance.assumptions, config)
            if result.status is Status.SAT:
                return EquivalenceResult(
                    EquivalenceStatus.DIFFERENT,
                    counterexample=result.model,
                    k=depth,
                )
            if result.status is Status.UNKNOWN:
                return EquivalenceResult(
                    EquivalenceStatus.UNDECIDED, note=result.note
                )
        return EquivalenceResult(
            EquivalenceStatus.UNDECIDED,
            note=f"no mismatch within {bound} cycles (bounded check)",
            k=bound,
        )
    induction = prove_by_induction(miter, prop, max_k=max_k, config=config)
    if induction.status is InductionStatus.PROVED:
        return EquivalenceResult(
            EquivalenceStatus.EQUIVALENT, k=induction.k
        )
    if induction.status is InductionStatus.VIOLATED:
        return EquivalenceResult(
            EquivalenceStatus.DIFFERENT,
            counterexample=induction.counterexample,
            k=induction.k,
        )
    return EquivalenceResult(
        EquivalenceStatus.UNDECIDED, note=induction.note
    )
