"""Warm :class:`SolverSession` cache for the solver daemon.

Sessions are the daemon's whole value proposition: a compiled
constraint system plus the learned clauses and predicates accumulated
by earlier requests, kept alive so the next request for the same
netlist pays neither the compile nor the re-learning (the paper's
cross-call reuse, measured at 5.5x in PR 4).

Entries are keyed by the circuit's :func:`netlist_signature` — the
same index-normalized structural hash the kernel-plan cache uses — so
requests naming the same unrolled netlist share one session.  The cache
is an LRU bounded by an entry count *and* an approximate byte budget
(sessions hold the compiled system, domains and the clause database;
a handful of deep unrollings is real memory).

Two concurrency rules, both forced by ``HdpllSolver`` not being
thread-safe:

* **single-flight compile** — concurrent requests for a key that is
  still building share one build task instead of compiling N times;
* **serialized queries** — every entry carries an ``asyncio.Lock`` and
  the server holds it across a query, so one session never sees two
  concurrent ``solve`` calls (requests for *different* sessions still
  run in parallel on the executor).

Eviction only drops idle entries (lock not held); an entry evicted
while a late holder still references it stays alive until that holder
releases it — dropping from the table never invalidates a session.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Awaitable, Callable, Dict, Mapping, Optional

from repro.core.session import SolverSession


def estimate_session_bytes(session: SolverSession) -> int:
    """Coarse per-session memory estimate for the byte budget.

    Deliberately cheap and deliberately rough (a real measurement would
    need a deep ``sys.getsizeof`` walk): variables dominate through
    their domain/activity slots, clauses through literal tuples and
    watch entries.  The budget only has to rank sessions against each
    other, and both terms scale linearly with the unrolling depth.
    """
    variables = len(session.solver.system.variables)
    clauses = len(session.solver.engine.clause_db.clauses)
    return 64 * 1024 + 640 * variables + 560 * clauses


class SessionEntry:
    """One cached session plus its serving bookkeeping."""

    __slots__ = (
        "key",
        "case",
        "bound",
        "session",
        "base_assumptions",
        "lock",
        "cost_bytes",
        "build_seconds",
        "hits",
        "last_used",
    )

    def __init__(
        self,
        key: str,
        case: str,
        bound: int,
        session: SolverSession,
        base_assumptions: Mapping[str, object],
        build_seconds: float,
    ):
        self.key = key
        self.case = case
        self.bound = bound
        self.session = session
        self.base_assumptions = dict(base_assumptions)
        #: Serializes queries: HdpllSolver is not thread-safe.
        self.lock = asyncio.Lock()
        self.cost_bytes = estimate_session_bytes(session)
        self.build_seconds = build_seconds
        self.hits = 0
        self.last_used = time.monotonic()


class SessionCache:
    """LRU of warm sessions with single-flight builds (see module doc)."""

    def __init__(
        self, max_entries: int = 8, max_bytes: int = 512 * 1024 * 1024
    ):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self._building: Dict[str, "asyncio.Task[SessionEntry]"] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Requests that joined an in-progress build instead of
        #: starting their own (the single-flight savings counter).
        self.joined_builds = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    async def get_or_create(
        self,
        key: str,
        build: Callable[[], Awaitable[SessionEntry]],
    ) -> SessionEntry:
        """The entry for ``key``, building it at most once.

        ``build`` is an async factory invoked only by the first caller;
        concurrent callers for the same key await the same build task.
        A failed build propagates to every waiter and leaves no entry,
        so the next request retries from scratch.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            entry.hits += 1
            entry.last_used = time.monotonic()
            self._entries.move_to_end(key)
            return entry
        task = self._building.get(key)
        if task is None:
            self.misses += 1
            task = asyncio.ensure_future(self._build_and_insert(key, build))
            self._building[key] = task
            task.add_done_callback(
                lambda _done, key=key: self._building.pop(key, None)
            )
        else:
            self.joined_builds += 1
        # Shield: one waiter being cancelled (its request timed out)
        # must not cancel the shared build the other waiters rely on.
        return await asyncio.shield(task)

    def peek(self, key: str) -> Optional[SessionEntry]:
        """The entry for ``key`` without touching LRU order or stats."""
        return self._entries.get(key)

    async def _build_and_insert(
        self, key: str, build: Callable[[], Awaitable[SessionEntry]]
    ) -> SessionEntry:
        entry = await build()
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self._evict(keep=key)
        return entry

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        return sum(e.cost_bytes for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def _evict(self, keep: str) -> None:
        """Drop LRU idle entries until both caps hold.

        The just-inserted ``keep`` entry and any entry whose lock is
        held (a query is running on it) are never dropped; if only busy
        entries remain the cache temporarily overshoots — correctness
        over the cap.
        """

        def over_budget() -> bool:
            return (
                len(self._entries) > self.max_entries
                or self.total_bytes() > self.max_bytes
            )

        while over_budget():
            victim = next(
                (
                    key
                    for key, entry in self._entries.items()
                    if key != keep and not entry.lock.locked()
                ),
                None,
            )
            if victim is None:
                return
            del self._entries[victim]
            self.evictions += 1

    # ------------------------------------------------------------------
    # Introspection (the server's ``stats`` op)
    # ------------------------------------------------------------------
    def clause_db_snapshot(self) -> Dict[str, object]:
        """Aggregate learned-clause-database shape over warm sessions.

        Tier sizes sum across sessions; the mean LBD is clause-weighted
        so a large session is not diluted by an idle tiny one.
        """
        core = mid = local = 0
        lbd_weight = 0.0
        for entry in self._entries.values():
            db = entry.session.solver.engine.clause_db
            c, m, l = db.tier_sizes()
            core += c
            mid += m
            local += l
            lbd_weight += db.mean_lbd() * (c + m + l)
        total = core + mid + local
        return {
            "core": core,
            "mid": mid,
            "local": local,
            "mean_lbd": lbd_weight / total if total else 0.0,
        }

    def snapshot(self) -> Dict[str, object]:
        return {
            "entries": len(self._entries),
            "bytes": self.total_bytes(),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "joined_builds": self.joined_builds,
            "keys": [
                {
                    "case": entry.case,
                    "bound": entry.bound,
                    "hits": entry.hits,
                    "bytes": entry.cost_bytes,
                    "session_solves": entry.session.session_solves,
                }
                for entry in self._entries.values()
            ],
        }
