"""Solver-as-a-service daemon: asyncio front, warm sessions behind.

One long-lived process multiplexes concurrent solve requests over the
existing machinery:

* **framing** — newline-delimited JSON over TCP and/or a UNIX socket
  (:mod:`repro.serve.protocol`); each connection may pipeline requests,
  responses carry the request ``id`` and may arrive out of order;
* **admission control** — a semaphore caps concurrently *solving*
  requests (``max_inflight``); excess requests queue, and their queue
  wait counts against their deadline;
* **deadlines** — ``timeout_s`` maps onto the solver's cooperative
  budget: the remaining time at dispatch becomes the per-query
  ``timeout`` (and, for a cold build, the predicate-learning
  :class:`~repro.core.recursive.ProbeDeadline`), so an expired request
  returns ``unknown`` without killing the warm session;
* **warm sessions** — a :class:`~repro.serve.cache.SessionCache` keyed
  by :func:`netlist_signature` with single-flight builds; queries on
  one session are serialized (``HdpllSolver`` is not thread-safe),
  queries on different sessions run concurrently on a thread pool;
* **escalation** — requests carrying ``jobs > 1`` route to the
  cube-and-conquer portfolio pool instead of the warm session;
* **telemetry** — request counters and latency gauges flow through the
  existing :mod:`repro.obs.telemetry` exporter into ``metrics.json`` /
  ``metrics.prom`` in the telemetry directory; SIGTERM drains inflight
  requests and flushes both before exiting.
"""

from __future__ import annotations

import asyncio
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import HDPLL_SP, SolverConfig, Status
from repro.core.result import SolverResult
from repro.errors import CircuitError, SolverError
from repro.intervals import Interval
from repro.serve.cache import SessionCache, SessionEntry
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode,
    encode,
    error_response,
)

logger = logging.getLogger(__name__)

#: Latency samples kept for the p50/p99 window (ring buffer).
_LATENCY_WINDOW = 2048


def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample list (0 if empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


@dataclass
class ServeConfig:
    """Daemon configuration (CLI flags map 1:1 onto these fields)."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (printed at startup).  Set
    #: negative to disable TCP entirely (UNIX socket only).
    port: int = 0
    #: Optional UNIX socket path (served in addition to TCP).
    unix_path: Optional[str] = None
    #: Concurrently *solving* requests; arrivals beyond this queue.
    max_inflight: int = 4
    cache_entries: int = 8
    cache_bytes: int = 512 * 1024 * 1024
    #: Deadline applied when a request carries no ``timeout_s``.
    default_timeout_s: Optional[float] = 120.0
    #: Cap on the per-request ``jobs`` escalation knob.
    max_jobs: int = 8
    #: Telemetry directory (metrics.json / metrics.prom land here).
    telemetry_dir: Optional[str] = None
    #: Base solver configuration for warm sessions (the paper engine).
    solver: SolverConfig = field(default_factory=lambda: HDPLL_SP)
    #: Run escalated queries on the deterministic in-process portfolio
    #: (tests; production uses the multi-process pool).
    portfolio_deterministic: bool = False
    #: Flush the metrics exports every N completed requests (and always
    #: on drain).
    metrics_flush_every: int = 64


@dataclass
class _ProblemInfo:
    """Resolved (case, bound): cache key + the instance's assumptions."""

    key: str
    assumptions: Dict[str, object]


class SolverServer:
    """The daemon: sockets, admission, session cache, telemetry."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.cache = SessionCache(
            max_entries=config.cache_entries,
            max_bytes=config.cache_bytes,
        )
        self._admission = asyncio.Semaphore(max(1, config.max_inflight))
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, config.max_inflight + 1),
            thread_name_prefix="serve-solve",
        )
        self._servers: List[asyncio.AbstractServer] = []
        self._request_tasks: "set[asyncio.Task]" = set()
        self._connection_tasks: "set[asyncio.Task]" = set()
        self._draining = False
        self._stopped = asyncio.Event()
        #: (case, bound) -> resolved cache key + assumptions; lets warm
        #: requests skip the unroll entirely.
        self._problems: Dict[Tuple[str, int], _ProblemInfo] = {}
        self._problems_lock = asyncio.Lock()
        self.counters: Dict[str, int] = {
            "requests_total": 0,
            "requests_ok": 0,
            "requests_error": 0,
            "status_sat": 0,
            "status_unsat": 0,
            "status_unknown": 0,
            "deadline_expired": 0,
            "escalated": 0,
            "connections": 0,
        }
        self._latencies: List[float] = []
        self._since_flush = 0
        self._telemetry = None
        if config.telemetry_dir is not None:
            from repro.obs.telemetry import TelemetryHub, WorkerTelemetry

            # The daemon is its own single "worker": no shard tracing
            # (requests are summarized by metrics, not per-event), no
            # resource sampler thread churn beyond the built-in one.
            hub = TelemetryHub(config.telemetry_dir, trace=False)
            self._telemetry = WorkerTelemetry(
                hub.worker_config("server", label="serve")
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        config = self.config
        if config.port >= 0:
            self._servers.append(
                await asyncio.start_server(
                    self._handle_connection,
                    host=config.host,
                    port=config.port,
                    limit=MAX_LINE_BYTES,
                )
            )
        if config.unix_path:
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_connection,
                    path=config.unix_path,
                    limit=MAX_LINE_BYTES,
                )
            )
        if not self._servers:
            raise SolverError(
                "serve: no endpoint configured (TCP disabled and no "
                "--unix-socket)"
            )
        for kind, address in self.endpoints():
            logger.info("serve: listening on %s %s", kind, address)

    def endpoints(self) -> List[Tuple[str, object]]:
        """``[("tcp", (host, port)), ("unix", path), ...]`` actually bound."""
        bound: List[Tuple[str, object]] = []
        for server in self._servers:
            for sock in server.sockets or ():
                name = sock.getsockname()
                if isinstance(name, str):
                    bound.append(("unix", name))
                else:
                    bound.append(("tcp", (name[0], name[1])))
        return bound

    async def serve_forever(self) -> None:
        """Block until :meth:`drain_and_stop` completes."""
        await self._stopped.wait()

    async def drain_and_stop(self) -> None:
        """Graceful shutdown: stop accepting, finish inflight requests,
        flush telemetry, release the executor."""
        if self._draining:
            return
        self._draining = True
        logger.info(
            "serve: draining (%d inflight)", len(self._request_tasks)
        )
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        if self._request_tasks:
            await asyncio.gather(
                *self._request_tasks, return_exceptions=True
            )
        # Inflight work is done and responded to; idle connection
        # readers are just blocking on readline and can be reaped.
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(
                *self._connection_tasks, return_exceptions=True
            )
        self.flush_telemetry()
        if self._telemetry is not None:
            self._telemetry.close()
            self._merge_telemetry()
        self._executor.shutdown(wait=False)
        self._stopped.set()
        logger.info("serve: stopped")

    def flush_telemetry(self) -> None:
        """Write the metrics snapshot and regenerate the exports."""
        self._since_flush = 0
        if self._telemetry is None:
            return
        # Latency gauges are floats (overwrite semantics): the window's
        # current percentiles, not an accumulating sum.
        clause_db = self.cache.clause_db_snapshot()
        self._telemetry.record_metrics(
            {
                "serve_latency_p50_s": _percentile(self._latencies, 0.50),
                "serve_latency_p99_s": _percentile(self._latencies, 0.99),
                "serve_cache_entries": float(len(self.cache)),
                "serve_cache_bytes": float(self.cache.total_bytes()),
                # Warm-session learned-clause DB shape (LBD tiers).
                "serve_clause_db_core": float(clause_db["core"]),
                "serve_clause_db_mid": float(clause_db["mid"]),
                "serve_clause_db_local": float(clause_db["local"]),
                "serve_clause_db_mean_lbd": float(clause_db["mean_lbd"]),
            }
        )
        self._telemetry.write_metrics()
        self._merge_telemetry()

    def _merge_telemetry(self) -> None:
        from repro.obs.telemetry import merge_directory

        assert self.config.telemetry_dir is not None
        merge_directory(self.config.telemetry_dir)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self.counters["connections"] += 1
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
            task.add_done_callback(self._connection_tasks.discard)
        write_lock = asyncio.Lock()

        async def respond(message: Dict[str, object]) -> None:
            async with write_lock:
                try:
                    writer.write(encode(message))
                    await writer.drain()
                except (ConnectionError, ProtocolError):
                    pass  # client went away mid-response

        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    ValueError,
                    asyncio.LimitOverrunError,
                ):  # oversized line: unrecoverable framing state
                    await respond(
                        error_response({}, "request line too long")
                    )
                    break
                except ConnectionError:
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode(line)
                except ProtocolError as error:
                    await respond(error_response({}, str(error)))
                    continue
                task = asyncio.ensure_future(
                    self._serve_request(request, respond)
                )
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        except asyncio.CancelledError:
            # Drain reaps idle readers; ending the task normally keeps
            # asyncio.streams from logging the cancellation (3.11).
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _serve_request(self, request, respond) -> None:
        try:
            response = await self._dispatch(request)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # one bad request must not kill the daemon
            logger.exception("serve: request failed")
            self.counters["requests_error"] += 1
            self._record({"serve_requests_error": 1})
            response = error_response(
                request, f"{type(error).__name__}: {error}"
            )
        await respond(response)

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        op = request.get("op")
        if op == "ping":
            return {
                "id": request.get("id"),
                "ok": True,
                "pong": True,
                "protocol": PROTOCOL_VERSION,
            }
        if op == "stats":
            return {
                "id": request.get("id"),
                "ok": True,
                "counters": dict(self.counters),
                "latency": {
                    "p50_s": _percentile(self._latencies, 0.50),
                    "p99_s": _percentile(self._latencies, 0.99),
                    "samples": len(self._latencies),
                },
                "cache": self.cache.snapshot(),
                "clause_db": self.cache.clause_db_snapshot(),
                "inflight": len(self._request_tasks),
                "draining": self._draining,
            }
        if op == "solve":
            return await self._solve(request)
        self.counters["requests_error"] += 1
        return error_response(request, f"unknown op {op!r}")

    async def _solve(self, request: Dict[str, object]) -> Dict[str, object]:
        arrival = time.perf_counter()
        self.counters["requests_total"] += 1
        self._record({"serve_requests_total": 1})
        if self._draining:
            self.counters["requests_error"] += 1
            return error_response(request, "server is draining")
        try:
            case = str(request["case"])
            bound = int(request["bound"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            self.counters["requests_error"] += 1
            return error_response(
                request, "solve needs 'case' (str) and 'bound' (int)"
            )
        timeout_s = request.get("timeout_s", self.config.default_timeout_s)
        deadline = (
            arrival + float(timeout_s)  # type: ignore[arg-type]
            if timeout_s is not None
            else None
        )
        jobs = min(int(request.get("jobs", 1)), self.config.max_jobs)  # type: ignore[arg-type]
        want_model = bool(request.get("want_model", True))

        async with self._admission:
            queue_s = time.perf_counter() - arrival
            if deadline is not None and time.perf_counter() >= deadline:
                return self._expired(request, queue_s, arrival)
            try:
                extra = _parse_assumptions(request.get("assumptions"))
            except ProtocolError as error:
                self.counters["requests_error"] += 1
                return error_response(request, str(error))
            try:
                if jobs > 1:
                    self.counters["escalated"] += 1
                    self._record({"serve_escalated": 1})
                    result = await self._solve_portfolio(
                        case, bound, jobs, deadline
                    )
                    cache_state = "portfolio"
                    engine = "portfolio"
                    session_solves = 0
                else:
                    entry, cache_state = await self._entry_for(
                        case, bound, deadline
                    )
                    async with entry.lock:
                        remaining = _remaining(deadline)
                        if remaining is not None and remaining <= 0.0:
                            return self._expired(
                                request, queue_s, arrival
                            )
                        merged = dict(
                            self._problems[(case, bound)].assumptions
                        )
                        merged.update(extra)
                        result = await self._run(
                            entry.session.solve, merged, remaining
                        )
                    engine = "session"
                    session_solves = entry.session.session_solves
            except CircuitError as error:
                self.counters["requests_error"] += 1
                return error_response(request, str(error))

        wall_s = time.perf_counter() - arrival
        return self._finish(
            request,
            result,
            engine=engine,
            cache_state=cache_state,
            queue_s=queue_s,
            wall_s=wall_s,
            session_solves=session_solves,
            want_model=want_model,
        )

    # ------------------------------------------------------------------
    # Solve plumbing
    # ------------------------------------------------------------------
    async def _run(self, fn, *args):
        return await asyncio.get_event_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _entry_for(
        self, case: str, bound: int, deadline: Optional[float]
    ) -> Tuple[SessionEntry, str]:
        """The warm session for (case, bound), building it on a miss.

        Key resolution is two-stage so warm hits never unroll: the
        first request for a (case, bound) builds the instance once to
        learn its netlist signature; later requests go straight from
        the problem map to the cache.
        """
        info = self._problems.get((case, bound))
        built = None
        if info is None:
            from repro.constraints.compile import netlist_signature
            from repro.itc99 import instance

            built = await self._run(instance, case, bound)
            key = netlist_signature(built.circuit.nodes)
            async with self._problems_lock:
                info = self._problems.setdefault(
                    (case, bound),
                    _ProblemInfo(
                        key=key, assumptions=dict(built.assumptions)
                    ),
                )
        was_hit = self.cache.peek(info.key) is not None

        async def build() -> SessionEntry:
            return await self._build_entry(case, bound, info, built, deadline)

        entry = await self.cache.get_or_create(info.key, build)
        # Structurally identical netlists can in principle carry
        # different net names; a session only serves problems whose
        # assumption names it can resolve.  Salt the key and build a
        # dedicated session otherwise (never observed with the ITC99
        # registry, but correctness must not rest on that).
        if not all(
            name in entry.session._var_by_name for name in info.assumptions
        ):
            salted = f"{info.key}:{case}@{bound}"
            info = _ProblemInfo(
                key=salted, assumptions=dict(info.assumptions)
            )
            async with self._problems_lock:
                self._problems[(case, bound)] = info
            was_hit = self.cache.peek(salted) is not None
            entry = await self.cache.get_or_create(salted, build)
        state = "hit" if was_hit else "miss"
        if state == "hit":
            self._record({"serve_cache_hits": 1})
        else:
            self._record({"serve_cache_misses": 1})
        return entry, state

    async def _build_entry(
        self,
        case: str,
        bound: int,
        info: _ProblemInfo,
        built,
        deadline: Optional[float],
    ) -> SessionEntry:
        """Compile a fresh warm session (executor-side heavy lifting)."""
        from repro.core.session import SolverSession
        from repro.itc99 import instance

        def compile_session():
            start = time.perf_counter()
            inst = built if built is not None else instance(case, bound)
            session = SolverSession(inst.circuit, self.config.solver)
            if (
                self.config.solver.predicate_learning
                and not session.root_conflict
            ):
                # The cold-path warm-up honours the triggering request's
                # deadline: probe learning stops cooperatively and the
                # session stays usable (just less warmed-up).
                session.learn(None, deadline=deadline)
            return session, time.perf_counter() - start

        session, build_seconds = await self._run(compile_session)
        return SessionEntry(
            key=info.key,
            case=case,
            bound=bound,
            session=session,
            base_assumptions=info.assumptions,
            build_seconds=build_seconds,
        )

    async def _solve_portfolio(
        self, case: str, bound: int, jobs: int, deadline: Optional[float]
    ) -> SolverResult:
        from repro.portfolio import ProblemSpec, solve_portfolio

        remaining = _remaining(deadline)

        def run():
            return solve_portfolio(
                spec=ProblemSpec("instance", case, bound),
                jobs=jobs,
                timeout=remaining,
                base_config=self.config.solver,
                deterministic=self.config.portfolio_deterministic,
            )

        return await self._run(run)

    # ------------------------------------------------------------------
    # Response assembly and metrics
    # ------------------------------------------------------------------
    def _expired(self, request, queue_s: float, arrival: float):
        self.counters["deadline_expired"] += 1
        self.counters["status_unknown"] += 1
        self.counters["requests_ok"] += 1
        self._record({"serve_deadline_expired": 1, "serve_requests_ok": 1})
        wall_s = time.perf_counter() - arrival
        self._observe_latency(wall_s)
        return {
            "id": request.get("id"),
            "ok": True,
            "status": "unknown",
            "note": "deadline expired before dispatch",
            "engine": "none",
            "cache": "none",
            "queue_s": round(queue_s, 6),
            "solve_s": 0.0,
            "wall_s": round(wall_s, 6),
            "stats": {},
        }

    def _finish(
        self,
        request,
        result: SolverResult,
        *,
        engine: str,
        cache_state: str,
        queue_s: float,
        wall_s: float,
        session_solves: int,
        want_model: bool,
    ) -> Dict[str, object]:
        status = result.status.value
        self.counters["requests_ok"] += 1
        self.counters[f"status_{status}"] += 1
        self._record(
            {"serve_requests_ok": 1, f"serve_status_{status}": 1}
        )
        if (
            result.status is Status.UNKNOWN
            and "timeout" in (result.note or "")
        ):
            self.counters["deadline_expired"] += 1
            self._record({"serve_deadline_expired": 1})
        self._observe_latency(wall_s)
        response: Dict[str, object] = {
            "id": request.get("id"),
            "ok": True,
            "status": status,
            "note": result.note,
            "engine": engine,
            "cache": cache_state,
            "queue_s": round(queue_s, 6),
            "solve_s": round(result.stats.solve_time, 6),
            "wall_s": round(wall_s, 6),
            "stats": {
                "decisions": result.stats.decisions,
                "conflicts": result.stats.conflicts,
                "propagations": result.stats.propagations,
                "session_solves": session_solves,
                "clauses_shifted": result.stats.clauses_shifted,
                "learned_relations": result.stats.learned_relations,
            },
        }
        if want_model and result.is_sat and result.model is not None:
            response["model"] = dict(result.model)
        return response

    def _observe_latency(self, wall_s: float) -> None:
        self._latencies.append(wall_s)
        if len(self._latencies) > _LATENCY_WINDOW:
            del self._latencies[: len(self._latencies) - _LATENCY_WINDOW]
        self._since_flush += 1
        if self._since_flush >= max(1, self.config.metrics_flush_every):
            self.flush_telemetry()

    def _record(self, values: Dict[str, object]) -> None:
        if self._telemetry is not None:
            self._telemetry.record_metrics(values)


def _remaining(deadline: Optional[float]) -> Optional[float]:
    if deadline is None:
        return None
    return max(0.0, deadline - time.perf_counter())


def _parse_assumptions(raw) -> Dict[str, object]:
    """Request assumptions -> solver assumption mapping."""
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ProtocolError("'assumptions' must be an object")
    parsed: Dict[str, object] = {}
    for name, value in raw.items():
        if isinstance(value, bool):
            parsed[name] = int(value)
        elif isinstance(value, int):
            parsed[name] = value
        elif (
            isinstance(value, (list, tuple))
            and len(value) == 2
            and all(isinstance(v, int) for v in value)
        ):
            parsed[name] = Interval.make(value[0], value[1])
        else:
            raise ProtocolError(
                f"assumption {name!r} must be an int or [lo, hi]"
            )
    return parsed


async def run_server(
    config: ServeConfig, *, announce=None
) -> SolverServer:
    """Start a server, install signal-driven drain, and block until it
    stops.  ``announce(server)`` is called once the sockets are bound
    (the CLI prints the endpoints there)."""
    import signal

    server = SolverServer(config)
    await server.start()
    if announce is not None:
        announce(server)
    loop = asyncio.get_event_loop()

    def initiate_drain() -> None:
        asyncio.ensure_future(server.drain_and_stop())

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, initiate_drain)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-UNIX event loop: rely on KeyboardInterrupt
    try:
        await server.serve_forever()
    finally:
        await server.drain_and_stop()
    return server
