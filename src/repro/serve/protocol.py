"""Wire protocol for the solver daemon: newline-delimited JSON.

One request or response per line, UTF-8 JSON, ``\\n``-terminated — the
least clever framing that a shell one-liner, a load generator, and an
asyncio server can all speak.  Requests and responses are plain dicts;
this module pins the field names, bounds line sizes, and provides the
tiny helpers both ends share.

Request fields (``op`` selects the handler):

===========  ==========================================================
``op``       ``"solve"`` | ``"ping"`` | ``"stats"``
``id``       client-chosen correlation token, echoed verbatim
``case``     ITC99 instance name, e.g. ``"b13_5"`` (solve)
``bound``    unrolling depth (solve)
``assumptions``  optional extra assumptions: name -> int | [lo, hi]
``timeout_s``    per-request deadline in seconds, measured from
             *arrival* — queue wait counts against it (solve)
``jobs``     portfolio escalation width; > 1 routes the query to the
             cube-and-conquer pool instead of the warm session (solve)
``want_model``   include the SAT model in the response (default true)
===========  ==========================================================

Response fields: ``id`` (echoed), ``ok`` (protocol-level success —
an UNKNOWN solve is still ``ok``), ``error`` (when not ok), and for
solves ``status`` ("sat"/"unsat"/"unknown"), ``model``, ``note``,
``engine`` ("session"/"portfolio"), ``cache`` ("hit"/"miss"),
``queue_s``/``solve_s``/``wall_s`` timings, and a small ``stats``
counter dict.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple, Union

from repro.errors import SolverError

#: Protocol schema version, echoed by ``ping``.
PROTOCOL_VERSION = 1

#: Hard cap on one encoded line (requests *and* responses).  Models for
#: deep unrollings are large but bounded; 8 MiB is two orders of
#: magnitude above the biggest bench response.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: JSON value accepted for one assumption: a point value or [lo, hi].
AssumptionJson = Union[int, Tuple[int, int]]


class ProtocolError(SolverError):
    """Malformed request/response line (framing or schema)."""


def encode(message: Dict[str, object]) -> bytes:
    """One message as a compact, newline-terminated JSON line."""
    line = json.dumps(
        message, separators=(",", ":"), sort_keys=True
    ).encode("utf-8") + b"\n"
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"encoded message of {len(line)} bytes exceeds "
            f"MAX_LINE_BYTES ({MAX_LINE_BYTES})"
        )
    return line


def decode(line: bytes) -> Dict[str, object]:
    """Parse one received line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"received line of {len(line)} bytes exceeds "
            f"MAX_LINE_BYTES ({MAX_LINE_BYTES})"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable message line: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


def solve_request(
    case: str,
    bound: int,
    *,
    request_id: object = None,
    assumptions: Optional[Dict[str, AssumptionJson]] = None,
    timeout_s: Optional[float] = None,
    jobs: int = 1,
    want_model: bool = True,
) -> Dict[str, object]:
    """A well-formed solve request (the client and loadgen use this)."""
    message: Dict[str, object] = {
        "op": "solve",
        "case": case,
        "bound": bound,
        "jobs": jobs,
        "want_model": want_model,
    }
    if request_id is not None:
        message["id"] = request_id
    if assumptions:
        message["assumptions"] = dict(assumptions)
    if timeout_s is not None:
        message["timeout_s"] = timeout_s
    return message


def error_response(
    request: Dict[str, object], error: str
) -> Dict[str, object]:
    return {"id": request.get("id"), "ok": False, "error": error}
