"""Solver-as-a-service: daemon, client, load generator, bench cells.

The daemon (`repro-hdpll serve`) keeps compiled :class:`SolverSession`
objects warm across requests — the paper's cross-call reuse lifted from
one process's lifetime to a service's.  See ``docs/serving.md``.
"""

from repro.serve.cache import SessionCache, SessionEntry
from repro.serve.client import (
    ServeClient,
    ServeConnectionError,
    solve_once,
)
from repro.serve.loadgen import run_load, run_load_blocking
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode,
    encode,
    error_response,
    solve_request,
)
from repro.serve.server import ServeConfig, SolverServer, run_server

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeConnectionError",
    "SessionCache",
    "SessionEntry",
    "SolverServer",
    "decode",
    "encode",
    "error_response",
    "run_load",
    "run_load_blocking",
    "run_server",
    "solve_once",
    "solve_request",
]
