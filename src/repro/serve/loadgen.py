"""Load generator for the solver daemon.

Drives a burst of concurrent solve requests — N client connections
round-robining over a case list — and summarizes what came back:
status counts, client-side latency percentiles, throughput, and the
daemon's own ``stats`` snapshot at the end of the burst.  The CI
``serve-smoke`` job and the serve tests both run through here.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.client import ServeClient


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample list (0 if empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


async def run_load(
    *,
    host: Optional[str] = None,
    port: Optional[int] = None,
    path: Optional[str] = None,
    cases: Sequence[Tuple[str, int]],
    total: int = 16,
    concurrency: int = 4,
    timeout_s: Optional[float] = 60.0,
    jobs: int = 1,
    want_model: bool = False,
) -> Dict[str, object]:
    """Fire ``total`` solve requests at the daemon, ``concurrency`` at
    a time, round-robining over ``cases`` ``(case, bound)`` pairs.

    Each lane owns its own connection (the realistic shape: independent
    clients), and every lane pulls the next request index from a shared
    counter, so lanes stay busy even when latencies are skewed.
    """
    if not cases:
        raise ValueError("run_load needs at least one (case, bound) pair")
    concurrency = max(1, min(concurrency, total))
    outcomes: List[Dict[str, object]] = [None] * total  # type: ignore[list-item]
    next_index = iter(range(total))
    lock = asyncio.Lock()

    async def lane() -> None:
        client = await ServeClient.open(host=host, port=port, path=path)
        try:
            while True:
                async with lock:
                    index = next(next_index, None)
                if index is None:
                    return
                case, bound = cases[index % len(cases)]
                started = time.perf_counter()
                try:
                    response = await client.solve(
                        case,
                        bound,
                        timeout_s=timeout_s,
                        jobs=jobs,
                        want_model=want_model,
                    )
                except Exception as error:
                    response = {"ok": False, "error": str(error)}
                outcomes[index] = {
                    "case": case,
                    "bound": bound,
                    "client_s": time.perf_counter() - started,
                    "response": response,
                }
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(lane() for _ in range(concurrency)))
    elapsed = max(1e-9, time.perf_counter() - started)

    statuses: Dict[str, int] = {}
    errors = 0
    latencies: List[float] = []
    cache_hits = 0
    for outcome in outcomes:
        response = outcome["response"]
        latencies.append(outcome["client_s"])
        if not response.get("ok"):
            errors += 1
            continue
        status = str(response.get("status", "?"))
        statuses[status] = statuses.get(status, 0) + 1
        if response.get("cache") == "hit":
            cache_hits += 1

    # One last connection for the daemon-side view of the burst.
    client = await ServeClient.open(host=host, port=port, path=path)
    try:
        server_stats = await client.stats()
    finally:
        await client.close()

    return {
        "requests": total,
        "concurrency": concurrency,
        "elapsed_s": round(elapsed, 6),
        "throughput_rps": round(total / elapsed, 3),
        "statuses": statuses,
        "errors": errors,
        "cache_hits": cache_hits,
        "latency": {
            "p50_s": round(percentile(latencies, 0.50), 6),
            "p95_s": round(percentile(latencies, 0.95), 6),
            "p99_s": round(percentile(latencies, 0.99), 6),
            "max_s": round(max(latencies), 6) if latencies else 0.0,
        },
        "server": server_stats,
    }


def run_load_blocking(**kwargs) -> Dict[str, object]:
    """Synchronous wrapper for the CLI (``repro-hdpll serve-load``)."""
    return asyncio.run(run_load(**kwargs))
