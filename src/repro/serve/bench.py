"""Warm-vs-cold bench cells for the solver daemon.

One cell drives a *real* daemon — unix socket, wire protocol, client —
so the measured gap is the serving stack's actual value, not a cache
microbenchmark:

* ``serve-cold`` — every timed request hits a freshly started daemon
  (empty session cache, empty problem map), so each pays the full
  unroll + compile + predicate warm-up + solve;
* ``serve-warm`` — one daemon, one unmeasured priming request, then
  the timed requests all land on the warm session (solve only).

Both modes report the mean client-observed wall time over the timed
requests; the ``serve`` bench profile gates warm/cold as a speedup
ratio exactly like the engine-impl gates (BENCH_1..4).
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from typing import Dict, List, Optional

from repro.errors import SolverError
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, SolverServer

#: Timed requests per cell; small because each cold repeat rebuilds the
#: whole session and the gate compares geomeans, not tails.
SERVE_CELL_REPEATS = 3

_STATUS_LETTER = {"sat": "S", "unsat": "U", "unknown": "-to-"}


def run_serve_cell(
    case: str,
    bound: int,
    mode: str,
    timeout: Optional[float] = None,
    repeats: int = SERVE_CELL_REPEATS,
) -> Dict[str, object]:
    """One serve bench cell (see module doc for the two modes).

    Returns ``{"status", "seconds", "solve_seconds", "requests",
    "cache_hits", "session_solves", "stats", "note"}`` where ``status``
    uses the harness letters and ``seconds`` is the mean client wall
    over the timed requests only (daemon startup and warm-mode priming
    excluded — they are exactly what the warm path amortizes away).
    """
    if mode not in ("serve-cold", "serve-warm"):
        raise SolverError(f"unknown serve bench mode {mode!r}")

    async def drive() -> Dict[str, object]:
        walls: List[float] = []
        responses: List[Dict[str, object]] = []
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:

            async def one_daemon(
                socket_path: str, timed_requests: int, prime: bool
            ) -> None:
                config = ServeConfig(
                    port=-1,  # unix socket only
                    unix_path=socket_path,
                    max_inflight=2,
                    telemetry_dir=None,
                )
                server = SolverServer(config)
                await server.start()
                try:
                    client = await ServeClient.open(path=socket_path)
                    try:
                        if prime:
                            primed = await client.solve(
                                case,
                                bound,
                                timeout_s=timeout,
                                want_model=False,
                            )
                            if not primed.get("ok"):
                                raise SolverError(
                                    "serve bench priming failed: "
                                    f"{primed.get('error')}"
                                )
                        for _ in range(timed_requests):
                            started = time.perf_counter()
                            response = await client.solve(
                                case,
                                bound,
                                timeout_s=timeout,
                                want_model=False,
                            )
                            walls.append(
                                time.perf_counter() - started
                            )
                            if not response.get("ok"):
                                raise SolverError(
                                    "serve bench request failed: "
                                    f"{response.get('error')}"
                                )
                            responses.append(response)
                    finally:
                        await client.close()
                finally:
                    await server.drain_and_stop()

            if mode == "serve-cold":
                # Fresh daemon per timed request: nothing carries over.
                for index in range(repeats):
                    await one_daemon(
                        f"{tmp}/cold-{index}.sock", 1, prime=False
                    )
            else:
                await one_daemon(f"{tmp}/warm.sock", repeats, prime=True)
        return _summarize(mode, walls, responses)

    return asyncio.run(drive())


def _summarize(
    mode: str,
    walls: List[float],
    responses: List[Dict[str, object]],
) -> Dict[str, object]:
    statuses = {str(r.get("status")) for r in responses}
    if len(statuses) == 1:
        status = _STATUS_LETTER.get(statuses.pop(), "-A-")
    else:  # timed requests disagreeing with each other is an abort
        status = "-A-"
    last = responses[-1] if responses else {}
    last_stats = dict(last.get("stats") or {})
    expected_cache = "miss" if mode == "serve-cold" else "hit"
    cache_hits = sum(
        1 for r in responses if r.get("cache") == "hit"
    )
    note = f"{mode}: {len(responses)} timed requests"
    if any(r.get("cache") != expected_cache for r in responses):
        # A cold request hitting the cache (or a warm one missing it)
        # means the cell measured the wrong thing; surface it loudly.
        status = "-A-"
        note += (
            "; cache state mismatch: "
            + ",".join(str(r.get("cache")) for r in responses)
        )
    return {
        "status": status,
        "seconds": sum(walls) / len(walls) if walls else 0.0,
        "solve_seconds": (
            sum(float(r.get("solve_s", 0.0)) for r in responses)
            / len(responses)
            if responses
            else 0.0
        ),
        "requests": len(responses),
        "cache_hits": cache_hits,
        "session_solves": int(last_stats.get("session_solves", 0)),
        "stats": last_stats,
        "note": note,
    }
