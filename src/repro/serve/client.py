"""Asyncio client for the solver daemon.

One :class:`ServeClient` owns one connection and multiplexes any number
of concurrent requests over it: every request carries a client-assigned
``id``, a background reader task resolves the matching future when the
response line arrives, and responses may come back in any order (the
daemon finishes fast queries while slow ones are still solving).

The blocking convenience wrapper :func:`solve_once` exists for shell
one-liners and the CLI; everything else should use the async surface.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional

from repro.errors import SolverError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode,
    encode,
    solve_request,
)


class ServeConnectionError(SolverError):
    """Connection to the daemon failed or dropped mid-request."""


class ServeClient:
    """One connection to the daemon, id-multiplexed (see module doc)."""

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._pending: Dict[str, "asyncio.Future[dict]"] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    async def open(
        cls,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        path: Optional[str] = None,
    ) -> "ServeClient":
        """Connect over TCP (``host``/``port``) or a UNIX socket
        (``path``)."""
        try:
            if path is not None:
                reader, writer = await asyncio.open_unix_connection(
                    path, limit=MAX_LINE_BYTES
                )
            elif host is not None and port is not None:
                reader, writer = await asyncio.open_connection(
                    host, port, limit=MAX_LINE_BYTES
                )
            else:
                raise SolverError(
                    "ServeClient.open needs host+port or path"
                )
        except OSError as error:
            raise ServeConnectionError(
                f"cannot reach solver daemon: {error}"
            ) from None
        return cls(reader, writer)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def request(self, message: Dict[str, object]) -> Dict[str, object]:
        """Send one message and await its response (matched by id)."""
        if self._closed:
            raise ServeConnectionError("client is closed")
        request_id = message.get("id")
        if request_id is None:
            request_id = f"c{next(self._ids)}"
            message = dict(message, id=request_id)
        key = str(request_id)
        if key in self._pending:
            raise ProtocolError(f"duplicate in-flight request id {key!r}")
        future: "asyncio.Future[dict]" = (
            asyncio.get_event_loop().create_future()
        )
        self._pending[key] = future
        try:
            self._writer.write(encode(message))
            await self._writer.drain()
        except (ConnectionError, OSError) as error:
            self._pending.pop(key, None)
            raise ServeConnectionError(
                f"send failed: {error}"
            ) from None
        try:
            return await future
        finally:
            self._pending.pop(key, None)

    async def solve(
        self,
        case: str,
        bound: int,
        *,
        assumptions=None,
        timeout_s: Optional[float] = None,
        jobs: int = 1,
        want_model: bool = True,
    ) -> Dict[str, object]:
        return await self.request(
            solve_request(
                case,
                bound,
                assumptions=assumptions,
                timeout_s=timeout_s,
                jobs=jobs,
                want_model=want_model,
            )
        )

    async def ping(self) -> Dict[str, object]:
        return await self.request({"op": "ping"})

    async def stats(self) -> Dict[str, object]:
        return await self.request({"op": "stats"})

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_pending("connection closed")

    # ------------------------------------------------------------------
    # Reader task
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    self._fail_pending("daemon closed the connection")
                    return
                try:
                    response = decode(line)
                except ProtocolError:
                    self._fail_pending("undecodable response from daemon")
                    return
                key = str(response.get("id"))
                future = self._pending.get(key)
                if future is not None and not future.done():
                    future.set_result(response)
                # Unmatched ids are dropped: the requester gave up
                # (cancelled) before the response landed.
        except (ConnectionError, OSError, ValueError) as error:
            self._fail_pending(f"connection lost: {error}")
        except asyncio.CancelledError:
            raise

    def _fail_pending(self, reason: str) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(ServeConnectionError(reason))
        self._pending.clear()


def solve_once(
    case: str,
    bound: int,
    *,
    host: Optional[str] = None,
    port: Optional[int] = None,
    path: Optional[str] = None,
    timeout_s: Optional[float] = None,
    jobs: int = 1,
    want_model: bool = True,
) -> Dict[str, object]:
    """Blocking one-shot solve against a running daemon (CLI helper)."""

    async def run() -> Dict[str, object]:
        client = await ServeClient.open(host=host, port=port, path=path)
        try:
            return await client.solve(
                case,
                bound,
                timeout_s=timeout_s,
                jobs=jobs,
                want_model=want_model,
            )
        finally:
            await client.close()

    return asyncio.run(run())
