"""ICS-style eager combined decision procedure (comparator substitute).

ICS [5] combines complete decision procedures for Boolean logic and
linear arithmetic, but — on the paper's RTL instances — without the two
things HDPLL adds: conflict-driven *learning* over the combined search
space and any use of circuit structure.  The real binary is not
available offline; this baseline reproduces the architecture and the
qualitative cost profile of Table 2's ICS column:

* depth-first DPLL over the Boolean variables with **chronological**
  backtracking and no learned clauses,
* full hybrid consistency (the same propagation engine as HDPLL — ICS
  has complete theory reasoning, that is not its weakness),
* a full arithmetic feasibility check at every Boolean leaf.

Without learning, refutations are re-discovered in every subtree, which
is exactly why this profile is an order of magnitude slower than HDPLL
on the small instances and times out as the unrollings grow.
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional, Union

from repro.constraints.compile import compile_circuit
from repro.constraints.engine import PropagationEngine
from repro.constraints.store import Conflict, DomainStore
from repro.core.fme_leaf import check_solution_box
from repro.core.result import SolverResult, SolverStats, Status
from repro.intervals import Interval
from repro.rtl.circuit import Circuit
from repro.rtl.simulate import simulate_combinational

AssumptionValue = Union[int, Interval]


class _Budget(Exception):
    """Raised internally when time or decision budget runs out."""


class EagerCdpSolver:
    """Chronological DPLL + full theory consistency, no learning."""

    def __init__(
        self,
        circuit: Circuit,
        timeout: Optional[float] = None,
        max_decisions: Optional[int] = None,
    ):
        self.circuit = circuit
        self.timeout = timeout
        self.max_decisions = max_decisions
        self.system = compile_circuit(circuit)
        self.store = DomainStore(self.system.variables)
        self.engine = PropagationEngine(self.store, self.system.propagators)
        self.stats = SolverStats()
        self._deadline: Optional[float] = None
        self._assumptions: Mapping[str, AssumptionValue] = {}

    def solve(self, assumptions: Mapping[str, AssumptionValue]) -> SolverResult:
        start = time.monotonic()
        if self.timeout is not None:
            self._deadline = start + self.timeout
            if self.timeout <= 0:
                return SolverResult(
                    Status.UNKNOWN,
                    stats=self.stats,
                    note=f"timeout after {self.timeout}s",
                )
        for name, value in assumptions.items():
            var = self.system.var_by_name(name)
            interval = (
                value if isinstance(value, Interval) else Interval.point(value)
            )
            if isinstance(self.store.assume(var, interval), Conflict):
                return SolverResult(Status.UNSAT, stats=self.stats)
        self.engine.enqueue_all()
        if self.engine.propagate() is not None:
            return SolverResult(Status.UNSAT, stats=self.stats)
        self._assumptions = assumptions
        try:
            model = self._search()
        except _Budget as exhausted:
            self.stats.solve_time = time.monotonic() - start
            return SolverResult(
                Status.UNKNOWN, stats=self.stats, note=str(exhausted)
            )
        self.stats.solve_time = time.monotonic() - start
        if model is None:
            return SolverResult(Status.UNSAT, stats=self.stats)
        return SolverResult(Status.SAT, model=model, stats=self.stats)

    # ------------------------------------------------------------------
    def _search(self) -> Optional[Dict[str, int]]:
        var = self._next_unassigned()
        if var is None:
            return self._leaf()
        for value in (0, 1):
            if self._deadline is not None and time.monotonic() > self._deadline:
                raise _Budget(f"timeout after {self.timeout}s")
            if (
                self.max_decisions is not None
                and self.stats.decisions >= self.max_decisions
            ):
                raise _Budget("decision budget exhausted")
            self.stats.decisions += 1
            level = self.store.decision_level
            self.store.decide_bool(var, value)
            conflict = self.engine.propagate()
            if conflict is None:
                model = self._search()
                if model is not None:
                    return model
            else:
                self.stats.conflicts += 1
            self.store.backtrack_to(level)
            self.engine.notify_backtrack()
        return None

    def _next_unassigned(self):
        for var in self.system.boolean_net_vars:
            if not self.store.is_assigned(var):
                return var
        return None

    def _leaf(self) -> Optional[Dict[str, int]]:
        self.stats.fme_checks += 1
        leaf = check_solution_box(self.store, self.system)
        if not leaf.feasible:
            self.stats.fme_conflicts += 1
            return None
        input_values = {
            net.name: leaf.witness[self.system.var(net).index]
            for net in self.circuit.inputs
        }
        return simulate_combinational(self.circuit, input_values)


def solve_eager_cdp(
    circuit: Circuit,
    assumptions: Mapping[str, AssumptionValue],
    timeout: Optional[float] = None,
    max_decisions: Optional[int] = None,
) -> SolverResult:
    """One-shot eager-CDP solve (the ICS-like comparator)."""
    return EagerCdpSolver(circuit, timeout, max_decisions).solve(assumptions)
