"""Baseline and comparator solvers.

* :mod:`repro.baselines.bitblast` + :mod:`repro.baselines.dpll_sat` —
  the introduction's "Boolean SAT on the Boolean translation" route.
* :mod:`repro.baselines.lazy_smt` — the UCLID-like lazy CDP substitute.
* :mod:`repro.baselines.eager_cdp` — the ICS-like eager CDP substitute.

See DESIGN.md ("Substitutions") for the fidelity argument of each.
"""

from repro.baselines.bitblast import (
    BitBlastedCircuit,
    assert_assumptions,
    bitblast,
    solve_by_bitblasting,
)
from repro.baselines.cnf import Cnf, from_dimacs
from repro.baselines.dpll_sat import CdclSolver, SatResult, SatStats, solve_cnf
from repro.baselines.eager_cdp import EagerCdpSolver, solve_eager_cdp
from repro.baselines.lazy_smt import LazySmtSolver, LazySmtStats, solve_lazy_smt

__all__ = [
    "BitBlastedCircuit",
    "CdclSolver",
    "Cnf",
    "EagerCdpSolver",
    "LazySmtSolver",
    "LazySmtStats",
    "SatResult",
    "SatStats",
    "assert_assumptions",
    "bitblast",
    "from_dimacs",
    "solve_by_bitblasting",
    "solve_cnf",
    "solve_eager_cdp",
    "solve_lazy_smt",
]
