"""A from-scratch CDCL Boolean SAT solver.

This is the "Boolean SAT solver on the Boolean translation" route the
paper's introduction describes as the popular-but-datapath-weak method,
and the SAT core behind the UCLID-like lazy CDP baseline.  Standard
architecture: two-watched-literal propagation, 1-UIP conflict analysis
with non-chronological backtracking, VSIDS activities, phase saving and
geometric restarts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.cnf import Cnf
from repro.errors import SolverError


@dataclass
class SatStats:
    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    restarts: int = 0
    learned: int = 0


class SatResult:
    """SAT outcome: model (1-indexed truth values) or UNSAT or unknown."""

    def __init__(
        self,
        satisfiable: Optional[bool],
        model: Optional[Dict[int, bool]] = None,
        stats: Optional[SatStats] = None,
    ):
        self.satisfiable = satisfiable
        self.model = model
        self.stats = stats or SatStats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SatResult({self.satisfiable})"


_UNASSIGNED = 0


class CdclSolver:
    """CDCL over a :class:`Cnf` formula."""

    def __init__(
        self,
        cnf: Cnf,
        timeout: Optional[float] = None,
        max_conflicts: Optional[int] = None,
    ):
        self.num_vars = cnf.num_vars
        self.clauses: List[List[int]] = [list(c) for c in cnf.clauses]
        self.timeout = timeout
        self.max_conflicts = max_conflicts
        # assignment[v]: 0 unassigned, +1 true, -1 false.
        self.assignment = [0] * (self.num_vars + 1)
        self.level = [0] * (self.num_vars + 1)
        self.reason: List[Optional[List[int]]] = [None] * (self.num_vars + 1)
        self.trail: List[int] = []  # literals in assignment order
        self.trail_lim: List[int] = []
        self.queue_head = 0
        # watches[lit] = clauses watching literal lit (lit is falsified
        # trigger: we store, per clause, its two watched literals at
        # positions 0 and 1).
        self.watches: Dict[int, List[List[int]]] = {}
        self.activity = [0.0] * (self.num_vars + 1)
        self.phase = [False] * (self.num_vars + 1)
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.stats = SatStats()
        self._ok = True
        for clause in self.clauses:
            if not self._attach(clause):
                self._ok = False
                break

    # ------------------------------------------------------------------
    # Clause attachment and watches
    # ------------------------------------------------------------------
    def _attach(self, clause: List[int]) -> bool:
        """Install a clause; returns False on immediate inconsistency."""
        if not clause:
            return False
        if len(clause) == 1:
            return self._enqueue(clause[0], None)
        self.watches.setdefault(-clause[0], []).append(clause)
        self.watches.setdefault(-clause[1], []).append(clause)
        return True

    def _value(self, literal: int) -> int:
        value = self.assignment[abs(literal)]
        return value if literal > 0 else -value

    def _enqueue(self, literal: int, reason: Optional[List[int]]) -> bool:
        current = self._value(literal)
        if current == 1:
            return True
        if current == -1:
            return False
        var = abs(literal)
        self.assignment[var] = 1 if literal > 0 else -1
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(literal)
        return True

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self.queue_head < len(self.trail):
            literal = self.trail[self.queue_head]
            self.queue_head += 1
            self.stats.propagations += 1
            watch_list = self.watches.get(literal, [])
            i = 0
            while i < len(watch_list):
                clause = watch_list[i]
                # Normalise: watched literals at positions 0 and 1; the
                # falsified one is -literal.
                if clause[0] == -literal:
                    clause[0], clause[1] = clause[1], clause[0]
                # clause[1] == -literal now.
                if self._value(clause[0]) == 1:
                    i += 1
                    continue
                # Search replacement watch.
                found = False
                for position in range(2, len(clause)):
                    if self._value(clause[position]) != -1:
                        clause[1], clause[position] = (
                            clause[position],
                            clause[1],
                        )
                        self.watches.setdefault(-clause[1], []).append(clause)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        found = True
                        break
                if found:
                    continue
                # Unit or conflicting.
                if not self._enqueue(clause[0], clause):
                    self.queue_head = len(self.trail)
                    return clause
                i += 1
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (1-UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        skip_var = 0  # variable whose reason is being expanded
        clause: Optional[List[int]] = conflict
        index = len(self.trail) - 1
        current_level = len(self.trail_lim)

        while True:
            assert clause is not None, "resolved into a decision/assumption"
            for q in clause:
                var = abs(q)
                if var == skip_var or seen[var] or self.level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self.level[var] == current_level:
                    counter += 1
                else:
                    learned.append(q)
            while not seen[abs(self.trail[index])]:
                index -= 1
            pivot = self.trail[index]
            skip_var = abs(pivot)
            seen[skip_var] = False
            counter -= 1
            if counter == 0:
                break
            clause = self.reason[skip_var]
            index -= 1
        learned[0] = -pivot

        if len(learned) == 1:
            backtrack_level = 0
        else:
            backtrack_level = max(
                self.level[abs(q)] for q in learned[1:]
            )
            # Move a literal of that level to position 1 (watch).
            for position in range(1, len(learned)):
                if self.level[abs(learned[position])] == backtrack_level:
                    learned[1], learned[position] = (
                        learned[position],
                        learned[1],
                    )
                    break
        return learned, backtrack_level

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def _cancel_until(self, target_level: int) -> None:
        if len(self.trail_lim) <= target_level:
            return
        keep = self.trail_lim[target_level]
        for literal in reversed(self.trail[keep:]):
            var = abs(literal)
            self.phase[var] = literal > 0
            self.assignment[var] = 0
            self.reason[var] = None
        del self.trail[keep:]
        del self.trail_lim[target_level:]
        self.queue_head = len(self.trail)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> Optional[int]:
        best = None
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self.assignment[var] == 0 and self.activity[var] > best_activity:
                best = var
                best_activity = self.activity[var]
        return best

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(self, assumptions: Optional[List[int]] = None) -> SatResult:
        if not self._ok:
            return SatResult(False, stats=self.stats)
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        # An already-exhausted budget (e.g. the caller spent the whole
        # timeout compiling) must not buy a free initial propagation.
        if self.timeout is not None and self.timeout <= 0:
            return SatResult(None, stats=self.stats)
        conflict = self._propagate()
        if conflict is not None:
            return SatResult(False, stats=self.stats)
        for literal in assumptions or []:
            if not self._enqueue(literal, None):
                return SatResult(False, stats=self.stats)
            if self._propagate() is not None:
                return SatResult(False, stats=self.stats)

        restart_budget = 128
        conflicts_since_restart = 0
        assumption_count = 0  # assumptions live at level 0 here

        while True:
            if deadline is not None and time.monotonic() > deadline:
                return SatResult(None, stats=self.stats)
            if (
                self.max_conflicts is not None
                and self.stats.conflicts >= self.max_conflicts
            ):
                return SatResult(None, stats=self.stats)
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if not self.trail_lim:
                    return SatResult(False, stats=self.stats)
                learned, backtrack_level = self._analyze(conflict)
                self._cancel_until(backtrack_level)
                self.stats.learned += 1
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        return SatResult(False, stats=self.stats)
                else:
                    self.clauses.append(learned)
                    self.watches.setdefault(-learned[0], []).append(learned)
                    self.watches.setdefault(-learned[1], []).append(learned)
                    self._enqueue(learned[0], learned)
                self.var_inc /= self.var_decay
                continue
            if conflicts_since_restart >= restart_budget:
                conflicts_since_restart = 0
                restart_budget = int(restart_budget * 1.5)
                self.stats.restarts += 1
                self._cancel_until(assumption_count)
                continue
            var = self._pick_branch_var()
            if var is None:
                model = {
                    v: self.assignment[v] > 0
                    for v in range(1, self.num_vars + 1)
                }
                return SatResult(True, model=model, stats=self.stats)
            self.stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            literal = var if self.phase[var] else -var
            if not self._enqueue(literal, None):
                raise SolverError("decision on assigned variable")


def solve_cnf(
    cnf: Cnf,
    assumptions: Optional[List[int]] = None,
    timeout: Optional[float] = None,
    max_conflicts: Optional[int] = None,
) -> SatResult:
    """One-shot CDCL solve."""
    return CdclSolver(cnf, timeout, max_conflicts).solve(assumptions)
