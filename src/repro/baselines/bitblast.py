"""Bit-blasting: word-level circuits to CNF.

The introduction's "most popular method": translate the RTL problem to
propositional CNF and hand it to a Boolean SAT solver.  Every net
becomes a little-endian vector of CNF literals; operators expand to
ripple-carry adders, shift-add multipliers and comparator chains.  The
paper's point is that this translation loses all word-level structure —
which is precisely what this baseline demonstrates on the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.baselines.cnf import Cnf
from repro.baselines.dpll_sat import SatResult, solve_cnf
from repro.errors import UnsupportedOperationError
from repro.intervals import Interval
from repro.rtl.circuit import Circuit, Net
from repro.rtl.types import OpKind


@dataclass
class BitBlastedCircuit:
    """CNF plus the net -> bit-literal mapping."""

    cnf: Cnf
    circuit: Circuit
    #: net index -> little-endian list of CNF literals (may be +-const).
    bits_of_net: Dict[int, List[int]] = field(default_factory=dict)
    true_literal: int = 0

    def bits(self, net: Net) -> List[int]:
        return self.bits_of_net[net.index]

    def decode_net(self, net: Net, model: Mapping[int, bool]) -> int:
        """Value of a net under a SAT model."""
        value = 0
        for position, literal in enumerate(self.bits(net)):
            bit = model[abs(literal)]
            if literal < 0:
                bit = not bit
            if bit:
                value |= 1 << position
        return value


class _Blaster:
    def __init__(self, circuit: Circuit):
        circuit.validate()
        if not circuit.is_combinational:
            raise UnsupportedOperationError(
                "bit-blasting requires a combinational circuit"
            )
        self.circuit = circuit
        self.cnf = Cnf()
        self.result = BitBlastedCircuit(cnf=self.cnf, circuit=circuit)
        self.true_lit = self.cnf.new_var()
        self.cnf.add_clause([self.true_lit])
        self.result.true_literal = self.true_lit

    # ------------------------------------------------------------------
    # Bit helpers
    # ------------------------------------------------------------------
    def _const_bit(self, value: bool) -> int:
        return self.true_lit if value else -self.true_lit

    def _and2(self, a: int, b: int) -> int:
        out = self.cnf.new_var()
        self.cnf.add_and(out, [a, b])
        return out

    def _or2(self, a: int, b: int) -> int:
        out = self.cnf.new_var()
        self.cnf.add_or(out, [a, b])
        return out

    def _xor2(self, a: int, b: int) -> int:
        out = self.cnf.new_var()
        self.cnf.add_xor(out, a, b)
        return out

    def _mux_bit(self, sel: int, then_bit: int, else_bit: int) -> int:
        out = self.cnf.new_var()
        self.cnf.add_mux(out, sel, then_bit, else_bit)
        return out

    def _full_adder(self, a: int, b: int, carry: int) -> Tuple[int, int]:
        total = self._xor2(self._xor2(a, b), carry)
        carry_out = self._or2(
            self._and2(a, b), self._and2(carry, self._xor2(a, b))
        )
        return total, carry_out

    def _add_vectors(self, a: List[int], b: List[int]) -> List[int]:
        """Ripple-carry sum modulo 2**len(a)."""
        carry = self._const_bit(False)
        out: List[int] = []
        for bit_a, bit_b in zip(a, b):
            total, carry = self._full_adder(bit_a, bit_b, carry)
            out.append(total)
        return out

    def _less_than(self, a: List[int], b: List[int]) -> int:
        return _less_than_cnf(self.cnf, self.true_lit, a, b)

    def _equal(self, a: List[int], b: List[int]) -> int:
        bits = [-self._xor2(x, y) for x, y in zip(a, b)]
        out = self.cnf.new_var()
        self.cnf.add_and(out, bits)
        return out

    # ------------------------------------------------------------------
    # Node translation
    # ------------------------------------------------------------------
    def blast(self) -> BitBlastedCircuit:
        for node in self.circuit.topological_nodes():
            self._blast_node(node)
        return self.result

    def _blast_node(self, node) -> None:
        kind = node.kind
        width = node.output.width
        if kind is OpKind.INPUT:
            bits = self.cnf.new_vars(width)
        elif kind is OpKind.CONST:
            value = node.const_value or 0
            bits = [
                self._const_bit(bool((value >> i) & 1)) for i in range(width)
            ]
        elif kind is OpKind.REG:
            raise UnsupportedOperationError("unroll registers before blasting")
        else:
            operands = [self.result.bits_of_net[n.index] for n in node.operands]
            bits = self._blast_operator(node, operands, width)
        self.result.bits_of_net[node.output.index] = bits

    def _blast_operator(self, node, operands, width) -> List[int]:
        kind = node.kind
        if kind is OpKind.BUF:
            return list(operands[0])
        if kind is OpKind.NOT:
            return [-operands[0][0]]
        if kind in (OpKind.AND, OpKind.NAND):
            out = self.cnf.new_var()
            self.cnf.add_and(out, [bits[0] for bits in operands])
            return [out if kind is OpKind.AND else -out]
        if kind in (OpKind.OR, OpKind.NOR):
            out = self.cnf.new_var()
            self.cnf.add_or(out, [bits[0] for bits in operands])
            return [out if kind is OpKind.OR else -out]
        if kind in (OpKind.XOR, OpKind.XNOR):
            out = self._xor2(operands[0][0], operands[1][0])
            return [out if kind is OpKind.XOR else -out]
        if kind is OpKind.MUX:
            sel = operands[0][0]
            return [
                self._mux_bit(sel, t, e)
                for t, e in zip(operands[1], operands[2])
            ]
        if kind is OpKind.ADD:
            return self._add_vectors(operands[0], operands[1])
        if kind is OpKind.SUB:
            negated = [-bit for bit in operands[1]]
            one = [self._const_bit(i == 0) for i in range(width)]
            return self._add_vectors(
                self._add_vectors(operands[0], negated), one
            )
        if kind is OpKind.MULC:
            factor = node.factor or 0
            accumulator = [self._const_bit(False)] * width
            shifted = list(operands[0])
            bit_index = 0
            while factor >> bit_index and bit_index < width:
                if (factor >> bit_index) & 1:
                    partial = (
                        [self._const_bit(False)] * bit_index
                        + shifted[: width - bit_index]
                    )
                    accumulator = self._add_vectors(accumulator, partial)
                bit_index += 1
            return accumulator
        if kind is OpKind.SHL:
            amount = node.shift_amount or 0
            if amount >= width:
                return [self._const_bit(False)] * width
            return (
                [self._const_bit(False)] * amount
                + operands[0][: width - amount]
            )
        if kind is OpKind.SHR:
            amount = node.shift_amount or 0
            source = operands[0]
            if amount >= len(source):
                return [self._const_bit(False)] * width
            return source[amount:] + [self._const_bit(False)] * amount
        if kind is OpKind.CONCAT:
            return list(operands[1]) + list(operands[0])
        if kind is OpKind.EXTRACT:
            lo = node.extract_lo or 0
            hi = node.extract_hi
            return operands[0][lo : hi + 1]
        if kind is OpKind.ZEXT:
            pad = width - len(operands[0])
            return list(operands[0]) + [self._const_bit(False)] * pad
        if kind is OpKind.EQ:
            return [self._equal(operands[0], operands[1])]
        if kind is OpKind.NE:
            return [-self._equal(operands[0], operands[1])]
        if kind is OpKind.LT:
            return [self._less_than(operands[0], operands[1])]
        if kind is OpKind.GT:
            return [self._less_than(operands[1], operands[0])]
        if kind is OpKind.LE:
            return [-self._less_than(operands[1], operands[0])]
        if kind is OpKind.GE:
            return [-self._less_than(operands[0], operands[1])]
        raise UnsupportedOperationError(f"cannot bit-blast {kind.value}")


def bitblast(circuit: Circuit) -> BitBlastedCircuit:
    """Translate a combinational circuit to CNF."""
    return _Blaster(circuit).blast()


AssumptionValue = Union[int, Interval]


def assert_assumptions(
    blasted: BitBlastedCircuit,
    assumptions: Mapping[str, AssumptionValue],
) -> None:
    """Constrain nets (or output aliases) to values or intervals."""
    circuit = blasted.circuit
    for name, required in assumptions.items():
        net = (
            circuit.outputs[name]
            if name in circuit.outputs
            else circuit.net(name)
        )
        bits = blasted.bits(net)
        if isinstance(required, Interval):
            _assert_interval(blasted, bits, required)
        else:
            for position, literal in enumerate(bits):
                bit_value = (required >> position) & 1
                blasted.cnf.add_clause([literal if bit_value else -literal])


def _less_than_cnf(cnf: Cnf, true_lit: int, a: List[int], b: List[int]) -> int:
    """Unsigned ``a < b`` over little-endian literal vectors."""
    lt = -true_lit
    for bit_a, bit_b in zip(a, b):  # LSB to MSB
        bit_lt = cnf.new_var()
        cnf.add_and(bit_lt, [-bit_a, bit_b])
        bit_xor = cnf.new_var()
        cnf.add_xor(bit_xor, bit_a, bit_b)
        keep = cnf.new_var()
        cnf.add_and(keep, [-bit_xor, lt])
        new_lt = cnf.new_var()
        cnf.add_or(new_lt, [bit_lt, keep])
        lt = new_lt
    return lt


def _assert_interval(
    blasted: BitBlastedCircuit, bits: List[int], interval: Interval
) -> None:
    cnf = blasted.cnf
    width = len(bits)

    def const_bits(value: int) -> List[int]:
        return [
            blasted.true_literal if (value >> i) & 1 else -blasted.true_literal
            for i in range(width)
        ]

    if interval.lo > 0:
        below = _less_than_cnf(cnf, blasted.true_literal, bits, const_bits(interval.lo))
        cnf.add_clause([-below])
    if interval.hi < (1 << width) - 1:
        above = _less_than_cnf(cnf, blasted.true_literal, const_bits(interval.hi), bits)
        cnf.add_clause([-above])


def solve_by_bitblasting(
    circuit: Circuit,
    assumptions: Mapping[str, AssumptionValue],
    timeout: Optional[float] = None,
    max_conflicts: Optional[int] = None,
) -> Tuple[Optional[bool], Optional[Dict[str, int]], SatResult]:
    """Decide satisfiability via CNF translation + CDCL.

    Returns ``(satisfiable, model, sat_result)`` where the model maps
    every net name to its value (SAT only).

    ``timeout`` covers the *whole* call: the CNF translation is charged
    against it and only the remainder goes to the SAT core, so a slow
    blast cannot stretch the budget.
    """
    start = time.monotonic()
    blasted = bitblast(circuit)
    assert_assumptions(blasted, assumptions)
    remaining = (
        timeout - (time.monotonic() - start) if timeout is not None else None
    )
    sat_result = solve_cnf(
        blasted.cnf, timeout=remaining, max_conflicts=max_conflicts
    )
    if sat_result.satisfiable is not True:
        return sat_result.satisfiable, None, sat_result
    assert sat_result.model is not None
    model = {
        net.name: blasted.decode_net(net, sat_result.model)
        for net in circuit.nets
    }
    for alias, net in circuit.outputs.items():
        model[alias] = model[net.name]
    return True, model, sat_result
