"""UCLID-style lazy combined decision procedure (comparator substitute).

UCLID [15] decides these instances by encoding to propositional SAT
(chaff) with the theory handled around the SAT core.  The real binary is
not available offline, so this baseline reproduces the *architecture and
qualitative profile*: a lazy DPLL(T) loop —

1. Build a **Boolean abstraction**: the circuit's Boolean skeleton with
   every comparator output replaced by a free abstract variable (the
   datapath disappears entirely).
2. Solve the abstraction with the CDCL SAT core.
3. **Theory-check** the abstract model by pinning every Boolean net to
   its abstract value and running hybrid propagation plus the integer
   leaf check.
4. On theory failure, extract a conflict core (the theory lemma) by
   tracing the hybrid implication graph, add it to the abstraction and
   iterate.

The datapath is invisible to the SAT core, so each lemma teaches it one
fact at a time — the per-iteration churn on datapath-heavy BMC is the
qualitative weakness Table 2 shows for UCLID.  See DESIGN.md
("Substitutions") for the fidelity argument.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.baselines.cnf import Cnf
from repro.baselines.dpll_sat import CdclSolver
from repro.constraints.clause import BoolLit
from repro.constraints.compile import compile_circuit
from repro.constraints.engine import PropagationEngine
from repro.constraints.propagators import ComparatorProp
from repro.constraints.store import DECISION, Conflict, DomainStore
from repro.core.conflict import analyze_conflict
from repro.core.fme_leaf import check_solution_box
from repro.core.result import SolverResult, SolverStats, Status
from repro.intervals import Interval
from repro.rtl.circuit import Circuit
from repro.rtl.simulate import simulate_combinational
from repro.rtl.types import BOOLEAN_KINDS, PREDICATE_KINDS, OpKind

AssumptionValue = Union[int, Interval]


@dataclass
class LazySmtStats:
    """Per-run counters for the harness."""

    iterations: int = 0
    sat_decisions: int = 0
    sat_conflicts: int = 0
    blocking_clauses: int = 0


class LazySmtSolver:
    """Lazy Boolean-abstraction + theory-lemma refinement loop."""

    def __init__(
        self,
        circuit: Circuit,
        timeout: Optional[float] = None,
        max_iterations: int = 500_000,
    ):
        self.circuit = circuit
        self.timeout = timeout
        self.max_iterations = max_iterations
        self.stats = LazySmtStats()
        self.cnf = Cnf()
        #: net index -> abstraction CNF variable (Boolean nets only).
        self.abstract_var: Dict[int, int] = {}
        self._build_abstraction()
        # One persistent theory solver state, reset per check.
        self.system = compile_circuit(circuit)
        self.store = DomainStore(self.system.variables)
        self.engine = PropagationEngine(self.store, self.system.propagators)

    def _build_abstraction(self) -> None:
        """Boolean skeleton + free variables for predicates."""
        for node in self.circuit.topological_nodes():
            net = node.output
            if not net.is_bool:
                continue
            kind = node.kind
            if kind in PREDICATE_KINDS or kind in (OpKind.INPUT, OpKind.MUX):
                self.abstract_var[net.index] = self.cnf.new_var()
                continue
            if kind is OpKind.CONST:
                var = self.cnf.new_var()
                self.abstract_var[net.index] = var
                self.cnf.add_clause([var if node.const_value else -var])
                continue
            if kind in BOOLEAN_KINDS:
                out = self.cnf.new_var()
                self.abstract_var[net.index] = out
                inputs = [
                    self.abstract_var[operand.index]
                    for operand in node.operands
                ]
                if kind is OpKind.BUF:
                    self.cnf.add_eq(out, inputs[0])
                elif kind is OpKind.NOT:
                    self.cnf.add_eq(out, -inputs[0])
                elif kind is OpKind.AND:
                    self.cnf.add_and(out, inputs)
                elif kind is OpKind.NAND:
                    self.cnf.add_and(-out, inputs)
                elif kind is OpKind.OR:
                    self.cnf.add_or(out, inputs)
                elif kind is OpKind.NOR:
                    self.cnf.add_or(-out, inputs)
                elif kind is OpKind.XOR:
                    self.cnf.add_xor(out, inputs[0], inputs[1])
                else:  # XNOR
                    self.cnf.add_xor(-out, inputs[0], inputs[1])

    # ------------------------------------------------------------------
    def solve(self, assumptions: Mapping[str, AssumptionValue]) -> SolverResult:
        start = time.monotonic()
        deadline = start + self.timeout if self.timeout is not None else None
        stats = SolverStats()
        if self.timeout is not None and self.timeout <= 0:
            return SolverResult(
                Status.UNKNOWN,
                stats=stats,
                note=f"timeout after {self.timeout}s",
            )

        # Boolean-valued assumptions constrain the abstraction directly.
        for name, value in assumptions.items():
            net = (
                self.circuit.outputs[name]
                if name in self.circuit.outputs
                else self.circuit.net(name)
            )
            if net.is_bool and not isinstance(value, Interval):
                literal = self.abstract_var[net.index]
                self.cnf.add_clause([literal if value else -literal])

        # Theory-side level-0 setup (assumptions on words and bools).
        for name, value in assumptions.items():
            var = self.system.var_by_name(name)
            interval = (
                value if isinstance(value, Interval) else Interval.point(value)
            )
            if isinstance(self.store.assume(var, interval), Conflict):
                return SolverResult(Status.UNSAT, stats=stats)
        self.engine.enqueue_all()
        if self.engine.propagate() is not None:
            return SolverResult(Status.UNSAT, stats=stats)

        # Seed the abstraction with every Boolean fact the theory derives
        # at level 0 (theory propagation seeding).  Without this, an
        # abstract model can contradict a theory fact outright and the
        # contradiction would not be attributable to any abstract choice.
        for net_index, cnf_var in self.abstract_var.items():
            net = self.circuit.nets[net_index]
            value = self.store.bool_value(self.system.var(net))
            if value is not None:
                self.cnf.add_clause([cnf_var if value else -cnf_var])

        while self.stats.iterations < self.max_iterations:
            if deadline is not None and time.monotonic() > deadline:
                return SolverResult(
                    Status.UNKNOWN,
                    stats=stats,
                    note=f"timeout after {self.timeout}s",
                )
            self.stats.iterations += 1
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            sat_result = CdclSolver(self.cnf, timeout=remaining).solve()
            self.stats.sat_decisions += sat_result.stats.decisions
            self.stats.sat_conflicts += sat_result.stats.conflicts
            if sat_result.satisfiable is None:
                return SolverResult(
                    Status.UNKNOWN, stats=stats, note="SAT core timeout"
                )
            if sat_result.satisfiable is False:
                stats.solve_time = time.monotonic() - start
                return SolverResult(Status.UNSAT, stats=stats)

            assert sat_result.model is not None
            verdict, payload = self._theory_check(sat_result.model)
            if verdict == "model":
                stats.solve_time = time.monotonic() - start
                return SolverResult(Status.SAT, model=payload, stats=stats)
            if verdict == "root":
                # The theory refutation rests on level-0 facts alone.
                stats.solve_time = time.monotonic() - start
                return SolverResult(Status.UNSAT, stats=stats)
            # Theory lemma: add and iterate.
            self.cnf.add_clause(payload)
            self.stats.blocking_clauses += 1
            stats.conflicts += 1
        return SolverResult(
            Status.UNKNOWN, stats=stats, note="iteration budget exhausted"
        )

    # ------------------------------------------------------------------
    def _theory_check(
        self, model: Dict[int, bool]
    ) -> Tuple[str, Optional[object]]:
        """Check an abstract model against the theory.

        Returns ``("model", full_model)``, ``("core", blocking_clause)``
        or ``("root", None)`` when the refutation is assignment-free.
        """
        store = self.store
        entry_level = store.decision_level
        store.push_level()
        try:
            conflict: Optional[Conflict] = None
            for net_index, cnf_var in self.abstract_var.items():
                net = self.circuit.nets[net_index]
                var = self.system.var(net)
                value = 1 if model[cnf_var] else 0
                outcome = store.assign_bool(var, value, DECISION)
                if isinstance(outcome, Conflict):
                    # Contradicts a level-0 theory fact: the seeding pass
                    # makes this unreachable, but defend with the unit
                    # lemma forcing the theory's value.
                    pinned = store.bool_value(var)
                    assert pinned is not None
                    return "core", [cnf_var if pinned else -cnf_var]
            if conflict is None:
                conflict = self.engine.propagate()
            if conflict is None:
                leaf = check_solution_box(store, self.system)
                if leaf.feasible:
                    input_values = {
                        net.name: leaf.witness[self.system.var(net).index]
                        for net in self.circuit.inputs
                    }
                    return "model", simulate_combinational(
                        self.circuit, input_values
                    )
                conflict = self._fme_conflict(leaf)
            analysis = analyze_conflict(
                conflict, store, hybrid_word_literals=False
            )
            if analysis is None:
                return "root", None
            blocking: List[int] = []
            for literal in analysis.clause.literals:
                assert isinstance(literal, BoolLit)
                assert literal.var.net_index is not None
                cnf_var = self.abstract_var[literal.var.net_index]
                blocking.append(cnf_var if literal.positive else -cnf_var)
            return "core", blocking
        finally:
            store.backtrack_to(entry_level)
            self.engine.notify_backtrack()

    def _fme_conflict(self, leaf) -> Conflict:
        antecedents = set()
        for var_index in leaf.failing_var_indices:
            event_id = self.store.latest_event[var_index]
            if event_id is not None:
                antecedents.add(event_id)
        for prop in leaf.failing_sources:
            control = (
                prop.pred if isinstance(prop, ComparatorProp) else prop.sel
            )
            event_id = self.store.latest_event[control.index]
            if event_id is not None:
                antecedents.add(event_id)
        return Conflict(
            source="fme-refutation", antecedents=tuple(sorted(antecedents))
        )


def solve_lazy_smt(
    circuit: Circuit,
    assumptions: Mapping[str, AssumptionValue],
    timeout: Optional[float] = None,
) -> SolverResult:
    """One-shot lazy-SMT solve (the UCLID-like comparator).

    ``timeout`` covers abstraction building and theory-system
    compilation too, not just the CEGAR loop — construction time is
    deducted from the loop's budget.
    """
    start = time.monotonic()
    solver = LazySmtSolver(circuit, timeout=timeout)
    if timeout is not None:
        solver.timeout = max(0.0, timeout - (time.monotonic() - start))
    return solver.solve(assumptions)
