"""CNF formulas in DIMACS-style signed-integer form."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import SolverError


@dataclass
class Cnf:
    """A CNF formula: clauses of non-zero signed variable numbers."""

    num_vars: int = 0
    clauses: List[List[int]] = field(default_factory=list)

    def new_var(self) -> int:
        """Allocate a fresh variable (numbered from 1)."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = sorted(set(literals), key=abs)
        for literal in clause:
            if literal == 0 or abs(literal) > self.num_vars:
                raise SolverError(f"literal {literal} out of range")
        # Drop tautologies (x and ~x in the same clause).
        present = set(clause)
        if any(-literal in present for literal in clause):
            return
        self.clauses.append(clause)

    # ------------------------------------------------------------------
    # Tseitin gate encodings
    # ------------------------------------------------------------------
    def add_and(self, out: int, inputs: Sequence[int]) -> None:
        """``out <-> AND(inputs)``."""
        for literal in inputs:
            self.add_clause([-out, literal])
        self.add_clause([out] + [-literal for literal in inputs])

    def add_or(self, out: int, inputs: Sequence[int]) -> None:
        """``out <-> OR(inputs)``."""
        for literal in inputs:
            self.add_clause([out, -literal])
        self.add_clause([-out] + list(inputs))

    def add_xor(self, out: int, a: int, b: int) -> None:
        """``out <-> a XOR b``."""
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])

    def add_eq(self, a: int, b: int) -> None:
        """``a <-> b``."""
        self.add_clause([-a, b])
        self.add_clause([a, -b])

    def add_mux(self, out: int, sel: int, then_lit: int, else_lit: int) -> None:
        """``out <-> (sel ? then_lit : else_lit)``."""
        self.add_clause([-sel, -then_lit, out])
        self.add_clause([-sel, then_lit, -out])
        self.add_clause([sel, -else_lit, out])
        self.add_clause([sel, else_lit, -out])

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Truth of the formula under a full assignment."""
        for clause in self.clauses:
            satisfied = False
            for literal in clause:
                value = assignment.get(abs(literal))
                if value is None:
                    raise SolverError(f"variable {abs(literal)} unassigned")
                if value == (literal > 0):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def to_dimacs(self) -> str:
        """Serialise in DIMACS format."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"


def from_dimacs(text: str) -> Cnf:
    """Parse a DIMACS CNF file."""
    cnf = Cnf()
    declared_vars: Optional[int] = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SolverError(f"bad DIMACS header: {line!r}")
            declared_vars = int(parts[2])
            cnf.num_vars = declared_vars
            continue
        numbers = [int(token) for token in line.split()]
        if numbers and numbers[-1] == 0:
            numbers.pop()
        if numbers:
            cnf.num_vars = max(cnf.num_vars, max(abs(n) for n in numbers))
            cnf.add_clause(numbers)
    return cnf
