"""repro — Structural Search for RTL with Predicate Learning.

A full reproduction of Parthasarathy, Iyer, Cheng, Brewer, *Structural
Search for RTL with Predicate Learning* (DAC 2005): the HDPLL hybrid
Boolean/integer satisfiability solver for RTL circuits, extended with
the paper's two contributions — predicate-based static learning
(Section 3) and the structural justification decision strategy
(Section 4) — plus every substrate they stand on (interval arithmetic,
an RTL netlist IR, hybrid constraint propagation, a Fourier–Motzkin /
Omega integer solver, BMC unrolling, baseline solvers and the ITC'99
benchmark models).

Quick start::

    from repro import CircuitBuilder, solve_circuit, HDPLL_SP

    b = CircuitBuilder("demo")
    a = b.input("a", 8)
    limit = b.const(200, 8)
    over = b.gt(a, limit, name="over")
    b.output("over", over)
    result = solve_circuit(b.build(), {"over": 1}, HDPLL_SP)
    assert result.is_sat and result.model["a"] > 200
"""

import logging as _logging

from repro.bmc import (
    InductionStatus,
    SafetyProperty,
    make_bmc_instance,
    prove_by_induction,
    unroll,
)
from repro.core import (
    HDPLL_BASE,
    HDPLL_P,
    HDPLL_S,
    HDPLL_SP,
    HdpllSolver,
    SolverConfig,
    SolverResult,
    SolverStats,
    Status,
    predicate_abstraction_check,
    solve_circuit,
)
from repro.equivalence import (
    EquivalenceStatus,
    check_combinational_equivalence,
    check_sequential_equivalence,
)
from repro.intervals import Interval
from repro.obs import (
    MetricsRegistry,
    Observation,
    PhaseProfiler,
    TraceEmitter,
    configure_logging,
)
from repro.rtl import Circuit, CircuitBuilder, optimize, parse_module

# Library default: silent unless the application (or the CLI's
# --log-level / $REPRO_LOG) attaches a handler.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "EquivalenceStatus",
    "HDPLL_BASE",
    "HDPLL_P",
    "HDPLL_S",
    "HDPLL_SP",
    "HdpllSolver",
    "InductionStatus",
    "Interval",
    "MetricsRegistry",
    "Observation",
    "PhaseProfiler",
    "SafetyProperty",
    "SolverConfig",
    "SolverResult",
    "SolverStats",
    "Status",
    "TraceEmitter",
    "check_combinational_equivalence",
    "check_sequential_equivalence",
    "configure_logging",
    "make_bmc_instance",
    "optimize",
    "parse_module",
    "predicate_abstraction_check",
    "prove_by_induction",
    "solve_circuit",
    "unroll",
    "__version__",
]
