"""Cross-process telemetry: per-worker shards merged into one timeline.

PR 2's tracing/metrics/profiling stack is strictly single-process;
every serious workload since (the crash-isolated bench pool, the
cube-and-conquer portfolio, the engine-impl matrix) spans many spawned
workers whose clocks do not share an epoch.  This module closes that
gap:

* :class:`TelemetryHub` — the parent side.  Owns a telemetry
  directory, records its ``time.perf_counter()`` **epoch** at
  construction, and mints one picklable :class:`TelemetryConfig` per
  spawned worker.
* :class:`WorkerTelemetry` — the child side.  Opened from a config
  inside the worker process, it performs the clock-offset handshake
  (its own ``perf_counter`` minus the parent epoch — exact on every
  platform whose ``perf_counter`` is system-wide, which includes Linux
  CLOCK_MONOTONIC, Windows QPC and macOS mach time), then provides the
  worker's trace shard, always-on flight recorder, resource-sampler
  thread, phase profiler and metrics snapshot file.
* :func:`merge_shards` — the merge step.  Reads every shard (tolerant
  of torn final lines from killed workers), maps each event's local
  timestamp ``t`` to the parent epoch (``gt = offset + t``), annotates
  it with its worker id ``w``, and sorts by the stable ``(gt, w,
  seq)`` key — so the merged timeline is deterministic regardless of
  shard arrival order and globally monotonic after clock alignment.
* metrics export — per-worker ``worker-<id>.metrics.json`` snapshots
  aggregated into ``metrics.json`` plus an OpenMetrics/Prometheus text
  exposition ``metrics.prom`` (per-worker labelled samples and an
  unlabelled aggregate), ready for the solver-as-a-service daemon to
  serve over HTTP.

Shard layout inside a telemetry directory::

    hub.json                    # parent epoch + run metadata
    worker-<id>.trace.jsonl     # per-worker trace shard (schema v2)
    worker-<id>.metrics.json    # per-worker metrics snapshot
    worker-<id>.flight.jsonl    # flight-recorder dump (crashes only)
    timeline.jsonl              # merged timeline (written by merge)
    metrics.json / metrics.prom # aggregated metrics export
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder, TeeEmitter
from repro.obs.profile import (
    PROFILE_DRIFT_TOLERANCE,
    PhaseProfiler,
    merge_reports,
    profile_drift,
)
from repro.obs.resources import DEFAULT_INTERVAL, ResourceSampler
from repro.obs.trace import TRACE_SCHEMA_VERSION, TraceEmitter

#: Scalar metric value.
Scalar = Union[int, float]

_HUB_FILE = "hub.json"
_TIMELINE_FILE = "timeline.jsonl"
_METRICS_JSON = "metrics.json"
_METRICS_PROM = "metrics.prom"

_SHARD_GLOB = "worker-*.trace.jsonl"
_SHARD_RE = re.compile(r"^worker-(?P<id>.+)\.trace\.jsonl$")

_SAFE_ID = re.compile(r"[^A-Za-z0-9_.+-]+")


def _safe_id(worker_id: str) -> str:
    return _SAFE_ID.sub("_", worker_id) or "worker"


@dataclass(frozen=True)
class TelemetryConfig:
    """Everything a spawned worker needs to open its telemetry shard.

    Picklable by construction (plain scalars only) — it rides to the
    worker inside the spawn arguments.  ``parent_perf0`` is the parent
    epoch of the clock-offset handshake.
    """

    directory: str
    worker_id: str
    label: str = ""
    parent_perf0: float = 0.0
    #: Write the full JSONL trace shard (the flight recorder is always
    #: on regardless).
    trace: bool = True
    #: Run the resource-sampler thread.
    resources: bool = True
    sample_interval: float = DEFAULT_INTERVAL
    flight_capacity: int = DEFAULT_CAPACITY

    @property
    def shard_path(self) -> Path:
        return Path(self.directory) / f"worker-{self.worker_id}.trace.jsonl"

    @property
    def metrics_path(self) -> Path:
        return Path(self.directory) / f"worker-{self.worker_id}.metrics.json"

    @property
    def flight_path(self) -> Path:
        return Path(self.directory) / f"worker-{self.worker_id}.flight.jsonl"


class WorkerTelemetry:
    """Child-side telemetry: shard trace, flight ring, sampler, metrics.

    The solver-facing surface is :attr:`emitter` (a
    :class:`~repro.obs.flight.TeeEmitter` feeding the shard trace and
    the flight recorder) — hand it to the solver as its tracer.  When
    the config disables full tracing the emitter degrades to the flight
    recorder alone, keeping the instrumented path near-free.
    """

    def __init__(self, config: TelemetryConfig):
        self.config = config
        Path(config.directory).mkdir(parents=True, exist_ok=True)
        #: Clock-offset handshake: seconds between the parent epoch and
        #: this worker's shard epoch.  Added to every shard-local
        #: timestamp by the merge step.
        t0 = time.perf_counter()
        self.offset = t0 - config.parent_perf0 if config.parent_perf0 else 0.0
        self.flight = FlightRecorder(config.flight_capacity, t0=t0)
        self.tracer: Optional[TraceEmitter] = None
        if config.trace:
            self.tracer = TraceEmitter.open(config.shard_path, t0=t0)
            self.tracer.event(
                "shard_begin",
                schema=TRACE_SCHEMA_VERSION,
                worker=config.worker_id,
                pid=os.getpid(),
                offset=round(self.offset, 9),
                label=config.label,
                wall=time.time(),
            )
        self.emitter = TeeEmitter(self.tracer, self.flight)
        self.sampler: Optional[ResourceSampler] = None
        if config.resources:
            self.sampler = ResourceSampler(
                self.emitter, interval=config.sample_interval
            ).start()
        self.profiler = PhaseProfiler()
        self._metrics: Dict[str, Scalar] = {}
        self._closed = False

    def observation(self):
        """An :class:`~repro.obs.Observation` bundle wired to this
        worker's telemetry (tee emitter + phase profiler)."""
        from repro.obs import Observation  # deferred: obs/__init__ imports us

        return Observation(tracer=self.emitter, profiler=self.profiler)

    # ------------------------------------------------------------------
    # Event surface
    # ------------------------------------------------------------------
    def event(self, ev: str, dl: int = 0, **fields) -> None:
        self.emitter.event(ev, dl, **fields)

    def task_begin(self, label: str) -> None:
        self.event("task_begin", label=label)

    def task_end(self, label: str, status: str, seconds: float) -> None:
        self.event("task_end", label=label, status=status,
                   seconds=round(seconds, 6))

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def record_metrics(self, values: Dict[str, object]) -> None:
        """Accumulate scalar metrics into the worker snapshot.

        Integers add (counters), floats overwrite (gauges) — matching
        the :class:`~repro.obs.metrics.MetricsRegistry` kinds.  Non-
        scalars are ignored.
        """
        for name, value in values.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if isinstance(value, int) and isinstance(
                self._metrics.get(name, 0), int
            ):
                self._metrics[name] = int(self._metrics.get(name, 0)) + value
            else:
                self._metrics[name] = value

    def write_metrics(self) -> Path:
        """Write the worker metrics snapshot (telemetry-own gauges
        included); called from :meth:`close` but callable earlier."""
        if self.sampler is not None:
            # Floats aggregate by max across workers — the right
            # reading for a peak (ints would sum).
            self._metrics["peak_rss_kb"] = float(self.sampler.peak_rss_kb)
            self._metrics["cpu_seconds"] = self.sampler.cpu_s
            self._metrics["resource_samples"] = self.sampler.samples
        self._metrics["trace_events"] = (
            self.tracer.events_emitted if self.tracer is not None else 0
        )
        self._metrics["flight_events"] = self.flight.recorded
        snapshot = {
            "worker": self.config.worker_id,
            "label": self.config.label,
            "metrics": dict(sorted(self._metrics.items())),
        }
        path = self.config.metrics_path
        path.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    # ------------------------------------------------------------------
    # Postmortems and shutdown
    # ------------------------------------------------------------------
    def dump_flight(self, reason: str) -> Path:
        """Dump the flight ring (see :class:`FlightRecorder.dump`)."""
        return self.flight.dump(self.config.flight_path, reason=reason)

    def install_signal_dump(self) -> None:
        """SIGTERM -> dump the flight ring, flush the shard, exit 70.

        The pool's hard-deadline enforcement sends SIGTERM first (with
        a short grace before SIGKILL) precisely so this handler gets to
        turn an opaque kill into a postmortem artifact.
        """

        def _dump(reason: str) -> None:
            self.dump_flight(reason)
            if self.tracer is not None:
                self.tracer.flush()

        install_crash_dump_handler(_dump)

    def close(self) -> None:
        """Stop the sampler, seal the shard, write the metrics file."""
        if self._closed:
            return
        self._closed = True
        if self.sampler is not None:
            self.sampler.stop()
        try:
            self.write_metrics()
        except OSError:
            pass
        if self.tracer is not None:
            self.tracer.event("shard_end",
                              events=self.tracer.events_emitted + 1)
            self.tracer.close()

    def __enter__(self) -> "WorkerTelemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Exit code of a worker that died via the crash-dump signal handler
#: (distinguishable from engine exit codes in pool abort records).
CRASH_DUMP_EXIT_CODE = 70


def install_crash_dump_handler(dump, exit_code: int = CRASH_DUMP_EXIT_CODE) -> None:
    """Install a SIGTERM handler that calls ``dump(reason)`` then exits.

    ``dump`` must be async-signal-tolerant in practice: append-only ring
    snapshot plus one file write.  Installation is skipped silently off
    the main thread (``signal`` refuses there) — the pool worker entry
    point is always the main thread, so that only affects odd embeddings.
    """
    import signal

    def _handler(signum, _frame):
        try:
            dump(f"signal {signum}")
        finally:
            os._exit(exit_code)

    try:
        signal.signal(signal.SIGTERM, _handler)
    except ValueError:
        pass


class TelemetryHub:
    """Parent-side telemetry coordinator for one multi-worker run."""

    def __init__(
        self,
        directory: Union[str, Path],
        trace: bool = True,
        resources: bool = True,
        sample_interval: float = DEFAULT_INTERVAL,
        flight_capacity: int = DEFAULT_CAPACITY,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: The parent epoch every worker offset is measured against.
        self.perf0 = time.perf_counter()
        self.wall0 = time.time()
        self.trace = trace
        self.resources = resources
        self.sample_interval = sample_interval
        self.flight_capacity = flight_capacity
        (self.directory / _HUB_FILE).write_text(
            json.dumps(
                {
                    "schema": TRACE_SCHEMA_VERSION,
                    "pid": os.getpid(),
                    "wall0": self.wall0,
                    "trace": trace,
                    "resources": resources,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )

    def worker_config(self, worker_id: str, label: str = "") -> TelemetryConfig:
        """A picklable per-worker config carrying the epoch handshake."""
        return TelemetryConfig(
            directory=str(self.directory),
            worker_id=_safe_id(worker_id),
            label=label,
            parent_perf0=self.perf0,
            trace=self.trace,
            resources=self.resources,
            sample_interval=self.sample_interval,
            flight_capacity=self.flight_capacity,
        )

    def merge(self) -> Dict[str, object]:
        """Merge shards into ``timeline.jsonl`` + metrics exports."""
        return merge_directory(self.directory)


# ----------------------------------------------------------------------
# Shard reading and the merge step
# ----------------------------------------------------------------------
def read_shard_tolerant(path: Path) -> Tuple[List[dict], int]:
    """Parse a shard, skipping torn lines (killed workers may leave a
    truncated final record).  Returns ``(events, torn_line_count)``."""
    events: List[dict] = []
    torn = 0
    try:
        # A hard-killed worker can truncate the file mid multi-byte
        # sequence; replacement characters make the torn line fail JSON
        # parsing (counted below) instead of aborting the whole merge.
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return events, torn
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            torn += 1
    return events, torn


def shard_paths(directory: Union[str, Path]) -> List[Path]:
    """Shard files of a telemetry directory, in deterministic order."""
    return sorted(Path(directory).glob(_SHARD_GLOB))


def _shard_worker_id(path: Path) -> str:
    match = _SHARD_RE.match(path.name)
    return match.group("id") if match else path.stem


def merge_shards(
    shards: Sequence[Path],
) -> Tuple[List[dict], Dict[str, object]]:
    """Merge per-worker shards into one globally ordered timeline.

    Every event is annotated with its worker id ``w`` and clock-aligned
    global timestamp ``gt`` (shard offset + local ``t``), then the
    whole set is sorted by ``(gt, w, seq)`` — a total order independent
    of shard enumeration or arrival order.  Returns the merged events
    (headed by ``timeline_begin``) and a summary dictionary (lanes,
    phase aggregates, per-worker drift check, clause flows).
    """
    merged: List[dict] = []
    lanes: List[Dict[str, object]] = []
    torn_total = 0
    profile_reports: List[Dict[str, object]] = []
    drift_errors: List[str] = []
    for shard in sorted(shards):
        events, torn = read_shard_tolerant(shard)
        torn_total += torn
        worker = _shard_worker_id(shard)
        offset = 0.0
        label = ""
        if events and events[0].get("ev") == "shard_begin":
            head = events[0]
            worker = str(head.get("worker", worker))
            offset = float(head.get("offset", 0.0))
            label = str(head.get("label", ""))
        lane: Dict[str, object] = {
            "worker": worker,
            "label": label,
            "shard": shard.name,
            "events": len(events),
            "torn_lines": torn,
            "offset": offset,
            "status": "",
            "peak_rss_kb": 0,
            "cpu_s": 0.0,
        }
        solve_reference = 0.0
        solve_ends = 0
        worker_phases: List[Dict[str, object]] = []
        for position, event in enumerate(events):
            annotated = dict(event)
            annotated["w"] = worker
            annotated["gt"] = round(offset + float(event.get("t", 0.0)), 9)
            if "seq" not in annotated:  # v1 emitters predate seq
                annotated["seq"] = position
            merged.append(annotated)
            kind = event.get("ev")
            if kind == "task_end":
                lane["status"] = event.get("status", "")
            elif kind == "solve_end":
                solve_ends += 1
                solve_reference += float(
                    event.get("solve_time", 0.0)
                ) + float(event.get("learn_time", 0.0))
                if not lane["status"]:
                    lane["status"] = str(event.get("status", ""))
            elif kind == "resource":
                rss = int(event.get("rss_kb", 0))
                if rss > int(lane["peak_rss_kb"]):
                    lane["peak_rss_kb"] = rss
                lane["cpu_s"] = float(event.get("cpu_s", lane["cpu_s"]))
            elif kind == "profile":
                report = {"phases": event.get("phases", [])}
                worker_phases.append(report)
                profile_reports.append(report)
        if events:
            lane["first_gt"] = round(offset + float(events[0].get("t", 0.0)), 9)
            lane["last_gt"] = round(offset + float(events[-1].get("t", 0.0)), 9)
        # Satellite fix: the 10% phase-sum-vs-solve-time drift gate used
        # to see only the parent process; here it runs per worker shard
        # (single-solve shards only — a session sweep interleaves many
        # solves and the one-solve accounting identity does not apply).
        if len(worker_phases) == 1 and solve_ends == 1:
            phase_sum = float(
                merge_reports(worker_phases)["top_level_total"]
            )
            drift = profile_drift(phase_sum, solve_reference)
            if drift is not None and drift > PROFILE_DRIFT_TOLERANCE:
                drift_errors.append(
                    f"worker {worker}: profiler phase sum {phase_sum:.4f}s "
                    f"deviates {drift:.0%} from solver-reported "
                    f"{solve_reference:.4f}s"
                )
        lanes.append(lane)
    merged.sort(
        key=lambda e: (e["gt"], str(e["w"]), e["seq"])
    )
    header = {
        "t": 0.0,
        "ev": "timeline_begin",
        "dl": 0,
        "seq": 0,
        "schema": TRACE_SCHEMA_VERSION,
        "workers": len(lanes),
        "events": len(merged),
        "shards": [lane["shard"] for lane in lanes],
    }
    timeline = [header] + merged
    summary: Dict[str, object] = {
        "workers": lanes,
        "events": len(merged),
        "torn_lines": torn_total,
        "phase_totals": merge_reports(profile_reports),
        "drift_errors": drift_errors,
        "clause_flows": clause_flows(merged),
        "cubes": cube_lifecycle(merged),
    }
    return timeline, summary


def write_timeline(
    events: Sequence[dict], path: Union[str, Path]
) -> Path:
    path = Path(path)
    with path.open("w", encoding="utf-8") as sink:
        for event in events:
            sink.write(json.dumps(event, separators=(",", ":"),
                                  sort_keys=True) + "\n")
    return path


def merge_directory(directory: Union[str, Path]) -> Dict[str, object]:
    """Merge a telemetry directory in place.

    Writes ``timeline.jsonl``, ``metrics.json`` and ``metrics.prom``
    and returns the merge summary (with the timeline path added).
    """
    directory = Path(directory)
    timeline, summary = merge_shards(shard_paths(directory))
    summary["timeline"] = str(
        write_timeline(timeline, directory / _TIMELINE_FILE)
    )
    workers, aggregate = collect_metrics(directory)
    summary["metrics"] = {
        "json": str(write_metrics_json(directory, workers, aggregate)),
        "prom": str(write_metrics_prom(directory, workers, aggregate)),
    }
    summary["flight_dumps"] = [
        str(p) for p in sorted(directory.glob("worker-*.flight.jsonl"))
    ]
    return summary


# ----------------------------------------------------------------------
# Timeline analysis: clause flows and cube lifecycle
# ----------------------------------------------------------------------
def clause_flows(merged: Sequence[dict]) -> List[Dict[str, object]]:
    """Follow shared clauses from exporter to importers.

    Built from ``share`` events carrying per-clause ``keys`` digests
    (emitted by the telemetry-aware portfolio worker): one row per
    clause key that was exported, listing where it was learned and
    every worker that later installed it (with the hop latency).
    """
    exports: Dict[str, Dict[str, object]] = {}
    flows: List[Dict[str, object]] = []
    for event in merged:
        if event.get("ev") != "share" or "keys" not in event:
            continue
        action = event.get("action")
        for key in event["keys"]:
            if action == "export":
                if key not in exports:
                    exports[key] = {
                        "key": key,
                        "from": event["w"],
                        "exported_gt": event["gt"],
                        "imports": [],
                    }
                    flows.append(exports[key])
            elif action == "install":
                flow = exports.get(key)
                if flow is None:
                    # Import observed without its export (e.g. the
                    # exporter's shard was lost): synthesize a row.
                    flow = {
                        "key": key,
                        "from": None,
                        "exported_gt": None,
                        "imports": [],
                    }
                    exports[key] = flow
                    flows.append(flow)
                hop = {
                    "worker": event["w"],
                    "gt": event["gt"],
                }
                if flow["exported_gt"] is not None:
                    hop["latency"] = round(
                        event["gt"] - flow["exported_gt"], 9
                    )
                flow["imports"].append(hop)
    return flows


def cube_lifecycle(merged: Sequence[dict]) -> List[Dict[str, object]]:
    """Cube span rows from ``cube`` events on the merged timeline."""
    spans: Dict[Tuple[str, int], Dict[str, object]] = {}
    rows: List[Dict[str, object]] = []
    for event in merged:
        if event.get("ev") != "cube":
            continue
        n = int(event.get("n", -1))
        outcome = str(event.get("outcome", ""))
        key = (str(event["w"]), n)
        if outcome == "begin":
            span = {
                "cube": n,
                "worker": event["w"],
                "begin_gt": event["gt"],
                "size": event.get("size", 0),
                "outcome": "",
            }
            spans[key] = span
            rows.append(span)
        else:
            span = spans.get(key)
            if span is None or span["outcome"]:
                span = {
                    "cube": n,
                    "worker": event["w"],
                    "begin_gt": None,
                    "size": event.get("size", 0),
                    "outcome": "",
                }
                rows.append(span)
                spans[key] = span
            span["outcome"] = outcome
            span["end_gt"] = event["gt"]
            if span["begin_gt"] is not None:
                span["seconds"] = round(event["gt"] - span["begin_gt"], 9)
    return rows


# ----------------------------------------------------------------------
# Metrics export: JSON snapshot + Prometheus text exposition
# ----------------------------------------------------------------------
_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _PROM_NAME.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def collect_metrics(
    directory: Union[str, Path],
) -> Tuple[Dict[str, Dict[str, Scalar]], Dict[str, Scalar]]:
    """Read per-worker metrics snapshots and aggregate them.

    Aggregation across workers: integer metrics (counters) **sum**;
    float metrics (gauges) keep the **maximum** — the useful run-level
    reading for peaks and rates alike, and documented as such in the
    exported JSON.
    """
    workers: Dict[str, Dict[str, Scalar]] = {}
    for path in sorted(Path(directory).glob("worker-*.metrics.json")):
        try:
            snapshot = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        metrics = {
            name: value
            for name, value in snapshot.get("metrics", {}).items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)
        }
        workers[str(snapshot.get("worker", path.stem))] = metrics
    aggregate: Dict[str, Scalar] = {}
    for metrics in workers.values():
        for name, value in metrics.items():
            if isinstance(value, int):
                current = aggregate.get(name, 0)
                aggregate[name] = (
                    int(current) + value if isinstance(current, int) else value
                )
            else:
                aggregate[name] = max(float(aggregate.get(name, 0.0)), value)
    return workers, aggregate


def write_metrics_json(
    directory: Union[str, Path],
    workers: Dict[str, Dict[str, Scalar]],
    aggregate: Dict[str, Scalar],
) -> Path:
    path = Path(directory) / _METRICS_JSON
    payload = {
        "schema": 1,
        "aggregation": "counters sum across workers; gauges keep the max",
        "workers": workers,
        "aggregate": aggregate,
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def render_prometheus(
    workers: Dict[str, Dict[str, Scalar]],
    aggregate: Dict[str, Scalar],
) -> str:
    """Prometheus/OpenMetrics text exposition of the metrics export.

    One family per metric: the unlabelled sample is the cross-worker
    aggregate, ``{worker="..."}`` samples are the per-worker values.
    """
    lines: List[str] = []
    for name in sorted(aggregate):
        family = _prom_name(name)
        kind = "counter" if isinstance(aggregate[name], int) else "gauge"
        lines.append(f"# TYPE {family} {kind}")
        lines.append(f"{family} {aggregate[name]}")
        for worker in sorted(workers):
            value = workers[worker].get(name)
            if value is None:
                continue
            lines.append(f'{family}{{worker="{worker}"}} {value}')
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_metrics_prom(
    directory: Union[str, Path],
    workers: Dict[str, Dict[str, Scalar]],
    aggregate: Dict[str, Scalar],
) -> Path:
    path = Path(directory) / _METRICS_PROM
    path.write_text(render_prometheus(workers, aggregate), encoding="utf-8")
    return path


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Minimal exposition-format parser (used by tests and CI checks).

    Returns ``{(family, labels): value}``; raises ``ValueError`` on a
    malformed line, which is exactly what the CI smoke check wants.
    """
    sample_re = re.compile(
        r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
    )
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = sample_re.match(line)
        if match is None:
            raise ValueError(f"metrics.prom line {lineno} malformed: {line!r}")
        labels: List[Tuple[str, str]] = []
        raw = match.group("labels")
        if raw:
            for part in raw.split(","):
                key, _, value = part.partition("=")
                labels.append((key.strip(), value.strip().strip('"')))
        out[(match.group("name"), tuple(labels))] = float(
            match.group("value")
        )
    return out


# ----------------------------------------------------------------------
# Live tail (``repro.harness top``)
# ----------------------------------------------------------------------
def tail_shard(path: Path, max_bytes: int = 65536) -> List[dict]:
    """Parse the last ``max_bytes`` of a shard (tolerant of the torn
    first line a mid-file seek produces)."""
    try:
        size = path.stat().st_size
        with path.open("rb") as handle:
            if size > max_bytes:
                handle.seek(size - max_bytes)
            chunk = handle.read().decode("utf-8", errors="replace")
    except OSError:
        return []
    events: List[dict] = []
    for line in chunk.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events


def snapshot_status(directory: Union[str, Path]) -> List[Dict[str, object]]:
    """One status row per shard, from shard tails — the ``top`` view."""
    rows: List[Dict[str, object]] = []
    for shard in shard_paths(Path(directory)):
        events = tail_shard(shard)
        row: Dict[str, object] = {
            "worker": _shard_worker_id(shard),
            "label": "",
            "last_event": "",
            "t": 0.0,
            "rss_kb": 0,
            "cpu_s": 0.0,
            "decisions": 0,
            "conflicts": 0,
            "status": "",
        }
        for event in events:
            kind = event.get("ev")
            if kind == "shard_begin":
                row["worker"] = str(event.get("worker", row["worker"]))
                row["label"] = str(event.get("label", ""))
            elif kind == "resource":
                row["rss_kb"] = int(event.get("rss_kb", 0))
                row["cpu_s"] = float(event.get("cpu_s", 0.0))
            elif kind == "solve_end":
                row["decisions"] = int(event.get("decisions", 0))
                row["conflicts"] = int(event.get("conflicts", 0))
                row["status"] = str(event.get("status", ""))
            elif kind == "task_end":
                row["status"] = str(event.get("status", ""))
            if kind != "resource":
                row["last_event"] = str(kind)
            row["t"] = float(event.get("t", row["t"]))
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Text rendering (``repro.harness report`` / ``top``)
# ----------------------------------------------------------------------
def format_report(summary: Dict[str, object]) -> str:
    """Human-readable telemetry report: lanes, cubes, clause flows,
    resource peaks, phase aggregates and drift warnings."""
    lines: List[str] = []
    lanes: List[Dict[str, object]] = summary.get("workers", [])  # type: ignore[assignment]
    lines.append(
        f"{'worker':10s} {'label':28s} {'st':6s} {'events':>7s} "
        f"{'span (s)':>16s} {'peak rss':>10s} {'cpu (s)':>8s}"
    )
    for lane in lanes:
        first = lane.get("first_gt")
        last = lane.get("last_gt")
        span = (
            f"{first:.3f}-{last:.3f}"
            if isinstance(first, float) and isinstance(last, float)
            else "-"
        )
        lines.append(
            f"{str(lane['worker']):10s} "
            f"{str(lane.get('label', ''))[:28]:28s} "
            f"{str(lane.get('status', '') or '?'):6s} "
            f"{int(lane['events']):>7d} "
            f"{span:>16s} "
            f"{int(lane.get('peak_rss_kb', 0)):>7d}KiB "
            f"{float(lane.get('cpu_s', 0.0)):>8.2f}"
        )
    cubes: List[Dict[str, object]] = summary.get("cubes", [])  # type: ignore[assignment]
    if cubes:
        lines.append("")
        lines.append("cube lifecycle:")
        for span in cubes:
            seconds = span.get("seconds")
            duration = f"{seconds:.3f}s" if seconds is not None else "-"
            lines.append(
                f"  cube {span['cube']:>3} on {str(span['worker']):8s} "
                f"{str(span.get('outcome') or 'running'):8s} {duration}"
            )
    flows: List[Dict[str, object]] = summary.get("clause_flows", [])  # type: ignore[assignment]
    if flows:
        lines.append("")
        lines.append("clause flow (learn -> shared install):")
        for flow in flows:
            hops = ", ".join(
                f"{hop['worker']}"
                + (
                    f" (+{hop['latency'] * 1000.0:.1f}ms)"
                    if "latency" in hop
                    else ""
                )
                for hop in flow["imports"]
            )
            lines.append(
                f"  {flow['key']}: learned by "
                f"{flow['from'] if flow['from'] else '?'}"
                + (f" -> {hops}" if hops else " (never imported)")
            )
    phase_totals = summary.get("phase_totals") or {}
    phases = phase_totals.get("phases", [])  # type: ignore[union-attr]
    if phases:
        lines.append("")
        lines.append("aggregated phases (all workers):")
        for entry in phases:
            if "/" in entry["path"]:
                continue
            lines.append(
                f"  {entry['path']:12s} {entry['seconds']:>9.4f}s "
                f"(x{entry['count']})"
            )
    dumps: List[str] = summary.get("flight_dumps", [])  # type: ignore[assignment]
    if dumps:
        lines.append("")
        lines.append("flight-recorder dumps:")
        for dump in dumps:
            lines.append(f"  {dump}")
    drift: List[str] = summary.get("drift_errors", [])  # type: ignore[assignment]
    for error in drift:
        lines.append(f"drift warning: {error}")
    if summary.get("torn_lines"):
        lines.append(
            f"warning: {summary['torn_lines']} torn shard line(s) skipped"
        )
    return "\n".join(lines)


def format_top(rows: Sequence[Dict[str, object]]) -> str:
    """Render one ``top`` refresh of per-worker status rows."""
    lines = [
        f"{'worker':10s} {'label':28s} {'last event':14s} {'t (s)':>9s} "
        f"{'rss':>9s} {'cpu (s)':>8s} {'st':>5s}"
    ]
    for row in rows:
        lines.append(
            f"{str(row['worker']):10s} "
            f"{str(row.get('label', ''))[:28]:28s} "
            f"{str(row.get('last_event', '')):14s} "
            f"{float(row.get('t', 0.0)):>9.3f} "
            f"{int(row.get('rss_kb', 0)):>6d}KiB "
            f"{float(row.get('cpu_s', 0.0)):>8.2f} "
            f"{str(row.get('status', '') or '-'):>5s}"
        )
    return "\n".join(lines)
