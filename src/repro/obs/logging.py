"""Logging wiring for the ``repro`` library and harness CLI.

Library policy: every module logs through a child of the ``repro``
logger, which carries a :class:`logging.NullHandler` (installed by
``repro/__init__``) so importing the library never prints anything.

The harness CLI calls :func:`configure_logging` to attach a real stderr
handler; the level comes from ``--log-level`` or, failing that, the
``REPRO_LOG`` environment variable (e.g. ``REPRO_LOG=debug``).
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: Root logger name for the whole library.
LOGGER_NAME = "repro"

#: Environment variable consulted when no explicit level is given.
ENV_VAR = "REPRO_LOG"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: The level spec most recently applied by :func:`configure_logging`.
#: Spawn-context workers start from a fresh interpreter, so the parent
#: must re-ship this explicitly (see :func:`effective_level_spec`).
_configured_spec: Optional[str] = None


def resolve_level(spec: str) -> int:
    """A logging level from a name ("debug") or a number ("10")."""
    if spec.isdigit():
        return int(spec)
    level = logging.getLevelName(spec.upper())
    if not isinstance(level, int):
        raise ValueError(f"unknown log level {spec!r}")
    return level


def configure_logging(
    level: Optional[str] = None, stream=None
) -> Optional[int]:
    """Attach a stderr handler to the ``repro`` logger.

    ``level`` falls back to ``$REPRO_LOG``; when neither is set this is
    a no-op (the library stays silent) and ``None`` is returned.
    Re-invocation replaces the previously attached CLI handler rather
    than stacking duplicates.
    """
    global _configured_spec
    spec = level or os.environ.get(ENV_VAR)
    if not spec:
        return None
    numeric = resolve_level(spec)
    _configured_spec = spec
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(numeric)
    logger.handlers = [
        handler
        for handler in logger.handlers
        if not getattr(handler, "_repro_cli_handler", False)
    ]
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_cli_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    return numeric


def effective_level_spec() -> Optional[str]:
    """The log-level spec a spawned worker should inherit.

    ``--log-level`` historically configured only the parent process:
    spawn-context children re-import everything and never saw it.  The
    pool and portfolio masters call this to ship the parent's effective
    spec (explicitly configured level, else ``$REPRO_LOG``) into each
    worker's ``configure_logging`` call.
    """
    return _configured_spec or os.environ.get(ENV_VAR) or None
