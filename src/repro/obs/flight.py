"""Flight recorder: a bounded ring of recent trace events.

Full JSONL tracing serializes every event as it happens — perfect for
postmortems, too expensive to leave on during benchmarked runs.  The
:class:`FlightRecorder` is the always-on middle ground: it exposes the
same ``event(ev, dl, **fields)`` surface as
:class:`~repro.obs.trace.TraceEmitter` but only appends a small tuple to
a fixed-size ring (``collections.deque`` with ``maxlen``) — no JSON, no
I/O, no string formatting.  When a worker dies, the last
``capacity`` events it recorded are dumped as a regular JSONL trace
fragment (:meth:`dump`), turning an opaque ``-A-``/``-to-`` bench cell
into something ``repro-hdpll trace --replay`` can narrate.

:class:`TeeEmitter` fans one event stream out to both a real trace
emitter and a flight recorder, so enabling full tracing never disables
the crash ring.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import List, Optional, Union

#: Default ring capacity.  Sized so a dump captures the last few
#: decisions' worth of search activity without holding more than a few
#: hundred KB of tuples.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Ring buffer of the most recent trace events.

    API-compatible with :class:`~repro.obs.trace.TraceEmitter` where the
    solver cares (``enabled`` attribute, ``event`` / ``flush`` methods),
    so it can sit directly in the solver's tracer slot when full tracing
    is off.  Recording appends ``(t, ev, dl, fields)`` to a bounded
    deque — the disabled-tracing overhead budget (<= 2% on the smoke
    profile) is why nothing is serialized until :meth:`dump`.
    """

    __slots__ = (
        "enabled", "capacity", "recorded", "_ring", "_clock", "_t0",
        "_lock",
    )

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock=time.perf_counter, t0: Optional[float] = None):
        self.enabled = True
        self.capacity = capacity
        self.recorded = 0
        self._ring = deque(maxlen=capacity)
        self._clock = clock
        # Shared epoch with the worker's trace shard (see telemetry).
        self._t0 = clock() if t0 is None else t0
        # The resource-sampler thread records alongside the solver
        # thread; ``recorded`` (the seq base for dumps) must track the
        # ring exactly.  Reentrant: the SIGTERM dump handler runs on
        # the main thread and may interrupt an in-progress ``event``.
        self._lock = threading.RLock()

    def event(self, ev: str, dl: int = 0, **fields) -> None:
        with self._lock:
            self._ring.append((self._clock() - self._t0, ev, dl, fields))
            self.recorded += 1

    def flush(self) -> None:
        """No-op (nothing is buffered outside the ring itself)."""

    def close(self) -> None:
        """No-op (the ring owns no file handle)."""

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events that have fallen off the ring."""
        return self.recorded - len(self._ring)

    def snapshot(self) -> List[dict]:
        """The ring's events as schema-v2 trace records.

        ``seq`` is reconstructed from the global record count so dumped
        fragments keep the stable merge tie-break even after older
        events have been overwritten.
        """
        with self._lock:
            first_seq = self.dropped
            ring = list(self._ring)
        records = []
        for position, (t, ev, dl, fields) in enumerate(ring):
            record = {
                "t": round(t, 9),
                "ev": ev,
                "dl": dl,
                "seq": first_seq + position,
            }
            record.update(fields)
            records.append(record)
        return records

    def dump(self, path: Union[str, Path], reason: str = "") -> Path:
        """Write the ring as a JSONL trace fragment headed by a
        ``flight_dump`` record; returns the written path."""
        path = Path(path)
        records = self.snapshot()
        header = {
            "t": round(self._clock() - self._t0, 9),
            "ev": "flight_dump",
            "dl": 0,
            "seq": self.recorded,
            "reason": reason,
            "events": len(records),
            "dropped": self.dropped,
        }
        with path.open("w", encoding="utf-8") as sink:
            sink.write(json.dumps(header, separators=(",", ":")) + "\n")
            for record in records:
                sink.write(json.dumps(record, separators=(",", ":")) + "\n")
        return path


class TeeEmitter:
    """Fan one tracer event stream out to several emitter-like sinks.

    Used by the telemetry layer to feed the full shard trace and the
    flight recorder from a single solver-side tracer slot.  ``None``
    sinks are skipped at construction, so ``TeeEmitter(tracer, flight)``
    degrades to the flight recorder alone when tracing is disabled.
    """

    __slots__ = ("enabled", "sinks")

    def __init__(self, *sinks: Optional[object]):
        self.sinks = tuple(s for s in sinks if s is not None)
        self.enabled = bool(self.sinks)

    def event(self, ev: str, dl: int = 0, **fields) -> None:
        for sink in self.sinks:
            sink.event(ev, dl, **fields)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
