"""Observability layer: tracing, metrics, profiling and telemetry.

The solver core accepts an optional :class:`Observation` bundle; each of
its members is independently optional, and a solver constructed without
one runs the uninstrumented fast path (the guards are single ``is
None`` tests, verified by the bench regression gate).

* :mod:`repro.obs.trace` — structured JSONL trace emitter + replay.
* :mod:`repro.obs.metrics` — the counter/gauge/histogram registry that
  backs :class:`repro.core.result.SolverStats`.
* :mod:`repro.obs.profile` — hierarchical wall-time phase profiler.
* :mod:`repro.obs.logging` — ``repro`` logger wiring for the CLI.
* :mod:`repro.obs.flight` — always-on bounded ring of recent events.
* :mod:`repro.obs.resources` — per-worker RSS/CPU gauge sampler.
* :mod:`repro.obs.telemetry` — cross-process hub: per-worker shards,
  clock-offset handshake, merged timelines, metrics export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder, TeeEmitter
from repro.obs.logging import configure_logging, effective_level_spec
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    PROFILE_DRIFT_TOLERANCE,
    PhaseProfiler,
    merge_reports,
    profile_drift,
)
from repro.obs.resources import ResourceSampler
from repro.obs.trace import (
    COMPATIBLE_SCHEMA_VERSIONS,
    TRACE_SCHEMA_VERSION,
    TraceEmitter,
    narrate,
    parse_trace,
    read_trace,
    validate_timeline,
    validate_trace,
)


@dataclass
class Observation:
    """Optional instrumentation handed to a solver."""

    tracer: Optional[TraceEmitter] = None
    profiler: Optional[PhaseProfiler] = None


from repro.obs.telemetry import (  # noqa: E402  (needs Observation above)
    TelemetryConfig,
    TelemetryHub,
    WorkerTelemetry,
)

__all__ = [
    "COMPATIBLE_SCHEMA_VERSIONS",
    "Counter",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observation",
    "PROFILE_DRIFT_TOLERANCE",
    "PhaseProfiler",
    "ResourceSampler",
    "TRACE_SCHEMA_VERSION",
    "TeeEmitter",
    "TelemetryConfig",
    "TelemetryHub",
    "TraceEmitter",
    "WorkerTelemetry",
    "configure_logging",
    "effective_level_spec",
    "merge_reports",
    "narrate",
    "parse_trace",
    "profile_drift",
    "read_trace",
    "validate_timeline",
    "validate_trace",
]
