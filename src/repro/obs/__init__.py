"""Observability layer: tracing, metrics and phase profiling.

The solver core accepts an optional :class:`Observation` bundle; each of
its members is independently optional, and a solver constructed without
one runs the uninstrumented fast path (the guards are single ``is
None`` tests, verified by the bench regression gate).

* :mod:`repro.obs.trace` — structured JSONL trace emitter + replay.
* :mod:`repro.obs.metrics` — the counter/gauge/histogram registry that
  backs :class:`repro.core.result.SolverStats`.
* :mod:`repro.obs.profile` — hierarchical wall-time phase profiler.
* :mod:`repro.obs.logging` — ``repro`` logger wiring for the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.logging import configure_logging
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import PhaseProfiler, merge_reports
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    TraceEmitter,
    narrate,
    parse_trace,
    read_trace,
    validate_trace,
)


@dataclass
class Observation:
    """Optional instrumentation handed to a solver."""

    tracer: Optional[TraceEmitter] = None
    profiler: Optional[PhaseProfiler] = None


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observation",
    "PhaseProfiler",
    "TRACE_SCHEMA_VERSION",
    "TraceEmitter",
    "configure_logging",
    "merge_reports",
    "narrate",
    "parse_trace",
    "read_trace",
    "validate_trace",
]
