"""Structured solver tracing: JSONL events with monotonic timestamps.

A :class:`TraceEmitter` writes one JSON object per line to any file-like
sink.  Every record carries:

* ``t``  — seconds since the emitter was created (``time.perf_counter``
  based, so deltas are monotonic and sub-microsecond),
* ``ev`` — the event kind (see :data:`EVENT_FIELDS`),
* ``dl`` — the solver decision level at emission time,

plus event-specific fields.  The HDPLL core emits events at the
boundaries the paper's analysis cares about: decisions, propagation
batches, conflict analyses, restarts, predicate-learning probes,
J-frontier actions and FME leaf checks.

Tracing is strictly opt-in: a solver constructed without an
:class:`~repro.obs.Observation` holds ``None`` in place of the emitter
and the instrumented code paths reduce to a single ``is None`` test.
:func:`read_trace` / :func:`validate_trace` / :func:`narrate` turn a
trace file back into checked data and a human-readable search story.
"""

from __future__ import annotations

import io
import json
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Bump when the JSONL layout changes incompatibly.
#: v2 (cross-process telemetry): every record carries a per-emitter
#: ``seq`` number (the stable merge tie-break), shard/timeline header
#: events exist, and merged timelines annotate events with ``w``
#: (worker id) and ``gt`` (clock-aligned global time).  v1 files stay
#: readable: :func:`validate_trace` accepts both versions.
TRACE_SCHEMA_VERSION = 2

#: Schema versions :func:`validate_trace` accepts (v1 files predate the
#: telemetry layer and simply lack ``seq``).
COMPATIBLE_SCHEMA_VERSIONS = (1, 2)

#: Event kind -> required event-specific fields (every record also has
#: the common ``t`` / ``ev`` / ``dl`` fields).
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "solve_begin": ("schema", "vars", "propagators"),
    "learn_probe": ("var", "value", "outcome", "implications"),
    "learn_done": ("relations", "probes", "seconds"),
    "decision": ("var", "value", "kind"),
    "propagate": ("props", "events", "conflict"),
    "conflict": ("n", "size", "backtrack"),
    "restart": ("n", "conflicts", "strategy"),
    "jfrontier": ("action", "node", "level"),
    "leaf": ("mode", "feasible", "components", "constraints", "seconds"),
    "profile": ("phases",),
    "solve_end": ("status", "decisions", "conflicts", "solve_time"),
    # Incremental-session events (PR 4): one query answered by a
    # persistent session, a batch of learned clauses re-instantiated at
    # a new time frame, and one probe-cone cache lookup.
    "session-solve": ("n", "status", "assumptions", "seconds"),
    "clause-shift": ("delta", "shifted", "installed"),
    "probe-cache": ("outcome", "candidate", "clauses"),
    # Portfolio events (PR 5): one cube emitted (or refuted) by the
    # lookahead splitter, and one batch of learned clauses crossing the
    # sharing channel in either direction.
    "cube": ("n", "size", "outcome"),
    "share": ("action", "clauses"),
    # Cross-process telemetry events (PR 7).  ``shard_begin`` opens a
    # per-worker shard and carries the clock-offset handshake result;
    # ``task_begin``/``task_end`` span one pool task; ``resource`` is a
    # sampler gauge; ``flight_dump`` heads a crash-ring dump;
    # ``timeline_begin`` heads a merged multi-worker timeline.
    "shard_begin": ("schema", "worker", "pid", "offset"),
    "shard_end": ("events",),
    "task_begin": ("label",),
    "task_end": ("label", "status", "seconds"),
    "resource": ("rss_kb", "cpu_s"),
    "flight_dump": ("reason", "events"),
    "timeline_begin": ("schema", "workers", "events"),
}

_COMMON_FIELDS = ("t", "ev", "dl")


class TraceEmitter:
    """JSONL event writer over a file-like text sink.

    Flip :attr:`enabled` to False before handing the emitter to a solver
    to measure the fully disabled path (the solver then drops its
    reference and records nothing).
    """

    __slots__ = (
        "enabled", "events_emitted", "_sink", "_clock", "_t0", "_lock"
    )

    def __init__(self, sink, clock=time.perf_counter,
                 t0: Optional[float] = None):
        self._sink = sink
        self._clock = clock
        # The telemetry layer passes an explicit epoch so the shard
        # trace and the flight recorder share one t=0 (and the clock
        # offset reported in shard_begin is exact for both).
        self._t0 = clock() if t0 is None else t0
        self.enabled = True
        self.events_emitted = 0
        # The resource-sampler thread shares the emitter with the
        # solver thread; ``seq`` assignment and the write must be one
        # atomic step or per-worker seq ordering breaks in the shard.
        self._lock = threading.Lock()

    @classmethod
    def open(cls, path: Union[str, Path],
             t0: Optional[float] = None) -> "TraceEmitter":
        """Emitter writing to ``path`` (caller closes via context/close)."""
        return cls(Path(path).open("w", encoding="utf-8"), t0=t0)

    @classmethod
    def in_memory(cls) -> "TraceEmitter":
        """Emitter writing to an internal StringIO (see :meth:`text`)."""
        return cls(io.StringIO())

    def text(self) -> str:
        """The emitted JSONL text (in-memory sinks only)."""
        return self._sink.getvalue()

    def event(self, ev: str, dl: int = 0, **fields) -> None:
        with self._lock:
            record = {
                "t": round(self._clock() - self._t0, 9),
                "ev": ev,
                "dl": dl,
                "seq": self.events_emitted,
            }
            record.update(fields)
            self._sink.write(
                json.dumps(record, separators=(",", ":")) + "\n"
            )
            self.events_emitted += 1

    def flush(self) -> None:
        flush = getattr(self._sink, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        close = getattr(self._sink, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "TraceEmitter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Parsing and validation
# ----------------------------------------------------------------------
def parse_trace(text: str) -> List[dict]:
    """Parse JSONL trace text into event dictionaries."""
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ValueError(f"trace line {lineno} is not JSON: {error}")
    return events


def read_trace(path: Union[str, Path]) -> List[dict]:
    """Read and parse a JSONL trace file."""
    return parse_trace(Path(path).read_text(encoding="utf-8"))


def validate_trace(
    events: Sequence[dict], complete: bool = True
) -> List[str]:
    """Schema-check a parsed trace; returns a list of error strings.

    ``complete=True`` additionally requires the trace to open with
    ``solve_begin`` and close with ``solve_end`` (a crashed or truncated
    solve legitimately fails this).

    A merged multi-worker timeline (first event ``timeline_begin``) is
    routed to :func:`validate_timeline` — per-worker clocks interleave
    there, so the single-shard monotonicity check does not apply.
    """
    errors: List[str] = []
    if not events:
        return ["trace is empty"]
    if events[0].get("ev") == "timeline_begin":
        return validate_timeline(events)
    last_t = None
    for position, event in enumerate(events):
        if position == 0 and event.get("ev") == "flight_dump":
            # A flight-dump header is stamped at dump time — after every
            # ring event that follows it — so it stays out of the
            # monotonicity chain (but its fields are still checked).
            for name in EVENT_FIELDS["flight_dump"]:
                if name not in event:
                    errors.append(
                        f"event 0 (flight_dump): missing field {name!r}"
                    )
            continue
        where = f"event {position}"
        for name in _COMMON_FIELDS:
            if name not in event:
                errors.append(f"{where}: missing common field {name!r}")
        kind = event.get("ev")
        if kind is not None:
            if kind not in EVENT_FIELDS:
                errors.append(f"{where}: unknown event kind {kind!r}")
            else:
                for name in EVENT_FIELDS[kind]:
                    if name not in event:
                        errors.append(
                            f"{where} ({kind}): missing field {name!r}"
                        )
        t = event.get("t")
        if isinstance(t, (int, float)):
            if last_t is not None and t < last_t:
                errors.append(
                    f"{where}: timestamp {t} goes backwards (after {last_t})"
                )
            last_t = t
    if complete:
        if events[0].get("ev") != "solve_begin":
            errors.append("trace does not start with solve_begin")
        elif events[0].get("schema") not in COMPATIBLE_SCHEMA_VERSIONS:
            errors.append(
                f"schema version {events[0].get('schema')!r} not in "
                f"supported versions {COMPATIBLE_SCHEMA_VERSIONS}"
            )
        if events[-1].get("ev") != "solve_end":
            errors.append("trace does not end with solve_end")
    return errors


def validate_timeline(events: Sequence[dict]) -> List[str]:
    """Schema-check a merged multi-worker timeline.

    Requirements beyond the per-event field check shared with
    :func:`validate_trace`:

    * the timeline opens with a ``timeline_begin`` header at the current
      schema version (merged timelines are a v2 construct — there is no
      v1 form to stay compatible with),
    * every subsequent event carries a worker id ``w``, an aligned
      global timestamp ``gt`` and a per-worker ``seq``,
    * ``gt`` is globally monotonic, with the ``(gt, w, seq)`` ordering
      as the stable tie-break,
    * each worker's ``seq`` numbers are strictly increasing (no event
      duplicated or lost by the merge).
    """
    errors: List[str] = []
    if not events:
        return ["timeline is empty"]
    head = events[0]
    if head.get("ev") != "timeline_begin":
        errors.append("timeline does not start with timeline_begin")
    elif head.get("schema") != TRACE_SCHEMA_VERSION:
        errors.append(
            f"timeline schema {head.get('schema')!r} != "
            f"{TRACE_SCHEMA_VERSION}"
        )
    last_key = None
    last_seq: Dict[str, int] = {}
    for position, event in enumerate(events[1:], start=1):
        where = f"event {position}"
        kind = event.get("ev")
        if kind not in EVENT_FIELDS:
            errors.append(f"{where}: unknown event kind {kind!r}")
        else:
            for name in EVENT_FIELDS[kind]:
                if name not in event:
                    errors.append(f"{where} ({kind}): missing field {name!r}")
        worker = event.get("w")
        gt = event.get("gt")
        seq = event.get("seq")
        if worker is None:
            errors.append(f"{where}: missing worker id 'w'")
            continue
        if not isinstance(gt, (int, float)):
            errors.append(f"{where}: missing aligned timestamp 'gt'")
            continue
        if not isinstance(seq, int):
            errors.append(f"{where}: missing sequence number 'seq'")
            continue
        key = (gt, str(worker), seq)
        if last_key is not None and key < last_key:
            errors.append(
                f"{where}: timeline order violated: {key} after {last_key}"
            )
        last_key = key
        prior = last_seq.get(worker)
        if prior is not None and seq <= prior:
            errors.append(
                f"{where}: worker {worker!r} seq {seq} not after {prior}"
            )
        last_seq[worker] = seq
    return errors


# ----------------------------------------------------------------------
# Narration: replay a trace as a human-readable search story
# ----------------------------------------------------------------------
def _narrate_event(event: dict) -> Optional[str]:
    kind = event.get("ev")
    # Merged timelines carry clock-aligned global timestamps and a
    # worker id; single-shard traces keep the bare local clock.
    t = event.get("gt", event.get("t", 0.0))
    dl = event.get("dl", 0)
    prefix = f"{t:9.4f}s "
    worker = event.get("w")
    if worker is not None:
        prefix += f"[{str(worker):>6s}] "
    if kind == "solve_begin":
        return (
            f"{prefix}solve begin: {event.get('vars')} variables, "
            f"{event.get('propagators')} propagators"
        )
    if kind == "learn_probe":
        return (
            f"{prefix}  probe {event.get('var')}={event.get('value')}: "
            f"{event.get('outcome')} "
            f"({event.get('implications')} implications)"
        )
    if kind == "learn_done":
        return (
            f"{prefix}predicate learning done: "
            f"{event.get('relations')} relations from "
            f"{event.get('probes')} probes in {event.get('seconds'):.3f}s"
        )
    if kind == "decision":
        return (
            f"{prefix}[L{dl}] decide {event.get('var')} = "
            f"{event.get('value')} ({event.get('kind')})"
        )
    if kind == "propagate":
        suffix = "  -> CONFLICT" if event.get("conflict") else ""
        return (
            f"{prefix}[L{dl}]   propagate: {event.get('props')} runs, "
            f"{event.get('events')} trail events{suffix}"
        )
    if kind == "conflict":
        return (
            f"{prefix}[L{dl}] conflict #{event.get('n')}: learned "
            f"{event.get('size')}-literal clause, backtrack to "
            f"L{event.get('backtrack')}"
        )
    if kind == "restart":
        return (
            f"{prefix}restart #{event.get('n')} "
            f"[{event.get('strategy', 'geometric')}] "
            f"(after {event.get('conflicts')} total conflicts)"
        )
    if kind == "jfrontier":
        return (
            f"{prefix}[L{dl}] J-frontier {event.get('action')}: node "
            f"{event.get('node')} at level {event.get('level')}"
        )
    if kind == "leaf":
        verdict = "feasible" if event.get("feasible") else "refuted"
        return (
            f"{prefix}[L{dl}] FME leaf ({event.get('mode')}): {verdict}, "
            f"{event.get('components')} components / "
            f"{event.get('constraints')} constraints "
            f"in {event.get('seconds'):.4f}s"
        )
    if kind == "solve_end":
        return (
            f"{prefix}result: {str(event.get('status')).upper()} — "
            f"{event.get('decisions')} decisions, "
            f"{event.get('conflicts')} conflicts, "
            f"solve time {event.get('solve_time'):.3f}s"
        )
    if kind == "session-solve":
        return (
            f"{prefix}session solve #{event.get('n')}: "
            f"{str(event.get('status')).upper()} under "
            f"{event.get('assumptions')} assumptions "
            f"in {event.get('seconds'):.3f}s"
        )
    if kind == "clause-shift":
        return (
            f"{prefix}clause shift (+{event.get('delta')} frame): "
            f"{event.get('installed')}/{event.get('shifted')} re-instantiated"
        )
    if kind == "probe-cache":
        return (
            f"{prefix}probe cache {event.get('outcome')}: "
            f"{event.get('candidate')} ({event.get('clauses')} clauses)"
        )
    if kind == "cube":
        return (
            f"{prefix}cube #{event.get('n')}: {event.get('outcome')} "
            f"({event.get('size')} assumption(s))"
        )
    if kind == "share":
        return (
            f"{prefix}share {event.get('action')}: "
            f"{event.get('clauses')} clause(s)"
        )
    if kind == "shard_begin":
        return (
            f"{prefix}shard begin: worker {event.get('worker')} "
            f"pid {event.get('pid')} "
            f"(clock offset {event.get('offset'):+.6f}s)"
        )
    if kind == "shard_end":
        return f"{prefix}shard end: {event.get('events')} events"
    if kind == "task_begin":
        return f"{prefix}task begin: {event.get('label')}"
    if kind == "task_end":
        return (
            f"{prefix}task end: {event.get('label')} — "
            f"{event.get('status')} in {event.get('seconds'):.3f}s"
        )
    if kind == "resource":
        return (
            f"{prefix}resources: rss {event.get('rss_kb')} KiB, "
            f"cpu {event.get('cpu_s'):.3f}s"
        )
    if kind == "flight_dump":
        return (
            f"{prefix}flight recorder dump ({event.get('reason')}): "
            f"last {event.get('events')} events, "
            f"{event.get('dropped', 0)} older events dropped"
        )
    if kind == "timeline_begin":
        return (
            f"{prefix}timeline: {event.get('workers')} worker(s), "
            f"{event.get('events')} events"
        )
    if kind == "profile":
        return None  # rendered by the profiler table, not the narrative
    return f"{prefix}{kind}: {event}"


def narrate(events: Sequence[dict], limit: int = 400) -> str:
    """Render a parsed trace as a line-per-event search narrative.

    Traces longer than ``limit`` events keep the head and tail and elide
    the middle, so the narrative stays skimmable on huge solves.
    """
    lines: List[str] = []
    if len(events) > limit:
        head = limit * 2 // 3
        tail = limit - head
        shown: List[Optional[dict]] = list(events[:head])
        shown.append(None)  # elision marker
        shown.extend(events[-tail:])
        elided = len(events) - head - tail
    else:
        shown = list(events)
        elided = 0
    for event in shown:
        if event is None:
            lines.append(f"          ... {elided} events elided ...")
            continue
        line = _narrate_event(event)
        if line is not None:
            lines.append(line)
    return "\n".join(lines)
