"""Per-worker resource sampling: RSS and CPU as periodic gauge events.

A :class:`ResourceSampler` runs one daemon thread that, every
``interval`` seconds, reads the process's resident set size and
cumulative CPU time and emits a ``resource`` trace event into the
worker's telemetry emitter.  The solver thread never touches the
sampler — its only cost is whatever the OS charges for a second thread
waking up ~20 times a second to read two small ``/proc`` files.

RSS comes from ``/proc/self/statm`` (resident pages * page size) where
``/proc`` exists, falling back to ``resource.getrusage`` peak RSS
elsewhere; CPU time comes from :func:`os.times` (user + system),
which is portable and allocation-free.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

#: Default sampling period (seconds).  20 Hz keeps worker lanes dense
#: enough to see allocation spikes without measurable CPU cost.
DEFAULT_INTERVAL = 0.05

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
_STATM = "/proc/self/statm"


def rss_kb() -> int:
    """Current resident set size in KiB (0 when unmeasurable)."""
    try:
        with open(_STATM, "r", encoding="ascii") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * _PAGE_SIZE // 1024
    except (OSError, ValueError, IndexError):
        try:
            import resource

            usage = resource.getrusage(resource.RUSAGE_SELF)
            # ru_maxrss is KiB on Linux, bytes on macOS; peak, not
            # current — acceptable as the no-/proc fallback.
            return int(usage.ru_maxrss)
        except Exception:
            return 0


def cpu_seconds() -> float:
    """Cumulative user+system CPU seconds of this process."""
    times = os.times()
    return times.user + times.system


class ResourceSampler:
    """Daemon thread emitting ``resource`` gauge samples into a tracer.

    ``emitter`` is anything with ``event(ev, dl=0, **fields)`` — a
    :class:`~repro.obs.trace.TraceEmitter`, a
    :class:`~repro.obs.flight.FlightRecorder`, or the telemetry tee.
    Peaks are tracked on the sampler itself so a worker can report
    ``peak_rss_kb`` / ``cpu_seconds`` gauges even when the trace shard
    is disabled.
    """

    def __init__(self, emitter, interval: float = DEFAULT_INTERVAL):
        self._emitter = emitter
        self.interval = interval
        self.samples = 0
        self.peak_rss_kb = 0
        self.cpu_s = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def sample_once(self) -> None:
        """Take one sample (also the thread's loop body)."""
        rss = rss_kb()
        cpu = cpu_seconds()
        self.samples += 1
        if rss > self.peak_rss_kb:
            self.peak_rss_kb = rss
        self.cpu_s = cpu
        self._emitter.event("resource", dl=0, rss_kb=rss, cpu_s=round(cpu, 6))

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_once()
            except Exception:  # sampling must never kill the worker
                return

    def stop(self) -> None:
        """Stop the thread and take one final sample (so short tasks
        still record at least one data point)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        try:
            self.sample_once()
        except Exception:
            pass

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
