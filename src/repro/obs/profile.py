"""Hierarchical phase profiler: where did the wall-clock go?

Phases form a ``/``-separated hierarchy, e.g.::

    learn
    search
    search/decide
    search/propagate
    search/propagate/bcp
    search/propagate/icp
    search/conflict
    search/fme

Coarse phases (``learn``, ``search``) are recorded with the
:meth:`PhaseProfiler.phase` context manager; hot-loop sub-phases accrue
pre-measured deltas through :meth:`PhaseProfiler.add` so the solver's
fast path never pays for a context-manager frame.  All timing uses
``time.perf_counter`` (monotonic, highest available resolution).

Accounting is *inclusive*: a parent's time contains its children's.
``self_seconds`` in the report subtracts direct children, and the sum of
the *top-level* phases is the number the harness checks against the
solver's reported wall time (they must agree to within a few percent;
the CLI flags anything beyond 10%).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional


class PhaseProfiler:
    """Accumulates inclusive wall time per hierarchical phase path."""

    __slots__ = ("totals", "counts", "_stack")

    #: Monotonic high-resolution clock used for every delta.
    now = staticmethod(time.perf_counter)

    def __init__(self):
        #: path -> inclusive seconds.
        self.totals: Dict[str, float] = {}
        #: path -> number of enter/add events.
        self.counts: Dict[str, int] = {}
        self._stack: List[str] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add(self, path: str, seconds: float, count: int = 1) -> None:
        """Accrue a pre-measured delta under an absolute phase path."""
        self.totals[path] = self.totals.get(path, 0.0) + seconds
        self.counts[path] = self.counts.get(path, 0) + count

    @contextmanager
    def phase(self, name: str):
        """Time a (possibly nested) phase; path derives from nesting."""
        self._stack.append(name)
        path = "/".join(self._stack)
        start = self.now()
        try:
            yield self
        finally:
            self.add(path, self.now() - start)
            self._stack.pop()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _children(self, path: str) -> List[str]:
        prefix = path + "/"
        depth = path.count("/") + 1
        return [
            other
            for other in self.totals
            if other.startswith(prefix) and other.count("/") == depth
        ]

    def self_seconds(self, path: str) -> float:
        """Inclusive time minus the time of direct children."""
        return self.totals[path] - sum(
            self.totals[child] for child in self._children(path)
        )

    def top_level(self) -> Dict[str, float]:
        """Inclusive seconds of each root phase."""
        return {
            path: seconds
            for path, seconds in self.totals.items()
            if "/" not in path
        }

    def top_level_total(self) -> float:
        """Sum of root-phase inclusive times — the profiler's account of
        the solve; compared against the solver-reported wall time."""
        return sum(self.top_level().values())

    def report(self) -> Dict[str, object]:
        """Machine-readable breakdown (embedded in traces and reports)."""
        phases = [
            {
                "path": path,
                "seconds": round(self.totals[path], 9),
                "self_seconds": round(self.self_seconds(path), 9),
                "count": self.counts.get(path, 0),
            }
            for path in sorted(self.totals)
        ]
        return {
            "phases": phases,
            "top_level_total": round(self.top_level_total(), 9),
        }


#: Maximum tolerated relative deviation between the profiler's
#: top-level phase sum and the solver-reported wall time.  Checked by
#: the CLI for single-process runs and by the telemetry merge step per
#: worker shard in parallel runs.
PROFILE_DRIFT_TOLERANCE = 0.10


def profile_drift(
    phase_sum: float, reference: float
) -> Optional[float]:
    """Relative drift of the profiler's account vs the solver's.

    ``reference`` is the solver-reported wall time (solve + learn).
    Returns ``None`` when the reference is too small to compare against
    meaningfully (sub-millisecond solves are all jitter).
    """
    if reference < 1e-3:
        return None
    return abs(phase_sum - reference) / reference


def merge_reports(
    reports: List[Dict[str, object]],
) -> Dict[str, object]:
    """Combine several profiler reports (e.g. one per solver call)."""
    merged = PhaseProfiler()
    for report in reports:
        for entry in report.get("phases", []):  # type: ignore[union-attr]
            merged.add(
                entry["path"], entry["seconds"], entry.get("count", 1)
            )
    return merged.report()
