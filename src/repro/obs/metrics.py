"""Metrics registry: named counters, gauges and histograms.

A :class:`MetricsRegistry` is the single source of truth for a solver
run's numeric observability data.  :class:`repro.core.result.SolverStats`
is a thin attribute facade over one registry, so adding a new metric is
one ``stats.my_metric = value`` away — the registry auto-registers it —
while every existing ``stats.decisions``-style access keeps working.

Metric kinds:

* **counter** — a monotone integer total (decisions, conflicts, ...).
* **gauge** — a point-in-time float (solve time, cache hit rate, ...).
* **histogram** — a streaming summary (count / sum / min / max) of an
  observed distribution, e.g. learned-clause sizes.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Union

Scalar = Union[int, float]


class Counter:
    """Monotone integer total."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Point-in-time float value."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming count/sum/min/max summary of an observed distribution."""

    kind = "histogram"
    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[Scalar] = None
        self.max: Optional[Scalar] = None

    def observe(self, value: Scalar) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, Scalar]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "mean": self.mean,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.2f})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics, created on first use and enumerable afterwards."""

    __slots__ = ("_metrics",)

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # Registration / lookup
    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name)
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {factory.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def names(self):
        return list(self._metrics)

    # ------------------------------------------------------------------
    # Scalar facade (used by SolverStats attribute access)
    # ------------------------------------------------------------------
    def set_value(self, name: str, value: Scalar) -> None:
        """Set a scalar metric, auto-registering on first assignment.

        Integers register as counters, floats as gauges (so attribute
        extensions like ``stats.my_total = 3`` land in the right kind).
        """
        metric = self._metrics.get(name)
        if metric is None:
            factory = Counter if isinstance(value, int) else Gauge
            metric = factory(name)
            self._metrics[name] = metric
        elif isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} is a histogram; use .observe(), "
                "not scalar assignment"
            )
        metric.value = value

    def value(self, name: str) -> Scalar:
        metric = self._metrics[name]
        if isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; use get()")
        return metric.value

    def as_dict(self, include_histograms: bool = True) -> Dict[str, object]:
        """All metrics as plain data: scalars by value, histograms as
        their summary dicts (omitted with ``include_histograms=False``)."""
        out: Dict[str, object] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                if include_histograms:
                    out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out
