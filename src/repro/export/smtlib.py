"""SMT-LIB2 (QF_BV) export of circuit satisfiability queries.

Lets a downstream user cross-check any instance this library solves
against an external bit-vector solver (Z3, Boolector, cvc5, ...)::

    from repro.export import to_smtlib2
    text = to_smtlib2(instance.circuit, instance.assumptions)
    open("query.smt2", "w").write(text)   # then: z3 query.smt2

Every net becomes a ``(_ BitVec w)`` constant; every operator becomes a
defining assertion; assumptions become value/range assertions; the file
ends with ``(check-sat)`` and ``(get-model)``.  Names are sanitised to
the SMT-LIB quoted-symbol form where needed.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Union

from repro.errors import UnsupportedOperationError
from repro.intervals import Interval
from repro.rtl.circuit import Circuit, Net
from repro.rtl.types import OpKind

AssumptionValue = Union[int, Interval]

_PLAIN_SYMBOL = re.compile(r"^[A-Za-z_~!@$%^&*+=<>.?/-][A-Za-z0-9_~!@$%^&*+=<>.?/-]*$")


def _symbol(name: str) -> str:
    """SMT-LIB symbol for a net name (quoted if necessary)."""
    if _PLAIN_SYMBOL.match(name) and "@" not in name:
        return name
    return f"|{name}|"


def _bv(value: int, width: int) -> str:
    return f"(_ bv{value} {width})"


def _bool_of(term: str) -> str:
    """1-bit vector -> Bool."""
    return f"(= {term} {_bv(1, 1)})"


def _of_bool(term: str) -> str:
    """Bool -> 1-bit vector."""
    return f"(ite {term} {_bv(1, 1)} {_bv(0, 1)})"


def to_smtlib2(
    circuit: Circuit,
    assumptions: Mapping[str, AssumptionValue],
    logic: str = "QF_BV",
) -> str:
    """Serialise "circuit under assumptions" as an SMT-LIB2 script."""
    circuit.validate()
    if not circuit.is_combinational:
        raise UnsupportedOperationError(
            "export unrolled (combinational) circuits; use repro.bmc first"
        )
    lines: List[str] = [
        f"; circuit {circuit.name} exported by repro",
        f"(set-logic {logic})",
    ]
    for net in circuit.nets:
        lines.append(
            f"(declare-const {_symbol(net.name)} (_ BitVec {net.width}))"
        )
    for node in circuit.topological_nodes():
        assertion = _node_assertion(node)
        if assertion is not None:
            lines.append(f"(assert {assertion})")
    for name, value in assumptions.items():
        net = (
            circuit.outputs[name]
            if name in circuit.outputs
            else circuit.net(name)
        )
        symbol = _symbol(net.name)
        if isinstance(value, Interval):
            lines.append(
                f"(assert (bvuge {symbol} {_bv(value.lo, net.width)}))"
            )
            lines.append(
                f"(assert (bvule {symbol} {_bv(value.hi, net.width)}))"
            )
        else:
            lines.append(f"(assert (= {symbol} {_bv(value, net.width)}))")
    lines.append("(check-sat)")
    lines.append("(get-model)")
    return "\n".join(lines) + "\n"


def _node_assertion(node) -> "str | None":
    kind = node.kind
    out = _symbol(node.output.name)
    width = node.output.width
    operands = [_symbol(net.name) for net in node.operands]

    if kind is OpKind.INPUT:
        return None
    if kind is OpKind.CONST:
        return f"(= {out} {_bv(node.const_value or 0, width)})"
    if kind is OpKind.REG:
        raise UnsupportedOperationError("unroll registers before export")
    if kind is OpKind.BUF:
        return f"(= {out} {operands[0]})"
    if kind is OpKind.NOT:
        return f"(= {out} (bvnot {operands[0]}))"
    if kind in (OpKind.AND, OpKind.NAND):
        body = f"(bvand {' '.join(operands)})"
        if kind is OpKind.NAND:
            body = f"(bvnot {body})"
        return f"(= {out} {body})"
    if kind in (OpKind.OR, OpKind.NOR):
        body = f"(bvor {' '.join(operands)})"
        if kind is OpKind.NOR:
            body = f"(bvnot {body})"
        return f"(= {out} {body})"
    if kind in (OpKind.XOR, OpKind.XNOR):
        body = f"(bvxor {operands[0]} {operands[1]})"
        if kind is OpKind.XNOR:
            body = f"(bvnot {body})"
        return f"(= {out} {body})"
    if kind is OpKind.MUX:
        return (
            f"(= {out} (ite {_bool_of(operands[0])} "
            f"{operands[1]} {operands[2]}))"
        )
    if kind is OpKind.ADD:
        return f"(= {out} (bvadd {operands[0]} {operands[1]}))"
    if kind is OpKind.SUB:
        return f"(= {out} (bvsub {operands[0]} {operands[1]}))"
    if kind is OpKind.MULC:
        return (
            f"(= {out} (bvmul {operands[0]} "
            f"{_bv((node.factor or 0) % (1 << width), width)}))"
        )
    if kind is OpKind.SHL:
        return (
            f"(= {out} (bvshl {operands[0]} "
            f"{_bv(min(node.shift_amount or 0, (1 << width) - 1), width)}))"
        )
    if kind is OpKind.SHR:
        return (
            f"(= {out} (bvlshr {operands[0]} "
            f"{_bv(min(node.shift_amount or 0, (1 << width) - 1), width)}))"
        )
    if kind is OpKind.CONCAT:
        return f"(= {out} (concat {operands[0]} {operands[1]}))"
    if kind is OpKind.EXTRACT:
        return (
            f"(= {out} ((_ extract {node.extract_hi} {node.extract_lo}) "
            f"{operands[0]}))"
        )
    if kind is OpKind.ZEXT:
        pad = width - node.operands[0].width
        return f"(= {out} ((_ zero_extend {pad}) {operands[0]}))"
    comparator = {
        OpKind.EQ: "=",
        OpKind.NE: "distinct",
        OpKind.LT: "bvult",
        OpKind.LE: "bvule",
        OpKind.GT: "bvugt",
        OpKind.GE: "bvuge",
    }.get(kind)
    if comparator is not None:
        condition = f"({comparator} {operands[0]} {operands[1]})"
        return f"(= {out} {_of_bool(condition)})"
    raise UnsupportedOperationError(f"cannot export {kind.value}")
