"""Interchange exporters: SMT-LIB2 and DIMACS."""

from typing import Mapping, Union

from repro.export.smtlib import to_smtlib2
from repro.intervals import Interval
from repro.rtl.circuit import Circuit


def to_dimacs(
    circuit: Circuit,
    assumptions: Mapping[str, Union[int, Interval]],
) -> str:
    """DIMACS CNF of "circuit under assumptions" via bit-blasting.

    The variable numbering is the bit-blaster's; use
    :func:`repro.baselines.bitblast` directly when the net-to-literal
    map is needed.
    """
    from repro.baselines.bitblast import assert_assumptions, bitblast

    blasted = bitblast(circuit)
    assert_assumptions(blasted, assumptions)
    return blasted.cnf.to_dimacs()


__all__ = ["to_dimacs", "to_smtlib2"]
