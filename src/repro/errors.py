"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class CircuitError(ReproError):
    """Structural problem in a circuit: width mismatch, cycle, bad operand."""


class NetlistFormatError(ReproError):
    """A textual netlist could not be parsed."""


class SolverError(ReproError):
    """Internal solver invariant violation."""


class ResourceLimitError(ReproError):
    """A configured limit (time, conflicts, learned relations) was exceeded."""


class UnsupportedOperationError(ReproError):
    """An RTL operator is not supported by the requested engine."""
