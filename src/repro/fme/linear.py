"""Linear integer constraints over numbered variables.

The FME/Omega layer is deliberately independent of the circuit and solver
packages: it works on bare integer variable ids, so it can be unit-tested
against brute force and reused by the lazy-SMT baseline.

A constraint is ``sum(coeff_i * x_i) <= constant`` (inequality) or
``sum(coeff_i * x_i) == constant`` (equality), with integer coefficients.
``normalized()`` divides by the gcd of the coefficients — for an
inequality the constant side is *floored*, which is exact over the
integers and is the first strengthening step of the Omega test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple


@dataclass(frozen=True)
class LinearConstraint:
    """``sum(c_i * x_i) (<=|==) constant`` with integer coefficients."""

    coeffs: Tuple[Tuple[int, int], ...]  # sorted (var_id, coefficient) pairs
    constant: int
    equality: bool = False

    @staticmethod
    def make(
        coeffs: Mapping[int, int], constant: int, equality: bool = False
    ) -> "LinearConstraint":
        cleaned = tuple(
            sorted((v, c) for v, c in coeffs.items() if c != 0)
        )
        return LinearConstraint(cleaned, constant, equality)

    @staticmethod
    def le(coeffs: Mapping[int, int], constant: int) -> "LinearConstraint":
        """``sum(c_i x_i) <= constant``."""
        return LinearConstraint.make(coeffs, constant, equality=False)

    @staticmethod
    def eq(coeffs: Mapping[int, int], constant: int) -> "LinearConstraint":
        """``sum(c_i x_i) == constant``."""
        return LinearConstraint.make(coeffs, constant, equality=True)

    # ------------------------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        """True when no variables remain (a pure constant fact)."""
        return not self.coeffs

    @property
    def trivially_true(self) -> bool:
        if not self.is_trivial:
            return False
        return self.constant == 0 if self.equality else self.constant >= 0

    @property
    def trivially_false(self) -> bool:
        return self.is_trivial and not self.trivially_true

    def coeff_of(self, var: int) -> int:
        for var_id, coeff in self.coeffs:
            if var_id == var:
                return coeff
        return 0

    def variables(self) -> Tuple[int, ...]:
        return tuple(var_id for var_id, _ in self.coeffs)

    def evaluate(self, assignment: Mapping[int, int]) -> bool:
        """Truth of the constraint under a full assignment."""
        total = sum(c * assignment[v] for v, c in self.coeffs)
        return total == self.constant if self.equality else total <= self.constant

    # ------------------------------------------------------------------
    def normalized(self) -> Optional["LinearConstraint"]:
        """Divide by the coefficient gcd.

        Returns ``None`` when an equality becomes unsatisfiable (gcd does
        not divide the constant) — the caller must treat that as a
        contradiction.  Trivial constraints are returned unchanged.
        """
        if not self.coeffs:
            return self
        g = 0
        for _, coeff in self.coeffs:
            g = math.gcd(g, abs(coeff))
        if g == 1:
            return self
        if self.equality:
            if self.constant % g != 0:
                return None
            constant = self.constant // g
        else:
            constant = self.constant // g  # floor: exact for integers
        coeffs = tuple((v, c // g) for v, c in self.coeffs)
        return LinearConstraint(coeffs, constant, self.equality)

    def substitute(self, var: int, value: int) -> "LinearConstraint":
        """Replace ``var`` with a concrete integer value."""
        coeff = self.coeff_of(var)
        if coeff == 0:
            return self
        coeffs = tuple((v, c) for v, c in self.coeffs if v != var)
        return LinearConstraint(
            coeffs, self.constant - coeff * value, self.equality
        )

    def substitute_expr(
        self, var: int, expr_coeffs: Mapping[int, int], expr_const: int
    ) -> "LinearConstraint":
        """Replace ``var`` with the affine expression ``expr + const``."""
        coeff = self.coeff_of(var)
        if coeff == 0:
            return self
        merged: Dict[int, int] = {v: c for v, c in self.coeffs if v != var}
        for v, c in expr_coeffs.items():
            merged[v] = merged.get(v, 0) + coeff * c
        return LinearConstraint.make(
            merged, self.constant - coeff * expr_const, self.equality
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = " + ".join(f"{c}*x{v}" for v, c in self.coeffs) or "0"
        op = "==" if self.equality else "<="
        return f"({terms} {op} {self.constant})"


def bounds_to_constraints(
    bounds: Mapping[int, Tuple[int, int]]
) -> Iterable[LinearConstraint]:
    """Turn variable bounds ``lo <= x <= hi`` into constraints."""
    for var, (lo, hi) in bounds.items():
        yield LinearConstraint.le({var: 1}, hi)
        yield LinearConstraint.le({var: -1}, -lo)
