"""Integer feasibility of linear systems — the Omega-library stand-in.

HDPLL calls the Omega library [13] to decide whether the bounds-consistent
solution box contains an integer point (Section 2.4).  This module plays
that role:

1. **Normalisation** — coefficients divided by their gcd; an equality
   whose gcd does not divide the constant is an immediate contradiction.
2. **Equality elimination** — unit-coefficient equalities are removed by
   substitution (an affine rewrite of the remaining system).  Because the
   circuit compiler only ever emits equalities with a unit coefficient on
   the output/carry variable, this step removes almost everything.
3. **Bounds propagation** — the interval-narrowing pass over the
   remaining inequalities (cheap, removes most slack).
4. **Rational FME** — if the rational relaxation is infeasible, so is the
   integer problem.
5. **Branch and bound** — otherwise pick the variable with the smallest
   range and split its domain; every variable carries finite RTL bounds,
   so the recursion terminates.  A witness is returned on success.

Steps 4+5 together are complete for bounded problems; the dark-shadow
short cut of the true Omega test is implemented as
:func:`dark_shadow_feasible` and used as a fast SAT-accept before
branching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ResourceLimitError
from repro.fme.fourier_motzkin import eliminate_variable, rational_feasible
from repro.fme.linear import LinearConstraint


@dataclass
class OmegaStats:
    """Counters for diagnostics and the benchmark harness."""

    substitutions: int = 0
    branches: int = 0
    fme_calls: int = 0


class OmegaSolver:
    """Integer feasibility with witness extraction."""

    def __init__(self, max_branch_nodes: int = 200_000):
        self.max_branch_nodes = max_branch_nodes
        self.stats = OmegaStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(
        self,
        constraints: List[LinearConstraint],
        bounds: Mapping[int, Tuple[int, int]],
        disequalities: Optional[List[LinearConstraint]] = None,
    ) -> Optional[Dict[int, int]]:
        """Find an integer point satisfying constraints within bounds.

        ``bounds`` must cover every variable mentioned by the constraints
        (RTL variables always have finite width domains).
        ``disequalities`` are equality-shaped constraints that must be
        *violated* (``sum != constant``) — the encoding of the RTL ``!=``
        predicate, which is not convex and is handled by search.  Returns
        a full witness assignment over the bounded variables, or ``None``.
        """
        disequalities = list(disequalities or [])
        working_bounds: Dict[int, Tuple[int, int]] = dict(bounds)
        for constraint in constraints + disequalities:
            for var in constraint.variables():
                if var not in working_bounds:
                    raise ResourceLimitError(
                        f"variable x{var} has no finite bounds"
                    )

        substitutions: List[Tuple[int, Dict[int, int], int]] = []
        inequalities = self._preprocess(
            constraints, working_bounds, substitutions, disequalities
        )
        if inequalities is None:
            return None
        inequalities, disequalities = inequalities
        witness = self._search(inequalities, disequalities, working_bounds)
        if witness is None:
            return None
        # Complete the witness for variables never mentioned.
        for var, (lo, _hi) in working_bounds.items():
            witness.setdefault(var, lo)
        # Back-substitute eliminated equality variables.
        for var, expr_coeffs, expr_const in reversed(substitutions):
            value = expr_const + sum(
                c * witness[v] for v, c in expr_coeffs.items()
            )
            witness[var] = value
        return witness

    def feasible(
        self,
        constraints: List[LinearConstraint],
        bounds: Mapping[int, Tuple[int, int]],
        disequalities: Optional[List[LinearConstraint]] = None,
    ) -> bool:
        """Decision-only variant of :meth:`solve`."""
        return self.solve(constraints, bounds, disequalities) is not None

    # ------------------------------------------------------------------
    # Preprocessing
    # ------------------------------------------------------------------
    def _preprocess(
        self,
        constraints: List[LinearConstraint],
        bounds: Dict[int, Tuple[int, int]],
        substitutions: List[Tuple[int, Dict[int, int], int]],
        disequalities: List[LinearConstraint],
    ) -> Optional[Tuple[List[LinearConstraint], List[LinearConstraint]]]:
        """Normalise, eliminate equalities; returns (ineqs, diseqs) or None."""
        equalities: List[LinearConstraint] = []
        inequalities: List[LinearConstraint] = []
        for constraint in constraints:
            normal = constraint.normalized()
            if normal is None or normal.trivially_false:
                return None
            if normal.trivially_true:
                continue
            (equalities if normal.equality else inequalities).append(normal)

        live_diseqs: List[LinearConstraint] = []
        for diseq in disequalities:
            normal = diseq.normalized()
            if normal is None:
                # gcd does not divide the constant: sum != constant always.
                continue
            if normal.is_trivial:
                if normal.constant == 0:
                    return None  # 0 != 0 is unsatisfiable
                continue
            live_diseqs.append(normal)
        disequalities[:] = live_diseqs

        while equalities:
            equality = equalities.pop()
            target = self._unit_variable(equality)
            if target is None:
                # No unit coefficient: keep as a pair of inequalities; the
                # branch-and-bound search handles the integrality.
                inequalities.append(
                    LinearConstraint(equality.coeffs, equality.constant)
                )
                negated = {v: -c for v, c in equality.coeffs}
                inequalities.append(
                    LinearConstraint.le(negated, -equality.constant)
                )
                continue
            coeff = equality.coeff_of(target)
            # target == (constant - rest) / coeff with coeff in {1, -1}.
            expr_coeffs = {
                v: (-c if coeff == 1 else c)
                for v, c in equality.coeffs
                if v != target
            }
            expr_const = (
                equality.constant if coeff == 1 else -equality.constant
            )
            substitutions.append((target, expr_coeffs, expr_const))
            self.stats.substitutions += 1
            # Keep the target's own bounds as inequalities on the expr.
            lo, hi = bounds[target]
            with_target = dict(expr_coeffs)
            inequalities.append(
                LinearConstraint.make(with_target, hi - expr_const)
            )
            inequalities.append(
                LinearConstraint.make(
                    {v: -c for v, c in with_target.items()},
                    expr_const - lo,
                )
            )
            bounds.pop(target)
            # Substitute in the remaining constraints.
            replaced_eq = []
            for other in equalities:
                rewritten = other.substitute_expr(
                    target, expr_coeffs, expr_const
                ).normalized()
                if rewritten is None or rewritten.trivially_false:
                    return None
                if not rewritten.trivially_true:
                    replaced_eq.append(rewritten)
            equalities = replaced_eq
            replaced_ineq = []
            for other in inequalities:
                rewritten = other.substitute_expr(
                    target, expr_coeffs, expr_const
                ).normalized()
                assert rewritten is not None
                if rewritten.trivially_false:
                    return None
                if not rewritten.trivially_true:
                    replaced_ineq.append(rewritten)
            inequalities = replaced_ineq
            replaced_diseq = []
            for other in disequalities:
                rewritten = other.substitute_expr(
                    target, expr_coeffs, expr_const
                ).normalized()
                if rewritten is None:
                    continue  # always-true disequality
                if rewritten.is_trivial:
                    if rewritten.constant == 0:
                        return None
                    continue
                replaced_diseq.append(rewritten)
            disequalities[:] = replaced_diseq
        return inequalities, disequalities

    @staticmethod
    def _unit_variable(constraint: LinearConstraint) -> Optional[int]:
        for var, coeff in constraint.coeffs:
            if coeff in (1, -1):
                return var
        return None

    # ------------------------------------------------------------------
    # Bounds propagation over inequalities
    # ------------------------------------------------------------------
    @staticmethod
    def _propagate_bounds(
        inequalities: List[LinearConstraint],
        bounds: Dict[int, Tuple[int, int]],
    ) -> bool:
        """Tighten variable bounds; False when a domain empties."""
        changed = True
        while changed:
            changed = False
            for constraint in inequalities:
                # sum(c_i x_i) <= k: bound each variable by the residual.
                lo_total = 0
                for var, coeff in constraint.coeffs:
                    lo, hi = bounds[var]
                    lo_total += coeff * (lo if coeff > 0 else hi)
                if lo_total > constraint.constant:
                    return False
                for var, coeff in constraint.coeffs:
                    lo, hi = bounds[var]
                    own_min = coeff * (lo if coeff > 0 else hi)
                    residual = constraint.constant - (lo_total - own_min)
                    if coeff > 0:
                        new_hi = residual // coeff
                        if new_hi < hi:
                            if new_hi < lo:
                                return False
                            bounds[var] = (lo, new_hi)
                            changed = True
                    else:
                        new_lo = -((-residual) // coeff)
                        if new_lo > lo:
                            if new_lo > hi:
                                return False
                            bounds[var] = (new_lo, hi)
                            changed = True
        return True

    # ------------------------------------------------------------------
    # Branch and bound with FME pruning
    # ------------------------------------------------------------------
    def _search(
        self,
        inequalities: List[LinearConstraint],
        disequalities: List[LinearConstraint],
        bounds: Dict[int, Tuple[int, int]],
    ) -> Optional[Dict[int, int]]:
        budget = [self.max_branch_nodes]
        return self._search_node(
            inequalities, disequalities, dict(bounds), budget
        )

    @staticmethod
    def _trim_disequalities(
        disequalities: List[LinearConstraint],
        bounds: Dict[int, Tuple[int, int]],
    ) -> Optional[bool]:
        """Endpoint-trim bounds using disequalities.

        Returns ``None`` on wipe-out, else True when something changed.
        """
        changed = False
        for diseq in disequalities:
            free = [
                (var, coeff)
                for var, coeff in diseq.coeffs
                if bounds[var][0] != bounds[var][1]
            ]
            pinned_sum = sum(
                coeff * bounds[var][0]
                for var, coeff in diseq.coeffs
                if bounds[var][0] == bounds[var][1]
            )
            if not free:
                if pinned_sum == diseq.constant:
                    return None
                continue
            if len(free) != 1:
                continue
            var, coeff = free[0]
            residual = diseq.constant - pinned_sum
            if residual % coeff != 0:
                continue
            forbidden = residual // coeff
            lo, hi = bounds[var]
            if forbidden == lo:
                lo += 1
            elif forbidden == hi:
                hi -= 1
            else:
                continue
            if lo > hi:
                return None
            bounds[var] = (lo, hi)
            changed = True
        return changed

    def _search_node(
        self,
        inequalities: List[LinearConstraint],
        disequalities: List[LinearConstraint],
        bounds: Dict[int, Tuple[int, int]],
        budget: List[int],
    ) -> Optional[Dict[int, int]]:
        if budget[0] <= 0:
            raise ResourceLimitError("omega branch budget exhausted")
        budget[0] -= 1
        self.stats.branches += 1

        while True:
            if not self._propagate_bounds(inequalities, bounds):
                return None
            trimmed = self._trim_disequalities(disequalities, bounds)
            if trimmed is None:
                return None
            if not trimmed:
                break
        open_vars = [
            var for var, (lo, hi) in bounds.items() if lo != hi
        ]
        if not open_vars:
            witness = {var: lo for var, (lo, _) in bounds.items()}
            for constraint in inequalities:
                if not constraint.evaluate(witness):
                    return None
            for diseq in disequalities:
                if diseq.evaluate(witness):
                    return None  # sum == constant: disequality violated
            return witness

        # Prune with the rational relaxation.
        self.stats.fme_calls += 1
        relaxation = list(inequalities)
        for var, (lo, hi) in bounds.items():
            relaxation.append(LinearConstraint.le({var: 1}, hi))
            relaxation.append(LinearConstraint.le({var: -1}, -lo))
        if not rational_feasible(relaxation):
            return None

        # All-unit-coefficient systems are integral after FME + bounds
        # propagation only if some variable decouples; simplest sound
        # route: branch on the variable with the smallest range.
        branch_var = min(
            open_vars, key=lambda v: bounds[v][1] - bounds[v][0]
        )
        lo, hi = bounds[branch_var]
        mid = (lo + hi) // 2
        for new_lo, new_hi in ((lo, mid), (mid + 1, hi)):
            child_bounds = dict(bounds)
            child_bounds[branch_var] = (new_lo, new_hi)
            witness = self._search_node(
                inequalities, disequalities, child_bounds, budget
            )
            if witness is not None:
                return witness
        return None


def dark_shadow_feasible(
    inequalities: List[LinearConstraint],
) -> Optional[bool]:
    """Omega dark-shadow test on a pure-inequality system.

    Returns ``True`` when the dark shadow proves an integer point exists,
    ``False`` when the *real* shadow is already empty (no rational point,
    hence no integer point), and ``None`` when inconclusive.
    """
    current = [c for c in inequalities if not c.is_trivial]
    if any(c.trivially_false for c in inequalities):
        return False
    exact = True
    while True:
        variables = sorted({v for c in current for v in c.variables()})
        if not variables:
            return True
        var = variables[0]
        uppers = [c for c in current if c.coeff_of(var) > 0]
        lowers = [c for c in current if c.coeff_of(var) < 0]
        projected = eliminate_variable(current, var)
        if projected is None:
            return False if exact else None
        # Dark shadow strengthening: for each (upper, lower) pair with
        # coefficients p, q, the combination must leave room for an
        # integer: q*U + p*L >= (p-1)(q-1) slack is subtracted.
        dark: List[LinearConstraint] = [
            c for c in projected if True
        ]
        needs_dark = any(
            abs(u.coeff_of(var)) > 1 for u in uppers
        ) and any(abs(l.coeff_of(var)) > 1 for l in lowers)
        if needs_dark:
            exact = False
            dark = []
            for upper in uppers:
                p = upper.coeff_of(var)
                for lower in lowers:
                    q = -lower.coeff_of(var)
                    merged: Dict[int, int] = {}
                    for v, c in upper.coeffs:
                        if v != var:
                            merged[v] = merged.get(v, 0) + q * c
                    for v, c in lower.coeffs:
                        if v != var:
                            merged[v] = merged.get(v, 0) + p * c
                    constant = (
                        q * upper.constant
                        + p * lower.constant
                        - (p - 1) * (q - 1)
                    )
                    combined = LinearConstraint.make(merged, constant)
                    if combined.trivially_false:
                        return None
                    if not combined.trivially_true:
                        dark.append(combined)
            dark.extend(
                c for c in current if c.coeff_of(var) == 0
            )
        current = dark if needs_dark else projected
