"""Integer linear arithmetic: Fourier–Motzkin and the Omega stand-in.

HDPLL's leaf check (Algorithm 1: "the solution box P is checked for a
point solution using an integer-linear solver that performs
Fourier–Motzkin elimination") is served by :class:`OmegaSolver`.
"""

from repro.fme.fourier_motzkin import (
    eliminate_variable,
    rational_feasible,
    variable_bounds_after_projection,
)
from repro.fme.linear import LinearConstraint, bounds_to_constraints
from repro.fme.omega import OmegaSolver, OmegaStats, dark_shadow_feasible

__all__ = [
    "LinearConstraint",
    "OmegaSolver",
    "OmegaStats",
    "bounds_to_constraints",
    "dark_shadow_feasible",
    "eliminate_variable",
    "rational_feasible",
    "variable_bounds_after_projection",
]
